//! Drive the simulated ZCU104 accelerator end to end: host-side walk
//! pre-sampling, DMA-fed fixed-point training, cycle accounting, and
//! resource utilization — §3.2's system in one program.
//!
//! ```bash
//! cargo run --release --example fpga_accelerator
//! ```

use seqge::core::{OsElmConfig, TrainConfig};
use seqge::eval::{evaluate_embedding, EvalConfig, LogRegConfig};
use seqge::fpga::{estimate_resources, AcceleratorDesign, FpgaDevice, HostDriver};
use seqge::graph::Dataset;

fn main() {
    let dim = 32;
    let g = Dataset::Cora.generate_scaled(0.3, 5);
    let labels = g.labels().expect("labelled").to_vec();
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // The bitstream this run models.
    let design = AcceleratorDesign::for_dim(dim);
    let est = estimate_resources(&design);
    let util = est.utilization(&FpgaDevice::XCZU7EV);
    println!(
        "design d={dim}: {} MAC lanes @ {} MHz — BRAM {} ({:.1}%), DSP {} ({:.1}%)",
        design.mac_lanes, design.clock_mhz, est.bram36, util.bram_pct, est.dsp, util.dsp_pct
    );

    // Host drives walks into the accelerator.
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.walk.walks_per_node = 5;
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
    let mut host = HostDriver::new(g.num_nodes(), cfg, ocfg);
    let report = host.train_all(&g, 17);
    println!(
        "trained {} walks: host pre-sampling {:.1} ms, modeled PL time {:.1} ms \
         ({:.3} ms/walk — paper Table 3: 0.777 ms/walk at d=32)",
        report.walks,
        report.host_ms,
        report.accel_ms,
        report.accel_ms / report.walks as f64
    );
    let stats = host.accelerator().stats;
    println!(
        "tile traffic: {} DRAM column fetches, {} on-chip hits ({:.1}% hit rate), {} saturations",
        stats.dram_fetches,
        stats.tile_hits,
        100.0 * stats.tile_hits as f64 / (stats.tile_hits + stats.dram_fetches).max(1) as f64,
        stats.saturations
    );

    // The fixed-point embedding still classifies.
    let eval_cfg = EvalConfig {
        trials: 2,
        logreg: LogRegConfig { epochs: 40, ..Default::default() },
        ..Default::default()
    };
    let f1 = evaluate_embedding(&host.embedding(), &labels, g.num_classes(), &eval_cfg, 1);
    println!("downstream F1 of the fixed-point embedding: {:.3}", f1.micro_f1);
}
