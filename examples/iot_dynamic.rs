//! The paper's motivating scenario: a dynamic IoT graph whose structure
//! changes *after deployment*, handled by sequential training.
//!
//! ```bash
//! cargo run --release --example iot_dynamic
//! ```
//!
//! Starts from a spanning forest of a device-interaction graph, replays the
//! remaining edges one at a time (walking from both endpoints of each new
//! edge, exactly §4.3.2), and tracks classification accuracy as the graph
//! densifies — the proposed model keeps improving while edges stream in.

use seqge::core::{EmbeddingModel, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge::eval::{evaluate_embedding, EvalConfig, LogRegConfig};
use seqge::graph::{spanning_forest, Dataset, EdgeStream};
use seqge::sampling::{generate_corpus, NegativeTable, Rng64, UpdatePolicy, Walker};

fn main() {
    // A Cora-like device graph at laptop scale.
    let full = Dataset::Cora.generate_scaled(0.3, 7);
    let labels = full.labels().expect("labelled").to_vec();
    let classes = full.num_classes();
    println!(
        "device graph: {} nodes, {} edges, {} device classes",
        full.num_nodes(),
        full.num_edges(),
        classes
    );

    let mut cfg = TrainConfig::paper_defaults(32);
    cfg.walk.walks_per_node = 3;
    // Streaming deployment wants a bounded-memory learning gain: enable the
    // RLS forgetting factor (see DESIGN.md §1).
    let ocfg =
        OsElmConfig { model: cfg.model, forgetting: 0.9995, ..OsElmConfig::paper_defaults(32) };
    let mut model = OsElmSkipGram::new(full.num_nodes(), ocfg);
    let eval_cfg = EvalConfig {
        trials: 2,
        logreg: LogRegConfig { epochs: 40, ..Default::default() },
        ..Default::default()
    };

    // Deployment-time initial state: a forest with the same components.
    let split = spanning_forest(&full);
    let mut g = split.initial_graph(&full);
    let stream = EdgeStream::from_forest_split(&split, 99);
    println!(
        "initial forest: {} edges kept, {} edges will arrive after deployment",
        split.forest_edges.len(),
        stream.len()
    );

    // Initial training pass on the forest.
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(1);
    let (mut corpus, walks) = generate_corpus(&g.to_csr(), &mut walker, &mut rng);
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    for w in &walks {
        model.train_walk(w, &table, &mut rng);
    }
    let f0 = evaluate_embedding(&model.embedding(), &labels, classes, &eval_cfg, 5);
    println!("F1 after forest-only training: {:.3}", f0.micro_f1);

    // Edges arrive one at a time; train on walks from both endpoints.
    let checkpoints = 4;
    let chunk = stream.len().div_ceil(checkpoints);
    let mut buf = Vec::new();
    for (i, (u, v)) in stream.iter().enumerate() {
        g.add_edge(u, v).expect("edge arrives once");
        for start in [u, v] {
            walker.walk_into(&g, start, &mut rng, &mut buf);
            if buf.len() >= 2 {
                corpus.record(&buf);
                model.train_walk(&buf, &table, &mut rng);
            }
        }
        table.on_edge_inserted(&corpus);
        if (i + 1) % chunk == 0 || i + 1 == stream.len() {
            let f = evaluate_embedding(&model.embedding(), &labels, classes, &eval_cfg, 5);
            println!("F1 after {:>5} / {} edges arrived: {:.3}", i + 1, stream.len(), f.micro_f1);
        }
    }
    println!("sequential training absorbed the dynamic graph without retraining from scratch ✓");
}
