//! Link prediction with a properly held-out test set: train the embedding
//! on the graph *minus* the held-out edges, then score them against sampled
//! non-edges (extension of the paper's evaluation; Grover & Leskovec §4.4).
//!
//! ```bash
//! cargo run --release --example link_prediction
//! ```

use seqge::core::{train_all_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge::eval::{clustering_nmi, EdgeOp, LinkPredSet};
use seqge::graph::Dataset;

fn main() {
    let full = Dataset::Cora.generate_scaled(0.3, 13);
    println!("graph: {} nodes, {} edges", full.num_nodes(), full.num_edges());

    // Hold out 10% of edges; the model never sees them.
    let set = LinkPredSet::sample(&full, 0.1, 1);
    let train_graph = set.training_graph(&full);
    println!(
        "held out {} edges; training on the remaining {}",
        set.positives.len(),
        train_graph.num_edges()
    );

    let cfg = TrainConfig::paper_defaults(32);
    let mut model = OsElmSkipGram::new(
        train_graph.num_nodes(),
        OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(32) },
    );
    train_all_scenario(&train_graph, &mut model, &cfg, 3);
    let emb = model.embedding();

    for op in [EdgeOp::Dot, EdgeOp::Cosine, EdgeOp::NegL2] {
        println!("held-out link prediction AUC ({op:?}): {:.4}", set.auc(&emb, op));
    }

    // Bonus: unsupervised clustering quality of the same embedding.
    if let Some(labels) = full.labels() {
        let score = clustering_nmi(&emb, labels, full.num_classes(), 5);
        println!("k-means clustering NMI vs classes: {score:.4}");
    }
    println!("(random embeddings score AUC ≈ 0.5 and NMI ≈ 0)");
}
