//! Node classification on a citation network — the paper's evaluation
//! pipeline (§4.3) end to end, comparing the original SGD skip-gram against
//! the proposed OS-ELM model on the same walks.
//!
//! ```bash
//! cargo run --release --example citation_classify [scale]
//! ```

use seqge::core::{
    train_all_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, SkipGram, TrainConfig,
};
use seqge::eval::{evaluate_embedding, EvalConfig};
use seqge::graph::Dataset;

fn main() {
    let scale: f64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.3f64).clamp(0.01, 1.0);
    let g = Dataset::Cora.generate_scaled(scale, 11);
    let labels = g.labels().expect("labelled").to_vec();
    println!(
        "citation graph (Cora stand-in, scale {scale}): {} papers, {} citations, {} areas",
        g.num_nodes(),
        g.num_edges(),
        g.num_classes()
    );

    let eval_cfg = EvalConfig::default(); // 90/10 split, 3 trials — §4.3
    for dim in [32usize, 64] {
        let cfg = TrainConfig::paper_defaults(dim);

        let mut original = SkipGram::new(g.num_nodes(), cfg.model);
        train_all_scenario(&g, &mut original, &cfg, 3);
        let f_orig =
            evaluate_embedding(&original.embedding(), &labels, g.num_classes(), &eval_cfg, 3);

        let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) };
        let mut proposed = OsElmSkipGram::new(g.num_nodes(), ocfg);
        train_all_scenario(&g, &mut proposed, &cfg, 3);
        let f_prop =
            evaluate_embedding(&proposed.embedding(), &labels, g.num_classes(), &eval_cfg, 3);

        println!(
            "d={dim}: original skip-gram F1 = {:.3} ± {:.3} | proposed OS-ELM F1 = {:.3} ± {:.3} \
             | model size {:.2} MB vs {:.2} MB",
            f_orig.micro_f1,
            f_orig.micro_std,
            f_prop.micro_f1,
            f_prop.micro_std,
            original.model_bytes() as f64 / 1e6,
            proposed.model_bytes() as f64 / 1e6,
        );
    }
    println!("(paper: comparable accuracy in batch training at ~4x smaller model)");
}
