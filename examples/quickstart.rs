//! Quickstart: embed a small graph and inspect neighbor similarity.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a two-community graph, trains the proposed OS-ELM skip-gram on
//! node2vec walks, and shows that embedding similarity separates the
//! communities.

use seqge::core::{train_all_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge::graph::GraphBuilder;
use seqge::linalg::ops;

fn main() {
    // 1. A graph: two 8-cliques bridged by one edge.
    let mut builder = GraphBuilder::new(16);
    for a in 0..8u32 {
        for b in (a + 1)..8 {
            builder = builder.edge(a, b).edge(a + 8, b + 8);
        }
    }
    let g = builder.edge(0, 8).build().expect("valid graph");
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // 2. Train the sequentially-trainable (OS-ELM) skip-gram, d = 16.
    let mut cfg = TrainConfig::paper_defaults(16);
    cfg.walk.walk_length = 20;
    cfg.walk.walks_per_node = 10;
    cfg.model.window = 5;
    cfg.model.negative_samples = 5;
    let mut model = OsElmSkipGram::new(
        g.num_nodes(),
        OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(16) },
    );
    train_all_scenario(&g, &mut model, &cfg, 42);

    // 3. Cosine similarity within vs across communities.
    let emb = model.embedding();
    let cos = |a: usize, b: usize| {
        let (x, y) = (emb.row(a), emb.row(b));
        let d = ops::dot(x, y);
        let nx = ops::norm2(x);
        let ny = ops::norm2(y);
        d / (nx * ny).max(1e-12)
    };
    let within = (cos(1, 2) + cos(9, 10)) / 2.0;
    let across = (cos(1, 9) + cos(2, 10)) / 2.0;
    println!("mean cosine within community:  {within:+.3}");
    println!("mean cosine across community:  {across:+.3}");
    assert!(
        within > across,
        "embedding should separate the cliques (within {within:.3} vs across {across:.3})"
    );
    println!("communities separated ✓");
}
