#!/usr/bin/env bash
# Load-generator smoke under chaos: boot a 2-shard cluster with shard-side
# fault injection (SEQGE_FAULT), drive it with the hot_read and edge_churn
# scenarios via `seqge loadgen`, and assert the accounting plane's
# contracts hold end to end:
#
#   * the generated schedule is bit-deterministic under --seed (dry-run
#     hash == dry-run hash == the live run's reported schedule_hash)
#   * zero hard protocol errors in any window (shed/degraded/transport are
#     acceptable chaos outcomes; malformed or refused-as-invalid replies
#     are bugs)
#   * SLO violations are bounded: the fault window may degrade, but not
#     into total collapse (>90% of its ops violating), and the steady
#     windows must pass the SLO verdict outright (`seqge loadgen` exits
#     non-zero on a steady-state SLO failure)
#   * results/bench_load.json is produced and schema-valid
#
# CI runs this as the `load-smoke` job.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/seqge}
if [[ ! -x $BIN ]]; then
  cargo build --locked --release
fi

# SEQGE_SMOKE_WORKDIR keeps the scratch dir (logs, flight-recorder
# dumps, bench JSON) at a known path that CI uploads as an artifact on
# failure; without it the dir is a throwaway mktemp, removed on exit.
if [[ -n ${SEQGE_SMOKE_WORKDIR:-} ]]; then
  work=$SEQGE_SMOKE_WORKDIR
  mkdir -p "$work"
  keep_work=1
else
  work=$(mktemp -d)
  keep_work=0
fi
CLUSTER_PID=""
cleanup() {
  [[ -n $CLUSTER_PID ]] && kill "$CLUSTER_PID" 2>/dev/null || true
  ((keep_work)) || rm -rf "$work"
}
trap cleanup EXIT

# Mild but real chaos on every shard: 0.2% of replies dropped before the
# ack (exercises loadgen reconnect + WriteId dedup), 0.5% stalled 30ms
# (fattens the latency tail without breaching the deliberately generous
# default SLO targets — steady verdicts must hold under this chaos, while
# fault-window violations track genuine storm queueing).
export SEQGE_FAULT="conn_drop=0.002,conn_stall=0.005"
export SEQGE_FAULT_SEED=7
export SEQGE_FAULT_STALL_MS=30

"$BIN" generate --dataset cora --scale 0.1 --out "$work/g.edges"

# Arm the flight recorder: the periodic dump (default 2s) must leave a
# parseable post-mortem even when the cluster is chaos-killed below.
SEQGE_FLIGHTREC="$work/frec" \
  "$BIN" cluster --graph "$work/g.edges" --base-dir "$work/shards" --shards 2 \
  --port 0 --dim 8 >"$work/cluster.log" 2>&1 &
CLUSTER_PID=$!

for _ in $(seq 1 300); do
  grep -q '"msg":".*router on ' "$work/cluster.log" && break
  sleep 0.2
done
ADDR=$(sed -n 's/.*router on \([0-9.:]*\)".*/\1/p' "$work/cluster.log" | head -n1)
[[ -n $ADDR ]] || { echo "FAIL: cluster never came up"; cat "$work/cluster.log"; exit 1; }
echo "cluster router at $ADDR (faults: $SEQGE_FAULT)"

# The node count the live run will probe from `stats` — the dry runs must
# use the same value for the schedule hashes to be comparable.
NODES=$(printf '{"cmd":"stats"}\n' | "$BIN" client --addr "$ADDR" |
  sed -n 's/.*"nodes":\([0-9]*\).*/\1/p' | head -n1)
[[ -n $NODES ]] || { echo "FAIL: stats probe returned no node count"; exit 1; }
echo "cluster serves $NODES nodes"

# Schedule determinism: two dry runs agree before any traffic flows.
"$BIN" loadgen --scenario hot_read --seed 42 --connections 2 --scale 0.3 \
  --nodes "$NODES" --dry-run >"$work/dry1.txt"
"$BIN" loadgen --scenario hot_read --seed 42 --connections 2 --scale 0.3 \
  --nodes "$NODES" --dry-run >"$work/dry2.txt"
cmp -s "$work/dry1.txt" "$work/dry2.txt" ||
  { echo "FAIL: dry-run schedule not deterministic"; diff "$work/dry1.txt" "$work/dry2.txt"; exit 1; }
DRY_HASH=$(sed -n 's/.*schedule_hash \([0-9a-f]*\).*/\1/p' "$work/dry1.txt")
echo "schedule_hash $DRY_HASH (deterministic)"

run_scenario() {
  local scenario=$1 out=$2
  "$BIN" loadgen --scenario "$scenario" --target "$ADDR" --seed 42 \
    --connections 2 --scale 0.3 --json "$out" ||
    { echo "FAIL: $scenario run failed (steady-state SLO or transport)"; cat "$out" 2>/dev/null; exit 1; }

  # Schema: the keys the bench gate and dashboards scrape.
  for key in scenario schedule_hash steady_ok_rate steady_topk_p99_ms slo_pass \
             windows slo_violations per_op hard_errors transport_errors exemplars; do
    grep -q "\"$key\"" "$out" ||
      { echo "FAIL: $scenario report lacks \"$key\""; cat "$out"; exit 1; }
  done

  # Any violated SLO bucket must carry at least one exemplar trace id
  # (loadgen traces every request, so a violation always has one).
  total_viol=$(sed -n 's/.*"slo_violations": *\([0-9]*\).*/\1/p' "$out" |
    awk '{s+=$1} END {print s+0}')
  if ((total_viol > 0)); then
    # Pretty-printed JSON puts array items on their own lines.
    grep -A1 '"trace_ids"' "$out" | grep -Eq '"[0-9a-f]{16}"' ||
      { echo "FAIL: $scenario violated SLOs but reports no exemplar trace ids"; cat "$out"; exit 1; }
  fi

  # Zero hard protocol errors anywhere — chaos may shed or degrade, never
  # corrupt.
  if sed -n 's/.*"hard_errors": *\([0-9]*\).*/\1/p' "$out" | grep -qv '^0$'; then
    echo "FAIL: $scenario saw hard protocol errors"; cat "$out"; exit 1
  fi

  # Bounded fault-window degradation: the storm may violate SLOs, but if
  # >90% of its ops violate, the plane collapsed rather than degraded.
  mapfile -t ops < <(sed -n 's/.*"ops": *\([0-9]*\).*/\1/p' "$out")
  mapfile -t viol < <(sed -n 's/.*"slo_violations": *\([0-9]*\).*/\1/p' "$out")
  [[ ${#ops[@]} -ge 2 && ${#viol[@]} -ge 2 ]] ||
    { echo "FAIL: $scenario report lacks both windows"; cat "$out"; exit 1; }
  fault_ops=${ops[1]} fault_viol=${viol[1]}
  if ((fault_ops > 0 && fault_viol * 10 > fault_ops * 9)); then
    echo "FAIL: $scenario fault window collapsed ($fault_viol/$fault_ops ops violated SLO)"
    exit 1
  fi
  echo "$scenario OK: steady viol ${viol[0]}/${ops[0]}, fault viol $fault_viol/$fault_ops"
}

run_scenario hot_read "$work/results/bench_load.json"

# The live run must replay exactly the schedule the dry run hashed.
grep -q "\"schedule_hash\": \"$DRY_HASH\"" "$work/results/bench_load.json" ||
  { echo "FAIL: live run hash differs from dry-run hash $DRY_HASH"; exit 1; }

run_scenario edge_churn "$work/results/bench_load_churn.json"

# The router must still be healthy and answering after both storms.
printf '%s\n' '{"cmd":"ping"}' '{"cmd":"cluster_status"}' |
  "$BIN" client --addr "$ADDR" >"$work/after.out"
grep -q '"pong":true' "$work/after.out" || { echo "FAIL: router dead after load"; exit 1; }

# Chaos-kill the cluster (no drain, no hooks) — the flight recorder's
# periodic dump must still leave a parseable post-mortem on disk.
kill -9 "$CLUSTER_PID" 2>/dev/null || true
wait "$CLUSTER_PID" 2>/dev/null || true
CLUSTER_PID=""
frec_file=$(ls "$work"/frec/flightrec-*.json 2>/dev/null | head -n1)
[[ -n $frec_file ]] ||
  { echo "FAIL: no flightrec dump survived the kill -9"; ls -la "$work/frec" 2>/dev/null || true; exit 1; }
jq -e '.role == "cluster" and (.spans | type == "array") and (.logs | type == "array")' \
  "$frec_file" >/dev/null ||
  { echo "FAIL: flightrec dump malformed"; cat "$frec_file"; exit 1; }
echo "flightrec post-mortem OK: $frec_file"

echo "load smoke OK"
