#!/usr/bin/env bash
# Observability-overhead gate: runs the `bench_obs` workload once from a
# build with seqge-obs compiled out (--features obs-disabled) and once from
# the normal build (instrumentation on, plus the runtime-off arm). The two
# runs merge into results/bench_obs.json; the second run computes the
# enabled-vs-compiled-out overhead and exits non-zero if it exceeds
# SEQGE_OBS_MAX_OVERHEAD_PCT (default 2.0).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=${SCALE:-0.3}
OUT=${OUT:-results/bench_obs.json}

rm -f "$OUT"

echo "== arm: compiled_out (--features obs-disabled) =="
cargo build --release -q -p seqge-bench --bin bench_obs --features obs-disabled
target/release/bench_obs --scale "$SCALE" --json "$OUT"

echo
echo "== arms: enabled + runtime_disabled (normal build) =="
cargo build --release -q -p seqge-bench --bin bench_obs
target/release/bench_obs --scale "$SCALE" --json "$OUT"
