#!/usr/bin/env bash
# Observability-overhead gate: runs the `bench_obs` workload once from a
# build with seqge-obs compiled out (--features obs-disabled) and once from
# the normal build (enabled + runtime_disabled arms, interleaved). The two
# runs merge into results/bench_obs.json. The primary pass/fail gate
# compares the enabled and runtime_disabled arms — same binary, so
# build-to-build code layout can't flake it — and exits non-zero if the
# span-timing overhead exceeds SEQGE_OBS_MAX_OVERHEAD_PCT (default 5.0).
# A second gate bounds the tracing-off residual (runtime_disabled vs
# compiled_out) at SEQGE_TRACE_OFF_MAX_OVERHEAD_PCT (default 2.0).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=${SCALE:-0.3}
OUT=${OUT:-results/bench_obs.json}

rm -f "$OUT"

echo "== arm: compiled_out (--features obs-disabled, informational) =="
cargo build --locked --release -q -p seqge-bench --bin bench_obs --features obs-disabled
target/release/bench_obs --scale "$SCALE" --json "$OUT"

echo
echo "== arms: enabled + runtime_disabled (normal build, gated) =="
cargo build --locked --release -q -p seqge-bench --bin bench_obs
target/release/bench_obs --scale "$SCALE" --json "$OUT"
