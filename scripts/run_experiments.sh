#!/usr/bin/env bash
# Regenerates every table and figure of the paper at the scales recorded in
# EXPERIMENTS.md. Pass SCALE_FULL=1 for the complete paper protocol (hours).
set -uo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

run() {
  local name="$1"; shift
  echo "=== $name ==="
  cargo run --locked --release -p seqge-bench --bin "$name" -- "$@" --json "results/$name.json" \
    | tee "results/$name.txt"
  echo
}

cargo build --locked --release -p seqge-bench --bins

# Scales tuned for a single-core CI box (~30 min total); raise them (and
# SCALE_FULL=1) on real hardware.
run table1
run table5
run table6
run energy
run explore
run fig6 --scale 0.2 --datasets cora,ampt
run fig4 --scale 0.15 --dims 32,64
run ablate_negshare --scale 0.2
run ablate_regularizer --scale 0.2
run ablate_drift --scale 0.4
run sweep_hyperparams --scale 0.2
run fig7 --scale 0.08 --datasets cora,ampt
run fig5 --scale 0.12 --dims 32
run table3
run table4
run bench_serve --scale 0.15

echo "all experiment outputs in results/"
