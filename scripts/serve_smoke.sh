#!/usr/bin/env bash
# Smoke test for the seqge-serve daemon: boot from a generated graph, run a
# scripted client session over the line-delimited JSON protocol, scrape the
# metrics registry, SIGINT the server, and verify the snapshot-backed
# restart path. Exits non-zero on any failed assertion. CI runs this as the
# `serve-smoke` job.
#
# The server logs structured JSONL to stderr (seqge-obs), so readiness and
# lifecycle checks match on the "msg" field rather than raw lines.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/seqge}
if [[ ! -x $BIN ]]; then
  cargo build --locked --release
fi

# SEQGE_SMOKE_WORKDIR keeps the scratch dir (logs, flight-recorder
# dumps, bench JSON) at a known path that CI uploads as an artifact on
# failure; without it the dir is a throwaway mktemp, removed on exit.
if [[ -n ${SEQGE_SMOKE_WORKDIR:-} ]]; then
  work=$SEQGE_SMOKE_WORKDIR
  mkdir -p "$work"
  keep_work=1
else
  work=$(mktemp -d)
  keep_work=0
fi
SERVER_PID=""
cleanup() {
  [[ -n $SERVER_PID ]] && kill "$SERVER_PID" 2>/dev/null || true
  ((keep_work)) || rm -rf "$work"
}
trap cleanup EXIT

# Extracts the address from the JSONL "listening on HOST:PORT" record.
listen_addr() {
  sed -n 's/.*"msg":"listening on \([^"]*\)".*/\1/p' "$1" | head -n1
}

# Asserts that a Prometheus series (exact id, including any label block) is
# present in $work/metrics.txt with a value > 0.
check_series() {
  awk -v id="$1" '{v=$NF; sub(/ [^ ]*$/, ""); if ($0 == id && v + 0 > 0) found = 1}
                  END {exit !found}' "$work/metrics.txt" ||
    { echo "FAIL: metrics series missing or zero: $1"; cat "$work/metrics.txt"; exit 1; }
}

"$BIN" generate --dataset cora --scale 0.05 --out "$work/g.edges"

# Sample every trace and point the flight recorder at a scratch dir so the
# trace/flightrec assertions below are deterministic.
SEQGE_TRACE_SAMPLE=1 SEQGE_FLIGHTREC="$work/frec" \
  "$BIN" serve --graph "$work/g.edges" --port 0 --dim 8 --log-level debug \
  --snapshot-dir "$work/snaps" >"$work/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 150); do
  grep -q '"msg":"listening on ' "$work/serve.log" && break
  sleep 0.2
done
ADDR=$(listen_addr "$work/serve.log")
[[ -n $ADDR ]] || { echo "FAIL: server never came up"; cat "$work/serve.log"; exit 1; }
echo "server at $ADDR"

# Startup logging is structured JSONL at info level.
grep -q '"level":"info".*"msg":"bootstrapped ' "$work/serve.log" ||
  { echo "FAIL: no structured bootstrap record"; cat "$work/serve.log"; exit 1; }

# One scripted session exercising both planes plus an error path.
"$BIN" client --addr "$ADDR" >"$work/session.out" <<'EOF'
{"cmd":"ping"}
{"cmd":"add_edge","u":0,"v":5}
{"cmd":"flush"}
{"cmd":"get_embedding","node":5}
{"cmd":"topk","node":0,"k":3,"op":"cosine"}
{"cmd":"score_link","u":0,"v":5,"op":"cosine"}
{"cmd":"stats"}
{"cmd":"metrics","format":"json"}
{"cmd":"snapshot"}
{"cmd":"definitely_not_a_command"}
EOF
cat "$work/session.out"

grep -q '"pong":true' "$work/session.out" || { echo "FAIL: no pong"; exit 1; }
ok_count=$(grep -c '"ok":true' "$work/session.out")
[[ $ok_count -eq 9 ]] || { echo "FAIL: expected 9 ok responses, got $ok_count"; exit 1; }
grep -q '"ok":false' "$work/session.out" || { echo "FAIL: unknown command not rejected"; exit 1; }
grep -q '"embedding":' "$work/session.out" || { echo "FAIL: no embedding row"; exit 1; }
grep -q '"edges_inserted":1' "$work/session.out" || { echo "FAIL: edge not applied"; exit 1; }
grep -q '"uptime_ms":' "$work/session.out" || { echo "FAIL: stats lacks uptime_ms"; exit 1; }
grep -q '"snapshot_version":' "$work/session.out" ||
  { echo "FAIL: stats lacks snapshot_version"; exit 1; }

# Scrape the registry through the metrics op; core series must be present
# and non-zero after the traffic above.
"$BIN" obs dump --addr "$ADDR" --format prometheus >"$work/metrics.txt"
check_series 'seqge_serve_requests_total{op="ping"}'
check_series 'seqge_serve_requests_total{op="stats"}'
check_series 'seqge_serve_request_latency_ns_count{op="get_embedding"}'
check_series 'seqge_serve_events_enqueued_total'
check_series 'seqge_serve_events_applied_total'
check_series 'seqge_serve_walks_trained_total'
check_series 'seqge_serve_snapshots_written_total'
check_series 'seqge_serve_ingest_batch_size_count'
check_series 'seqge_serve_snapshot_write_ns_count'
check_series 'seqge_core_walks_trained_total'
check_series 'seqge_core_contexts_total'
grep -q '^# TYPE seqge_serve_request_latency_ns summary$' "$work/metrics.txt" ||
  { echo "FAIL: latency family untyped"; exit 1; }

# The JSON rendering of the same registry must parse as one object.
"$BIN" obs dump --addr "$ADDR" --format json >"$work/metrics.json"
head -c 13 "$work/metrics.json" | grep -q '{"counters":\[' ||
  { echo "FAIL: obs dump json malformed"; cat "$work/metrics.json"; exit 1; }
grep -q '"name":"seqge_serve_request_latency_ns"' "$work/metrics.json" ||
  { echo "FAIL: obs dump json lacks latency histogram"; exit 1; }

# Filtered + table renderings of the registry.
"$BIN" obs dump --addr "$ADDR" --format prometheus --filter seqge_serve_requests_total \
  >"$work/metrics.filtered.txt"
grep -q '^seqge_serve_requests_total{' "$work/metrics.filtered.txt" ||
  { echo "FAIL: --filter dropped the requested series"; exit 1; }
! grep -q 'seqge_core_' "$work/metrics.filtered.txt" ||
  { echo "FAIL: --filter leaked foreign series"; exit 1; }
"$BIN" obs dump --addr "$ADDR" --format table >"$work/metrics.table.txt"
grep -q 'seqge_serve_request_latency_ns' "$work/metrics.table.txt" ||
  { echo "FAIL: table mode lacks latency row"; exit 1; }

# The trace ring: every request above was sampled (SEQGE_TRACE_SAMPLE=1),
# so JSONL spans for the serve ops must be drainable...
"$BIN" obs trace --addr "$ADDR" >"$work/trace.jsonl"
grep -q '"name":"serve.ping"' "$work/trace.jsonl" ||
  { echo "FAIL: no serve.ping span in trace ring"; cat "$work/trace.jsonl"; exit 1; }
grep -q '"name":"write.visible"' "$work/trace.jsonl" ||
  { echo "FAIL: no write.visible freshness span"; exit 1; }
jq -s -e 'length > 0 and all(.trace and .span and .name)' "$work/trace.jsonl" >/dev/null ||
  { echo "FAIL: trace JSONL malformed"; exit 1; }

# ...and the Chrome exporter must emit a trace_event document that a real
# viewer would accept: complete events with µs timestamps and pid/tid.
"$BIN" obs trace --addr "$ADDR" --chrome "$work/trace.chrome.json"
jq -e '.displayTimeUnit == "ms" and (.traceEvents | length > 0) and
       (.traceEvents | all(.ph == "X" and .name and .pid and .tid and
                           (.ts | type == "number") and (.dur >= 1)))' \
  "$work/trace.chrome.json" >/dev/null ||
  { echo "FAIL: Chrome trace document malformed"; cat "$work/trace.chrome.json"; exit 1; }

# Freshness plane: the add_edge above published, so the event counter and
# the per-batch histogram must both be live.
check_series 'seqge_freshness_events_total'
grep -q 'seqge_freshness_ns_count{batch="1"}' "$work/metrics.txt" ||
  { echo "FAIL: freshness histogram missing batch=1 bucket"; exit 1; }
grep -q '"snapshot_staleness_ms":' "$work/session.out" ||
  { echo "FAIL: stats lacks snapshot_staleness_ms"; exit 1; }

# The flight recorder is live-fetchable while the server runs.
printf '%s\n' '{"cmd":"flightrec"}' | "$BIN" client --addr "$ADDR" >"$work/frec.live.out"
grep -q '"spans":' "$work/frec.live.out" ||
  { echo "FAIL: flightrec op returned no span ring"; cat "$work/frec.live.out"; exit 1; }

# Graceful SIGINT: drain, write the final snapshot, exit 0.
kill -INT "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero"; cat "$work/serve.log"; exit 1; }
SERVER_PID=""
grep -q '"msg":"server stopped"' "$work/serve.log" ||
  { echo "FAIL: no graceful-stop record"; cat "$work/serve.log"; exit 1; }
[[ -f $work/snaps/model.sge && -f $work/snaps/graph.edges ]] ||
  { echo "FAIL: final snapshot missing"; exit 1; }

# The flight recorder left a parseable dump on the graceful path: recent
# spans plus the JSONL log tail, stamped with role and pid.
frec_file=$(ls "$work"/frec/flightrec-*.json 2>/dev/null | head -n1)
[[ -n $frec_file ]] || { echo "FAIL: no flightrec dump after shutdown"; ls -la "$work/frec" || true; exit 1; }
jq -e '.role == "serve" and .pid and (.spans | type == "array") and (.logs | type == "array")' \
  "$frec_file" >/dev/null ||
  { echo "FAIL: flightrec dump malformed"; cat "$frec_file"; exit 1; }

# Kill -> restart: boots from the snapshot dir alone (no --graph), with the
# ingested edge persisted.
"$BIN" serve --port 0 --dim 8 --snapshot-dir "$work/snaps" >"$work/serve2.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 150); do
  grep -q '"msg":"listening on ' "$work/serve2.log" && break
  sleep 0.2
done
ADDR2=$(listen_addr "$work/serve2.log")
[[ -n $ADDR2 ]] || { echo "FAIL: restarted server never came up"; cat "$work/serve2.log"; exit 1; }
grep -q '"msg":"restored ' "$work/serve2.log" ||
  { echo "FAIL: restart did not restore"; cat "$work/serve2.log"; exit 1; }

printf '%s\n' '{"cmd":"stats"}' '{"cmd":"shutdown"}' |
  "$BIN" client --addr "$ADDR2" >"$work/session2.out"
cat "$work/session2.out"
grep -q '"ok":true' "$work/session2.out" || { echo "FAIL: restored server not answering"; exit 1; }
grep -q '"shutting_down":true' "$work/session2.out" || { echo "FAIL: shutdown not acked"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: restored server exited non-zero"; exit 1; }
SERVER_PID=""

echo "serve smoke OK"
