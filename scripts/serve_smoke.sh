#!/usr/bin/env bash
# Smoke test for the seqge-serve daemon: boot from a generated graph, run a
# scripted client session over the line-delimited JSON protocol, SIGINT the
# server, and verify the snapshot-backed restart path. Exits non-zero on any
# failed assertion. CI runs this as the `serve-smoke` job.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release/seqge}
if [[ ! -x $BIN ]]; then
  cargo build --release
fi

work=$(mktemp -d)
SERVER_PID=""
cleanup() {
  [[ -n $SERVER_PID ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

"$BIN" generate --dataset cora --scale 0.05 --out "$work/g.edges"

"$BIN" serve --graph "$work/g.edges" --port 0 --dim 8 \
  --snapshot-dir "$work/snaps" >"$work/serve.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 150); do
  grep -q "^listening on " "$work/serve.log" && break
  sleep 0.2
done
ADDR=$(grep "^listening on " "$work/serve.log" | awk '{print $3}')
[[ -n $ADDR ]] || { echo "FAIL: server never came up"; cat "$work/serve.log"; exit 1; }
echo "server at $ADDR"

# One scripted session exercising both planes plus an error path.
"$BIN" client --addr "$ADDR" >"$work/session.out" <<'EOF'
{"cmd":"ping"}
{"cmd":"add_edge","u":0,"v":5}
{"cmd":"flush"}
{"cmd":"get_embedding","node":5}
{"cmd":"topk","node":0,"k":3,"op":"cosine"}
{"cmd":"score_link","u":0,"v":5,"op":"cosine"}
{"cmd":"stats"}
{"cmd":"snapshot"}
{"cmd":"definitely_not_a_command"}
EOF
cat "$work/session.out"

grep -q '"pong":true' "$work/session.out" || { echo "FAIL: no pong"; exit 1; }
ok_count=$(grep -c '"ok":true' "$work/session.out")
[[ $ok_count -eq 8 ]] || { echo "FAIL: expected 8 ok responses, got $ok_count"; exit 1; }
grep -q '"ok":false' "$work/session.out" || { echo "FAIL: unknown command not rejected"; exit 1; }
grep -q '"embedding":' "$work/session.out" || { echo "FAIL: no embedding row"; exit 1; }
grep -q '"edges_inserted":1' "$work/session.out" || { echo "FAIL: edge not applied"; exit 1; }

# Graceful SIGINT: drain, write the final snapshot, exit 0.
kill -INT "$SERVER_PID"
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero"; cat "$work/serve.log"; exit 1; }
SERVER_PID=""
grep -q "server stopped" "$work/serve.log" || { echo "FAIL: no graceful-stop line"; exit 1; }
[[ -f $work/snaps/model.sge && -f $work/snaps/graph.edges ]] ||
  { echo "FAIL: final snapshot missing"; exit 1; }

# Kill -> restart: boots from the snapshot dir alone (no --graph), with the
# ingested edge persisted.
"$BIN" serve --port 0 --dim 8 --snapshot-dir "$work/snaps" >"$work/serve2.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 150); do
  grep -q "^listening on " "$work/serve2.log" && break
  sleep 0.2
done
ADDR2=$(grep "^listening on " "$work/serve2.log" | awk '{print $3}')
[[ -n $ADDR2 ]] || { echo "FAIL: restarted server never came up"; cat "$work/serve2.log"; exit 1; }
grep -q "^restored " "$work/serve2.log" || { echo "FAIL: restart did not restore"; exit 1; }

printf '%s\n' '{"cmd":"stats"}' '{"cmd":"shutdown"}' |
  "$BIN" client --addr "$ADDR2" >"$work/session2.out"
cat "$work/session2.out"
grep -q '"ok":true' "$work/session2.out" || { echo "FAIL: restored server not answering"; exit 1; }
grep -q '"shutting_down":true' "$work/session2.out" || { echo "FAIL: shutdown not acked"; exit 1; }
wait "$SERVER_PID" || { echo "FAIL: restored server exited non-zero"; exit 1; }
SERVER_PID=""

echo "serve smoke OK"
