#!/usr/bin/env bash
# Final verification pass: full test suite + benches, logs tee'd to the repo
# root as required.
set -uo pipefail
cd "$(dirname "$0")/.."

cargo test --locked --workspace --release 2>&1 | tee /root/repo/test_output.txt
cargo bench --locked --workspace 2>&1 | tee /root/repo/bench_output.txt
echo FINALIZE-DONE
