#!/usr/bin/env bash
# Perf-regression gate: re-runs the pipelined-training benchmark (the
# `table3` binary) and compares its *ratio* metrics against the checked-in
# results/baseline_pipeline.json with a ±15% band. Only ratios are gated —
# speedup_vs_reference_kernels and end_to_end_speedup_vs_seed_multicore
# divide two measurements taken on the same host in the same process, so
# they hold steady across machines where absolute wall times do not.
#
# A drop below the band fails the gate (perf regression). A rise above the
# band passes but warns: refresh the baseline so the gate keeps teeth
# (cp results/bench_pipeline.json results/baseline_pipeline.json).
#
# Also gates the cluster ingest-scaling ratio (`bench_cluster` →
# scaling_ratio, 4-shard vs 1-shard edges/sec through the router). Under
# single-owner partitioning both arms do identical total training work
# (the binary asserts per-shard train counters reconcile with the stream
# every run), so added shards must buy real throughput: on a host with
# >= 4 cores the ratio has a HARD FLOOR of 1.0 — no band, no baseline
# drift, below the floor the gate fails with the measured value (target
# is >= 1.5; CI runs this on multi-core runners and asserts nproc up
# front). On a smaller host the four trainer threads timeshare and the
# ratio legitimately sits below 1.0 (the checked-in 1-core baseline
# records ~0.3x), so the floor is waived there and the gate instead
# requires the exactly-once reconciliation evidence in the fresh JSON.
#
# Also gates the ANN read path (`bench_ann` → p99_speedup, recall_at_10):
# the brute/ANN p99 ratio is banded (SEQGE_BENCH_ANN_BAND_PCT, default 40)
# and floored at 5x, and recall@10 is floored at 0.9 outright.
#
# Also gates the training-backend plane (`bench_backend` →
# deviation_ppm, planner liveness): the fpga-sim backend's live
# float-shadow deviation has a hard ppm ceiling (quantization
# correctness is host-independent) and the cycle planner must have
# priced the stream.
#
# Also gates the serving plane under load (`seqge loadgen` hot_read
# against a freshly booted single-node server): steady_ok_rate is floored
# at 0.99 and the steady topk p99 is banded against
# results/bench_load.json with a deliberately wide initial band
# (SEQGE_BENCH_LOAD_BAND_PCT, default 75) — absolute latency varies
# across hosts far more than the in-process ratios above, so this band
# only catches order-of-magnitude serving regressions. Lower is better
# here: only a *rise* beyond the band fails.
#
# Band override: SEQGE_BENCH_BAND_PCT (default 15).
set -euo pipefail
cd "$(dirname "$0")/.."
ROOT=$(pwd)

BASELINE=${BASELINE:-results/baseline_pipeline.json}
BAND_PCT=${SEQGE_BENCH_BAND_PCT:-15}

[[ -f $BASELINE ]] || { echo "FAIL: baseline missing: $BASELINE"; exit 1; }

cargo build --locked --release -q -p seqge-bench --bin table3

# table3 writes results/bench_pipeline.json relative to its cwd; run it
# from a scratch dir so the checked-in artifact stays untouched.
work=$(mktemp -d)
LOAD_SERVER_PID=""
cleanup() {
  [[ -n $LOAD_SERVER_PID ]] && kill "$LOAD_SERVER_PID" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT
mkdir -p "$work/results"
(cd "$work" && "$ROOT/target/release/table3" --json results/table3.json)
FRESH=$work/results/bench_pipeline.json
[[ -f $FRESH ]] || { echo "FAIL: benchmark did not write bench_pipeline.json"; exit 1; }

# Pulls one numeric field out of a flat pretty-printed JSON file.
json_num() {
  sed -n 's/.*"'"$2"'": *\(-\{0,1\}[0-9][0-9.eE+-]*\).*/\1/p' "$1" | head -n1
}

fail=0
warn=0
for key in speedup_vs_reference_kernels end_to_end_speedup_vs_seed_multicore; do
  base=$(json_num "$BASELINE" "$key")
  now=$(json_num "$FRESH" "$key")
  if [[ -z $base || -z $now ]]; then
    echo "FAIL: metric $key missing (baseline='$base' fresh='$now')"
    fail=1
    continue
  fi
  verdict=$(awk -v b="$base" -v n="$now" -v band="$BAND_PCT" 'BEGIN {
    d = (n - b) / b * 100
    if (d < -band)     printf "%+.1f%% REGRESSION (band ±%s%%)", d, band
    else if (d > band) printf "%+.1f%% above band — refresh baseline", d
    else               printf "%+.1f%% ok", d
  }')
  echo "$key: baseline $base -> $now  ($verdict)"
  case $verdict in
  *REGRESSION*) fail=1 ;;
  *"refresh baseline"*) warn=1 ;;
  esac
done

# Cluster ingest-scaling: a hard scaling_ratio floor on multi-core hosts
# (single-owner partitioning means shards must buy throughput), a
# work-conservation check everywhere. The floor is a constant, not a
# baseline band: the whole point of the partitioning rework is that the
# 4-shard arm wins outright. Override: SEQGE_BENCH_CLUSTER_FLOOR.
CLUSTER_FLOOR=${SEQGE_BENCH_CLUSTER_FLOOR:-1.0}
CLUSTER_TARGET=1.5
cargo build --locked --release -q -p seqge-bench --bin bench_cluster
(cd "$work" && "$ROOT/target/release/bench_cluster" --json results/bench_cluster.json)
CLUSTER_FRESH=$work/results/bench_cluster.json
[[ -f $CLUSTER_FRESH ]] || { echo "FAIL: benchmark did not write bench_cluster.json"; exit 1; }
now=$(json_num "$CLUSTER_FRESH" scaling_ratio)
cores=$(nproc 2>/dev/null || echo 1)
exactly_once=$(grep -c '"exactly_once_verified": *true' "$CLUSTER_FRESH" || true)
if [[ -z $now ]]; then
  echo "FAIL: metric scaling_ratio missing from $CLUSTER_FRESH"
  fail=1
elif [[ $exactly_once -eq 0 ]]; then
  # The binary asserts the per-shard train-counter reconciliation and
  # refuses to emit the record without it; a missing marker means the
  # ratio compares arms doing different amounts of work.
  echo "FAIL: bench_cluster JSON lacks exactly_once_verified — ratio is not trustworthy"
  fail=1
elif ((cores >= 4)); then
  verdict=$(awk -v n="$now" -v floor="$CLUSTER_FLOOR" -v tgt="$CLUSTER_TARGET" 'BEGIN {
    if (n <= floor)     printf "%.2fx REGRESSION (hard floor %sx on a %sx-target multi-core host)", n, floor, tgt
    else if (n < tgt)   printf "%.2fx ok (above floor %sx, below target %sx)", n, floor, tgt
    else                printf "%.2fx ok (meets target %sx)", n, tgt
  }')
  echo "scaling_ratio (1->4 shards, $cores cores): $verdict"
  case $verdict in
  *REGRESSION*)
    echo "FAIL: added shards did not buy throughput: measured scaling_ratio=$now on $cores cores (floor $CLUSTER_FLOOR)"
    fail=1
    ;;
  esac
else
  echo "scaling_ratio (1->4 shards): $now on $cores core(s) — floor waived (<4 cores, trainer threads timeshare); exactly-once reconciliation held"
fi
if [[ -n ${GITHUB_STEP_SUMMARY:-} ]]; then
  {
    echo "### cluster ingest scaling"
    echo ""
    echo "| metric | value |"
    echo "|---|---|"
    echo "| scaling_ratio (1→4 shards) | ${now:-missing} |"
    echo "| cores | $cores |"
    echo "| floor | $CLUSTER_FLOOR (waived below 4 cores) |"
    echo "| target | $CLUSTER_TARGET |"
    echo "| exactly-once reconciliation | $([[ $exactly_once -gt 0 ]] && echo held || echo MISSING) |"
  } >>"$GITHUB_STEP_SUMMARY"
fi

# ANN read-path gate (`bench_ann`): p99_speedup (brute p99 / ANN p99,
# both arms on the same snapshot in the same process, so the ratio is
# host-independent) is banded like the other ratios but wider by default
# — latency ratios carry both arms' scheduler jitter. It also has hard
# floors from the acceptance criteria, checked regardless of baseline:
# ANN must stay >= 5x faster at p99 and recall@10 must stay >= 0.9. The
# recall floor is absolute rather than banded because a recall drop is a
# correctness regression however the baseline moved.
# Band override: SEQGE_BENCH_ANN_BAND_PCT.
ANN_BAND_PCT=${SEQGE_BENCH_ANN_BAND_PCT:-40}
ANN_BASELINE=${ANN_BASELINE:-results/bench_ann.json}
[[ -f $ANN_BASELINE ]] || { echo "FAIL: baseline missing: $ANN_BASELINE"; exit 1; }
cargo build --locked --release -q -p seqge-bench --bin bench_ann
(cd "$work" && "$ROOT/target/release/bench_ann" --json results/bench_ann.json)
ANN_FRESH=$work/results/bench_ann.json
[[ -f $ANN_FRESH ]] || { echo "FAIL: benchmark did not write bench_ann.json"; exit 1; }
base=$(json_num "$ANN_BASELINE" p99_speedup)
now=$(json_num "$ANN_FRESH" p99_speedup)
recall=$(json_num "$ANN_FRESH" recall_at_10)
if [[ -z $base || -z $now || -z $recall ]]; then
  echo "FAIL: ann metrics missing (baseline='$base' fresh='$now' recall='$recall')"
  fail=1
else
  verdict=$(awk -v b="$base" -v n="$now" -v band="$ANN_BAND_PCT" 'BEGIN {
    d = (n - b) / b * 100
    if (n < 5)         printf "%+.1f%% REGRESSION (below the 5x acceptance floor)", d
    else if (d < -band)     printf "%+.1f%% REGRESSION (band ±%s%%)", d, band
    else if (d > band) printf "%+.1f%% above band — refresh baseline", d
    else               printf "%+.1f%% ok", d
  }')
  echo "p99_speedup: baseline $base -> $now  ($verdict)"
  case $verdict in
  *REGRESSION*) fail=1 ;;
  *"refresh baseline"*) warn=1 ;;
  esac
  recall_verdict=$(awk -v r="$recall" 'BEGIN {
    if (r < 0.9) printf "%.3f REGRESSION (floor 0.9)", r
    else         printf "%.3f ok (floor 0.9)", r
  }')
  echo "recall_at_10: $recall_verdict"
  case $recall_verdict in
  *REGRESSION*) fail=1 ;;
  esac
fi

# Backend gate (`bench_backend`): float vs fpga-sim through the serve
# plane on the same Amazon-Photo stream. Two hard checks, both
# host-independent:
#
# * deviation_ppm — the fpga-sim backend's live float-shadow metric
#   (per-publish-window fixed-vs-float embedding drift, the Fig. 4-style
#   band). Quantization correctness, not speed: a wrong Q8.24 scale or a
#   saturation storm reads 10^5+ where a healthy kernel reads 10^2-10^3,
#   so the ceiling is a constant, not a baseline band.
#   Override: SEQGE_BENCH_DEVIATION_CEILING_PPM.
# * planner liveness — the cycle model must have priced the stream
#   (backend_cycles_total > 0) and produced a nonzero predicted ingest
#   rate; a dead planner means the capacity-headroom metrics are lying.
DEVIATION_CEILING_PPM=${SEQGE_BENCH_DEVIATION_CEILING_PPM:-5000}
cargo build --locked --release -q -p seqge-bench --bin bench_backend
(cd "$work" && "$ROOT/target/release/bench_backend" --json results/bench_backend.json)
BACKEND_FRESH=$work/results/bench_backend.json
[[ -f $BACKEND_FRESH ]] || { echo "FAIL: benchmark did not write bench_backend.json"; exit 1; }
deviation=$(json_num "$BACKEND_FRESH" deviation_ppm)
predicted=$(json_num "$BACKEND_FRESH" predicted_ingest_eps)
cycles=$(json_num "$BACKEND_FRESH" backend_cycles_total)
fpga_eps=$(json_num "$BACKEND_FRESH" fpga_ingest_eps)
if [[ -z $deviation || -z $predicted || -z $cycles || -z $fpga_eps ]]; then
  echo "FAIL: backend metrics missing (deviation='$deviation' predicted='$predicted' cycles='$cycles' fpga_eps='$fpga_eps')"
  fail=1
else
  dev_verdict=$(awk -v d="$deviation" -v c="$DEVIATION_CEILING_PPM" 'BEGIN {
    if (d > c)      printf "%d ppm REGRESSION (ceiling %d ppm)", d, c
    else if (d < 0) printf "%d ppm REGRESSION (probe never measured)", d
    else            printf "%d ppm ok (ceiling %d ppm)", d, c
  }')
  echo "fpga-sim deviation_ppm: $dev_verdict"
  case $dev_verdict in
  *REGRESSION*) fail=1 ;;
  esac
  plan_verdict=$(awk -v p="$predicted" -v cy="$cycles" 'BEGIN {
    if (cy <= 0)     printf "REGRESSION (no modeled cycles)"
    else if (p <= 0) printf "REGRESSION (cycles modeled but predicted eps is %.0f)", p
    else             printf "%.0f ev/s predicted from %.0f cycles, ok", p, cy
  }')
  echo "fpga-sim cycle planner: $plan_verdict"
  case $plan_verdict in
  *REGRESSION*) fail=1 ;;
  esac
fi
if [[ -n ${GITHUB_STEP_SUMMARY:-} ]]; then
  {
    echo "### training backends (float vs fpga-sim)"
    echo ""
    echo "| metric | value |"
    echo "|---|---|"
    echo "| deviation_ppm (ceiling $DEVIATION_CEILING_PPM) | ${deviation:-missing} |"
    echo "| predicted ingest ev/s (cycle model) | ${predicted:-missing} |"
    echo "| measured fpga-sim ingest ev/s | ${fpga_eps:-missing} |"
    echo "| float ingest ev/s | $(json_num "$BACKEND_FRESH" float_ingest_eps) |"
  } >>"$GITHUB_STEP_SUMMARY"
fi

# Serving-under-load gate (`seqge loadgen` hot_read vs a single-node
# serve booted here, no fault injection): steady_ok_rate has a hard floor
# — availability does not depend on host speed — and the steady topk p99
# is banded wide (latency in ms does). A p99 *above* the band fails; a
# drop below it warns to refresh the baseline. slo_pass must hold.
LOAD_BAND_PCT=${SEQGE_BENCH_LOAD_BAND_PCT:-75}
LOAD_BASELINE=${LOAD_BASELINE:-results/bench_load.json}
[[ -f $LOAD_BASELINE ]] || { echo "FAIL: baseline missing: $LOAD_BASELINE"; exit 1; }
cargo build --locked --release -q
"$ROOT/target/release/seqge" generate --dataset cora --scale 0.1 --out "$work/load_g.edges"
"$ROOT/target/release/seqge" serve --graph "$work/load_g.edges" --port 0 --dim 8 \
  >"$work/load_serve.log" 2>&1 &
LOAD_SERVER_PID=$!
for _ in $(seq 1 300); do
  grep -q '"msg":"listening on ' "$work/load_serve.log" && break
  sleep 0.2
done
LOAD_ADDR=$(sed -n 's/.*"msg":"listening on \([^"]*\)".*/\1/p' "$work/load_serve.log" | head -n1)
if [[ -z $LOAD_ADDR ]]; then
  echo "FAIL: load-gate server never came up"; cat "$work/load_serve.log"; fail=1
else
  LOAD_FRESH=$work/results/bench_load.json
  if ! "$ROOT/target/release/seqge" loadgen --scenario hot_read --target "$LOAD_ADDR" \
    --seed 42 --connections 2 --scale 0.3 --json "$LOAD_FRESH"; then
    echo "FAIL: loadgen run failed (steady-state SLO or transport)"
    fail=1
  else
    ok_rate=$(json_num "$LOAD_FRESH" steady_ok_rate)
    base=$(json_num "$LOAD_BASELINE" steady_topk_p99_ms)
    now=$(json_num "$LOAD_FRESH" steady_topk_p99_ms)
    if [[ -z $ok_rate || -z $base || -z $now ]]; then
      echo "FAIL: load metrics missing (ok_rate='$ok_rate' baseline='$base' fresh='$now')"
      fail=1
    else
      rate_verdict=$(awk -v r="$ok_rate" 'BEGIN {
        if (r < 0.99) printf "%.4f REGRESSION (floor 0.99)", r
        else          printf "%.4f ok (floor 0.99)", r
      }')
      echo "steady_ok_rate: $rate_verdict"
      case $rate_verdict in
      *REGRESSION*) fail=1 ;;
      esac
      verdict=$(awk -v b="$base" -v n="$now" -v band="$LOAD_BAND_PCT" 'BEGIN {
        d = (n - b) / b * 100
        if (d > band)       printf "%+.1f%% REGRESSION (latency band ±%s%%)", d, band
        else if (d < -band) printf "%+.1f%% below band — refresh baseline", d
        else                printf "%+.1f%% ok", d
      }')
      echo "steady_topk_p99_ms: baseline $base -> $now  ($verdict)"
      case $verdict in
      *REGRESSION*) fail=1 ;;
      *"refresh baseline"*) warn=1 ;;
      esac
    fi
  fi
fi
kill "$LOAD_SERVER_PID" 2>/dev/null || true
wait "$LOAD_SERVER_PID" 2>/dev/null || true
LOAD_SERVER_PID=""

if ((fail)); then
  echo "bench gate FAILED: ratio metric regressed more than ${BAND_PCT}% vs $BASELINE"
  exit 1
fi
((warn)) && echo "bench gate passed with warnings (baseline looks stale)"
echo "bench gate OK (band ±${BAND_PCT}%)"
