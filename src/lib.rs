//! # seqge — Sequential Graph Embedding, reproduced in Rust
//!
//! Facade crate re-exporting the whole workspace. See the README for a
//! guided tour and `examples/` for runnable entry points.
//!
//! * [`graph`] — dynamic graphs, CSR snapshots, synthetic labelled datasets.
//! * [`sampling`] — node2vec random walks, Walker alias tables, negative sampling.
//! * [`linalg`] — small dense linear algebra for the OS-ELM updates.
//! * [`fixed`] — Q-format fixed-point arithmetic (the FPGA's number format).
//! * [`core`] — the paper's models: SGD skip-gram baseline, OS-ELM skip-gram
//!   (Algorithm 1), and the dataflow-optimized variant (Algorithm 2).
//! * [`fpga`] — cycle-approximate simulator of the ZCU104 accelerator.
//! * [`obs`] — zero-dependency metrics registry, span timers, and the
//!   structured JSONL logger shared by every runtime component.
//! * [`eval`] — one-vs-rest logistic regression and F1 scoring.
//! * [`backend`] — pluggable training backends behind the serve plane:
//!   the float OS-ELM pipeline and the fixed-point fpga-sim kernel behind
//!   one `TrainBackend` trait, with cycle-model planning and a live
//!   accuracy-deviation probe.
//! * [`serve`] — online embedding service: live edge ingestion, incremental
//!   sequential training, lock-free snapshot queries over TCP.
//! * [`ann`] — incremental LSH index behind the serve plane's sublinear
//!   `topk mode:"ann"` path, versioned with each published snapshot.
//! * [`cluster`] — sharded, replicated serving: hash-partitioned shard
//!   plane, scatter-gather router, WAL-fed read replicas.
//! * [`bench`] — shared benchmark plumbing: scaled streamed-SBM edge
//!   synthesis, clustered embedding geometry, JSON report writing.
//! * [`loadgen`] — mixed-traffic load generator: Zipf-skewed op mixes,
//!   pluggable arrival processes, the phased scenario matrix, and SLO
//!   accounting split by steady-vs-fault window.

pub use seqge_ann as ann;
pub use seqge_backend as backend;
pub use seqge_bench as bench;
pub use seqge_cluster as cluster;
pub use seqge_core as core;
pub use seqge_eval as eval;
pub use seqge_fixed as fixed;
pub use seqge_fpga as fpga;
pub use seqge_graph as graph;
pub use seqge_linalg as linalg;
pub use seqge_loadgen as loadgen;
pub use seqge_obs as obs;
pub use seqge_sampling as sampling;
pub use seqge_serve as serve;
