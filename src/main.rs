//! `seqge` — command-line front end.
//!
//! ```text
//! seqge generate --dataset cora --scale 0.3 --out graph.edges
//! seqge train    --graph graph.edges --dim 32 --model oselm --out model.sge --emb emb.bin
//! seqge train    --graph graph.edges --seq --dim 32 --model skipgram --emb emb.bin
//! seqge eval     --graph graph.edges --emb emb.bin
//! seqge simulate --dim 64
//! ```
//!
//! Thin orchestration over the library crates; every flag maps to a public
//! API call, so the CLI doubles as living documentation.

use seqge::core::model::EmbeddingModel;
use seqge::core::{
    persist, train_all_pipelined, train_all_scenario, train_seq_scenario, OsElmConfig,
    OsElmSkipGram, SkipGram, TrainConfig,
};
use seqge::eval::{evaluate_embedding, EdgeOp, EvalConfig, LinkPredSet};
use seqge::fpga::{estimate_resources, AcceleratorDesign, FpgaDevice, TimingModel};
use seqge::graph::{io as graph_io, Dataset, Graph};
use seqge::sampling::UpdatePolicy;
use seqge::serve;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `obs` takes a positional subcommand, so it parses its own flags.
    if cmd == "obs" {
        return match cmd_obs(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "train" => cmd_train(&flags),
        "eval" => cmd_eval(&flags),
        "simulate" => cmd_simulate(&flags),
        "serve" => cmd_serve(&flags),
        "cluster" => cmd_cluster(&flags),
        "client" => cmd_client(&flags),
        "loadgen" => cmd_loadgen(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "seqge — sequential graph embedding (node2vec + OS-ELM)

commands:
  generate --dataset cora|ampt|amcp [--scale f] [--seed n] --out FILE
  train    --graph FILE [--model oselm|skipgram] [--dim n] [--seq] [--threads n]
           [--mu f] [--forgetting f] [--seed n] [--out MODEL] [--emb FILE] [--tsv FILE]
           (--threads n overlaps walk generation with training on n walker
            threads, 0 = all cores; the trained model is identical for any
            thread count)
  eval     --graph FILE --emb FILE [--linkpred] [--seed n]
  simulate [--dim n]
  serve    --graph FILE [--port n] [--dim n] [--seed n] [--workers n]
           [--batch n] [--refresh-every n] [--mu f] [--forgetting f]
           [--backend float|fpga-sim] [--no-ann] [--ann-bands n] [--ann-bits n]
           [--snapshot-dir DIR] [--log-level error|warn|info|debug|trace]
           [--wal-dir DIR] [--fsync always|batch|never] [--wal-replay-check]
           (long-running daemon; line-delimited JSON over TCP.
            --backend picks the training backend: `float` is the OS-ELM
            pipeline in f32; `fpga-sim` runs the paper's deferred-delta
            fixed-point accelerator kernel online, exporting its cycle
            model as a live ingest planner (seqge_backend_cycles_total /
            predicted vs measured eps) and its accuracy deviation from
            the float shadow as seqge_backend_deviation (ppm). Snapshots
            and WAL stores are backend-specific: a store committed under
            one backend refuses to boot under the other. With
            --snapshot-dir, boots from DIR/model.sge when present —
            bit-identical restore, no retraining — and writes a final
            snapshot on graceful shutdown. With --wal-dir, every
            acknowledged write is appended to a checksummed write-ahead
            log before training, so kill -9 loses nothing: on restart the
            log replays over the last snapshot, bit-identically. --fsync
            picks the durability/throughput point (default batch).
            --wal-replay-check replays the store twice, verifies the
            result is deterministic, prints a report, and exits.
            Every published snapshot carries an incrementally maintained
            LSH index answering `topk` with `\"mode\":\"ann\"` in sublinear
            time; --ann-bands/--ann-bits shape it (bits 0 = auto-sized
            from the node count) and --no-ann disables it, making ANN
            queries fall back to the exact scan.
            SIGINT/SIGTERM drain the in-flight batch before exiting.
            --port 0 = ephemeral)
  cluster  --graph FILE --base-dir DIR [--shards n] [--replicas n]
           [--port n] [--dim n] [--seed n] [--fsync always|batch|never]
           [--refresh-every n] [--backend float|fpga-sim]
           [--log-level error|warn|info|debug|trace]
           (sharded deployment: N in-process serve engines, each owning
            the vertices with id % N == shard and journaling to
            DIR/shard-<s>/, behind a scatter-gather router speaking the
            same protocol as `serve`. Each edge write routes to its one
            owning shard (the lower endpoint's, order-independent);
            topk/score_link scatter with per-shard deadlines and degrade
            to partial results (`degraded:true`) when a shard is down.
            --replicas 1 adds a WAL-tailing read replica per shard that
            keeps get_embedding answering for dead shards. --graph seeds
            shards on first boot; restarts recover from the per-shard
            WALs and ignore it. --backend applies to every shard — the
            router asserts backend homogeneity and reports a mismatch as
            degraded. `cluster_status` reports per-shard health and the
            cluster's backend descriptor. --port 0 = ephemeral)
  client   [--addr HOST:PORT] [--timeout-ms n] [--retries n]
           (reads JSON requests from stdin, one per line, prints each
            response; --timeout-ms bounds each call, --retries retries
            timed-out/refused calls with backoff; for scripting and
            smoke tests)
  loadgen  --scenario NAME [--target HOST:PORT] [--seed n] [--connections n]
           [--scale f] [--nodes n] [--k n] [--timeout-ms n] [--json FILE]
           [--list] [--dry-run]
           (mixed-traffic load driver against a `serve` listener or the
            cluster router: named phased scenarios — hot_read, edge_churn,
            deletion_storm, drift_replay (--list describes them) — with
            Zipf-skewed keys, Poisson/bursty arrivals, and per-op SLO
            accounting split by steady-vs-fault window. The generated
            schedule is bit-deterministic under --seed; --dry-run (with
            --nodes) prints the schedule hash without sending traffic.
            Writes the machine-readable report to --json, default
            results/bench_load.json)
  obs      dump  [--addr HOST:PORT] [--format json|prometheus|table]
                 [--filter PREFIX] [--by-shard]
           trace [--addr HOST:PORT] [--after n] [--follow] [--chrome FILE]
           (dump fetches the running server's metrics registries via the
            `metrics` protocol op; --filter keeps only series whose name
            starts with PREFIX, --format table renders aligned
            name/count/p50/p99 rows, and --by-shard asks a cluster
            router's `cluster_status` for the shard addresses and dumps
            each shard separately. trace drains completed request spans
            from the target's in-process ring via the `trace` op as JSONL;
            --follow tails the ring until Ctrl-C and --chrome writes a
            chrome://tracing / Perfetto trace_event file instead)

observability: the serve daemon logs structured JSONL to stderr
  (level from --log-level or SEQGE_LOG, default info) and answers the
  `metrics` op with Prometheus text for scrapers; SEQGE_OBS=off turns
  span timers and request tracing off at runtime. Tracing head-samples
  1-in-SEQGE_TRACE_SAMPLE root requests (default 64; degraded/shed
  requests are always kept). SEQGE_FLIGHTREC=DIR arms a crash flight
  recorder: recent spans + log lines dumped to DIR/flightrec-<pid>.json
  on panic, periodically, on graceful shutdown, and on demand via the
  `flightrec` protocol op.";

type Flags = HashMap<String, String>;

fn parse_flags(rest: &[String]) -> Result<Flags, String> {
    let mut flags = HashMap::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{flag}`"));
        };
        // Boolean flags have no value.
        if matches!(
            key,
            "seq"
                | "linkpred"
                | "wal-replay-check"
                | "no-ann"
                | "list"
                | "dry-run"
                | "follow"
                | "by-shard"
        ) {
            flags.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("--{key}: cannot parse `{v}`")),
        None => Ok(default),
    }
}

fn require<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, String> {
    flags.get(key).map(String::as_str).ok_or_else(|| format!("--{key} is required"))
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let dataset = match require(flags, "dataset")? {
        "cora" => Dataset::Cora,
        "ampt" => Dataset::AmazonPhoto,
        "amcp" => Dataset::AmazonComputers,
        other => return Err(format!("unknown dataset `{other}`")),
    };
    let scale: f64 = get(flags, "scale", 1.0)?;
    let seed: u64 = get(flags, "seed", 42)?;
    let out = require(flags, "out")?;
    let g =
        if scale >= 1.0 { dataset.generate(seed) } else { dataset.generate_scaled(scale, seed) };
    graph_io::save_graph(&g, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} edges, {} classes)",
        out,
        g.num_nodes(),
        g.num_edges(),
        g.num_classes()
    );
    Ok(())
}

fn load(flags: &Flags) -> Result<Graph, String> {
    graph_io::load_graph(require(flags, "graph")?).map_err(|e| e.to_string())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let g = load(flags)?;
    let dim: usize = get(flags, "dim", 32)?;
    let seed: u64 = get(flags, "seed", 42)?;
    let seq = flags.contains_key("seq");
    let threads: Option<usize> = match flags.get("threads") {
        Some(v) => Some(v.parse().map_err(|_| format!("--threads: cannot parse `{v}`"))?),
        None => None,
    };
    if seq && threads.is_some() {
        return Err("--threads overlaps full-corpus training; it cannot combine with --seq".into());
    }
    let model_kind = flags.get("model").map(String::as_str).unwrap_or("oselm");
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.model.seed = seed;

    let start = std::time::Instant::now();
    let embedding = match model_kind {
        "oselm" => {
            let ocfg = OsElmConfig {
                model: cfg.model,
                mu: get(flags, "mu", 0.05f32)?,
                forgetting: get(flags, "forgetting", 1.0f32)?,
                ..OsElmConfig::paper_defaults(dim)
            };
            let mut m = OsElmSkipGram::new(g.num_nodes(), ocfg);
            if seq {
                let (_, outcome) =
                    train_seq_scenario(&g, &mut m, &cfg, UpdatePolicy::every_edge(), seed, 1.0);
                println!(
                    "sequential: {} edges replayed, {} walks trained, {} table rebuilds",
                    outcome.edges_inserted, outcome.walks_trained, outcome.table_rebuilds
                );
            } else if let Some(t) = threads {
                report_pipelined(train_all_pipelined(&g, &mut m, &cfg, seed, t));
            } else {
                train_all_scenario(&g, &mut m, &cfg, seed);
            }
            if let Some(path) = flags.get("out") {
                persist::save_oselm(&m, path).map_err(|e| e.to_string())?;
                println!("model checkpoint written to {path}");
            }
            m.embedding()
        }
        "skipgram" => {
            let mut m = SkipGram::new(g.num_nodes(), cfg.model);
            if seq {
                let (_, outcome) =
                    train_seq_scenario(&g, &mut m, &cfg, UpdatePolicy::every_edge(), seed, 1.0);
                println!(
                    "sequential: {} edges replayed, {} walks trained",
                    outcome.edges_inserted, outcome.walks_trained
                );
            } else if let Some(t) = threads {
                report_pipelined(train_all_pipelined(&g, &mut m, &cfg, seed, t));
            } else {
                train_all_scenario(&g, &mut m, &cfg, seed);
            }
            if flags.contains_key("out") {
                return Err("--out checkpoints are only supported for --model oselm".into());
            }
            m.embedding()
        }
        other => return Err(format!("unknown model `{other}`")),
    };
    println!(
        "trained {model_kind} d={dim} on {} nodes in {:.1}s",
        g.num_nodes(),
        start.elapsed().as_secs_f64()
    );
    if let Some(path) = flags.get("emb") {
        let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        persist::write_embedding(&embedding, f).map_err(|e| e.to_string())?;
        println!("embedding written to {path}");
    }
    if let Some(path) = flags.get("tsv") {
        let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        persist::write_embedding_tsv(&embedding, f).map_err(|e| e.to_string())?;
        println!("embedding TSV written to {path}");
    }
    Ok(())
}

fn report_pipelined(outcome: seqge::core::PipelinedOutcome) {
    println!(
        "pipelined: {} walker thread(s), {} walks trained, gen busy {:.0} ms, \
         train busy {:.0} ms, overlap {:.2}",
        outcome.threads,
        outcome.walks_trained,
        outcome.gen_busy_ms,
        outcome.train_busy_ms,
        outcome.overlap_ratio()
    );
}

fn cmd_eval(flags: &Flags) -> Result<(), String> {
    let g = load(flags)?;
    let emb_path = require(flags, "emb")?;
    let f = std::fs::File::open(emb_path).map_err(|e| e.to_string())?;
    let emb = persist::read_embedding(f).map_err(|e| e.to_string())?;
    if emb.rows() != g.num_nodes() {
        return Err(format!(
            "embedding has {} rows but the graph has {} nodes",
            emb.rows(),
            g.num_nodes()
        ));
    }
    let seed: u64 = get(flags, "seed", 1)?;
    if let Some(labels) = g.labels() {
        let r = evaluate_embedding(&emb, labels, g.num_classes(), &EvalConfig::default(), seed);
        println!(
            "classification (paper §4.3 protocol): micro-F1 {:.4} ± {:.4}, macro-F1 {:.4} ({} trials)",
            r.micro_f1, r.micro_std, r.macro_f1, r.trials
        );
    } else {
        println!("graph has no labels; skipping classification");
    }
    if flags.contains_key("linkpred") {
        let set = LinkPredSet::sample(&g, 0.1, seed);
        for op in [EdgeOp::Dot, EdgeOp::Cosine, EdgeOp::NegL2] {
            println!("link prediction AUC ({op:?}): {:.4}", set.auc(&emb, op));
        }
    }
    Ok(())
}

/// Set by the SIGINT/SIGTERM handler; a bridge thread forwards it onto the
/// server's stop flag so `serve` drains and snapshots before exiting.
static STOP_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    // No libc crate in this offline workspace: declare the one symbol we
    // need. The handler only touches an atomic, which is async-signal-safe.
    extern "C" fn on_signal(_sig: i32) {
        STOP_REQUESTED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(2, on_signal as *const () as usize); // SIGINT
        signal(15, on_signal as *const () as usize); // SIGTERM
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    if let Some(lv) = flags.get("log-level") {
        let level = seqge::obs::log::Level::parse(lv)
            .ok_or_else(|| format!("--log-level: unknown level `{lv}`"))?;
        seqge::obs::log::set_level(level);
    }
    // Crash forensics (SEQGE_FLIGHTREC=DIR): ring-buffer recent spans and
    // log lines, dumped on panic, periodically, and on graceful shutdown.
    seqge::obs::flightrec::configure_from_env("serve");
    let dim: usize = get(flags, "dim", 32)?;
    let seed: u64 = get(flags, "seed", 42)?;
    let port: u16 = get(flags, "port", 7878)?;
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.model.seed = seed;
    let policy = UpdatePolicy::every_edge();
    let backend = match flags.get("backend") {
        Some(v) => seqge::backend::BackendKind::parse(v)?,
        None => seqge::backend::BackendKind::Float,
    };

    let refresh_every: u64 = get(flags, "refresh-every", 0)?;
    let trainer = serve::TrainerConfig {
        batch_max: get(flags, "batch", 256)?,
        refresh_every,
        ann: ann_config(flags)?,
        ..Default::default()
    };
    let mut config =
        serve::ServeConfig { workers: get(flags, "workers", 4)?, trainer, ..Default::default() };
    if config.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    let snapshot_dir = flags.get("snapshot-dir").map(std::path::PathBuf::from);
    let wal_dir = flags.get("wal-dir").map(std::path::PathBuf::from);
    if wal_dir.is_some() && snapshot_dir.is_some() {
        return Err("--wal-dir and --snapshot-dir are mutually exclusive: the WAL store \
             carries its own snapshot generations"
            .into());
    }
    if wal_dir.is_none() && (flags.contains_key("fsync") || flags.contains_key("wal-replay-check"))
    {
        return Err("--fsync / --wal-replay-check require --wal-dir".into());
    }
    if let Some(dir) = &snapshot_dir {
        config = config.with_snapshot_dir(dir).map_err(|e| e.to_string())?;
    }
    // Fault injection is environmental (SEQGE_FAULT*); disabled when unset.
    config.fault = std::sync::Arc::new(serve::FaultInjector::from_env()?);

    let ocfg = OsElmConfig {
        model: cfg.model,
        mu: get(flags, "mu", 0.05f32)?,
        forgetting: get(flags, "forgetting", 1.0f32)?,
        ..OsElmConfig::paper_defaults(dim)
    };
    let spec = seqge::backend::BackendSpec::new(backend, cfg, ocfg, policy, seed);

    if let Some(dir) = wal_dir {
        let fsync = match flags.get("fsync") {
            Some(v) => serve::FsyncPolicy::parse(v)?,
            None => serve::FsyncPolicy::Batch,
        };
        let wcfg = serve::WalConfig { dir, fsync };
        if flags.contains_key("wal-replay-check") {
            return cmd_wal_replay_check(&wcfg, &spec, refresh_every);
        }
        let cold_graph = if flags.contains_key("graph") { Some(load(flags)?) } else { None };
        let boot =
            serve::boot_wal(&wcfg, cold_graph, &spec, refresh_every).map_err(|e| e.to_string())?;
        seqge::obs::info!(
            "serve",
            "wal boot ({}): gen {} segment {}, {} replayed, {} skipped, torn tail: {}",
            backend,
            boot.report.gen,
            boot.report.segment,
            boot.report.replayed,
            boot.report.skipped_applied,
            boot.report.torn_tail
        );
        config.wal = Some(std::sync::Arc::new(boot.wal));
        return run_server(config, boot.graph, boot.backend, port);
    }

    // A populated snapshot dir wins over --graph: kill → restart resumes
    // with bit-identical model state, no retraining.
    let restorable = snapshot_dir.as_ref().is_some_and(|d| d.join("model.sge").is_file());
    let (graph, trained) = if restorable {
        let dir = snapshot_dir.as_ref().expect("restorable implies a snapshot dir");
        let (g, b) = serve::boot_restore_spec(dir, &spec).map_err(|e| e.to_string())?;
        seqge::obs::info!(
            "serve",
            "restored {} nodes / {} edges from {}",
            g.num_nodes(),
            g.num_edges(),
            dir.display()
        );
        (g, b)
    } else {
        let g = load(flags)?;
        let t0 = std::time::Instant::now();
        let mut b = spec.cold(g.num_nodes());
        b.bootstrap(&g);
        seqge::obs::info!(
            "serve",
            "bootstrapped {} d={dim} on {} nodes / {} edges in {:.1}s",
            backend,
            g.num_nodes(),
            g.num_edges(),
            t0.elapsed().as_secs_f64()
        );
        (g, b)
    };

    run_server(config, graph, trained, port)
}

/// ANN knobs for the serve trainer: `--no-ann` publishes snapshots without
/// an index (ANN queries then fall back to the exact scan), `--ann-bands` /
/// `--ann-bits` reshape the LSH tables (`bits 0` = auto-sized from the
/// node count at first sync).
fn ann_config(flags: &Flags) -> Result<Option<seqge::ann::AnnConfig>, String> {
    if flags.contains_key("no-ann") {
        if flags.contains_key("ann-bands") || flags.contains_key("ann-bits") {
            return Err("--no-ann cannot combine with --ann-bands/--ann-bits".into());
        }
        return Ok(None);
    }
    let default = seqge::ann::AnnConfig::default();
    let cfg = seqge::ann::AnnConfig {
        bands: get(flags, "ann-bands", default.bands)?,
        bits: get(flags, "ann-bits", default.bits)?,
        ..default
    };
    if cfg.bands == 0 {
        return Err("--ann-bands must be at least 1".into());
    }
    if cfg.bits > seqge::ann::lsh::MAX_BITS {
        return Err(format!("--ann-bits is capped at {}", seqge::ann::lsh::MAX_BITS));
    }
    Ok(Some(cfg))
}

/// `seqge cluster`: boots N in-process shards plus the router and blocks
/// until a signal or a `shutdown` command. The training pipeline is the
/// fixed cluster-wide one ([`seqge::cluster::train_cfg`]) — every shard,
/// replica, and future recovery must agree on it, so it is not tunable
/// from the command line.
fn cmd_cluster(flags: &Flags) -> Result<(), String> {
    if let Some(lv) = flags.get("log-level") {
        let level = seqge::obs::log::Level::parse(lv)
            .ok_or_else(|| format!("--log-level: unknown level `{lv}`"))?;
        seqge::obs::log::set_level(level);
    }
    seqge::obs::flightrec::configure_from_env("cluster");
    let dim: usize = get(flags, "dim", 32)?;
    let seed: u64 = get(flags, "seed", 42)?;
    let port: u16 = get(flags, "port", 7879)?;
    let shards: usize = get(flags, "shards", 2)?;
    let replicas: usize = get(flags, "replicas", 0)?;
    let base_dir = flags
        .get("base-dir")
        .ok_or("--base-dir is required (root for the per-shard WAL stores)")?;
    let fsync = match flags.get("fsync") {
        Some(v) => serve::FsyncPolicy::parse(v)?,
        None => serve::FsyncPolicy::Batch,
    };
    let graph = load(flags)?;

    let cfg = seqge::cluster::ClusterConfig {
        shards,
        replicas,
        base_dir: std::path::PathBuf::from(base_dir),
        dim,
        seed,
        fsync,
        refresh_every: get(flags, "refresh-every", 0)?,
        addr: format!("127.0.0.1:{port}"),
        router: Default::default(),
        replica_poll: std::time::Duration::from_millis(20),
        halo_sync: std::time::Duration::from_millis(get(flags, "halo-sync-ms", 50)?),
        backend: seqge::cluster::Backend::InProcess,
        train_backend: match flags.get("backend") {
            Some(v) => seqge::backend::BackendKind::parse(v)?,
            None => seqge::backend::BackendKind::Float,
        },
    };
    install_signal_handlers();
    let cluster = seqge::cluster::Cluster::start(&cfg, &graph).map_err(|e| e.to_string())?;
    seqge::obs::info!(
        "cluster",
        "{} shard(s), {} replica(s)/shard, router on {}",
        shards,
        replicas,
        cluster.addr()
    );

    let stop = cluster.stop_flag();
    std::thread::spawn(move || loop {
        if STOP_REQUESTED.load(Ordering::SeqCst) {
            stop.store(true, Ordering::SeqCst);
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return; // router stopped on its own (shutdown command)
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    cluster.wait().map_err(|e| e.to_string())?;
    if let Some(path) = seqge::obs::flightrec::dump() {
        seqge::obs::info!("cluster", "flight recorder dumped to {}", path.display());
    }
    seqge::obs::info!("cluster", "cluster stopped");
    Ok(())
}

fn run_server(
    config: serve::ServeConfig,
    graph: Graph,
    backend: Box<dyn seqge::backend::TrainBackend>,
    port: u16,
) -> Result<(), String> {
    install_signal_handlers();
    let handle = serve::start_backend(&format!("127.0.0.1:{port}"), graph, backend, config)
        .map_err(|e| e.to_string())?;
    seqge::obs::info!("serve", "listening on {}", handle.addr());

    let stop = handle.stop_flag();
    std::thread::spawn(move || loop {
        if STOP_REQUESTED.load(Ordering::SeqCst) {
            stop.store(true, Ordering::SeqCst);
            return;
        }
        if stop.load(Ordering::SeqCst) {
            return; // server stopped on its own (shutdown command)
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
    handle.wait().map_err(|e| e.to_string())?;
    // Graceful SIGINT/SIGTERM still leaves a final flight-recorder dump —
    // the forensic file exists whether the exit was clean or not.
    if let Some(path) = seqge::obs::flightrec::dump() {
        seqge::obs::info!("serve", "flight recorder dumped to {}", path.display());
    }
    seqge::obs::info!("serve", "server stopped");
    Ok(())
}

/// `serve --wal-dir DIR --wal-replay-check`: audit the store without
/// serving — replay twice, verify determinism, report, exit.
fn cmd_wal_replay_check(
    wcfg: &serve::WalConfig,
    spec: &seqge::backend::BackendSpec,
    refresh_every: u64,
) -> Result<(), String> {
    let check = serve::wal::verify_replay(wcfg, spec, refresh_every).map_err(|e| e.to_string())?;
    let r = &check.report;
    println!(
        "wal store {}: gen {}, segment {}, next seq {}",
        wcfg.dir.display(),
        r.gen,
        r.segment,
        r.next_seq
    );
    println!(
        "replay: {} applied, {} skipped (snapshot already covered), {} duplicate seqs, \
         {} rejected by graph, {} refreshes, torn tail: {}",
        r.replayed, r.skipped_applied, r.duplicates, r.rejected, r.refreshes, r.torn_tail
    );
    println!(
        "recovered embedding: {} nodes at d={}; deterministic: {}",
        check.nodes, check.dim, check.deterministic
    );
    if !check.deterministic {
        return Err("replay produced different embeddings on two runs".into());
    }
    Ok(())
}

fn cmd_obs(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("obs needs a subcommand: `dump` or `trace`".into());
    };
    let flags = parse_flags(rest)?;
    match sub.as_str() {
        "dump" => cmd_obs_dump(&flags),
        "trace" => cmd_obs_trace(&flags),
        other => Err(format!("unknown obs subcommand `{other}` (expected `dump` or `trace`)")),
    }
}

fn cmd_obs_dump(flags: &Flags) -> Result<(), String> {
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7878");
    let format = match flags.get("format").map(String::as_str).unwrap_or("json") {
        "json" => "json",
        "prom" | "prometheus" => "prometheus",
        "table" => "table",
        other => return Err(format!("--format must be json, prometheus, or table, got `{other}`")),
    };
    let filter = flags.get("filter").map(String::as_str);
    if flags.contains_key("by-shard") {
        return obs_dump_by_shard(addr, format, filter);
    }
    let mut client = serve::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    print_metrics(&mut client, format, filter)
}

/// Fetches one target's metrics and prints them in `format`, keeping only
/// series whose name starts with `filter` when given.
fn print_metrics(
    client: &mut serve::Client,
    format: &str,
    filter: Option<&str>,
) -> Result<(), String> {
    let wire = if format == "prometheus" { "prometheus" } else { "json" };
    let body = client.metrics(wire).map_err(|e| e.to_string())?;
    match format {
        "prometheus" => {
            // Exposition lines lead with the metric name (`# HELP name` /
            // `# TYPE name` / `name{labels} value`), so a prefix filter is
            // a line filter.
            for line in body.lines() {
                let name = match line.strip_prefix("# ") {
                    Some(rest) => rest.split_whitespace().nth(1).unwrap_or(""),
                    None => line.split(['{', ' ']).next().unwrap_or(""),
                };
                if filter.is_none_or(|f| name.starts_with(f)) {
                    println!("{line}");
                }
            }
        }
        "table" => print_metrics_table(&body, filter)?,
        _ => {
            let doc: serde_json::Value =
                serde_json::from_str(&body).map_err(|e| format!("bad metrics body: {e}"))?;
            let filtered = filter_metric_doc(&doc, filter);
            println!("{}", serde_json::to_string(&filtered).map_err(|e| e.to_string())?);
        }
    }
    Ok(())
}

/// Drops series whose name does not start with `filter` from a
/// `dump_json`-shaped document (counters/gauges/histograms arrays).
fn filter_metric_doc(doc: &serde_json::Value, filter: Option<&str>) -> serde_json::Value {
    use serde_json::Value;
    let Some(f) = filter else { return doc.clone() };
    let Value::Object(sections) = doc else { return doc.clone() };
    Value::Object(
        sections
            .iter()
            .map(|(section, items)| {
                let kept = match items.as_array() {
                    Some(arr) => Value::Array(
                        arr.iter()
                            .filter(|m| {
                                m.get("name")
                                    .and_then(Value::as_str)
                                    .is_some_and(|n| n.starts_with(f))
                            })
                            .cloned()
                            .collect(),
                    ),
                    None => items.clone(),
                };
                (section.clone(), kept)
            })
            .collect(),
    )
}

/// Renders a `dump_json` body as aligned human-readable rows: every series
/// with its count/value, histograms with p50/p99 as well.
fn print_metrics_table(body: &str, filter: Option<&str>) -> Result<(), String> {
    use serde_json::Value;
    let doc: Value = serde_json::from_str(body).map_err(|e| format!("bad metrics body: {e}"))?;
    let series_name = |m: &Value| -> String {
        let name = m.get("name").and_then(Value::as_str).unwrap_or("?").to_string();
        match m.get("labels") {
            Some(Value::Object(labels)) if !labels.is_empty() => {
                let parts: Vec<String> = labels
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.as_str().unwrap_or("?")))
                    .collect();
                format!("{name}{{{}}}", parts.join(","))
            }
            _ => name,
        }
    };
    let fmt_num = |v: f64| {
        if v == 0.0 || v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{v:.0}")
        } else {
            format!("{v:.1}")
        }
    };
    println!("{:<64} {:>14} {:>14} {:>14}", "metric", "count", "p50", "p99");
    let mut rows: Vec<(String, String, String, String)> = Vec::new();
    for (section, is_hist) in [("counters", false), ("gauges", false), ("histograms", true)] {
        let Some(items) = doc.get(section).and_then(Value::as_array) else { continue };
        for m in items {
            let name = series_name(m);
            if filter.is_some_and(|f| !name.starts_with(f)) {
                continue;
            }
            if is_hist {
                rows.push((
                    name,
                    fmt_num(m.get("count").and_then(Value::as_f64).unwrap_or(0.0)),
                    fmt_num(m.get("p50").and_then(Value::as_f64).unwrap_or(0.0)),
                    fmt_num(m.get("p99").and_then(Value::as_f64).unwrap_or(0.0)),
                ));
            } else {
                let v = m.get("value").and_then(Value::as_f64).unwrap_or(0.0);
                rows.push((name, fmt_num(v), "-".into(), "-".into()));
            }
        }
    }
    rows.sort();
    for (name, count, p50, p99) in rows {
        println!("{name:<64} {count:>14} {p50:>14} {p99:>14}");
    }
    Ok(())
}

/// `--by-shard`: asks the router's `cluster_status` for the shard plane's
/// addresses and dumps each shard's own registries, labeled.
fn obs_dump_by_shard(addr: &str, format: &str, filter: Option<&str>) -> Result<(), String> {
    use serde_json::Value;
    let mut router = serve::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let status = router
        .call(r#"{"cmd":"cluster_status"}"#)
        .map_err(|e| format!("cluster_status on {addr}: {e} (is this a cluster router?)"))?;
    let shards = status
        .get("shards")
        .and_then(Value::as_array)
        .ok_or("cluster_status reply carries no shard list")?;
    for sh in shards {
        let s = sh.get("shard").and_then(Value::as_u64).unwrap_or(0);
        let Some(shard_addr) = sh.get("addr").and_then(Value::as_str) else { continue };
        println!("== shard {s} @ {shard_addr} ==");
        match serve::Client::connect(shard_addr) {
            Ok(mut c) => print_metrics(&mut c, format, filter)?,
            Err(e) => println!("(unreachable: {e})"),
        }
        println!();
    }
    Ok(())
}

/// `seqge obs trace`: drains completed spans from the target's in-process
/// ring via the `trace` op — JSONL to stdout, `--follow` to tail, or
/// `--chrome FILE` for a chrome://tracing / Perfetto document.
fn cmd_obs_trace(flags: &Flags) -> Result<(), String> {
    use serde_json::Value;
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7878");
    let follow = flags.contains_key("follow");
    let chrome = flags.get("chrome");
    if follow && chrome.is_some() {
        return Err("--follow and --chrome cannot combine".into());
    }
    let mut after: u64 = get(flags, "after", 0u64)?;
    let mut client = serve::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    if follow {
        install_signal_handlers();
    }
    loop {
        let v = client
            .call(&format!(r#"{{"cmd":"trace","after":{after}}}"#))
            .map_err(|e| e.to_string())?;
        let next = v.get("next").and_then(Value::as_u64).unwrap_or(after);
        let records = parse_span_records(&v);
        if let Some(out) = chrome {
            let pid = v.get("pid").and_then(Value::as_u64).unwrap_or(0) as u32;
            let doc = seqge::obs::trace::chrome_trace(&records, pid);
            std::fs::write(out, doc).map_err(|e| format!("write {out}: {e}"))?;
            println!("wrote {} span(s) to {out}", records.len());
            return Ok(());
        }
        for rec in &records {
            println!("{}", seqge::obs::trace::jsonl_line(rec));
        }
        after = next;
        if !follow || STOP_REQUESTED.load(Ordering::SeqCst) {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

/// Rebuilds [`seqge::obs::SpanRecord`]s from a `trace` op reply, so the CLI
/// reuses the library's JSONL and Chrome exporters verbatim.
fn parse_span_records(v: &serde_json::Value) -> Vec<seqge::obs::SpanRecord> {
    use serde_json::Value;
    let id = |item: &Value, key: &str| {
        item.get(key).and_then(Value::as_str).and_then(seqge::obs::TraceCtx::parse_id).unwrap_or(0)
    };
    let Some(items) = v.get("spans").and_then(Value::as_array) else { return Vec::new() };
    items
        .iter()
        .map(|item| seqge::obs::SpanRecord {
            seq: item.get("seq").and_then(Value::as_u64).unwrap_or(0),
            trace_id: id(item, "trace"),
            span_id: id(item, "span"),
            parent_span: id(item, "parent"),
            name: item.get("name").and_then(Value::as_str).unwrap_or("?").to_string(),
            start_unix_ns: item.get("ts_us").and_then(Value::as_u64).unwrap_or(0) * 1_000,
            dur_ns: item.get("dur_us").and_then(Value::as_u64).unwrap_or(0) * 1_000,
            tid: item.get("tid").and_then(Value::as_u64).unwrap_or(0),
            tags: match item.get("tags") {
                Some(Value::Object(entries)) => entries
                    .iter()
                    .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                    .collect(),
                _ => Vec::new(),
            },
        })
        .collect()
}

fn cmd_client(flags: &Flags) -> Result<(), String> {
    use std::io::BufRead;
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7878");
    let mut ccfg = serve::ClientConfig::default();
    if let Some(ms) = flags.get("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("--timeout-ms: cannot parse `{ms}`"))?;
        ccfg.timeout = std::time::Duration::from_millis(ms);
    }
    ccfg.retries = get(flags, "retries", ccfg.retries)?;
    let mut client =
        serve::Client::connect_with(addr, ccfg).map_err(|e| format!("connect {addr}: {e}"))?;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match client.call_raw(line) {
            Ok(resp) => println!("{resp}"),
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                // Expected after a `shutdown` request: report and stop.
                println!(r#"{{"ok":false,"error":"connection closed by server"}}"#);
                return Ok(());
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(())
}

fn cmd_loadgen(flags: &Flags) -> Result<(), String> {
    use seqge::loadgen;
    if flags.contains_key("list") {
        for (name, desc) in loadgen::names() {
            println!("{name:16} {desc}");
        }
        return Ok(());
    }
    let name = require(flags, "scenario")?;
    let scale: f64 = get(flags, "scale", 1.0)?;
    let scenario = loadgen::builtin(name, scale)
        .ok_or_else(|| format!("unknown scenario `{name}` (try --list)"))?;
    let mut opts = loadgen::LoadOpts {
        target: flags.get("target").cloned().unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        connections: get(flags, "connections", 4usize)?,
        seed: get(flags, "seed", 42u64)?,
        scale,
        nodes: flags
            .get("nodes")
            .map(|v| v.parse().map_err(|_| format!("--nodes: cannot parse `{v}`")))
            .transpose()?,
        k: get(flags, "k", 10usize)?,
        ..loadgen::LoadOpts::default()
    };
    if let Some(ms) = flags.get("timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| format!("--timeout-ms: cannot parse `{ms}`"))?;
        opts.timeout = std::time::Duration::from_millis(ms);
    }
    if flags.contains_key("dry-run") {
        let nodes = opts.nodes.ok_or("--dry-run needs --nodes (no server to probe)")?;
        let (schedules, hash) =
            loadgen::materialize(&scenario, nodes, opts.k, opts.connections, opts.seed);
        let total: usize =
            schedules.iter().map(|s| s.phases.iter().map(Vec::len).sum::<usize>()).sum();
        println!(
            "scenario {name}: {total} ops over {} connections, schedule_hash {hash}",
            opts.connections
        );
        return Ok(());
    }
    seqge::obs::info!(
        "loadgen",
        "driving {} with scenario {name} (seed {})",
        opts.target,
        opts.seed
    );
    let report = loadgen::run(&scenario, &opts).map_err(|e| e.to_string())?;
    let path = flags.get("json").map(String::as_str).unwrap_or("results/bench_load.json");
    seqge::bench::write_json(std::path::Path::new(path), &report).map_err(|e| e.to_string())?;
    let steady = &report.windows[0];
    let fault = &report.windows[1];
    println!(
        "{}: {} ops in {:.1}s  steady[ok {} degraded {} shed {} errors {} slo_viol {}]  \
         fault[ok {} degraded {} shed {} errors {} slo_viol {}]",
        report.scenario,
        report.total_ops,
        report.wall_s,
        steady.ok,
        steady.degraded,
        steady.shed,
        steady.hard_errors + steady.transport_errors,
        steady.slo_violations,
        fault.ok,
        fault.degraded,
        fault.shed,
        fault.hard_errors + fault.transport_errors,
        fault.slo_violations,
    );
    println!(
        "steady topk p99 {:.2} ms, ok-rate {:.4}, slo_pass {}; report: {path}",
        report.steady_topk_p99_ms, report.steady_ok_rate, report.slo_pass
    );
    if !report.slo_pass {
        return Err("steady-state SLO violated (see report)".into());
    }
    Ok(())
}

fn cmd_simulate(flags: &Flags) -> Result<(), String> {
    let dim: usize = get(flags, "dim", 32)?;
    let design = AcceleratorDesign::for_dim(dim);
    let est = estimate_resources(&design);
    let util = est.utilization(&FpgaDevice::XCZU7EV);
    let timing = TimingModel::default();
    println!(
        "accelerator build d={dim} @ {} MHz on {}:",
        design.clock_mhz,
        FpgaDevice::XCZU7EV.name
    );
    println!(
        "  BRAM {:>4} ({:5.2}%)   DSP {:>4} ({:5.2}%)",
        est.bram36, util.bram_pct, est.dsp, util.dsp_pct
    );
    println!(
        "  FF {:>6} ({:5.2}%)   LUT {:>6} ({:5.2}%){}",
        est.ff,
        util.ff_pct,
        est.lut,
        util.lut_pct,
        if est.calibrated { "   [calibrated to paper Table 6]" } else { "   [interpolated]" }
    );
    println!(
        "  one paper-protocol walk (73 contexts, 77 samples): {:.3} ms",
        timing.paper_walk_millis(dim)
    );
    Ok(())
}
