//! End-to-end integration: synthetic dataset → walks → training → F1.
//!
//! These tests exercise the whole stack at reduced scale and assert the
//! paper's *qualitative* claims (an informative embedding emerges; the
//! proposed model trains sequentially without collapsing).

use seqge::core::{
    train_all_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, SkipGram, TrainConfig,
};
use seqge::eval::{evaluate_embedding, EvalConfig};
use seqge::graph::Dataset;

fn small_cfg(dim: usize) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.walk.walk_length = 40;
    cfg.walk.walks_per_node = 5;
    cfg.model.negative_samples = 5;
    cfg
}

fn eval_cfg() -> EvalConfig {
    EvalConfig {
        trials: 2,
        logreg: seqge::eval::LogRegConfig { epochs: 40, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn oselm_embedding_recovers_communities() {
    let g = Dataset::Cora.generate_scaled(0.15, 1); // ~400 nodes, 7 classes
    let cfg = small_cfg(32);
    let mut model = OsElmSkipGram::new(
        g.num_nodes(),
        OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(32) },
    );
    train_all_scenario(&g, &mut model, &cfg, 7);
    let emb = model.embedding();
    let labels = g.labels().unwrap();
    let r = evaluate_embedding(&emb, labels, g.num_classes(), &eval_cfg(), 1);
    // Chance on 7 near-equal classes ≈ 0.14; community structure must be
    // clearly recovered.
    assert!(
        r.micro_f1 > 0.4,
        "OS-ELM embedding should recover planted communities, got {:.3}",
        r.micro_f1
    );
}

#[test]
fn skipgram_embedding_recovers_communities() {
    let g = Dataset::Cora.generate_scaled(0.15, 1);
    let cfg = small_cfg(32);
    let mut model = SkipGram::new(g.num_nodes(), cfg.model);
    train_all_scenario(&g, &mut model, &cfg, 7);
    let labels = g.labels().unwrap();
    let r = evaluate_embedding(&model.embedding(), labels, g.num_classes(), &eval_cfg(), 1);
    assert!(
        r.micro_f1 > 0.4,
        "SGD skip-gram should recover planted communities, got {:.3}",
        r.micro_f1
    );
}
