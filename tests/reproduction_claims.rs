//! Integration tests pinning the paper's qualitative claims at CI scale
//! (DESIGN.md §4 lists the expectations; EXPERIMENTS.md records full-scale
//! runs).

use seqge::core::model_size::{original_model_bytes, proposed_model_bytes};
use seqge::core::{train_all_scenario, EmbeddingModel, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge::eval::{evaluate_embedding, EvalConfig, LogRegConfig};
use seqge::fpga::{estimate_resources, AcceleratorDesign, FpgaDevice, TimingModel};
use seqge::graph::Dataset;

fn eval_cfg() -> EvalConfig {
    EvalConfig {
        trials: 2,
        logreg: LogRegConfig { epochs: 40, ..Default::default() },
        ..Default::default()
    }
}

/// Expectation 3: the proposed model is ~3–4× smaller at every Table 5 point.
#[test]
fn model_size_reduction_band() {
    for ds in Dataset::ALL {
        let n = ds.spec().num_nodes;
        for dim in [32usize, 64, 96] {
            let ratio = original_model_bytes(n, dim) as f64 / proposed_model_bytes(n, dim) as f64;
            assert!((3.0..4.2).contains(&ratio), "{ds} d={dim}: ratio {ratio}");
        }
    }
}

/// Expectation 4: the resource estimator reproduces Table 6 and everything
/// fits the device.
#[test]
fn resource_estimates_match_paper() {
    let dev = FpgaDevice::XCZU7EV;
    for (dim, bram, dsp) in [(32usize, 183, 1379), (64, 271, 1552), (96, 272, 1573)] {
        let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
        assert_eq!((est.bram36, est.dsp), (bram, dsp), "d={dim}");
        assert!(dev.fits(est.bram36, est.dsp, est.ff, est.lut));
    }
}

/// Expectation: the timing model reproduces the paper's FPGA latencies.
#[test]
fn fpga_latency_matches_table3() {
    let t = TimingModel::default();
    for (dim, paper_ms) in [(32usize, 0.777), (64, 0.878), (96, 0.985)] {
        let ms = t.paper_walk_millis(dim);
        assert!((ms - paper_ms).abs() / paper_ms < 0.015, "d={dim}: {ms:.3} vs {paper_ms}");
    }
}

/// Expectation 7 (Fig. 6 shape): μ = 0.001 collapses, the plateau works,
/// and they are far apart.
#[test]
fn mu_collapse_and_plateau() {
    let g = Dataset::Cora.generate_scaled(0.15, 3);
    let labels = g.labels().unwrap().to_vec();
    let mut cfg = TrainConfig::paper_defaults(32);
    cfg.walk.walks_per_node = 5;
    let f1_of = |mu: f32| {
        let ocfg = OsElmConfig { model: cfg.model, mu, ..OsElmConfig::paper_defaults(32) };
        let mut m = OsElmSkipGram::new(g.num_nodes(), ocfg);
        train_all_scenario(&g, &mut m, &cfg, 3);
        evaluate_embedding(&m.embedding(), &labels, g.num_classes(), &eval_cfg(), 1).micro_f1
    };
    let tiny = f1_of(0.001);
    let plateau = f1_of(0.05);
    assert!(plateau > tiny + 0.25, "plateau {plateau:.3} should clearly beat collapsed {tiny:.3}");
    assert!(plateau > 0.4, "plateau must recover communities: {plateau:.3}");
}

/// The fixed-point accelerator's embedding classifies about as well as the
/// float model's (Fig. 4 shape at CI scale).
#[test]
fn fixed_point_embedding_close_to_float() {
    use seqge::fpga::Accelerator;
    use seqge::sampling::Rng64;
    let g = Dataset::Cora.generate_scaled(0.12, 9);
    let labels = g.labels().unwrap().to_vec();
    let mut cfg = TrainConfig::paper_defaults(32);
    cfg.walk.walks_per_node = 5;
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(32) };

    let mut float_model = OsElmSkipGram::new(g.num_nodes(), ocfg);
    train_all_scenario(&g, &mut float_model, &cfg, 5);
    let f_float =
        evaluate_embedding(&float_model.embedding(), &labels, g.num_classes(), &eval_cfg(), 2)
            .micro_f1;

    let mut accel = Accelerator::new(g.num_nodes(), ocfg);
    // Same walk stream as train_all_scenario uses internally.
    let csr = g.to_csr();
    let mut walker = seqge::sampling::Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(5);
    let (corpus, walks) = seqge::sampling::generate_corpus(&csr, &mut walker, &mut rng);
    let mut table =
        seqge::sampling::NegativeTable::new(seqge::sampling::UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    for w in &walks {
        accel.train_walk(w, &table, &mut rng);
    }
    let f_fixed =
        evaluate_embedding(&accel.embedding(), &labels, g.num_classes(), &eval_cfg(), 2).micro_f1;

    assert_eq!(accel.stats.saturations, 0, "healthy training must not saturate");
    assert!(
        (f_float - f_fixed).abs() < 0.15,
        "fixed-point F1 {f_fixed:.3} should track float F1 {f_float:.3}"
    );
    assert!(f_fixed > 0.4, "fixed-point embedding must still classify: {f_fixed:.3}");
}
