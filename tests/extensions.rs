//! Integration tests for the extension layers: block OS-ELM, parallel SGD,
//! preprocessed walking, persistence, and the stream scenario — each
//! checked at the level users care about (embedding quality / exact resume),
//! not just unit behavior.

use seqge::core::model::EmbeddingModel;
use seqge::core::{
    persist, train_all_parallel, train_all_scenario, BlockOsElm, OsElmConfig, OsElmSkipGram,
    ParallelConfig, SkipGram, TrainConfig,
};
use seqge::eval::{evaluate_embedding, EvalConfig, LogRegConfig};
use seqge::graph::Dataset;
use seqge::sampling::{
    generate_corpus, NegativeTable, Node2VecParams, PreprocessedWalker, Rng64, UpdatePolicy, Walker,
};

fn eval_cfg() -> EvalConfig {
    EvalConfig {
        trials: 2,
        logreg: LogRegConfig { epochs: 40, ..Default::default() },
        ..Default::default()
    }
}

fn small_cfg(dim: usize) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.walk.walk_length = 30;
    cfg.walk.walks_per_node = 4;
    cfg.model.negative_samples = 5;
    cfg
}

/// Block OS-ELM must reach comparable downstream quality to the scalar model.
#[test]
fn block_oselm_quality_comparable() {
    let g = Dataset::Cora.generate_scaled(0.12, 21);
    let labels = g.labels().unwrap().to_vec();
    let cfg = small_cfg(16);
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(16) };

    let mut scalar = OsElmSkipGram::new(g.num_nodes(), ocfg);
    train_all_scenario(&g, &mut scalar, &cfg, 4);
    let f_scalar =
        evaluate_embedding(&scalar.embedding(), &labels, g.num_classes(), &eval_cfg(), 1).micro_f1;

    let mut block = BlockOsElm::new(g.num_nodes(), ocfg, 8);
    train_all_scenario(&g, &mut block, &cfg, 4);
    let f_block =
        evaluate_embedding(&block.embedding(), &labels, g.num_classes(), &eval_cfg(), 1).micro_f1;

    assert!(f_scalar > 0.35, "scalar baseline must learn: {f_scalar:.3}");
    assert!(
        f_block > f_scalar - 0.15,
        "block-8 quality {f_block:.3} too far below scalar {f_scalar:.3}"
    );
}

/// The parameter-averaging parallel trainer must reach comparable quality to
/// sequential SGD on the same corpus.
#[test]
fn parallel_sgd_quality_comparable() {
    let g = Dataset::Cora.generate_scaled(0.12, 22);
    let labels = g.labels().unwrap().to_vec();
    let cfg = small_cfg(16);

    let mut seq = SkipGram::new(g.num_nodes(), cfg.model);
    train_all_scenario(&g, &mut seq, &cfg, 5);
    let f_seq =
        evaluate_embedding(&seq.embedding(), &labels, g.num_classes(), &eval_cfg(), 1).micro_f1;

    let mut par = SkipGram::new(g.num_nodes(), cfg.model);
    train_all_parallel(&g, &mut par, &cfg, &ParallelConfig { shards: 4, sync_every: 32 }, 5);
    let f_par =
        evaluate_embedding(&par.embedding(), &labels, g.num_classes(), &eval_cfg(), 1).micro_f1;

    assert!(f_seq > 0.35, "sequential baseline must learn: {f_seq:.3}");
    assert!(
        f_par > f_seq - 0.15,
        "parallel quality {f_par:.3} too far below sequential {f_seq:.3}"
    );
}

/// Training on preprocessed-walker corpora must match on-the-fly-walker
/// corpora in downstream quality (same walk distribution).
#[test]
fn preprocessed_walks_equivalent_quality() {
    let g = Dataset::Cora.generate_scaled(0.12, 23);
    let labels = g.labels().unwrap().to_vec();
    let csr = g.to_csr();
    let cfg = small_cfg(16);
    let params = Node2VecParams { walk_length: 30, walks_per_node: 4, ..Default::default() };
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(16) };

    let train_with = |walks: &[Vec<u32>]| {
        let mut corpus = seqge::sampling::WalkCorpus::new(g.num_nodes());
        for w in walks {
            corpus.record(w);
        }
        let mut table = NegativeTable::new(UpdatePolicy::every_edge());
        table.rebuild(&corpus);
        let mut m = OsElmSkipGram::new(g.num_nodes(), ocfg);
        let mut rng = Rng64::seed_from_u64(9);
        for w in walks {
            m.train_walk(w, &table, &mut rng);
        }
        evaluate_embedding(&m.embedding(), &labels, g.num_classes(), &eval_cfg(), 1).micro_f1
    };

    // On-the-fly corpus.
    let mut walker = Walker::new(params);
    let mut rng = Rng64::seed_from_u64(31);
    let (_, fly_walks) = generate_corpus(&csr, &mut walker, &mut rng);
    let f_fly = train_with(&fly_walks);

    // Preprocessed corpus (full budget).
    let (mut pw, coverage) = PreprocessedWalker::build(&csr, params, usize::MAX);
    assert_eq!(coverage, 1.0);
    let mut rng = Rng64::seed_from_u64(31);
    let mut pre_walks = Vec::new();
    for _ in 0..params.walks_per_node {
        for u in 0..g.num_nodes() as u32 {
            let w = pw.walk(&csr, u, &mut rng);
            if w.len() >= 2 {
                pre_walks.push(w);
            }
        }
    }
    let f_pre = train_with(&pre_walks);

    assert!(f_fly > 0.35, "on-the-fly baseline must learn: {f_fly:.3}");
    assert!(
        (f_fly - f_pre).abs() < 0.2,
        "walk strategies should give similar embeddings: {f_fly:.3} vs {f_pre:.3}"
    );
}

/// Checkpoint → restore → continue must equal uninterrupted training
/// (state round-trip is exact, and the trainer has no hidden state outside
/// the model + rng).
#[test]
fn checkpoint_resume_is_exact() {
    let g = Dataset::Cora.generate_scaled(0.1, 24);
    let cfg = small_cfg(8);
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(8) };
    let csr = g.to_csr();
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(2);
    let (corpus, walks) = generate_corpus(&csr, &mut walker, &mut rng);
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    let split = walks.len() / 2;

    // Uninterrupted run.
    let mut full = OsElmSkipGram::new(g.num_nodes(), ocfg);
    let mut r1 = Rng64::seed_from_u64(77);
    for w in &walks {
        full.train_walk(w, &table, &mut r1);
    }

    // Interrupted at the midpoint: serialize, restore, continue with a
    // fresh-but-identically-seeded rng stream for the second half.
    let mut first = OsElmSkipGram::new(g.num_nodes(), ocfg);
    let mut r2 = Rng64::seed_from_u64(77);
    for w in &walks[..split] {
        first.train_walk(w, &table, &mut r2);
    }
    let mut buf = Vec::new();
    persist::write_oselm(&first, &mut buf).unwrap();
    let mut restored = persist::read_oselm(&buf[..]).unwrap();
    for w in &walks[split..] {
        restored.train_walk(w, &table, &mut r2);
    }

    let diff = full.beta_t().max_abs_diff(restored.beta_t());
    assert!(diff < 1e-6, "resume must be exact: {diff}");
    assert!(full.p().max_abs_diff(restored.p()) < 1e-6);
}
