//! Cluster assembly: boots the shard plane, the replicas, the health
//! loop, and the router, and tears them down in order.
//!
//! Every shard runs the **same fixed training pipeline** — paper defaults
//! at the configured dimension with `walk_length 12, walks_per_node 2`
//! and the every-edge update policy — because a shard that drifted from
//! its siblings (or from its own replica, or from its own pre-crash
//! incarnation) would break the bit-identity guarantees the WAL provides.
//! The `shardd` binary and the e2e tests mirror [`train_cfg`] exactly.

use crate::partition::shard_subgraph;
use crate::replica::{Replica, ReplicaConfig};
use crate::router::{start_router, ReplicaView, RouterConfig, RouterHandle};
use crate::shard::{publish_incarnation, shard_table, ChildShard, ChildSpec, ShardTable};
use seqge_backend::{BackendKind, BackendSpec};
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_graph::Graph;
use seqge_sampling::UpdatePolicy;
use seqge_serve::wal::{FsyncPolicy, Wal, WalConfig};
use seqge_serve::{
    boot_wal, start_backend, FaultInjector, HaloConfig, ServeConfig, ServerHandle, TrainerConfig,
};
use std::io::{self, ErrorKind};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The cluster-wide training configuration (mirrored by `shardd` and the
/// e2e tests; every shard, replica, and replay must agree on it).
pub fn train_cfg(dim: usize) -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.walk.walk_length = 12;
    cfg.walk.walks_per_node = 2;
    cfg
}

/// The matching OS-ELM configuration.
pub fn oselm_cfg(dim: usize) -> OsElmConfig {
    OsElmConfig { model: train_cfg(dim).model, ..OsElmConfig::paper_defaults(dim) }
}

/// The cluster-wide training-backend spec: the fixed pipeline above bound
/// to one [`BackendKind`]. Every shard in a cluster runs the same backend
/// — the router asserts homogeneity — because snapshots, WAL replays, and
/// replicas all decode against the backend's own state format.
pub fn backend_spec(kind: BackendKind, dim: usize, seed: u64) -> BackendSpec {
    BackendSpec::new(kind, train_cfg(dim), oselm_cfg(dim), UpdatePolicy::every_edge(), seed)
}

/// How shard engines are hosted.
#[derive(Debug, Clone)]
pub enum Backend {
    /// N engines inside this process (the `seqge cluster` CLI). Cheap,
    /// but a shard cannot die independently.
    InProcess,
    /// One `shardd` child process per shard (the e2e tests: children can
    /// really be SIGKILLed and respawned).
    Child {
        /// Path to the `shardd` binary.
        exe: PathBuf,
    },
}

/// Cluster topology and tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of vertex partitions / serve engines.
    pub shards: usize,
    /// Read replicas per shard (0 or 1).
    pub replicas: usize,
    /// Root directory; shard `s` stores its WAL under `shard-<s>/`.
    pub base_dir: PathBuf,
    /// Embedding dimension.
    pub dim: usize,
    /// Training seed (same on every shard; determinism is per shard).
    pub seed: u64,
    /// WAL fsync policy for every shard.
    pub fsync: FsyncPolicy,
    /// Full-resample cadence forwarded to every engine (0 = never).
    pub refresh_every: u64,
    /// Router front-end bind address.
    pub addr: String,
    /// Router tuning.
    pub router: RouterConfig,
    /// Replica tail poll interval.
    pub replica_poll: Duration,
    /// Halo delta-exchange cadence (the `--halo-sync-ms` knob): how often
    /// each shard publishes its owned embedding rows and folds in its
    /// peers'. Ignored with a single shard (there are no peers).
    pub halo_sync: Duration,
    /// Shard hosting mode.
    pub backend: Backend,
    /// Training backend every shard runs (`float` or `fpga-sim`). Must be
    /// homogeneous across the cluster: the WAL snapshot format is the
    /// backend's own, so a shard recovering under a different backend than
    /// it was committed with refuses to boot.
    pub train_backend: BackendKind,
}

impl ClusterConfig {
    /// A small in-process cluster rooted at `base_dir`.
    pub fn in_process(shards: usize, base_dir: PathBuf, dim: usize, seed: u64) -> ClusterConfig {
        ClusterConfig {
            shards,
            replicas: 0,
            base_dir,
            dim,
            seed,
            fsync: FsyncPolicy::Batch,
            refresh_every: 0,
            addr: "127.0.0.1:0".to_string(),
            router: RouterConfig::default(),
            replica_poll: Duration::from_millis(20),
            halo_sync: Duration::from_millis(50),
            backend: Backend::InProcess,
            train_backend: BackendKind::Float,
        }
    }

    fn shard_dir(&self, s: usize) -> PathBuf {
        self.base_dir.join(format!("shard-{s}"))
    }
}

/// A running cluster.
pub struct Cluster {
    router: Option<RouterHandle>,
    table: ShardTable,
    inproc: Vec<ServerHandle>,
    children: Arc<Mutex<Vec<ChildShard>>>,
    replicas: Vec<Replica>,
    health_stop: Arc<AtomicBool>,
    health: Option<JoinHandle<()>>,
}

impl Cluster {
    /// Boots every shard (committing a fresh WAL store from `initial`'s
    /// per-shard subgraph where none exists, recovering otherwise), then
    /// the replicas, the health loop (child backend), and the router.
    pub fn start(cfg: &ClusterConfig, initial: &Graph) -> io::Result<Cluster> {
        if cfg.shards == 0 {
            return Err(io::Error::new(ErrorKind::InvalidInput, "need at least one shard"));
        }
        if cfg.replicas > 1 {
            return Err(io::Error::new(ErrorKind::InvalidInput, "at most one replica per shard"));
        }
        let spec = backend_spec(cfg.train_backend, cfg.dim, cfg.seed);

        // Shard plane.
        let mut inproc = Vec::new();
        let mut children = Vec::new();
        let mut addrs: Vec<SocketAddr> = Vec::new();
        for s in 0..cfg.shards {
            let dir = cfg.shard_dir(s);
            std::fs::create_dir_all(&dir)?;
            let wcfg = WalConfig { dir: dir.clone(), fsync: cfg.fsync };
            // First boot: bootstrap the shard's subgraph and commit the
            // store, then boot through *recovery* regardless of backend.
            // Recovery constructs a fresh trainer over the snapshot — the
            // same construction replicas and post-crash respawns use — so
            // every incarnation of a shard ingests identically from the
            // first event.
            if seqge_serve::wal::read_meta(&dir)?.is_none() {
                let sub = shard_subgraph(initial, s, cfg.shards);
                let mut backend = spec.cold(sub.num_nodes());
                backend.bootstrap(&sub);
                Wal::init(&wcfg, &*backend, &sub)?;
            }
            match &cfg.backend {
                Backend::InProcess => {
                    let boot = boot_wal(&wcfg, None, &spec, cfg.refresh_every)?;
                    // In-process shards honor SEQGE_FAULT like a standalone
                    // `seqge serve` would, so chaos runs (load smoke, local
                    // soak) can inject shard-side faults through the same
                    // env knob.
                    let fault = FaultInjector::from_env()
                        .map_err(|e| io::Error::new(ErrorKind::InvalidInput, e))?;
                    let scfg = ServeConfig {
                        trainer: TrainerConfig {
                            refresh_every: cfg.refresh_every,
                            ..TrainerConfig::default()
                        },
                        wal: Some(Arc::new(boot.wal)),
                        fault: Arc::new(fault),
                        halo: (cfg.shards > 1).then(|| {
                            HaloConfig::for_shard(&cfg.base_dir, s, cfg.shards, cfg.halo_sync)
                        }),
                        ..ServeConfig::default()
                    };
                    let handle = start_backend("127.0.0.1:0", boot.graph, boot.backend, scfg)?;
                    addrs.push(handle.addr());
                    inproc.push(handle);
                }
                Backend::Child { exe } => {
                    let spec = ChildSpec {
                        exe: exe.clone(),
                        dir,
                        dim: cfg.dim,
                        seed: cfg.seed,
                        refresh_every: cfg.refresh_every,
                        shard_id: s,
                        shards: cfg.shards,
                        base_dir: cfg.base_dir.clone(),
                        halo_sync_ms: cfg.halo_sync.as_millis() as u64,
                        train_backend: cfg.train_backend,
                    };
                    let (child, addr) = ChildShard::spawn(s, spec)?;
                    addrs.push(addr);
                    children.push(child);
                }
            }
        }
        let table = shard_table(&addrs);

        // Replicas (tail the shard WAL directories this process just
        // booted — works for both backends, the feed is the filesystem).
        let mut replicas = Vec::new();
        let mut views: Vec<Option<ReplicaView>> = Vec::new();
        for s in 0..cfg.shards {
            if cfg.replicas > 0 {
                let rep = Replica::start(
                    &cfg.shard_dir(s),
                    ReplicaConfig {
                        spec: spec.clone(),
                        refresh_every: cfg.refresh_every,
                        poll: cfg.replica_poll,
                    },
                )?;
                views.push(Some(ReplicaView { cell: rep.cell(), applied: rep.applied_counter() }));
                replicas.push(rep);
            } else {
                views.push(None);
            }
        }

        // Health loop: reap and respawn dead children, republishing their
        // new address/epoch so routers reconnect.
        let children = Arc::new(Mutex::new(children));
        let health_stop = Arc::new(AtomicBool::new(false));
        let health = if matches!(cfg.backend, Backend::Child { .. }) {
            let children = children.clone();
            let table = table.clone();
            let stop = health_stop.clone();
            Some(thread::Builder::new().name("seqge-cluster-health".to_string()).spawn(
                move || {
                    while !stop.load(Ordering::SeqCst) {
                        {
                            let mut kids = children.lock().expect("child table poisoned");
                            for kid in kids.iter_mut() {
                                if kid.exited() {
                                    match kid.respawn() {
                                        Ok(addr) => publish_incarnation(&table, kid.id, addr),
                                        Err(_) => {
                                            // Store still unrecoverable (or
                                            // exec failed): stay unhealthy,
                                            // retry next tick.
                                        }
                                    }
                                }
                            }
                        }
                        thread::sleep(Duration::from_millis(100));
                    }
                },
            )?)
        } else {
            None
        };

        let router = start_router(&cfg.addr, table.clone(), views, cfg.router.clone())?;
        Ok(Cluster { router: Some(router), table, inproc, children, replicas, health_stop, health })
    }

    /// The router's front-end address.
    pub fn addr(&self) -> SocketAddr {
        self.router.as_ref().expect("router running").addr()
    }

    /// The live routing table (tests watch epochs/health through it).
    pub fn table(&self) -> ShardTable {
        self.table.clone()
    }

    /// The router's stop flag (signal handlers set it; [`Cluster::wait`]
    /// returns once set).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.router.as_ref().expect("router running").stop_flag()
    }

    /// Direct shard addresses (tests compare against single-node runs).
    pub fn shard_addrs(&self) -> Vec<SocketAddr> {
        (0..self.table.len()).map(|s| crate::shard::shard_info(&self.table, s).addr).collect()
    }

    /// SIGKILLs child shard `s` (test hook; the health loop will respawn
    /// it). No-op for in-process shards.
    pub fn kill_child(&self, s: usize) {
        let mut kids = self.children.lock().expect("child table poisoned");
        if let Some(kid) = kids.iter_mut().find(|k| k.id == s) {
            kid.kill();
            crate::shard::mark_unhealthy(&self.table, s);
        }
    }

    /// Blocks until the router's stop flag is set (shutdown command or
    /// signal), then tears the cluster down.
    pub fn wait(mut self) -> io::Result<()> {
        let router = self.router.take().expect("router running");
        let result = router.wait();
        self.teardown()?;
        result
    }

    /// Graceful teardown: router first (no new fan-outs), then health
    /// loop, replicas, and the shard plane.
    pub fn shutdown(mut self) -> io::Result<()> {
        if let Some(router) = self.router.take() {
            router.shutdown()?;
        }
        self.teardown()
    }

    fn teardown(&mut self) -> io::Result<()> {
        self.health_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
        for rep in self.replicas.drain(..) {
            rep.stop();
        }
        for kid in self.children.lock().expect("child table poisoned").iter_mut() {
            kid.kill();
        }
        let mut first_err = None;
        for handle in self.inproc.drain(..) {
            if let Err(e) = handle.shutdown() {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.health_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.health.take() {
            let _ = h.join();
        }
    }
}
