//! The scatter-gather router: one TCP front end speaking the exact serve
//! protocol, fanning work across the shard plane.
//!
//! Routing rules per op:
//!
//! * **writes** (`add_edge`/`remove_edge`) — forwarded *verbatim* (the
//!   client's `WriteId` rides along unchanged) to the edge's **single
//!   owner**, the owner of the lower-numbered endpoint (see
//!   [`crate::partition::edge_owner`]; the edge is undirected, so routing
//!   is invariant to the order the client wrote the endpoints in —
//!   `add_edge(u,v)` and `remove_edge(v,u)` reach the same shard).
//!   Exactly one shard applies and
//!   trains each edge, so added shards divide the work; if the owner is
//!   unreachable the router answers `overloaded: shard N unavailable…`,
//!   which the serve client treats as backoff-and-retry **with the same
//!   WriteId** — a shard that already acked dedups the resend.
//! * **`topk`** — scattered to every shard with the residue-class filter
//!   `{"mod": shards, "rem": s}` injected, so each shard competes only
//!   its own slice; the router merges the per-shard heaps under the
//!   protocol's total order (score desc, node id asc). Client-supplied
//!   `mod`/`rem` are rejected: in cluster mode the partition owns that
//!   filter.
//! * **`get_embedding` / `score_link`** — forwarded to the owner shard;
//!   on failure the router falls back to the peer owner (`score_link`)
//!   and then to the shard's read replica snapshot, tagging the response
//!   `"source": "replica"`.
//! * **fan-out reads** (`stats`, `flush`, `snapshot`, `restore`) — sent
//!   to every shard with one shared deadline; responses that miss it are
//!   dropped and the reply carries `"degraded": true` plus the missing
//!   shard list. `flush` is the exception: it is a barrier, so a missing
//!   shard turns the whole call into `overloaded` (retryable) rather
//!   than a silently partial barrier.
//!
//! Partial and fallback replies are classifiable without string-matching:
//! every degraded success (`degraded:true`, `source:"replica"`) and every
//! degraded/overloaded failure carries the protocol's machine-readable
//! `code` field (see `seqge_serve::protocol`), and a shard's `overloaded`
//! code passes through writes intact so client retry policy keeps working
//! end to end.
//!
//! Every fan-out is pipelined — requests are written to all shards
//! before any response is read — so the wall clock is the slowest shard,
//! not the sum. Per-worker connections are cached and tagged with the
//! shard's incarnation epoch; a respawned shard (new epoch, possibly new
//! port) invalidates the cache lazily on next use.

use crate::partition::{edge_owner, owner};
use crate::shard::{mark_unhealthy, shard_info, ShardTable};
use seqge_eval::EdgeOp;
use seqge_obs::{export, Counter, Registry};
use seqge_serve::protocol::{
    self, op_name, span_value, MetricsFormat, Request, Response, CODE_DEGRADED, CODE_OVERLOADED,
    MAX_LINE_BYTES,
};
use seqge_serve::snapshot::SnapshotCell;
use seqge_serve::{Client, ClientConfig};
use serde_json::Value;
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Router knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Worker threads serving client connections.
    pub workers: usize,
    /// Per-shard fan-out budget: one scatter-gather never waits longer
    /// than this on any single shard before degrading.
    pub deadline: Duration,
    /// Idle client connections are closed after this long.
    pub read_deadline: Duration,
    /// Socket write timeout toward clients.
    pub write_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 2,
            deadline: Duration::from_millis(2_000),
            read_deadline: Duration::from_secs(300),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Read-side fallback state the router holds per shard.
#[derive(Clone)]
pub struct ReplicaView {
    /// The replica's published snapshot cell.
    pub cell: Arc<SnapshotCell>,
    /// Highest WAL sequence the replica has applied (for status/lag).
    pub applied: Arc<AtomicU64>,
}

/// A running router. Dropping without [`RouterHandle::shutdown`] detaches
/// the threads.
pub struct RouterHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    registry: Arc<Registry>,
    threads: Vec<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound front-end address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The stop flag (a `shutdown` command or signal handler sets it).
    pub fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// The router's metrics registry.
    pub fn registry(&self) -> Arc<Registry> {
        self.registry.clone()
    }

    /// Blocks until the stop flag is set, then joins the threads.
    pub fn wait(self) -> io::Result<()> {
        while !self.stop.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(50));
        }
        self.shutdown()
    }

    /// Stops accepting and joins every router thread.
    pub fn shutdown(self) -> io::Result<()> {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            t.join().map_err(|_| io::Error::other("router thread panicked"))?;
        }
        Ok(())
    }
}

/// Starts the router on `addr` over an existing shard table. `replicas`
/// holds one optional [`ReplicaView`] per shard (index-aligned).
pub fn start_router(
    addr: &str,
    shards: ShardTable,
    replicas: Vec<Option<ReplicaView>>,
    cfg: RouterConfig,
) -> io::Result<RouterHandle> {
    assert!(cfg.workers >= 1, "need at least one router worker");
    assert_eq!(replicas.len(), shards.len(), "one replica slot per shard");
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let registry = Arc::new(Registry::new());
    let stop = Arc::new(AtomicBool::new(false));
    let queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)> =
        Arc::new((Mutex::new(VecDeque::new()), Condvar::new()));
    let mut threads = Vec::new();

    for i in 0..cfg.workers {
        let ctx = RouterCtx {
            queue: queue.clone(),
            stop: stop.clone(),
            shards: shards.clone(),
            replicas: replicas.clone(),
            registry: registry.clone(),
            degraded_total: registry.counter("seqge_cluster_degraded_total"),
            shard_errors: registry.counter("seqge_cluster_shard_errors_total"),
            protocol_errors: registry.counter("seqge_cluster_protocol_errors_total"),
            started: Instant::now(),
            cfg: cfg.clone(),
        };
        threads.push(
            thread::Builder::new().name(format!("seqge-router-{i}")).spawn(move || ctx.run())?,
        );
    }

    // Acceptor (same shed-at-the-door shape as the serve front end).
    {
        let queue = queue.clone();
        let stop = stop.clone();
        threads.push(thread::Builder::new().name("seqge-router-accept".to_string()).spawn(
            move || loop {
                if stop.load(Ordering::SeqCst) {
                    queue.1.notify_all();
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let mut q = queue.0.lock().expect("router conn queue poisoned");
                        q.push_back(stream);
                        queue.1.notify_one();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => thread::sleep(Duration::from_millis(20)),
                }
            },
        )?);
    }

    Ok(RouterHandle { addr, stop, registry, threads })
}

/// Per-worker cached shard connections, tagged with the incarnation
/// epoch they were dialed against.
type Conns = Vec<Option<(u64, Client)>>;

/// `"cluster."`-prefixed span name for a wire op, precomputed so
/// tracing-off dispatch never allocates.
fn cluster_span_name(op: &str) -> &'static str {
    match op {
        "ping" => "cluster.ping",
        "stats" => "cluster.stats",
        "get_embedding" => "cluster.get_embedding",
        "topk" => "cluster.topk",
        "score_link" => "cluster.score_link",
        "add_edge" => "cluster.add_edge",
        "remove_edge" => "cluster.remove_edge",
        "flush" => "cluster.flush",
        "snapshot" => "cluster.snapshot",
        "restore" => "cluster.restore",
        "metrics" => "cluster.metrics",
        "trace" => "cluster.trace",
        "flightrec" => "cluster.flightrec",
        "halo" => "cluster.halo",
        _ => "cluster.shutdown",
    }
}

struct RouterCtx {
    queue: Arc<(Mutex<VecDeque<TcpStream>>, Condvar)>,
    stop: Arc<AtomicBool>,
    shards: ShardTable,
    replicas: Vec<Option<ReplicaView>>,
    registry: Arc<Registry>,
    degraded_total: Arc<Counter>,
    shard_errors: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    started: Instant,
    cfg: RouterConfig,
}

impl RouterCtx {
    fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn run(self) {
        let mut conns: Conns = (0..self.num_shards()).map(|_| None).collect();
        loop {
            let conn = {
                let guard = self.queue.0.lock().expect("router conn queue poisoned");
                let (mut guard, _) = self
                    .queue
                    .1
                    .wait_timeout_while(guard, Duration::from_millis(100), |q| q.is_empty())
                    .expect("router conn queue poisoned");
                guard.pop_front()
            };
            if let Some(stream) = conn {
                let _ = self.handle_connection(stream, &mut conns);
            }
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
        }
    }

    /// Serves one client connection: LF-framed lines, size-capped, idle
    /// deadline — identical framing to the serve front end.
    fn handle_connection(&self, mut stream: TcpStream, conns: &mut Conns) -> io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        stream.set_write_timeout(Some(self.cfg.write_timeout))?;
        stream.set_nodelay(true).ok();
        let mut pending: Vec<u8> = Vec::new();
        let mut chunk = [0u8; 4096];
        let mut last_activity = Instant::now();
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let n = match stream.read(&mut chunk) {
                Ok(0) => return Ok(()),
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if last_activity.elapsed() >= self.cfg.read_deadline {
                        return Ok(());
                    }
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            last_activity = Instant::now();
            pending.extend_from_slice(&chunk[..n]);
            while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = pending.drain(..=nl).collect();
                let text = String::from_utf8_lossy(&line[..nl]);
                let (response, close) = self.dispatch(text.trim(), conns);
                stream.write_all(response.as_bytes())?;
                stream.write_all(b"\n")?;
                if close {
                    return Ok(());
                }
            }
            if pending.len() > MAX_LINE_BYTES {
                let msg = Response::err(format!("line exceeds {MAX_LINE_BYTES} bytes"));
                stream.write_all(msg.as_bytes())?;
                stream.write_all(b"\n")?;
                return Ok(());
            }
        }
    }

    fn dispatch(&self, line: &str, conns: &mut Conns) -> (String, bool) {
        if line.is_empty() {
            self.protocol_errors.inc();
            return (Response::err("empty request line"), false);
        }
        // Router-only command, not part of the shard grammar.
        if let Ok(v) = serde_json::from_str::<Value>(line) {
            if v.get("cmd").and_then(Value::as_str) == Some("cluster_status") {
                self.count_op("cluster_status");
                return (self.cluster_status(conns), false);
            }
        }
        let (req, wire_ctx) = match protocol::parse_request_traced(line) {
            Ok(r) => r,
            Err(e) => {
                self.protocol_errors.inc();
                return (Response::err(e), false);
            }
        };
        self.count_op(req.cmd_name());
        // The fan-out root: per-shard children open under it (via the
        // thread-local stack) inside `scatter_gather` / `forward_one`.
        let mut span = seqge_obs::trace::start_span(cluster_span_name(req.cmd_name()), wire_ctx);
        let (out, close) = match req {
            Request::Ping => {
                (Response::ok().field("pong", true).field("role", "router").build(), false)
            }
            Request::Stats => (self.stats(conns), false),
            Request::Metrics { format } => (self.metrics(format, conns), false),
            Request::GetEmbedding { node } => (self.get_embedding(node, line, conns), false),
            Request::TopK { node, k, op, filter, mode, probes } => {
                if filter.is_some() {
                    self.protocol_errors.inc();
                    return (
                        Response::err(
                            "mod/rem are router-internal: the cluster owns the shard filter",
                        ),
                        false,
                    );
                }
                (self.topk(node, k, op, mode, probes, conns), false)
            }
            Request::ScoreLink { u, v, op } => (self.score_link(u, v, op, line, conns), false),
            Request::AddEdge { u, v, .. } | Request::RemoveEdge { u, v, .. } => {
                (self.write(u, v, line, conns), false)
            }
            Request::Flush => (self.flush(conns), false),
            Request::Snapshot => {
                (self.fan_collect("snapshot", r#"{"cmd":"snapshot"}"#, conns), false)
            }
            Request::Restore => (self.fan_collect("restore", r#"{"cmd":"restore"}"#, conns), false),
            Request::Trace { after } => (self.trace_dump(after), false),
            Request::Flightrec => (self.flightrec(conns), false),
            Request::Halo { .. } => (
                // Halo state is per-shard (each shard mirrors *its peers'*
                // rows); there is no meaningful cluster-wide aggregate.
                Response::err("halo is a shard-local diagnostic: query a shard address directly"),
                false,
            ),
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                (Response::ok().field("stopping", true).build(), true)
            }
        };
        if span.is_active() {
            // Degraded and shed replies are the traces worth keeping
            // regardless of the head-sampling rate.
            if out.contains("\"code\":\"overloaded\"") {
                span.force_sample();
                span.tag("outcome", "shed");
            } else if out.contains("\"code\":\"degraded\"") || out.contains("\"degraded\":true") {
                span.force_sample();
                span.tag("outcome", "degraded");
            }
        }
        (out, close)
    }

    fn count_op(&self, op: &str) {
        self.registry.counter_with("seqge_cluster_requests_total", &[("op", op)]).inc();
    }

    /// Fetches (dialing if needed) the cached connection for shard `s`.
    fn client<'c>(&self, conns: &'c mut Conns, s: usize) -> Option<&'c mut Client> {
        let info = shard_info(&self.shards, s);
        if let Some((epoch, _)) = &conns[s] {
            if *epoch != info.epoch {
                conns[s] = None; // stale incarnation
            }
        }
        if conns[s].is_none() {
            let ccfg = ClientConfig {
                timeout: self.cfg.deadline,
                retries: 0,
                client_id: format!("router-s{s}"),
                ..ClientConfig::default()
            };
            match Client::connect_with(info.addr, ccfg) {
                Ok(c) => conns[s] = Some((info.epoch, c)),
                Err(_) => {
                    self.shard_errors.inc();
                    mark_unhealthy(&self.shards, s);
                    return None;
                }
            }
        }
        conns[s].as_mut().map(|(_, c)| c)
    }

    fn drop_conn(&self, conns: &mut Conns, s: usize) {
        conns[s] = None;
        self.shard_errors.inc();
        mark_unhealthy(&self.shards, s);
    }

    /// Pipelined scatter-gather: sends `line(s)` to every target shard,
    /// then collects responses under one shared deadline. Returns one
    /// `Option<Value>` per target (`None` = unreachable or past
    /// deadline).
    fn scatter_gather(
        &self,
        conns: &mut Conns,
        targets: &[usize],
        line: impl Fn(usize) -> String,
    ) -> Vec<Option<Value>> {
        // All children share the dispatch root as their parent — explicit
        // ctx, because nested `start_span(.., None)` calls would chain the
        // siblings into a bogus ancestry.
        let parent = seqge_obs::trace::current_ctx();
        let mut sent = vec![false; targets.len()];
        let mut spans: Vec<Option<seqge_obs::Span>> = Vec::with_capacity(targets.len());
        for (i, &s) in targets.iter().enumerate() {
            let mut sp = seqge_obs::trace::start_span("cluster.shard", parent);
            if sp.is_active() {
                sp.tag("shard", s.to_string());
            }
            if let Some(c) = self.client(conns, s) {
                let l = line(s);
                // Each shard call carries the *child* context, so the
                // shard-side span parents to this fan-out leg.
                let l = match sp.ctx() {
                    Some(ctx) => protocol::attach_trace(&l, &ctx),
                    None => l,
                };
                match c.send_line(&l) {
                    Ok(()) => sent[i] = true,
                    Err(_) => self.drop_conn(conns, s),
                }
            }
            spans.push(Some(sp));
        }
        let deadline = Instant::now() + self.cfg.deadline;
        let mut out = Vec::with_capacity(targets.len());
        for (i, &s) in targets.iter().enumerate() {
            let mut sp = spans[i].take().expect("one span per target");
            if !sent[i] {
                if sp.is_active() {
                    sp.force_sample();
                    sp.tag("outcome", "unreachable");
                }
                out.push(None);
                continue;
            }
            let remaining =
                deadline.saturating_duration_since(Instant::now()).max(Duration::from_millis(1));
            let resp = {
                let c = conns[s].as_mut().map(|(_, c)| c).expect("sent implies connected");
                c.set_read_timeout(Some(remaining)).and_then(|()| c.recv_line())
            };
            match resp.ok().and_then(|r| serde_json::from_str::<Value>(&r).ok()) {
                Some(v) => {
                    // Restore the default timeout for future single calls.
                    if let Some((_, c)) = conns[s].as_mut() {
                        let _ = c.set_read_timeout(Some(self.cfg.deadline));
                    }
                    out.push(Some(v));
                }
                None => {
                    if sp.is_active() {
                        sp.force_sample();
                        sp.tag("outcome", "missed_deadline");
                    }
                    self.drop_conn(conns, s);
                    out.push(None);
                }
            }
        }
        out
    }

    /// Forwards one raw request line to shard `s`, returning the raw
    /// response line (verbatim passthrough, plus this hop's trace context
    /// so the shard span parents here).
    fn forward_one(&self, conns: &mut Conns, s: usize, line: &str) -> Option<String> {
        let mut sp = seqge_obs::trace::start_span("cluster.shard", None);
        if sp.is_active() {
            sp.tag("shard", s.to_string());
        }
        let Some(c) = self.client(conns, s) else {
            if sp.is_active() {
                sp.force_sample();
                sp.tag("outcome", "unreachable");
            }
            return None;
        };
        let resp = match sp.ctx() {
            Some(ctx) => c.call_traced(line, &ctx),
            None => c.call_raw(line),
        };
        match resp {
            Ok(resp) => Some(resp),
            Err(_) => {
                if sp.is_active() {
                    sp.force_sample();
                    sp.tag("outcome", "unreachable");
                }
                self.drop_conn(conns, s);
                None
            }
        }
    }

    fn all_shards(&self) -> Vec<usize> {
        (0..self.num_shards()).collect()
    }

    fn missing_field(missing: &[usize]) -> Value {
        Value::Array(missing.iter().map(|&s| Value::U64(s as u64)).collect())
    }

    /// Folds the per-shard training-backend descriptors (from their stats
    /// replies; `Null` for unreachable shards) into the cluster consensus:
    /// the common descriptor, plus whether any reachable shard disagreed.
    /// A heterogeneous cluster is a deployment error — snapshots and WAL
    /// replays are backend-specific, so a write routed to the odd shard
    /// trains under different arithmetic than its peers.
    fn backend_consensus(backends: &[Value]) -> (Value, bool) {
        let mut common: Option<&Value> = None;
        let mut mismatch = false;
        for b in backends {
            if matches!(b, Value::Null) {
                continue;
            }
            match common {
                None => common = Some(b),
                Some(c) if c == b => {}
                Some(_) => mismatch = true,
            }
        }
        (common.cloned().unwrap_or(Value::Null), mismatch)
    }

    fn stats(&self, conns: &mut Conns) -> String {
        let targets = self.all_shards();
        let got = self.scatter_gather(conns, &targets, |_| r#"{"cmd":"stats"}"#.to_string());
        let mut missing = Vec::new();
        let shards: Vec<Value> = got
            .into_iter()
            .enumerate()
            .map(|(s, v)| match v {
                Some(v) => v,
                None => {
                    missing.push(s);
                    Value::Null
                }
            })
            .collect();
        let backends: Vec<Value> =
            shards.iter().map(|s| s.get("backend").cloned().unwrap_or(Value::Null)).collect();
        let (backend, backend_mismatch) = Self::backend_consensus(&backends);
        let degraded = !missing.is_empty() || backend_mismatch;
        if degraded {
            self.degraded_total.inc();
        }
        // Every shard carries the full (global-id) node set, so any
        // reachable shard's count is the cluster's; surfacing it at the
        // top level lets clients (the load generator's node probe among
        // them) treat router and single-node stats uniformly.
        let nodes =
            shards.iter().filter_map(|s| s.get("nodes").and_then(Value::as_u64)).max().unwrap_or(0);
        let mut resp = Response::ok()
            .field("role", "router")
            .field("nodes", nodes)
            .field("num_shards", self.num_shards())
            .field("backend", backend)
            .field("backend_mismatch", backend_mismatch)
            .field("uptime_ms", self.started.elapsed().as_millis() as u64)
            .field("shards", Value::Array(shards))
            .field("degraded", degraded)
            .field("missing_shards", Self::missing_field(&missing));
        if degraded {
            resp = resp.field("code", CODE_DEGRADED);
        }
        resp.build()
    }

    /// Scatters a JSON metrics scrape to every shard and sums the serve
    /// plane into a scratch registry before rendering, so one scrape shows
    /// cluster-wide `seqge_serve_*` counters and gauges. Only that prefix
    /// is merged: each in-process shard's reply also embeds the
    /// process-global registry, which every shard shares — summing it
    /// would multiply library-level series by the shard count. Histograms
    /// are not merged (per-shard quantiles don't sum); scrape a shard
    /// directly for its latency distribution.
    fn metrics(&self, format: MetricsFormat, conns: &mut Conns) -> String {
        let targets = self.all_shards();
        let got = self.scatter_gather(conns, &targets, |_| {
            r#"{"cmd":"metrics","format":"json"}"#.to_string()
        });
        let merged = Registry::new();
        let mut missing = Vec::new();
        for (s, v) in got.into_iter().enumerate() {
            let body = v
                .filter(|v| v.get("ok") == Some(&Value::Bool(true)))
                .and_then(|v| v.get("body").and_then(Value::as_str).map(str::to_string));
            match body.and_then(|b| serde_json::from_str::<Value>(&b).ok()) {
                Some(doc) => Self::merge_serve_series_into(&merged, &doc),
                None => missing.push(s),
            }
        }
        if !missing.is_empty() {
            self.degraded_total.inc();
        }
        let regs: [&Registry; 3] = [&merged, self.registry.as_ref(), Registry::global()];
        let body = match format {
            MetricsFormat::Prometheus => export::prometheus(&regs),
            MetricsFormat::Json => export::dump_json(&regs),
        };
        let mut resp = Response::ok()
            .field("format", format.as_str())
            .field("body", body)
            .field("degraded", !missing.is_empty())
            .field("missing_shards", Self::missing_field(&missing));
        if !missing.is_empty() {
            resp = resp.field("code", CODE_DEGRADED);
        }
        resp.build()
    }

    fn get_embedding(&self, node: u32, line: &str, conns: &mut Conns) -> String {
        let s = owner(node, self.num_shards());
        if let Some(resp) = self.forward_one(conns, s, line) {
            return resp;
        }
        self.degraded_total.inc();
        if let Some(view) = &self.replicas[s] {
            let snap = view.cell.load();
            if let Some(row) = snap.embedding(node) {
                let vec: Vec<Value> = row.iter().map(|&x| Value::F64(x as f64)).collect();
                return Response::ok()
                    .field("node", node)
                    .field("version", snap.version)
                    .field("embedding", Value::Array(vec))
                    .field("source", "replica")
                    .field("code", CODE_DEGRADED)
                    .build();
            }
        }
        Response::err_code(
            CODE_DEGRADED,
            format!("degraded: shard {s} unavailable and no replica covers it"),
        )
    }

    fn score_link(&self, u: u32, v: u32, op: EdgeOp, line: &str, conns: &mut Conns) -> String {
        let a = owner(u, self.num_shards());
        let b = owner(v, self.num_shards());
        // Try each endpoint's owner in turn. Every shard holds a full
        // (global-id) embedding matrix, but only *owned* vertices receive
        // that vertex's incident-edge training there — the other
        // endpoint's local row is a locally-trained approximation, good
        // within the cross-shard tolerance documented in DESIGN.md
        // ("Cross-shard score comparability"). The halo mirror is a
        // diagnostic plane (the `halo` command) and is not consulted
        // here.
        for s in std::iter::once(a).chain((b != a).then_some(b)) {
            if let Some(resp) = self.forward_one(conns, s, line) {
                return resp;
            }
        }
        self.degraded_total.inc();
        if let Some(view) = &self.replicas[a] {
            let snap = view.cell.load();
            if let Some(score) = snap.score(u, v, op) {
                return Response::ok()
                    .field("u", u)
                    .field("v", v)
                    .field("op", op_name(op))
                    .field("version", snap.version)
                    .field("score", score)
                    .field("source", "replica")
                    .field("code", CODE_DEGRADED)
                    .build();
            }
        }
        Response::err_code(
            CODE_DEGRADED,
            format!("degraded: shard {a} unavailable and no replica covers it"),
        )
    }

    fn topk(
        &self,
        node: u32,
        k: usize,
        op: EdgeOp,
        mode: protocol::TopKMode,
        probes: usize,
        conns: &mut Conns,
    ) -> String {
        let n = self.num_shards();
        let targets = self.all_shards();
        // The recall knob rides through scatter-gather verbatim: each
        // shard runs ANN over its own residue class, and because every
        // candidate is re-ranked exactly shard-side, the merged order is
        // still the protocol total order.
        let got = self.scatter_gather(conns, &targets, |s| {
            format!(
                r#"{{"cmd":"topk","node":{node},"k":{k},"op":"{}","mode":"{}","probes":{probes},"mod":{n},"rem":{s}}}"#,
                op_name(op),
                mode.as_str()
            )
        });
        let mut missing = Vec::new();
        let mut errors = Vec::new();
        let mut merged: Vec<(u32, f64)> = Vec::new();
        for (s, v) in got.into_iter().enumerate() {
            let Some(v) = v else {
                missing.push(s);
                continue;
            };
            if v.get("ok") != Some(&Value::Bool(true)) {
                let msg = v.get("error").and_then(Value::as_str).unwrap_or("unknown").to_string();
                errors.push(msg);
                missing.push(s);
                continue;
            }
            if let Some(items) = v.get("results").and_then(Value::as_array) {
                for item in items {
                    let (Some(id), Some(score)) = (
                        item.get("node").and_then(Value::as_u64),
                        item.get("score").and_then(Value::as_f64),
                    ) else {
                        continue;
                    };
                    merged.push((id as u32, score));
                }
            }
        }
        // Every shard rejected the query (e.g. node out of range): that
        // is a real error, not degradation.
        if missing.len() == self.num_shards() {
            if let Some(e) = errors.first() {
                return Response::err(e);
            }
            self.degraded_total.inc();
            return Response::err_code(CODE_DEGRADED, "degraded: no shard reachable");
        }
        // Protocol total order: score desc, node id asc. Cross-shard ties
        // are resolved here under the same rule every shard uses locally.
        merged.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        merged.truncate(k);
        let items: Vec<Value> = merged
            .into_iter()
            .map(|(v, s)| {
                Value::Object(vec![
                    ("node".to_string(), Value::U64(v as u64)),
                    ("score".to_string(), Value::F64(s)),
                ])
            })
            .collect();
        if !missing.is_empty() {
            self.degraded_total.inc();
        }
        let mut resp = Response::ok()
            .field("node", node)
            .field("op", op_name(op))
            .field("results", Value::Array(items))
            .field("degraded", !missing.is_empty())
            .field("missing_shards", Self::missing_field(&missing));
        if !missing.is_empty() {
            resp = resp.field("code", CODE_DEGRADED);
        }
        resp.build()
    }

    fn write(&self, u: u32, v: u32, line: &str, conns: &mut Conns) -> String {
        // Single-owner routing: exactly one shard (the min endpoint's —
        // orientation-invariant, since (u,v) and (v,u) name the same
        // undirected edge) applies and trains this edge. No other shard
        // ever sees it, so cluster-wide each edge trains exactly once.
        let s = edge_owner(u, v, self.num_shards());
        let Some(resp) = self.forward_one(conns, s, line) else {
            self.degraded_total.inc();
            // Retryable by contract: the client backs off and resends the
            // same WriteId; a shard that already acked dedups it.
            return Response::err_code(
                CODE_OVERLOADED,
                format!("overloaded: shard {s} unavailable, retry"),
            );
        };
        let Ok(parsed) = serde_json::from_str::<Value>(&resp) else {
            return Response::err(format!("shard {s}: unparseable reply"));
        };
        if parsed.get("ok") != Some(&Value::Bool(true)) {
            let msg = parsed.get("error").and_then(Value::as_str).unwrap_or("unknown shard error");
            // Keep the client's retry classification intact: a shed reply
            // stays `code`-classified (and prefix-recognizable) through
            // the router.
            if parsed.get("code").and_then(Value::as_str) == Some(CODE_OVERLOADED)
                || msg.starts_with("overloaded")
            {
                return Response::err_code(CODE_OVERLOADED, msg);
            }
            return Response::err(format!("shard {s}: {msg}"));
        }
        let deduped = parsed.get("deduped") == Some(&Value::Bool(true));
        Response::ok()
            .field("queued", true)
            .field("deduped", deduped)
            .field("shards", Value::Array(vec![Value::U64(s as u64)]))
            .build()
    }

    fn flush(&self, conns: &mut Conns) -> String {
        let targets = self.all_shards();
        let got = self.scatter_gather(conns, &targets, |_| r#"{"cmd":"flush"}"#.to_string());
        let mut versions = Vec::with_capacity(targets.len());
        for (s, v) in got.into_iter().enumerate() {
            let version = v
                .filter(|v| v.get("ok") == Some(&Value::Bool(true)))
                .and_then(|v| v.get("version").and_then(Value::as_u64));
            match version {
                Some(ver) => versions.push(ver),
                None => {
                    self.degraded_total.inc();
                    // A partial barrier is not a barrier; make it
                    // retryable instead.
                    return Response::err_code(
                        CODE_OVERLOADED,
                        format!("overloaded: shard {s} unavailable, retry"),
                    );
                }
            }
        }
        let max = versions.iter().copied().max().unwrap_or(0);
        Response::ok()
            .field("version", max)
            .field("versions", Value::Array(versions.into_iter().map(Value::U64).collect()))
            .build()
    }

    /// Generic all-shard fan-out that reports per-shard responses plus
    /// degradation (used by `snapshot` and `restore`).
    fn fan_collect(&self, _op: &str, line: &str, conns: &mut Conns) -> String {
        let targets = self.all_shards();
        let got = self.scatter_gather(conns, &targets, |_| line.to_string());
        let mut missing = Vec::new();
        let shards: Vec<Value> = got
            .into_iter()
            .enumerate()
            .map(|(s, v)| match v {
                Some(v) => v,
                None => {
                    missing.push(s);
                    Value::Null
                }
            })
            .collect();
        if !missing.is_empty() {
            self.degraded_total.inc();
        }
        let mut resp = Response::ok()
            .field("shards", Value::Array(shards))
            .field("degraded", !missing.is_empty())
            .field("missing_shards", Self::missing_field(&missing));
        if !missing.is_empty() {
            resp = resp.field("code", CODE_DEGRADED);
        }
        resp.build()
    }

    /// See `metrics` for why only `seqge_serve_*` is summed and histograms
    /// are left out.
    fn merge_serve_series_into(reg: &Registry, doc: &Value) {
        for (section, is_counter) in [("counters", true), ("gauges", false)] {
            let Some(items) = doc.get(section).and_then(Value::as_array) else { continue };
            for item in items {
                let Some(name) = item.get("name").and_then(Value::as_str) else { continue };
                if !name.starts_with("seqge_serve_") {
                    continue;
                }
                let labels: Vec<(String, String)> = match item.get("labels") {
                    Some(Value::Object(entries)) => entries
                        .iter()
                        .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                        .collect(),
                    _ => Vec::new(),
                };
                let refs: Vec<(&str, &str)> =
                    labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                if is_counter {
                    if let Some(val) = item.get("value").and_then(Value::as_u64) {
                        reg.counter_with(name, &refs).add(val);
                    }
                } else if let Some(val) = item.get("value").and_then(Value::as_f64) {
                    reg.gauge_with(name, &refs).add(val as i64);
                }
            }
        }
    }

    /// Serves the `trace` op from this process's span ring. The in-process
    /// cluster (`seqge cluster`) runs router and shards in one process, so
    /// this one ring already holds the full cross-layer trees; a
    /// multi-process deployment scrapes each shard's own `trace` op.
    fn trace_dump(&self, after: u64) -> String {
        let (spans, next) = seqge_obs::trace::snapshot_since(after);
        let items: Vec<Value> = spans.iter().map(span_value).collect();
        Response::ok()
            .field("role", "router")
            .field("spans", Value::Array(items))
            .field("next", next)
            .field("sample_every", seqge_obs::trace::sample_every() as u64)
            .field("pid", std::process::id() as u64)
            .build()
    }

    /// Fans `flightrec` out to every shard and merges: the router's own
    /// document plus one per-shard document (or `null` past the deadline).
    fn flightrec(&self, conns: &mut Conns) -> String {
        let own = seqge_obs::flightrec::document("router");
        let own = serde_json::from_str::<Value>(&own).unwrap_or(Value::Str(own));
        let targets = self.all_shards();
        let got = self.scatter_gather(conns, &targets, |_| r#"{"cmd":"flightrec"}"#.to_string());
        let mut missing = Vec::new();
        let shards: Vec<Value> = got
            .into_iter()
            .enumerate()
            .map(|(s, v)| {
                let body = v
                    .filter(|v| v.get("ok") == Some(&Value::Bool(true)))
                    .and_then(|v| v.get("body").cloned());
                match body {
                    Some(doc) => doc,
                    None => {
                        missing.push(s);
                        Value::Null
                    }
                }
            })
            .collect();
        if !missing.is_empty() {
            self.degraded_total.inc();
        }
        let mut resp = Response::ok()
            .field("role", "router")
            .field("router", own)
            .field("shards", Value::Array(shards))
            .field("degraded", !missing.is_empty())
            .field("missing_shards", Self::missing_field(&missing));
        if !missing.is_empty() {
            resp = resp.field("code", CODE_DEGRADED);
        }
        resp.build()
    }

    fn cluster_status(&self, conns: &mut Conns) -> String {
        // One stats fan-out collects each shard's training-backend
        // descriptor so the status reply can assert homogeneity;
        // unreachable shards contribute `null` (absence is not a
        // mismatch — the health loop deals with dead shards).
        let targets = self.all_shards();
        let got = self.scatter_gather(conns, &targets, |_| r#"{"cmd":"stats"}"#.to_string());
        let backends: Vec<Value> = got
            .iter()
            .map(|v| v.as_ref().and_then(|v| v.get("backend").cloned()).unwrap_or(Value::Null))
            .collect();
        let (backend, backend_mismatch) = Self::backend_consensus(&backends);
        let shards: Vec<Value> = (0..self.num_shards())
            .map(|s| {
                let info = shard_info(&self.shards, s);
                let mut fields = vec![
                    ("shard".to_string(), Value::U64(s as u64)),
                    ("addr".to_string(), Value::Str(info.addr.to_string())),
                    ("epoch".to_string(), Value::U64(info.epoch)),
                    ("healthy".to_string(), Value::Bool(info.healthy)),
                    ("backend".to_string(), backends[s].clone()),
                ];
                match &self.replicas[s] {
                    Some(view) => fields.push((
                        "replica_applied_seq".to_string(),
                        Value::U64(view.applied.load(Ordering::SeqCst)),
                    )),
                    None => fields.push(("replica_applied_seq".to_string(), Value::Null)),
                }
                Value::Object(fields)
            })
            .collect();
        let healthy =
            shards.iter().filter(|v| v.get("healthy") == Some(&Value::Bool(true))).count();
        if backend_mismatch {
            self.degraded_total.inc();
        }
        let mut resp = Response::ok()
            .field("role", "router")
            .field("num_shards", self.num_shards())
            .field("healthy_shards", healthy)
            .field("backend", backend)
            .field("backend_mismatch", backend_mismatch)
            .field("uptime_ms", self.started.elapsed().as_millis() as u64)
            .field("shards", Value::Array(shards))
            .field("degraded", backend_mismatch);
        if backend_mismatch {
            resp = resp.field("code", CODE_DEGRADED);
        }
        resp.build()
    }
}
