//! # seqge-cluster — sharded, replicated embedding serving
//!
//! Scales the single-node `seqge-serve` daemon out: the vertex space is
//! hash-partitioned (plain modulo, see [`partition`]) across N
//! independent serve engines, each with its own WAL directory and
//! trainer thread, behind one scatter-gather [`router`] that speaks the
//! exact same line-delimited JSON protocol — a serve [`seqge_serve::Client`]
//! pointed at the router works unchanged.
//!
//! * **Shard plane** ([`shard`], [`cluster`]) — engines run in-process
//!   (`seqge cluster`) or as spawned `shardd` children (the e2e tests
//!   kill -9 them). Every edge has exactly one owner (the min endpoint's
//!   shard — orientation-invariant, the edge being undirected), so added
//!   shards divide the training work; non-owned vertex
//!   rows are mirrored between shards as read-only **halo** embeddings by
//!   the periodic delta-exchange in `seqge_serve::halo`.
//! * **Router** ([`router`]) — consistent write routing by ownership;
//!   `topk`/`stats` scatter-gather with per-shard deadlines and partial-
//!   result degradation (`"degraded": true` + the missing-shard list);
//!   unreachable-shard writes answer `overloaded`, which the serve
//!   client retries with the same `WriteId` so the shard that did ack
//!   dedups the resend.
//! * **Replication & health** ([`replica`], [`cluster`]) — optional read
//!   replicas fed by streaming the shard WAL (the replay construction is
//!   the recovery path, so a replica is bit-identical to its primary at
//!   every applied sequence number), plus a health loop that respawns
//!   crashed child shards; WAL recovery inside the new process restores
//!   the pre-crash state bit for bit.
//!
//! Pure `std` like the rest of the workspace: no async runtime, no
//! external service dependencies.

#![warn(missing_docs)]

pub mod cluster;
pub mod partition;
pub mod replica;
pub mod router;
pub mod shard;

pub use cluster::{backend_spec, oselm_cfg, train_cfg, Backend, Cluster, ClusterConfig};
pub use partition::{edge_owner, owner, shard_subgraph};
pub use replica::{Replica, ReplicaConfig};
pub use router::{start_router, ReplicaView, RouterConfig, RouterHandle};
pub use shard::{ChildShard, ChildSpec, ShardInfo, ShardTable};
