//! Read replicas: a warm copy of one shard's embeddings, fed by streaming
//! the shard's WAL.
//!
//! A replica boots from the primary's last *committed* generation
//! (`meta.json` → `model.<g>.sge` + `graph.<g>.edges`) and then tails the
//! active segment with [`seqge_serve::wal::SegmentTailer`], replaying each
//! record through its own [`seqge_backend::TrainBackend`] — the identical
//! construction WAL recovery uses, so a replica that has consumed up to
//! sequence `s` is bit-identical to a primary that has applied up to `s`.
//! The backend kind must match the primary's: the committed snapshot is in
//! the backend's own format, and [`BackendSpec::load`] refuses a mismatch.
//!
//! Two things a replica must *not* do: call `Wal::recover` on the live
//! directory (recovery truncates torn tails, which on a live primary are
//! just appends in flight), and trust the segment path across snapshot
//! rotations (the tailer's open descriptor keeps the unlinked old segment
//! readable; the replica drains it to EOF, then switches to the new
//! segment named by `meta.json` — sequence-number dedup absorbs the
//! records the rotation carried forward).
//!
//! The replication lag window is one poll interval plus whatever the
//! trainer apply costs: appends are visible to the tailer as soon as the
//! primary's `write_all` returns, independent of fsync policy.
//!
//! The same tail-a-rewritten-file hazard exists for the halo delta logs
//! (`seqge_serve::halo`), with a twist: a halo log is truncated *in
//! place*, so a re-read after rotation can present bytes the tailer
//! already consumed — including at the exact same offsets when the
//! rewrite lands on the old length. There the dedup key is
//! `(vertex, version)` (strictly-newer-wins in `HaloStore::apply`) plus a
//! header rotation epoch, rather than the WAL's monotonic sequence
//! number; `halo_prop.rs` locks the no-double-apply property under
//! torn-tail and rotation interleavings.

use seqge_backend::{BackendSpec, TrainBackend};
use seqge_graph::{io as graph_io, EdgeEvent, Graph};
use seqge_serve::snapshot::{EmbeddingSnapshot, SnapshotCell};
use seqge_serve::wal::{self, SegmentTailer};
use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How a replica reconstructs the primary's training pipeline. Every
/// field must match the primary exactly or the replay diverges.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Training-backend spec (kind, walk/OS-ELM parameters, seed) — must
    /// name the same backend the primary runs.
    pub spec: BackendSpec,
    /// Full-resample cadence (0 = never), as on the primary.
    pub refresh_every: u64,
    /// Tail poll interval — the dominant term of the lag window.
    pub poll: Duration,
}

/// A running replica. Dropping it stops the tail thread.
pub struct Replica {
    cell: Arc<SnapshotCell>,
    applied: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    failed: Arc<Mutex<Option<String>>>,
    thread: Option<JoinHandle<()>>,
}

impl Replica {
    /// Boots a replica of the shard whose WAL lives in `dir` and starts
    /// tailing. Fails if the store has never committed.
    pub fn start(dir: &Path, cfg: ReplicaConfig) -> io::Result<Replica> {
        let meta = wal::read_meta(dir)?.ok_or_else(|| {
            io::Error::new(
                ErrorKind::NotFound,
                format!("{}: no committed store to replicate", dir.display()),
            )
        })?;
        let mut backend = cfg.spec.load(&dir.join(format!("model.{}.sge", meta.gen)))?;
        let graph = graph_io::load_graph(dir.join(format!("graph.{}.edges", meta.gen)))
            .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        if backend.num_nodes() != graph.num_nodes() {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "snapshot mismatch: model covers {} nodes, graph has {}",
                    backend.num_nodes(),
                    graph.num_nodes()
                ),
            ));
        }

        let boot = EmbeddingSnapshot {
            version: meta.applied_seq,
            emb: backend.publish_view(),
            num_edges: graph.num_edges(),
            walks_trained: 0,
            edges_inserted: 0,
            edges_removed: 0,
            ann: None,
        };
        let cell = Arc::new(SnapshotCell::new(boot));
        let applied = Arc::new(AtomicU64::new(meta.applied_seq));
        let stop = Arc::new(AtomicBool::new(false));
        let failed = Arc::new(Mutex::new(None));

        let mut tail = TailLoop {
            dir: dir.to_path_buf(),
            cfg,
            graph,
            backend,
            segment: meta.segment,
            since_refresh: meta.since_refresh,
            applied_seq: meta.applied_seq,
            walks_trained: 0,
            edges_inserted: 0,
            edges_removed: 0,
            cell: cell.clone(),
            applied: applied.clone(),
            stop: stop.clone(),
        };
        let failed2 = failed.clone();
        let thread = thread::Builder::new().name("seqge-replica".to_string()).spawn(move || {
            if let Err(e) = tail.run() {
                *failed2.lock().expect("replica failure slot poisoned") = Some(e.to_string());
            }
        })?;
        Ok(Replica { cell, applied, stop, failed, thread: Some(thread) })
    }

    /// The replica's published snapshot (router read fallback).
    pub fn cell(&self) -> Arc<SnapshotCell> {
        self.cell.clone()
    }

    /// Highest WAL sequence number folded into the published snapshot.
    pub fn applied_seq(&self) -> u64 {
        self.applied.load(Ordering::SeqCst)
    }

    /// A shared handle on the applied-sequence counter (the router's
    /// `cluster_status` reads it without holding the replica).
    pub fn applied_counter(&self) -> Arc<AtomicU64> {
        self.applied.clone()
    }

    /// The tail thread's fatal error, if it died.
    pub fn failure(&self) -> Option<String> {
        self.failed.lock().expect("replica failure slot poisoned").clone()
    }

    /// Stops the tail thread and joins it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The tail thread's owned state: graph/backend plus replay bookkeeping
/// mirroring WAL recovery exactly.
struct TailLoop {
    dir: PathBuf,
    cfg: ReplicaConfig,
    graph: Graph,
    backend: Box<dyn TrainBackend>,
    segment: u64,
    since_refresh: u64,
    applied_seq: u64,
    walks_trained: usize,
    edges_inserted: usize,
    edges_removed: usize,
    cell: Arc<SnapshotCell>,
    applied: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
}

impl TailLoop {
    fn segment_path(&self, seg: u64) -> PathBuf {
        self.dir.join(format!("wal.{seg}.log"))
    }

    fn run(&mut self) -> io::Result<()> {
        let mut tailer = SegmentTailer::new(self.segment_path(self.segment));
        while !self.stop.load(Ordering::SeqCst) {
            let n = self.apply(tailer.poll()?);
            if n > 0 {
                self.publish();
            }
            // Rotation: the primary committed a snapshot and switched
            // segments. Drain the old descriptor to EOF first, then pick
            // up the new file from its header.
            match wal::read_meta(&self.dir)? {
                Some(meta) if meta.segment != self.segment => {
                    if self.apply(tailer.poll()?) > 0 {
                        self.publish();
                    }
                    self.segment = meta.segment;
                    tailer = SegmentTailer::new(self.segment_path(self.segment));
                }
                _ => {}
            }
            thread::sleep(self.cfg.poll);
        }
        Ok(())
    }

    /// Replays decoded records; mirror of `Trainer::apply` / WAL
    /// recovery: seq-dedup first, rejected events don't advance the
    /// refresh cadence, cadence check after every event.
    fn apply(&mut self, records: Vec<wal::WalRecord>) -> usize {
        let mut applied = 0;
        for rec in records {
            if rec.seq <= self.applied_seq {
                continue; // already folded in (or carried by a rotation)
            }
            self.applied_seq = rec.seq;
            if let Ok(walks) = self.backend.ingest(&mut self.graph, rec.event) {
                self.walks_trained += walks;
                match rec.event {
                    EdgeEvent::Add(..) => self.edges_inserted += 1,
                    EdgeEvent::Remove(..) => self.edges_removed += 1,
                }
                self.since_refresh += 1;
                applied += 1;
            }
            if self.cfg.refresh_every > 0 && self.since_refresh >= self.cfg.refresh_every {
                self.backend.refresh(&self.graph);
                self.since_refresh = 0;
            }
        }
        applied
    }

    fn publish(&mut self) {
        self.cell.publish(EmbeddingSnapshot {
            version: self.applied_seq,
            emb: self.backend.publish_view(),
            num_edges: self.graph.num_edges(),
            walks_trained: self.walks_trained,
            edges_inserted: self.edges_inserted,
            edges_removed: self.edges_removed,
            ann: None,
        });
        self.applied.store(self.applied_seq, Ordering::SeqCst);
    }
}
