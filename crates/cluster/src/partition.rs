//! Vertex-space partitioning: which shard owns which node and edge.
//!
//! The scheme is plain modulo — `owner(v) = v % shards` — chosen over a
//! mixing hash deliberately: the serve protocol's `topk` residue-class
//! filter (`mod`/`rem`) expresses exactly this partition, so the router
//! can ask shard `s` for "your slice of the answer" with
//! `{"mod": shards, "rem": s}` and the filter *is* the ownership test.
//! Modulo also keeps the partition stable under node-id growth: adding
//! nodes never migrates existing ones between shards.
//!
//! An edge `{u, v}` has exactly **one** owner: the owner of its
//! lower-numbered endpoint, `owner(min(u, v))`. The graph is undirected
//! (`add_edge(u, v)` and `remove_edge(v, u)` name the same edge), so
//! ownership must be a function of the *set* `{u, v}`, not of the order a
//! client happened to write the endpoints in — keying on the first
//! argument would route `add_edge(2, 5)` and `remove_edge(5, 2)` to
//! different shards. Every edge is therefore applied and trained exactly
//! once cluster-wide — the previous both-endpoint routing trained
//! cross-shard edges twice, which capped 1→N-shard ingest scaling at ~N/2
//! of the attainable ratio. A shard's walks may still cross partition
//! boundaries
//! (the walk graph is the shard's owned-edge subgraph over the *global*
//! node space); the authoritative embedding row for a non-owned vertex
//! lives on its owner and is mirrored to the other shards as a read-only
//! **halo** copy by the periodic delta-exchange in `seqge_serve::halo`.
//! Ownership is residue-stable: the same `{"mod", "rem"}` filter the
//! router already scatters for `topk` still partitions the answer.

use seqge_graph::{Graph, NodeId};

/// The shard that owns node `v`. Panics if `shards` is zero.
pub fn owner(v: NodeId, shards: usize) -> usize {
    assert!(shards > 0, "a cluster has at least one shard");
    (v as usize) % shards
}

/// The single shard an edge event must reach: the owner of the
/// lower-numbered endpoint. Orientation-invariant —
/// `edge_owner(u, v) == edge_owner(v, u)` — because the graph is
/// undirected and both orderings name the same edge. Exactly one shard
/// applies (and trains) each edge, so added shards divide the training
/// work instead of duplicating it.
pub fn edge_owner(u: NodeId, v: NodeId, shards: usize) -> usize {
    owner(u.min(v), shards)
}

/// The subgraph shard `shard` trains on: every node (embeddings are
/// indexed by global id on every shard), but only the edges it owns.
/// The per-shard subgraphs are a disjoint cover of the full edge set.
pub fn shard_subgraph(g: &Graph, shard: usize, shards: usize) -> Graph {
    let edges: Vec<(NodeId, NodeId)> = g
        .edges()
        .filter(|&(u, v, _)| edge_owner(u, v, shards) == shard)
        .map(|(u, v, _)| (u, v))
        .collect();
    Graph::from_edges_lossy(g.num_nodes(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_graph::generators::classic::erdos_renyi;

    #[test]
    fn ownership_is_total_and_disjoint() {
        for shards in 1..6 {
            for v in 0..100u32 {
                let s = owner(v, shards);
                assert!(s < shards);
                assert_eq!(s, owner(v, shards), "deterministic");
            }
        }
    }

    #[test]
    fn edge_owner_is_the_min_endpoint_owner() {
        assert_eq!(edge_owner(3, 7, 4), 3);
        assert_eq!(edge_owner(1, 5, 4), 1);
        assert_eq!(edge_owner(2, 5, 4), 2);
        // The edge is undirected: argument order must not matter.
        assert_eq!(edge_owner(5, 2, 4), 2);
        assert_eq!(edge_owner(7, 3, 4), 3);
    }

    #[test]
    fn edge_owner_is_orientation_invariant() {
        // add_edge(u, v) and remove_edge(v, u) name the same undirected
        // edge and must land on the same shard, for every pair and shard
        // count.
        for shards in 1..6 {
            for u in 0..40u32 {
                for v in 0..40u32 {
                    assert_eq!(
                        edge_owner(u, v, shards),
                        edge_owner(v, u, shards),
                        "({u},{v}) vs ({v},{u}) at {shards} shards"
                    );
                }
            }
        }
    }

    #[test]
    fn subgraphs_are_a_disjoint_cover_of_the_edge_set() {
        let g = erdos_renyi(60, 0.1, 3);
        let shards = 4;
        let parts: Vec<Graph> = (0..shards).map(|s| shard_subgraph(&g, s, shards)).collect();
        for (u, v, _) in g.edges() {
            let own = edge_owner(u, v, shards);
            for (s, part) in parts.iter().enumerate() {
                assert_eq!(
                    part.has_edge(u, v),
                    s == own,
                    "edge ({u},{v}) vs shard {s}: owner {own}"
                );
            }
        }
        // Exactly one copy of every edge cluster-wide: summed shard edge
        // counts reconcile with the full graph.
        let total: usize = parts.iter().map(Graph::num_edges).sum();
        assert_eq!(total, g.num_edges(), "single-owner cover must not duplicate or drop edges");
    }

    #[test]
    fn one_shard_owns_everything() {
        let g = erdos_renyi(30, 0.2, 9);
        let part = shard_subgraph(&g, 0, 1);
        assert_eq!(part.num_edges(), g.num_edges());
    }
}
