//! Vertex-space partitioning: which shard owns which node.
//!
//! The scheme is plain modulo — `owner(v) = v % shards` — chosen over a
//! mixing hash deliberately: the serve protocol's `topk` residue-class
//! filter (`mod`/`rem`) expresses exactly this partition, so the router
//! can ask shard `s` for "your slice of the answer" with
//! `{"mod": shards, "rem": s}` and the filter *is* the ownership test.
//! Modulo also keeps the partition stable under node-id growth: adding
//! nodes never migrates existing ones between shards.
//!
//! An edge `(u, v)` is routed to **both** endpoint owners (once when they
//! coincide). Each shard therefore trains on the subgraph of edges that
//! touch its slice, so the random walks restarted from an event's
//! endpoints (§4.3.2 of the paper) see every incident edge locally — no
//! cross-shard traffic during walk generation or training.

use seqge_graph::{Graph, NodeId};

/// The shard that owns node `v`. Panics if `shards` is zero.
pub fn owner(v: NodeId, shards: usize) -> usize {
    assert!(shards > 0, "a cluster has at least one shard");
    (v as usize) % shards
}

/// The shards an edge event must reach: owner of `u`, plus owner of `v`
/// when different. Writes go to both so each side's training inputs stay
/// shard-local.
pub fn edge_owners(u: NodeId, v: NodeId, shards: usize) -> (usize, Option<usize>) {
    let a = owner(u, shards);
    let b = owner(v, shards);
    if a == b {
        (a, None)
    } else {
        (a, Some(b))
    }
}

/// The subgraph shard `shard` trains on: every node (embeddings are
/// indexed by global id on every shard), but only the edges with at least
/// one endpoint in the shard's slice.
pub fn shard_subgraph(g: &Graph, shard: usize, shards: usize) -> Graph {
    let edges: Vec<(NodeId, NodeId)> = g
        .edges()
        .filter(|&(u, v, _)| owner(u, shards) == shard || owner(v, shards) == shard)
        .map(|(u, v, _)| (u, v))
        .collect();
    Graph::from_edges_lossy(g.num_nodes(), &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_graph::generators::classic::erdos_renyi;

    #[test]
    fn ownership_is_total_and_disjoint() {
        for shards in 1..6 {
            for v in 0..100u32 {
                let s = owner(v, shards);
                assert!(s < shards);
                assert_eq!(s, owner(v, shards), "deterministic");
            }
        }
    }

    #[test]
    fn edge_owners_covers_both_endpoints_once_each() {
        assert_eq!(edge_owners(3, 7, 4), (3, None)); // 3 % 4 == 7 % 4
        assert_eq!(edge_owners(1, 5, 4), (1, None));
        assert_eq!(edge_owners(2, 5, 4), (2, Some(1)));
        assert_eq!(edge_owners(5, 2, 4), (1, Some(2)));
    }

    #[test]
    fn subgraphs_cover_every_edge() {
        let g = erdos_renyi(60, 0.1, 3);
        let shards = 4;
        let parts: Vec<Graph> = (0..shards).map(|s| shard_subgraph(&g, s, shards)).collect();
        for (u, v, _) in g.edges() {
            let owners = [owner(u, shards), owner(v, shards)];
            for (s, part) in parts.iter().enumerate() {
                let should_have = owners.contains(&s);
                assert_eq!(
                    part.has_edge(u, v),
                    should_have,
                    "edge ({u},{v}) vs shard {s}: owners {owners:?}"
                );
            }
        }
        // Edge multiplicity across shards: one copy per distinct owner.
        let total: usize = parts.iter().map(Graph::num_edges).sum();
        let expected: usize = g
            .edges()
            .map(|(u, v, _)| if owner(u, shards) == owner(v, shards) { 1 } else { 2 })
            .sum();
        assert_eq!(total, expected);
    }
}
