//! The shard plane: one serve engine per vertex partition.
//!
//! A shard is a full `seqge-serve` instance — its own WAL directory, its
//! own trainer thread, its own snapshot cell — owning the vertex slice
//! `{v : v % shards == id}` (see [`crate::partition`]). Shards run either
//! **in-process** (the `seqge cluster` CLI: one process, N engines) or as
//! **spawned children** of the `shardd` binary (the e2e tests, which need
//! processes they can really `kill -9`).
//!
//! The router never talks to a shard object directly; it reads the shared
//! [`ShardInfo`] table for the current address/epoch and dials TCP. The
//! epoch increments on every (re)spawn, so routers know to drop cached
//! connections to a dead incarnation even when the new one reuses the
//! address.

use seqge_backend::BackendKind;
use seqge_serve::ready;
use std::io::{self};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};

/// Where the router finds one shard right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardInfo {
    /// Current listen address (changes across child respawns: port 0).
    pub addr: SocketAddr,
    /// Incarnation counter; bumped on every (re)spawn so cached router
    /// connections to a previous incarnation are discarded.
    pub epoch: u64,
    /// Cleared by the router on send/receive failure, restored by the
    /// health loop once the shard answers again.
    pub healthy: bool,
}

/// The live routing table: one slot per shard, shared between the router
/// workers (readers + health markers) and the health loop (writer).
pub type ShardTable = Arc<Vec<Mutex<ShardInfo>>>;

/// Builds a table with every shard initially healthy at `addrs`.
pub fn shard_table(addrs: &[SocketAddr]) -> ShardTable {
    Arc::new(
        addrs.iter().map(|&addr| Mutex::new(ShardInfo { addr, epoch: 1, healthy: true })).collect(),
    )
}

/// Reads one slot (copy; the lock is held only for the read).
pub fn shard_info(table: &ShardTable, s: usize) -> ShardInfo {
    *table[s].lock().expect("shard table poisoned")
}

/// Marks a shard unhealthy (router-side failure observation).
pub fn mark_unhealthy(table: &ShardTable, s: usize) {
    table[s].lock().expect("shard table poisoned").healthy = false;
}

/// Publishes a new incarnation of shard `s`.
pub fn publish_incarnation(table: &ShardTable, s: usize, addr: SocketAddr) {
    let mut slot = table[s].lock().expect("shard table poisoned");
    slot.addr = addr;
    slot.epoch += 1;
    slot.healthy = true;
}

/// How to (re)launch one child shard: the `shardd` invocation minus the
/// ephemeral parts. Respawning runs the identical command line; recovery
/// comes from the shard's WAL directory, not from process state.
#[derive(Debug, Clone)]
pub struct ChildSpec {
    /// Path to the `shardd` binary.
    pub exe: PathBuf,
    /// The shard's WAL directory.
    pub dir: PathBuf,
    /// Embedding dimension (must match across restarts).
    pub dim: usize,
    /// Training seed (must match across restarts).
    pub seed: u64,
    /// Full-resample cadence forwarded to the engine.
    pub refresh_every: u64,
    /// This shard's index in the cluster.
    pub shard_id: usize,
    /// Total shard count (halo sync is enabled when > 1).
    pub shards: usize,
    /// Cluster root directory holding every `shard-<i>/` (peers' halo logs
    /// are tailed from here).
    pub base_dir: PathBuf,
    /// Halo delta-exchange cadence in milliseconds.
    pub halo_sync_ms: u64,
    /// Training backend the child runs (must match across restarts: the
    /// committed snapshot is in the backend's own format).
    pub train_backend: BackendKind,
}

impl ChildSpec {
    fn command(&self) -> Command {
        let mut cmd = Command::new(&self.exe);
        cmd.args(["--dir", &self.dir.display().to_string()])
            .args(["--dim", &self.dim.to_string()])
            .args(["--seed", &self.seed.to_string()])
            .args(["--refresh-every", &self.refresh_every.to_string()])
            .args(["--shard-id", &self.shard_id.to_string()])
            .args(["--shards", &self.shards.to_string()])
            .args(["--base-dir", &self.base_dir.display().to_string()])
            .args(["--halo-sync-ms", &self.halo_sync_ms.to_string()])
            .args(["--backend", self.train_backend.as_str()])
            .args(["--addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        cmd
    }

    /// Spawns the child and waits for its `READY <addr>` banner.
    pub fn spawn(&self) -> io::Result<(Child, SocketAddr)> {
        let mut child = self.command().spawn()?;
        match ready::await_ready(&mut child) {
            Ok(addr) => Ok((child, addr)),
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                Err(io::Error::other(format!(
                    "shardd at {} died before READY: {e}",
                    self.dir.display()
                )))
            }
        }
    }
}

/// One running child shard with kill-on-drop (a failing test must not
/// leak daemons).
#[derive(Debug)]
pub struct ChildShard {
    /// The shard index this child serves.
    pub id: usize,
    /// Respawn recipe.
    pub spec: ChildSpec,
    child: Child,
}

impl ChildShard {
    /// Spawns shard `id` from `spec`.
    pub fn spawn(id: usize, spec: ChildSpec) -> io::Result<(ChildShard, SocketAddr)> {
        let (child, addr) = spec.spawn()?;
        Ok((ChildShard { id, spec, child }, addr))
    }

    /// Non-blocking liveness check: `Some(())` if the process has exited.
    pub fn exited(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(Some(_)))
    }

    /// Replaces a dead child with a fresh incarnation (WAL recovery
    /// happens inside the new process before it prints READY).
    pub fn respawn(&mut self) -> io::Result<SocketAddr> {
        let _ = self.child.wait(); // reap the corpse
        let (child, addr) = self.spec.spawn()?;
        self.child = child;
        Ok(addr)
    }

    /// SIGKILL, for tests and teardown.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// The child's process id (tests kill -9 by pid).
    pub fn pid(&self) -> u32 {
        self.child.id()
    }
}

impl Drop for ChildShard {
    fn drop(&mut self) {
        self.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_epoch_and_health_transitions() {
        let a1: SocketAddr = "127.0.0.1:4001".parse().unwrap();
        let a2: SocketAddr = "127.0.0.1:4002".parse().unwrap();
        let table = shard_table(&[a1]);
        assert_eq!(shard_info(&table, 0), ShardInfo { addr: a1, epoch: 1, healthy: true });
        mark_unhealthy(&table, 0);
        assert!(!shard_info(&table, 0).healthy);
        publish_incarnation(&table, 0, a2);
        assert_eq!(shard_info(&table, 0), ShardInfo { addr: a2, epoch: 2, healthy: true });
    }
}
