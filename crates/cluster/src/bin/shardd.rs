//! shardd — one cluster shard as a standalone process.
//!
//! The cluster's child backend spawns one of these per vertex partition;
//! the e2e tests `kill -9` them and let the health loop respawn them.
//! A shard is just a WAL-backed serve engine: this binary is `chaosd`
//! minus fault injection, booting **only** through WAL recovery (the
//! cluster commits the initial store before the first spawn, so cold
//! boot and crash recovery are the same code path).
//!
//! ```text
//! shardd --dir STORE [--dim 8] [--seed 11] [--fsync batch]
//!        [--refresh-every 0] [--addr 127.0.0.1:0] [--backend float]
//!        [--shard-id 0 --shards 1 --base-dir DIR --halo-sync-ms 50]
//! ```
//!
//! With `--shards` > 1 (and `--base-dir` pointing at the cluster root
//! holding every `shard-<i>/`), the engine also runs the halo sync loop:
//! it publishes its owned embedding rows to `halo.log` and mirrors its
//! peers' into a read-only store answered by the `halo` wire command.
//!
//! Prints `READY <addr>` on stdout once the listener is up. The training
//! configuration is fixed to [`seqge_cluster::train_cfg`] — every shard,
//! replica, and replay in one cluster must agree on it.

use seqge_backend::BackendKind;
use seqge_cluster::backend_spec;
use seqge_serve::wal::WalConfig;
use seqge_serve::{
    boot_wal, ready, start_backend, FsyncPolicy, HaloConfig, ServeConfig, TrainerConfig,
};
use std::path::PathBuf;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("shardd: {msg}");
    exit(2);
}

fn main() {
    // Arm the flight recorder before anything else: the e2e suites kill -9
    // this process, and the periodic dump is what survives for forensics.
    seqge_obs::flightrec::configure_from_env("shard");
    let mut dir: Option<PathBuf> = None;
    let mut dim = 8usize;
    let mut seed = 11u64;
    let mut fsync = FsyncPolicy::Batch;
    let mut refresh_every = 0u64;
    let mut addr = "127.0.0.1:0".to_string();
    let mut shard_id = 0usize;
    let mut shards = 1usize;
    let mut base_dir: Option<PathBuf> = None;
    let mut halo_sync_ms = 50u64;
    let mut backend = BackendKind::Float;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| fail(format!("{flag}: missing value")));
        match flag.as_str() {
            "--dir" => dir = Some(PathBuf::from(value())),
            "--dim" => dim = value().parse().unwrap_or_else(|_| fail("--dim: not a number")),
            "--seed" => seed = value().parse().unwrap_or_else(|_| fail("--seed: not a number")),
            "--fsync" => fsync = FsyncPolicy::parse(&value()).unwrap_or_else(|e| fail(e)),
            "--refresh-every" => {
                refresh_every =
                    value().parse().unwrap_or_else(|_| fail("--refresh-every: not a number"))
            }
            "--addr" => addr = value(),
            "--shard-id" => {
                shard_id = value().parse().unwrap_or_else(|_| fail("--shard-id: not a number"))
            }
            "--shards" => {
                shards = value().parse().unwrap_or_else(|_| fail("--shards: not a number"))
            }
            "--base-dir" => base_dir = Some(PathBuf::from(value())),
            "--halo-sync-ms" => {
                halo_sync_ms =
                    value().parse().unwrap_or_else(|_| fail("--halo-sync-ms: not a number"))
            }
            "--backend" => backend = BackendKind::parse(&value()).unwrap_or_else(|e| fail(e)),
            other => fail(format!("unknown flag `{other}`")),
        }
    }
    let dir = dir.unwrap_or_else(|| fail("--dir is required"));

    let spec = backend_spec(backend, dim, seed);
    let wcfg = WalConfig { dir, fsync };
    let boot = match boot_wal(&wcfg, None, &spec, refresh_every) {
        Ok(b) => b,
        Err(e) => fail(format!("boot: {e}")),
    };
    eprintln!(
        "shardd: recovered gen {} segment {} (replayed {}, skipped {}, torn tail: {})",
        boot.report.gen,
        boot.report.segment,
        boot.report.replayed,
        boot.report.skipped_applied,
        boot.report.torn_tail
    );
    let halo = match (&base_dir, shards > 1) {
        (Some(base), true) => {
            Some(HaloConfig::for_shard(base, shard_id, shards, Duration::from_millis(halo_sync_ms)))
        }
        (None, true) => fail("--shards > 1 requires --base-dir for peer halo logs"),
        _ => None,
    };
    let config = ServeConfig {
        trainer: TrainerConfig { refresh_every, ..TrainerConfig::default() },
        wal: Some(Arc::new(boot.wal)),
        halo,
        ..ServeConfig::default()
    };
    let handle = match start_backend(&addr, boot.graph, boot.backend, config) {
        Ok(h) => h,
        Err(e) => fail(format!("listen: {e}")),
    };
    ready::announce(handle.addr());
    if let Err(e) = handle.wait() {
        fail(format!("server: {e}"));
    }
    let _ = seqge_obs::flightrec::dump();
}
