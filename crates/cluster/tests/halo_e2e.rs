//! Halo-consistency end-to-end suite.
//!
//! Single-owner partitioning assigns every edge to exactly one shard
//! (`edge_owner(u, v) = owner(min(u, v))`, orientation-invariant because
//! the edge is undirected); the halo plane then mirrors each
//! shard's owned embedding rows to its peers as read-only copies. These
//! scenarios lock the three guarantees that make that split sound:
//!
//! 1. **Exactly-once training** — per-shard `edges_inserted` counters
//!    summed across a 4-shard cluster reconcile with the number of edges
//!    streamed: no cross-shard edge is trained twice (the pre-halo
//!    both-endpoint router would sum to ~2× on cross-community edges).
//! 2. **Halo mirroring** — every shard's halo row for a non-owned vertex
//!    converges to the owner's authoritative embedding, bit-identically.
//! 3. **kill -9 an owner** — after SIGKILL, WAL replay, and respawn, the
//!    owner's halo log is rewritten from scratch (fresh rotation epoch)
//!    and every peer re-converges to rows bit-identical to the recovered
//!    owner's; the `(vertex, version)` dedup absorbs the replayed log.
//!
//! Plus the structural check the topk plane depends on: a 4-shard
//! cluster on a planted-community graph with cross-community edges keeps
//! the community signal within the single-node tolerance documented in
//! DESIGN.md.

use seqge_cluster::{edge_owner, owner, train_cfg, Backend, Cluster, ClusterConfig};
use seqge_core::model::EmbeddingModel;
use seqge_graph::generators::classic::erdos_renyi;
use seqge_graph::{spanning_forest, Graph};
use seqge_sampling::UpdatePolicy;
use seqge_serve::{boot_cold, Client, ClientConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const DIM: usize = 8;
const SEED: u64 = 11;
const SHARDS: usize = 4;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqge_halo_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn client(addr: &str) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            timeout: Duration::from_secs(5),
            retries: 12,
            client_id: "halo-e2e".to_string(),
            ..ClientConfig::default()
        },
    )
    .expect("client connects")
}

/// The chaos-suite graph: a spanning forest committed up front, the held
/// out edges streamed live. Erdős–Rényi edges land across residue
/// classes, so the stream is full of cross-shard edges — the case
/// exactly-once accounting exists for.
fn test_stream(graph_seed: u64) -> (Graph, Vec<(u32, u32)>) {
    let full = erdos_renyi(40, 0.18, graph_seed);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    (initial, split.removed_edges)
}

fn row_from(resp: &serde_json::Value) -> Vec<f32> {
    resp.get("embedding")
        .and_then(serde_json::Value::as_array)
        .expect("embedding array")
        .iter()
        .map(|x| x.as_f64().expect("embedding component") as f32)
        .collect()
}

/// Polls shard `p`'s halo store until its row for `v` equals `want`
/// bit-for-bit, or the deadline passes. Reconnects each attempt so a
/// respawned shard (new port) is picked up.
fn await_halo_row(addr: &str, v: u32, want: &[f32], deadline: Instant) -> bool {
    loop {
        let mut c = client(addr);
        if let Ok(resp) = c.call(&format!(r#"{{"cmd":"halo","node":{v}}}"#)) {
            if resp.get("ok") == Some(&serde_json::Value::Bool(true)) && row_from(&resp) == want {
                return true;
            }
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn edges_train_exactly_once_and_halos_mirror_owners() {
    let base = scratch("mirror");
    let (initial, edges) = test_stream(7);
    assert!(
        edges.iter().any(|&(u, v)| u % SHARDS as u32 != v % SHARDS as u32),
        "stream must contain cross-shard edges for the reconciliation to mean anything"
    );
    let cfg = ClusterConfig::in_process(SHARDS, base.clone(), DIM, SEED);
    let cluster = Cluster::start(&cfg, &initial).expect("cluster boots");
    let mut c = client(&cluster.addr().to_string());
    for &(u, v) in &edges {
        c.add_edge(u, v).expect("routed write acks");
    }
    c.flush().expect("flush barrier");

    // (1) Exactly-once: per-shard applied-edge counters sum to the stream
    // length. Under both-endpoint routing this sum would exceed the
    // stream by one per cross-shard edge.
    let addrs = cluster.shard_addrs();
    let mut per_shard = Vec::new();
    for addr in &addrs {
        let mut sc = client(&addr.to_string());
        let stats = sc.call(r#"{"cmd":"stats"}"#).expect("shard stats");
        per_shard
            .push(stats.get("edges_inserted").and_then(serde_json::Value::as_u64).unwrap_or(0));
    }
    let total: u64 = per_shard.iter().sum();
    assert_eq!(
        total,
        edges.len() as u64,
        "per-shard train counters must reconcile with the stream (per shard: {per_shard:?}) — \
         a mismatch means an edge was trained twice (or dropped)"
    );

    // (2) Halo mirroring: every shard's halo row for a foreign vertex
    // converges to the owner's authoritative row, bit-identically.
    let deadline = Instant::now() + Duration::from_secs(15);
    for v in 0..12u32 {
        let own = owner(v, SHARDS);
        let authoritative =
            client(&addrs[own].to_string()).get_embedding(v).expect("owner row readable");
        for (p, addr) in addrs.iter().enumerate() {
            if p == own {
                continue;
            }
            assert!(
                await_halo_row(&addr.to_string(), v, &authoritative, deadline),
                "shard {p}: halo row for vertex {v} never converged to owner {own}'s embedding"
            );
        }
    }
    // The store-level counters are visible on the wire too.
    let mut sc = client(&addrs[0].to_string());
    let halo = sc.call(r#"{"cmd":"halo"}"#).expect("halo summary");
    let vertices = halo.get("vertices").and_then(serde_json::Value::as_u64).unwrap();
    assert!(vertices >= 12, "shard 0 should mirror its peers' rows, holds {vertices}");

    drop(c);
    cluster.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);
}

/// The graph is undirected, so a client may name one edge in either
/// orientation: `add_edge(v, u)` then `remove_edge(u, v)` must reach the
/// *same* owning shard, or the removal would land on a shard that never
/// saw the edge and the edge would survive forever on the real owner.
#[test]
fn reversed_endpoint_orientation_routes_to_the_same_owner() {
    let base = scratch("reversed");
    let (initial, edges) = test_stream(19);
    let cross: Vec<(u32, u32)> = edges
        .iter()
        .copied()
        .filter(|&(u, v)| u % SHARDS as u32 != v % SHARDS as u32)
        .take(8)
        .collect();
    assert!(cross.len() >= 4, "need cross-shard edges, got {}", cross.len());
    let cfg = ClusterConfig::in_process(SHARDS, base.clone(), DIM, SEED);
    let cluster = Cluster::start(&cfg, &initial).expect("cluster boots");
    let mut c = client(&cluster.addr().to_string());

    let routed_shard = |resp: &serde_json::Value| -> usize {
        resp.get("shards")
            .and_then(serde_json::Value::as_array)
            .and_then(|a| a.first())
            .and_then(serde_json::Value::as_u64)
            .expect("write ack names the routed shard") as usize
    };
    for &(u, v) in &cross {
        // Add in reversed orientation…
        let add = c.call(&format!(r#"{{"cmd":"add_edge","u":{v},"v":{u}}}"#)).expect("add acks");
        assert_eq!(add.get("ok"), Some(&serde_json::Value::Bool(true)), "add (v,u): {add:?}");
        assert_eq!(
            routed_shard(&add),
            edge_owner(u, v, SHARDS),
            "add ({v},{u}) must route to the canonical owner"
        );
    }
    c.flush().expect("flush barrier");
    for &(u, v) in &cross {
        // …remove in the opposite orientation: same edge, same shard.
        let rm = c.call(&format!(r#"{{"cmd":"remove_edge","u":{u},"v":{v}}}"#)).expect("rm acks");
        assert_eq!(rm.get("ok"), Some(&serde_json::Value::Bool(true)), "remove (u,v): {rm:?}");
        assert_eq!(
            routed_shard(&rm),
            edge_owner(v, u, SHARDS),
            "remove ({u},{v}) must route to the canonical owner"
        );
    }
    c.flush().expect("flush barrier");

    // The owning shards really applied both orientations: cluster-wide
    // counters reconcile. A mis-routed removal hits a shard without the
    // edge and applies nothing, leaving the sum short.
    let (mut inserted, mut removed) = (0u64, 0u64);
    for addr in cluster.shard_addrs() {
        let stats = client(&addr.to_string()).call(r#"{"cmd":"stats"}"#).expect("shard stats");
        inserted += stats.get("edges_inserted").and_then(serde_json::Value::as_u64).unwrap_or(0);
        removed += stats.get("edges_removed").and_then(serde_json::Value::as_u64).unwrap_or(0);
    }
    assert_eq!(inserted, cross.len() as u64, "every reversed add applied exactly once");
    assert_eq!(removed, cross.len() as u64, "every reversed removal found its edge");

    drop(c);
    cluster.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);
}

/// Planted communities along residue classes mod 4 (shard-pure), plus one
/// edge from every node into each foreign residue class so cross-shard
/// score merging stays comparable (see DESIGN.md).
fn community_graph(nodes: usize) -> Graph {
    let shards = SHARDS as u32;
    let mut edges = Vec::new();
    for u in 0..nodes as u32 {
        for v in (u + 1)..nodes as u32 {
            if u % shards == v % shards {
                edges.push((u, v));
            }
        }
    }
    for u in 0..nodes as u32 {
        for off in 1..shards {
            edges.push((u, (u + off) % nodes as u32));
        }
    }
    Graph::from_edges_lossy(nodes, &edges)
}

#[test]
fn four_shard_topk_with_halos_keeps_community_signal() {
    const NODES: usize = 48;
    const K: usize = 5;
    let graph = community_graph(NODES);

    let (model, _inc) = boot_cold(
        &graph,
        &train_cfg(DIM),
        seqge_cluster::oselm_cfg(DIM),
        UpdatePolicy::every_edge(),
        SEED,
    );
    let single = seqge_serve::snapshot::EmbeddingSnapshot {
        version: 0,
        emb: model.embedding(),
        num_edges: graph.num_edges(),
        walks_trained: 0,
        edges_inserted: 0,
        edges_removed: 0,
        ann: None,
    };

    let base = scratch("topk");
    let cfg = ClusterConfig::in_process(SHARDS, base.clone(), DIM, SEED);
    let cluster = Cluster::start(&cfg, &graph).expect("cluster boots");
    let mut c = client(&cluster.addr().to_string());

    let mut single_hits = 0usize;
    let mut cluster_hits = 0usize;
    for q in 0..NODES as u32 {
        let want_comm = q % SHARDS as u32;
        let reference = single.topk(q, K, seqge_eval::EdgeOp::Cosine).expect("query in range");
        single_hits += reference.iter().filter(|(v, _)| v % SHARDS as u32 == want_comm).count();
        let routed = c.topk(q, K, seqge_eval::EdgeOp::Cosine).expect("routed topk");
        assert_eq!(routed.len(), K, "router merged fewer than k results");
        cluster_hits += routed.iter().filter(|(v, _)| v % SHARDS as u32 == want_comm).count();
    }
    // Same tolerance as the cluster e2e suite: both deployments recover
    // the planted structure (≥2 of top-5 in-community on average), and
    // the sharded run keeps at least three quarters of the single-node
    // signal. Exact rank equality is impossible — each shard trains an
    // independent model over its owned edges only.
    let floor = NODES * 2;
    eprintln!(
        "community recovery: single {single_hits}/{t}, cluster {cluster_hits}/{t}",
        t = NODES * K
    );
    assert!(single_hits >= floor, "single-node failed community recovery: {single_hits}");
    assert!(cluster_hits >= floor, "cluster failed community recovery: {cluster_hits}");
    assert!(
        cluster_hits * 4 >= single_hits * 3,
        "sharded topk lost the community signal: cluster {cluster_hits} vs single {single_hits}"
    );
    drop(c);
    cluster.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn kill9_owner_shard_replays_halos_bit_identically() {
    let exe = PathBuf::from(env!("CARGO_BIN_EXE_shardd"));
    let base = scratch("kill9");
    let (initial, edges) = test_stream(13);
    assert!(edges.len() >= 20, "need a real stream, got {}", edges.len());
    let kill_at = edges.len() / 2;

    let cfg = ClusterConfig {
        backend: Backend::Child { exe },
        ..ClusterConfig::in_process(SHARDS, base.clone(), DIM, SEED)
    };
    let cluster = Cluster::start(&cfg, &initial).expect("cluster boots");
    let mut c = client(&cluster.addr().to_string());

    let mut killed = 0usize;
    for (i, &(u, v)) in edges.iter().enumerate() {
        if i == kill_at {
            // SIGKILL the owner of the next write: the write retries until
            // the health loop respawns the shard, so at least one event
            // lands post-recovery and advances the owner's version past
            // everything the peers' halo stores have seen.
            killed = edge_owner(u, v, SHARDS);
            cluster.kill_child(killed);
        }
        c.add_edge(u, v).unwrap_or_else(|e| panic!("write ({u},{v}) never succeeded: {e}"));
    }
    c.flush().expect("flush barrier");

    // The kill was real: the shard's incarnation epoch advanced.
    let status = c.call(r#"{"cmd":"cluster_status"}"#).expect("cluster_status");
    let shards = status.get("shards").and_then(serde_json::Value::as_array).unwrap();
    let epoch = shards[killed].get("epoch").and_then(serde_json::Value::as_u64).unwrap();
    assert!(epoch >= 2, "shard {killed} was never respawned (epoch {epoch})");

    // Every peer's halo rows for the killed shard's vertices re-converge
    // to the recovered owner's authoritative embeddings, bit-identically:
    // the respawned owner rewrote its halo log from scratch (fresh epoch),
    // peers reset and re-read, and the (vertex, version) dedup absorbed
    // whatever they had already applied.
    let addrs = cluster.shard_addrs();
    let deadline = Instant::now() + Duration::from_secs(20);
    let owned: Vec<u32> =
        (0..initial.num_nodes() as u32).filter(|v| owner(*v, SHARDS) == killed).take(6).collect();
    assert!(!owned.is_empty(), "killed shard owns no vertices?");
    for &v in &owned {
        let authoritative = client(&addrs[killed].to_string())
            .get_embedding(v)
            .expect("recovered owner's row readable");
        for (p, addr) in addrs.iter().enumerate() {
            if p == killed {
                continue;
            }
            assert!(
                await_halo_row(&addr.to_string(), v, &authoritative, deadline),
                "shard {p}: halo row for vertex {v} diverged from respawned owner {killed}"
            );
        }
    }

    drop(c);
    cluster.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);
}
