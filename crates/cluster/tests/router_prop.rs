//! Adversarial protocol-framing property tests against the *router*.
//!
//! The router fronts the whole cluster, so a wedged router is a wedged
//! deployment. Same contract as the single-node server (see
//! `crates/serve/tests/proto_prop.rs`): arbitrary bytes, truncated
//! requests, type-confused JSON, and oversized lines each get exactly one
//! `ok:false` reply, only the length cap closes the connection, and a
//! `ping` still answers afterward — the garbage must never reach a shard
//! as a half-parsed write, panic a worker, or hang the scatter-gather
//! path.

use proptest::prelude::*;
use seqge_cluster::{Cluster, ClusterConfig};
use seqge_graph::generators::classic::erdos_renyi;
use seqge_serve::protocol::MAX_LINE_BYTES;
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

const DIM: usize = 4;
const SEED: u64 = 9;

/// One shared 2-shard in-process cluster for every generated case. The
/// cluster is forgotten (not torn down): it lives for the binary's life,
/// and the scratch WAL directory is process-unique.
fn router_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let base = std::env::temp_dir().join(format!("seqge_routerprop_{}", std::process::id()));
        let graph = erdos_renyi(12, 0.3, 42);
        let cfg = ClusterConfig::in_process(2, base, DIM, SEED);
        let cluster = Cluster::start(&cfg, &graph).expect("prop cluster boots");
        let addr = cluster.addr();
        std::mem::forget(cluster);
        addr
    })
}

fn connect() -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(router_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (stream, reader)
}

fn send_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &[u8]) -> String {
    stream.write_all(line).expect("write line");
    stream.write_all(b"\n").expect("write newline");
    let mut reply = String::new();
    let n = reader.read_line(&mut reply).expect("router must reply, not hang");
    assert!(n > 0, "router closed instead of replying");
    reply.trim_end().to_string()
}

fn assert_error_reply(reply: &str) -> String {
    let v: Value =
        serde_json::from_str(reply).unwrap_or_else(|e| panic!("reply is not JSON ({e}): {reply}"));
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "garbage must be refused: {reply}");
    v.get("error").and_then(Value::as_str).expect("error string present").to_string()
}

/// The liveness probe doubles as a routing check: the reply must come from
/// the router itself, not be blind-forwarded to a shard.
fn assert_alive(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    let reply = send_raw(stream, reader, br#"{"cmd":"ping"}"#);
    let v: Value = serde_json::from_str(&reply).expect("ping reply is JSON");
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "ping after garbage: {reply}");
    assert_eq!(v.get("role").and_then(Value::as_str), Some("router"), "router answers pings");
}

/// Router-specific confusion on top of the generic shapes: garbage around
/// the `cluster_status` peek path and the router-internal topk filter.
const CONFUSED: &[&str] = &[
    r#"{"cmd":"no_such_op"}"#,
    r#"{"cmd":42}"#,
    r#"{"notcmd":true,"extra":[{"deep":{"deeper":null}}]}"#,
    r#"{"cmd":"cluster_statu"}"#,
    r#"{"cmd":["cluster_status"]}"#,
    r#"{"cmd":"topk","node":0,"k":1,"mod":2,"rem":0}"#,
    r#"{"cmd":"topk","node":0,"k":1,"rem":1}"#,
    r#"{"cmd":"add_edge","u":"zero","v":1}"#,
    r#"{"cmd":"score_link","u":0}"#,
    r#"{"cmd":"get_embedding","node":-3}"#,
    r#"{}"#,
    r#"[]"#,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary non-newline bytes: one error reply per line, connection
    /// survives, and the router (not a shard) still answers pings.
    #[test]
    fn arbitrary_bytes_get_an_error_reply_and_never_wedge(
        raw in proptest::collection::vec(any::<u8>(), 1..200),
    ) {
        let line: Vec<u8> = raw.iter().map(|&b| if b == b'\n' { b' ' } else { b }).collect();
        let (mut stream, mut reader) = connect();
        let reply = send_raw(&mut stream, &mut reader, &line);
        assert_error_reply(&reply);
        assert_alive(&mut stream, &mut reader);
    }

    /// Every proper prefix of a valid write is refused at the router —
    /// nothing half-parsed may fan out to the shards.
    #[test]
    fn truncated_requests_are_refused_not_fanned_out(
        u in 0u32..12, v in 0u32..12, pct in 0usize..100,
    ) {
        let full = format!(r#"{{"cmd":"add_edge","u":{u},"v":{v}}}"#);
        let cut = pct * (full.len() - 1) / 100; // always a *proper* prefix
        let (mut stream, mut reader) = connect();
        let reply = send_raw(&mut stream, &mut reader, &full.as_bytes()[..cut]);
        assert_error_reply(&reply);
        assert_alive(&mut stream, &mut reader);
    }

    /// Well-formed JSON that is not a well-formed request — including the
    /// router-reserved `mod`/`rem` topk fields — is refused with an error.
    #[test]
    fn type_confused_json_is_refused(idx in 0usize..12) {
        let (mut stream, mut reader) = connect();
        let reply = send_raw(&mut stream, &mut reader, CONFUSED[idx].as_bytes());
        let err = assert_error_reply(&reply);
        assert!(!err.is_empty(), "error message must not be empty");
        assert_alive(&mut stream, &mut reader);
    }

    /// A line past the cap: one error reply, then close. The router must
    /// not buffer unboundedly while scatter-gather connections sit idle.
    #[test]
    fn oversized_lines_are_answered_then_closed(pad in 1usize..1024) {
        let (mut stream, mut reader) = connect();
        let line = vec![b'x'; MAX_LINE_BYTES + pad];
        stream.write_all(&line).expect("write oversized");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("cap reply, not a hang");
        let err = assert_error_reply(reply.trim_end());
        prop_assert!(err.contains("exceeds"), "cap error names the limit: {}", err);
        let mut rest = String::new();
        let n = reader.read_line(&mut rest).expect("read after cap reply");
        prop_assert_eq!(n, 0, "router must close after the cap reply");
    }
}
