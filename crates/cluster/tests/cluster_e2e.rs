//! Cluster end-to-end suite.
//!
//! Scenarios:
//!
//! 1. **1-shard equivalence** — a one-shard cluster is byte-for-byte the
//!    single-node service: every embedding row matches an in-process
//!    reference trainer fed the same event stream.
//! 2. **kill -9 one shard** — a 4-shard child-backed cluster loses one
//!    shard mid-stream; writes targeting it answer `overloaded` (the
//!    client backs off and retries with the same WriteId), the health
//!    loop respawns it, WAL replay restores its state, and the final
//!    embeddings are bit-identical to an uninterrupted run of the same
//!    stream. Seeds come from `SEQGE_CLUSTER_SEED` (comma-separated; CI
//!    fans a matrix).
//! 3. **cross-shard topk agreement** — on a planted-community graph
//!    (communities laid along residue classes mod 4, so each community
//!    is shard-pure), the sharded `topk` recovers the same community
//!    structure as a single-node run. Exact score equality across the
//!    two deployments is *not* expected — shard-local training sees
//!    only edges touching its slice, and the OS-ELM `P` matrix and walk
//!    RNG are global state in single-node training — so the assertion
//!    is structural, as documented in DESIGN.md.
//! 4. **degraded reads + replica fallback** — a router over a table with
//!    one dead shard serves `topk` with `degraded: true` + the missing
//!    shard list, and serves `get_embedding` for the dead shard's nodes
//!    from a WAL-fed replica tagged `"source": "replica"`.

use seqge_backend::{BackendKind, BackendSpec, TrainBackend};
use seqge_cluster::{
    edge_owner, owner, start_router, Backend, Cluster, ClusterConfig, ReplicaView, RouterConfig,
};
use seqge_graph::generators::classic::erdos_renyi;
use seqge_graph::{spanning_forest, EdgeEvent, Graph, NodeId};
use seqge_serve::{Client, ClientConfig};
use std::path::PathBuf;
use std::time::Duration;

const DIM: usize = 8;
const SEED: u64 = 11;

/// The training backend under test: `SEQGE_BACKEND=float|fpga-sim` (CI
/// runs the whole suite under both).
fn backend_kind() -> BackendKind {
    match std::env::var("SEQGE_BACKEND") {
        Ok(s) => BackendKind::parse(&s).expect("SEQGE_BACKEND"),
        Err(_) => BackendKind::Float,
    }
}

fn spec() -> BackendSpec {
    seqge_cluster::backend_spec(backend_kind(), DIM, SEED)
}

/// The cluster config every scenario starts from, bound to the backend
/// under test.
fn cluster_cfg(shards: usize, base: PathBuf) -> ClusterConfig {
    ClusterConfig {
        train_backend: backend_kind(),
        ..ClusterConfig::in_process(shards, base, DIM, SEED)
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqge_cluster_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn client(addr: &str) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            timeout: Duration::from_secs(5),
            retries: 12,
            client_id: "e2e".to_string(),
            ..ClientConfig::default()
        },
    )
    .expect("client connects to router")
}

/// The chaos-suite graph: a spanning forest committed up front, the held
/// out edges streamed live.
fn test_stream(graph_seed: u64) -> (Graph, Vec<(u32, u32)>) {
    let full = erdos_renyi(40, 0.18, graph_seed);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    (initial, split.removed_edges)
}

fn embedding_rows(backend: &mut dyn TrainBackend) -> Vec<Vec<f32>> {
    let emb = backend.publish_view();
    (0..emb.rows()).map(|r| emb.as_slice()[r * emb.cols()..(r + 1) * emb.cols()].to_vec()).collect()
}

#[test]
fn one_shard_cluster_is_bit_identical_to_single_node() {
    let base = scratch("one");
    let (initial, edges) = test_stream(7);
    let cfg = cluster_cfg(1, base.clone());
    let cluster = Cluster::start(&cfg, &initial).expect("cluster boots");

    // Reference: the exact single-node construction, fed the same stream.
    // The shard boots through WAL recovery (bootstrap pass, commit,
    // recover), so the reference is a bootstrap-trained state driven by a
    // *fresh* driver — save then reload through the spec, exactly the
    // snapshot-restore construction recovery uses.
    let mut reference = {
        let mut boot = spec().cold(initial.num_nodes());
        boot.bootstrap(&initial);
        let tmp = base.join("reference.sge");
        boot.save_state(&tmp).expect("reference snapshot");
        spec().load(&tmp).expect("reference reload")
    };
    let mut reference_graph = initial.clone();

    let mut c = client(&cluster.addr().to_string());
    for &(u, v) in &edges {
        c.add_edge(u, v).expect("routed write acks");
        let _ = reference.ingest(&mut reference_graph, EdgeEvent::Add(u, v));
    }
    c.flush().expect("flush barrier");

    for (n, want) in embedding_rows(reference.as_mut()).iter().enumerate() {
        let got = c.get_embedding(n as u32).expect("row readable");
        assert_eq!(&got, want, "node {n}: one-shard cluster diverged from single-node");
    }
    // Sanity on the merged stats plane.
    let stats = c.stats().expect("stats fan-out");
    assert_eq!(stats.get("degraded"), Some(&serde_json::Value::Bool(false)));
    drop(c);
    cluster.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);
}

/// Seeds for the kill -9 scenario, from `SEQGE_CLUSTER_SEED` (CI matrix).
fn cluster_seeds() -> Vec<u64> {
    match std::env::var("SEQGE_CLUSTER_SEED") {
        Ok(s) => s
            .split(',')
            .map(|p| p.trim().parse().expect("SEQGE_CLUSTER_SEED: comma-separated u64s"))
            .collect(),
        Err(_) => vec![1],
    }
}

#[test]
fn kill9_one_shard_recovers_bit_identical_to_uninterrupted_run() {
    for seed in cluster_seeds() {
        run_kill9_scenario(seed);
    }
}

fn run_kill9_scenario(seed: u64) {
    const SHARDS: usize = 4;
    let exe = PathBuf::from(env!("CARGO_BIN_EXE_shardd"));
    let (initial, edges) = test_stream(7 ^ seed);
    assert!(edges.len() >= 20, "need a real stream, got {}", edges.len());
    let kill_at = edges.len() / 4 + (seed as usize % (edges.len() / 2));

    let mut runs: Vec<Vec<Vec<f32>>> = Vec::new();
    for interrupted in [true, false] {
        let tag = if interrupted { "kill9_a" } else { "kill9_b" };
        let base = scratch(&format!("{tag}_{seed}"));
        let cfg = ClusterConfig {
            replicas: 1,
            backend: Backend::Child { exe: exe.clone() },
            ..cluster_cfg(SHARDS, base.clone())
        };
        let cluster = Cluster::start(&cfg, &initial).expect("cluster boots");
        let mut c = client(&cluster.addr().to_string());

        for (i, &(u, v)) in edges.iter().enumerate() {
            if interrupted && i == kill_at {
                // SIGKILL the next write's owning shard: the write is
                // guaranteed to hit the dead shard and take the
                // overloaded-retry path.
                cluster.kill_child(edge_owner(u, v, SHARDS));
            }
            c.add_edge(u, v)
                .unwrap_or_else(|e| panic!("seed {seed}: write ({u},{v}) never succeeded: {e}"));
        }
        c.flush().expect("flush barrier");

        if interrupted {
            // The storm must have been observable: the router degraded at
            // least one call while the shard was down.
            let metrics = c.metrics("json").expect("metrics fan");
            assert!(
                metrics.contains("seqge_cluster_degraded_total")
                    || metrics.contains("seqge_cluster_shard_errors_total"),
                "seed {seed}: router metrics missing cluster series"
            );
            let status = c.call(r#"{"cmd":"cluster_status"}"#).expect("cluster_status");
            let shards = status.get("shards").and_then(serde_json::Value::as_array).unwrap();
            assert_eq!(shards.len(), SHARDS);
            // The killed shard respawned: epoch advanced past 1.
            let max_epoch = shards
                .iter()
                .filter_map(|s| s.get("epoch").and_then(serde_json::Value::as_u64))
                .max()
                .unwrap();
            assert!(max_epoch >= 2, "seed {seed}: no shard was ever respawned");
        }

        let rows: Vec<Vec<f32>> = (0..initial.num_nodes() as NodeId)
            .map(|n| c.get_embedding(n).expect("row readable"))
            .collect();
        runs.push(rows);
        drop(c);
        cluster.shutdown().expect("clean shutdown");
        let _ = std::fs::remove_dir_all(&base);
    }

    for (n, (a, b)) in runs[0].iter().zip(&runs[1]).enumerate() {
        assert_eq!(
            a, b,
            "seed {seed}, node {n}: kill -9 + WAL replay diverged from uninterrupted run"
        );
    }
}

/// Four shard-pure communities: community `c` is the residue class
/// `{c, c+4, …}` — dense inside, sparse across. Every node also gets one
/// neighbor in each *other* residue class (offsets 1..3): cross-shard
/// score merging assumes every shard has trained the query node's row,
/// which holds exactly when each node has an edge into every shard's
/// slice (see DESIGN.md, "Cross-shard score comparability").
fn community_graph(nodes: usize) -> Graph {
    const SHARDS: u32 = 4;
    let mut edges = Vec::new();
    for u in 0..nodes as u32 {
        for v in (u + 1)..nodes as u32 {
            if u % SHARDS == v % SHARDS {
                edges.push((u, v)); // intra-community clique
            }
        }
    }
    // Sparse inter-community rings touching every residue class.
    for u in 0..nodes as u32 {
        for off in 1..SHARDS {
            edges.push((u, (u + off) % nodes as u32));
        }
    }
    Graph::from_edges_lossy(nodes, &edges)
}

#[test]
fn four_shard_topk_agrees_with_single_node_on_community_structure() {
    const SHARDS: usize = 4;
    const NODES: usize = 48;
    const K: usize = 5;
    let graph = community_graph(NODES);

    // Single-node reference ranking.
    let mut reference = spec().cold(graph.num_nodes());
    reference.bootstrap(&graph);
    let single = seqge_serve::snapshot::EmbeddingSnapshot {
        version: 0,
        emb: reference.publish_view(),
        num_edges: graph.num_edges(),
        walks_trained: 0,
        edges_inserted: 0,
        edges_removed: 0,
        ann: None,
    };

    let base = scratch("topk");
    let cfg = cluster_cfg(SHARDS, base.clone());
    let cluster = Cluster::start(&cfg, &graph).expect("cluster boots");
    let mut c = client(&cluster.addr().to_string());

    let mut single_hits = 0usize;
    let mut cluster_hits = 0usize;
    let queries: Vec<u32> = (0..NODES as u32).collect();
    for &q in &queries {
        let want_comm = q % SHARDS as u32;
        let reference = single.topk(q, K, seqge_eval::EdgeOp::Cosine).expect("query node in range");
        single_hits += reference.iter().filter(|(v, _)| v % SHARDS as u32 == want_comm).count();
        let routed = c.topk(q, K, seqge_eval::EdgeOp::Cosine).expect("routed topk");
        assert_eq!(routed.len(), K, "router merged fewer than k results");
        cluster_hits += routed.iter().filter(|(v, _)| v % SHARDS as u32 == want_comm).count();
    }
    // Both deployments must recover the planted communities: on average
    // at least 2 of the top-5 neighbors are community members (the
    // comparability edges — one per foreign residue class per node — cap
    // the attainable purity well below a clean planted partition), and
    // the sharded deployment must not lag the single-node one by more
    // than a quarter. Exact rank agreement is impossible by construction:
    // each shard trains an independent model (own P matrix, own RNG), so
    // only the structural signal is comparable (see DESIGN.md).
    //
    // The fpga-sim floor is lower (avg 1.5 of 5, vs ~1.17 chance): the
    // deferred-Δ kernel is bit-faithful to its own float shadow (ppm-level
    // deviation, the Fig. 4 band), but deferred commits are a different
    // trajectory from the sequential float OS-ELM, and at this toy scale
    // (48 nodes, d=8, 2 walks/node) the separation it achieves is softer.
    // The cluster-vs-single ratio below is backend-independent.
    let floor = match backend_kind() {
        BackendKind::Float => queries.len() * 2,
        BackendKind::FpgaSim => queries.len() * 3 / 2,
    };
    eprintln!(
        "community recovery: single {single_hits}/{t}, cluster {cluster_hits}/{t}",
        t = queries.len() * K
    );
    assert!(
        single_hits >= floor,
        "single-node failed community recovery: {single_hits}/{} < {floor}",
        queries.len() * K
    );
    assert!(
        cluster_hits >= floor,
        "cluster failed community recovery: {cluster_hits}/{} < {floor}",
        queries.len() * K
    );
    assert!(
        cluster_hits * 4 >= single_hits * 3,
        "sharded topk lost the community signal: cluster {cluster_hits} vs single {single_hits}"
    );
    drop(c);
    cluster.shutdown().expect("clean shutdown");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn dead_shard_degrades_topk_and_replica_serves_reads() {
    const SHARDS: usize = 2;
    let base = scratch("degraded");
    let (initial, edges) = test_stream(7);

    // Boot a real 2-shard in-process cluster, stream some edges, then
    // build a *second* router whose table points shard 1 at a dead port.
    let cfg = ClusterConfig { replicas: 1, ..cluster_cfg(SHARDS, base.clone()) };
    let cluster = Cluster::start(&cfg, &initial).expect("cluster boots");
    let mut c = client(&cluster.addr().to_string());
    for &(u, v) in &edges[..edges.len() / 2] {
        c.add_edge(u, v).expect("write acks");
    }
    c.flush().expect("flush");
    // Read every row through the healthy path first (replica will be
    // compared against these exact bytes).
    let healthy_rows: Vec<Vec<f32>> =
        (0..initial.num_nodes() as u32).map(|n| c.get_embedding(n).expect("row")).collect();

    // Give the replica a moment to drain the tail, then wire the broken
    // router: shard 0 live, shard 1 pointed at a port nothing listens on.
    let dead: std::net::SocketAddr = "127.0.0.1:9".parse().unwrap();
    let table = seqge_cluster::shard::shard_table(&[cluster.shard_addrs()[0], dead]);
    let replica = seqge_cluster::Replica::start(
        &base.join("shard-1"),
        seqge_cluster::ReplicaConfig {
            spec: spec(),
            refresh_every: 0,
            poll: Duration::from_millis(10),
        },
    )
    .expect("replica boots");
    // Wait for the replica to catch up to the primary's applied stream.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snap = replica.cell().load();
        let owned_caught_up = (0..initial.num_nodes() as u32)
            .filter(|v| owner(*v, SHARDS) == 1)
            .all(|v| snap.embedding(v).map(|r| r == &healthy_rows[v as usize][..]) == Some(true));
        if owned_caught_up {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "replica never caught up to primary");
        std::thread::sleep(Duration::from_millis(20));
    }
    let views =
        vec![None, Some(ReplicaView { cell: replica.cell(), applied: replica.applied_counter() })];
    let router = start_router(
        "127.0.0.1:0",
        table,
        views,
        RouterConfig { deadline: Duration::from_millis(300), ..RouterConfig::default() },
    )
    .expect("broken router boots");

    let mut broken = Client::connect_with(
        router.addr(),
        ClientConfig { timeout: Duration::from_secs(5), retries: 0, ..ClientConfig::default() },
    )
    .expect("client connects");

    // topk: partial result, flagged.
    let v = broken.call(r#"{"cmd":"topk","node":0,"k":3}"#).expect("degraded topk still ok");
    assert_eq!(v.get("degraded"), Some(&serde_json::Value::Bool(true)));
    let missing = v.get("missing_shards").and_then(serde_json::Value::as_array).unwrap();
    assert_eq!(missing.len(), 1, "exactly shard 1 missing: {v:?}");

    // get_embedding for a shard-1 node: answered by the replica, bit-
    // identical to the primary's row.
    let odd = (0..initial.num_nodes() as u32).find(|v| owner(*v, SHARDS) == 1).unwrap();
    let resp = broken
        .call(&format!(r#"{{"cmd":"get_embedding","node":{odd}}}"#))
        .expect("replica fallback");
    assert_eq!(
        resp.get("source").and_then(serde_json::Value::as_str),
        Some("replica"),
        "expected the replica to answer: {resp:?}"
    );
    let row: Vec<f32> = resp
        .get("embedding")
        .and_then(serde_json::Value::as_array)
        .unwrap()
        .iter()
        .map(|x| x.as_f64().unwrap() as f32)
        .collect();
    assert_eq!(row, healthy_rows[odd as usize], "replica row diverged from primary");

    // cluster_status reports the broken shard and the replica's horizon.
    let status = broken.call(r#"{"cmd":"cluster_status"}"#).expect("status");
    let shards = status.get("shards").and_then(serde_json::Value::as_array).unwrap();
    assert_eq!(
        shards[1].get("healthy"),
        Some(&serde_json::Value::Bool(false)),
        "dead shard not marked unhealthy: {status:?}"
    );

    drop(broken);
    router.shutdown().expect("router down");
    replica.stop();
    drop(c);
    cluster.shutdown().expect("cluster down");
    let _ = std::fs::remove_dir_all(&base);
}

/// A traced `topk` through a 2-shard cluster produces the full span tree
/// in one trace: the router's `cluster.topk` root (parented to the wire
/// context), one `cluster.shard` leg per shard under it, and one
/// `serve.topk` span per shard parented to its own leg — cross-layer
/// propagation with no mixing. In-process shards share the router's span
/// ring, so the whole tree is visible from one snapshot.
#[test]
fn traced_topk_produces_cross_layer_span_tree() {
    seqge_obs::set_timing_enabled(true);
    let base = scratch("trace_tree");
    let (initial, _) = test_stream(7);
    let cfg = cluster_cfg(2, base.clone());
    let cluster = Cluster::start(&cfg, &initial).expect("cluster boots");
    let mut c = client(&cluster.addr().to_string());

    let ctx = seqge_obs::TraceCtx {
        trace_id: seqge_obs::trace::next_id(),
        parent_span: seqge_obs::trace::next_id(),
        sampled: true,
    };
    let reply = c
        .call_traced(r#"{"cmd":"topk","node":0,"k":3,"op":"dot"}"#, &ctx)
        .expect("traced topk answers");
    assert!(reply.contains(r#""ok":true"#), "topk must succeed: {reply}");

    // The root span closes before the response is written, so by the time
    // call_traced returns the whole tree is in the ring.
    let (spans, _) = seqge_obs::trace::snapshot_since(0);
    let mine: Vec<_> = spans.iter().filter(|s| s.trace_id == ctx.trace_id).collect();

    let roots: Vec<_> = mine.iter().filter(|s| s.name == "cluster.topk").collect();
    assert_eq!(roots.len(), 1, "exactly one router root span: {mine:?}");
    let root = roots[0];
    assert_eq!(root.parent_span, ctx.parent_span, "router root must parent to the wire context");

    let legs: Vec<_> = mine.iter().filter(|s| s.name == "cluster.shard").collect();
    assert_eq!(legs.len(), 2, "one fan-out leg per shard: {mine:?}");
    for leg in &legs {
        assert_eq!(leg.parent_span, root.span_id, "legs parent to the root");
    }

    let shard_spans: Vec<_> = mine.iter().filter(|s| s.name == "serve.topk").collect();
    assert_eq!(shard_spans.len(), 2, "one shard-side span per leg: {mine:?}");
    let leg_ids: Vec<u64> = legs.iter().map(|l| l.span_id).collect();
    let mut parents: Vec<u64> = shard_spans.iter().map(|s| s.parent_span).collect();
    parents.sort_unstable();
    parents.dedup();
    assert_eq!(parents.len(), 2, "each shard span under its own leg: {mine:?}");
    for p in &parents {
        assert!(leg_ids.contains(p), "shard span parents to a fan-out leg: {mine:?}");
    }

    drop(c);
    cluster.shutdown().expect("cluster down");
    let _ = std::fs::remove_dir_all(&base);
}
