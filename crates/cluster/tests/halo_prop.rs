//! Property tests for the halo delta-exchange plane.
//!
//! The hazard these lock down: a halo log is periodically truncated **in
//! place** by its writer, so a tailer can re-read bytes it has already
//! consumed — after a detected shrink, after an epoch bump that left the
//! file at the exact same length, or after a torn tail forced a reset.
//! Whatever interleaving of appends, rotations, and partial reads the
//! filesystem presents, the `(vertex, version)` strictly-newer dedup in
//! [`HaloStore::apply`] must make replays idempotent: no delta is ever
//! folded in twice, and the store always converges to the latest row per
//! vertex.

use proptest::prelude::*;
use seqge_serve::halo::{encode_halo_record, HaloLog, HaloStore, HaloTailer, HALO_LOG_NAME};
use seqge_serve::HaloRecord;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch dir per call (proptest cases run many per test).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("seqge_haloprop_{}_{tag}_{n}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tick: one batch of `(vertex, row-fill)` pairs, stamped with one
/// version by the writer. Vertices may repeat across ticks (that is the
/// point — the latest version must win).
fn ticks_strategy() -> impl Strategy<Value = Vec<Vec<(u32, f32)>>> {
    proptest::collection::vec(proptest::collection::vec((0u32..6, -8.0f32..8.0), 1..4), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replaying a stream of deltas any number of times applies each
    /// `(vertex, version)` at most once, and the store converges to the
    /// highest-version row per vertex.
    #[test]
    fn reapplying_deltas_is_idempotent(ticks in ticks_strategy(), replays in 1usize..4) {
        let store = HaloStore::new();
        let mut expected: std::collections::HashMap<u32, (u64, Vec<f32>)> = Default::default();
        let mut records = Vec::new();
        for (version, tick) in ticks.iter().enumerate() {
            for &(vertex, fill) in tick {
                let rec = HaloRecord { vertex, version: version as u64, row: vec![fill, -fill] };
                // Mirror the store's strictly-newer rule: at equal version
                // the first write wins (later same-version rows dedup).
                let e = expected.entry(vertex).or_insert((version as u64, rec.row.clone()));
                if version as u64 > e.0 {
                    *e = (version as u64, rec.row.clone());
                }
                records.push(rec);
            }
        }
        for _ in 0..replays {
            for rec in &records {
                store.apply(rec);
            }
        }
        // Distinct (vertex, version) pairs bound the apply count: replays
        // and intra-tick duplicates must all hit the dedup.
        let distinct: std::collections::HashSet<(u32, u64)> =
            records.iter().map(|r| (r.vertex, r.version)).collect();
        prop_assert!(store.applied.load(Ordering::Relaxed) <= distinct.len() as u64);
        prop_assert_eq!(store.len(), expected.len());
        for (v, (version, row)) in &expected {
            prop_assert_eq!(store.row(*v), Some((*version, row.clone())));
        }
    }

    /// Full log/tailer loop under a byte budget small enough to force
    /// in-place rotations mid-stream: whatever mix of fresh reads and
    /// post-rotation re-reads the tailer produces, the store converges to
    /// exactly the writer's latest row per vertex with zero double-applies.
    #[test]
    fn rotation_rereads_never_double_apply(
        ticks in ticks_strategy(),
        budget in 128u64..400,
        poll_every in 1usize..4,
    ) {
        let dir = scratch("rotate");
        let mut log = HaloLog::open(&dir, budget).unwrap();
        let mut tailer = HaloTailer::new(dir.join(HALO_LOG_NAME));
        let store = HaloStore::new();
        let mut latest: std::collections::HashMap<u32, (u64, Vec<f32>)> = Default::default();
        let mut seen: std::collections::HashSet<(u32, u64)> = Default::default();

        for (i, tick) in ticks.iter().enumerate() {
            let version = i as u64 + 1;
            // The writer's contract: each tick rewrites the full owned-row
            // state (so a rotation that keeps only the last batch is
            // lossless). Mirror that by always appending every vertex seen
            // so far, with updated fills for this tick's members.
            for &(vertex, fill) in tick {
                latest.insert(vertex, (version, vec![fill, fill * 0.5]));
            }
            let rows: Vec<(u32, Vec<f32>)> = latest
                .iter()
                .map(|(v, (_, row))| (*v, row.clone()))
                .collect();
            for (v, _) in &rows {
                latest.get_mut(v).unwrap().0 = version;
            }
            log.append_tick(version, rows.iter().map(|(v, r)| (*v, r.as_slice()))).unwrap();
            if i % poll_every == 0 {
                for rec in &tailer.poll().unwrap().records {
                    prop_assert!(
                        seen.insert((rec.vertex, rec.version)) || !store.apply(rec),
                        "delta ({}, {}) applied twice", rec.vertex, rec.version
                    );
                    store.apply(rec);
                }
            }
        }
        // Drain whatever is left (possibly across one more rotation reset).
        for _ in 0..3 {
            for rec in &tailer.poll().unwrap().records {
                store.apply(rec);
            }
        }
        prop_assert_eq!(store.len(), latest.len());
        for (v, (version, row)) in &latest {
            prop_assert_eq!(store.row(*v), Some((*version, row.clone())), "vertex {}", v);
        }
        // The dedup must have absorbed every re-read: applies are bounded
        // by distinct (vertex, version) pairs ever written.
        let mut distinct = std::collections::HashSet::new();
        for (i, _) in ticks.iter().enumerate() {
            for v in latest.keys() {
                distinct.insert((*v, i as u64 + 1));
            }
        }
        prop_assert!(store.applied.load(Ordering::Relaxed) <= distinct.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A torn tail (writer crashed or raced mid-frame) followed by an
    /// in-place rotation at arbitrary truncation points: the tailer never
    /// errors, and once the writer completes a clean tick the store
    /// converges with no double-applied delta.
    #[test]
    fn torn_tail_plus_rotation_converges(
        cut in 1usize..20,
        vertices in proptest::collection::vec(0u32..5, 1..4),
    ) {
        let dir = scratch("torn");
        let mut log = HaloLog::open(&dir, 1 << 20).unwrap();
        let rows: Vec<(u32, Vec<f32>)> =
            vertices.iter().map(|&v| (v, vec![v as f32, 1.0])).collect();
        log.append_tick(1, rows.iter().map(|(v, r)| (*v, r.as_slice()))).unwrap();

        let mut tailer = HaloTailer::new(dir.join(HALO_LOG_NAME));
        let store = HaloStore::new();
        for rec in &tailer.poll().unwrap().records {
            store.apply(rec);
        }

        // Tear: append a truncated frame for a version-2 row.
        let frame = encode_halo_record(vertices[0], 2, &[9.0, 9.0]);
        let cut = cut.min(frame.len() - 1);
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join(HALO_LOG_NAME))
                .unwrap();
            f.write_all(&frame[..cut]).unwrap();
        }
        // Polling the torn tail must neither error nor apply anything new.
        let applied_before = store.applied.load(Ordering::Relaxed);
        for rec in &tailer.poll().unwrap().records {
            store.apply(rec);
        }
        prop_assert_eq!(store.applied.load(Ordering::Relaxed), applied_before);

        // The writer recovers by rewriting the log in place (epoch bump):
        // reopen the scratch state as the HaloLog writer would after a
        // crash — a fresh append of the full state at version 2.
        drop(log);
        let mut log = HaloLog::open(&dir, 160).unwrap();
        let rows2: Vec<(u32, Vec<f32>)> =
            vertices.iter().map(|&v| (v, vec![v as f32 + 10.0, 2.0])).collect();
        // Force at least one rotation so the tailer must reset over the
        // torn bytes rather than resume past them.
        log.append_tick(2, rows2.iter().map(|(v, r)| (*v, r.as_slice()))).unwrap();
        log.append_tick(3, rows2.iter().map(|(v, r)| (*v, r.as_slice()))).unwrap();

        for _ in 0..3 {
            for rec in &tailer.poll().unwrap().records {
                store.apply(rec);
            }
        }
        for (v, row) in &rows2 {
            let (version, got) = store.row(*v).expect("row converged");
            prop_assert_eq!(&got, row, "vertex {}", v);
            prop_assert!(version >= 2);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
