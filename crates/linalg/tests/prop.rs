//! Property-based tests for the linear-algebra kernels.

use proptest::prelude::*;
use seqge_linalg::{ops, solve, Mat};

fn vec_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n)
}

fn mat_strategy(r: usize, c: usize) -> impl Strategy<Value = Mat<f64>> {
    proptest::collection::vec(-5.0f64..5.0, r * c).prop_map(move |v| Mat::from_vec(r, c, v))
}

/// Random SPD matrix `B·Bᵀ + εI`.
fn spd_strategy(n: usize) -> impl Strategy<Value = Mat<f64>> {
    mat_strategy(n, n).prop_map(move |b| {
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_is_commutative_and_bilinear(x in vec_strategy(16), y in vec_strategy(16), a in -3.0f64..3.0) {
        let xy = ops::dot(&x, &y);
        let yx = ops::dot(&y, &x);
        prop_assert!((xy - yx).abs() < 1e-9);
        let ax: Vec<f64> = x.iter().map(|&v| a * v).collect();
        prop_assert!((ops::dot(&ax, &y) - a * xy).abs() < 1e-6 * (1.0 + xy.abs()).max(a.abs() + 1.0) * 100.0);
    }

    #[test]
    fn axpy_matches_definition(x in vec_strategy(12), y in vec_strategy(12), a in -3.0f64..3.0) {
        let mut out = y.clone();
        ops::axpy(a, &x, &mut out);
        for i in 0..12 {
            prop_assert!((out[i] - (y[i] + a * x[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn gemv_t_equals_transpose_gemv(m in mat_strategy(7, 5), x in vec_strategy(7)) {
        let mut y1 = vec![0.0; 5];
        ops::gemv_t(&m, &x, &mut y1);
        let mt = m.transpose();
        let mut y2 = vec![0.0; 5];
        ops::gemv(&mt, &x, &mut y2);
        for i in 0..5 {
            prop_assert!((y1[i] - y2[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn cholesky_inverse_inverts(a in spd_strategy(5)) {
        let inv = solve::cholesky_inverse(&a).expect("SPD by construction");
        let prod = a.matmul(&inv);
        prop_assert!(prod.max_abs_diff(&Mat::identity(5)) < 1e-6);
    }

    #[test]
    fn gauss_jordan_agrees_with_cholesky(a in spd_strategy(4)) {
        let gi = solve::gauss_jordan_inverse(&a).expect("SPD is invertible");
        let ci = solve::cholesky_inverse(&a).expect("SPD");
        prop_assert!(gi.max_abs_diff(&ci) < 1e-6);
    }

    #[test]
    fn rls_chain_matches_direct_inverse(hs in proptest::collection::vec(vec_strategy(4), 1..8)) {
        // Sherman–Morrison chain == direct inversion of (λI + Σ hᵀh).
        let lambda = 0.5f64;
        let mut gram = Mat::<f64>::scaled_identity(4, lambda);
        for h in &hs {
            ops::ger(&mut gram, 1.0, h, h);
        }
        let direct = solve::cholesky_inverse(&gram).expect("SPD");
        let mut p = Mat::<f64>::scaled_identity(4, 1.0 / lambda);
        for h in &hs {
            let mut ph = vec![0.0; 4];
            ops::gemv(&p, h, &mut ph);
            let denom = 1.0 + ops::dot(h, &ph);
            let hp = ph.clone();
            ops::p_downdate(&mut p, &ph, &hp, denom);
        }
        prop_assert!(p.max_abs_diff(&direct) < 1e-5, "chain vs direct: {}", p.max_abs_diff(&direct));
    }

    #[test]
    fn p_downdate_preserves_symmetry(a in spd_strategy(5), h in vec_strategy(5)) {
        let mut p = a.clone();
        let mut ph = vec![0.0; 5];
        ops::gemv(&p, &h, &mut ph);
        let denom = 1.0 + ops::dot(&h, &ph);
        let hp = ph.clone();
        ops::p_downdate(&mut p, &ph, &hp, denom);
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((p[(i, j)] - p[(j, i)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn transpose_involution(m in mat_strategy(6, 9)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in mat_strategy(5, 5)) {
        prop_assert!(m.matmul(&Mat::identity(5)).max_abs_diff(&m) < 1e-12);
        prop_assert!(Mat::identity(5).matmul(&m).max_abs_diff(&m) < 1e-12);
    }
}
