//! Vector and matrix-vector kernels used by the training inner loops.
//!
//! These are the exact operations in Algorithm 1 / Algorithm 2 of the paper:
//! dot products (`H·βcol`), axpy column updates (`β += (P·Hᵀ)·e`), gemv
//! (`P·Hᵀ`, `H·P`), and the symmetric rank-1 downdate of `P`.

use crate::matrix::Mat;
use crate::scalar::Scalar;

/// `x · y`.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::ZERO;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// `y += a · x`.
#[inline]
pub fn axpy<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += a * x[i];
    }
}

/// `x *= a`.
#[inline]
pub fn scal<T: Scalar>(a: T, x: &mut [T]) {
    for v in x {
        *v *= a;
    }
}

/// Euclidean norm.
pub fn norm2<T: Scalar>(x: &[T]) -> T {
    dot(x, x).sqrt()
}

/// `y = A · x` for row-major `A` (`rows×cols`), `x` of length `cols`.
pub fn gemv<T: Scalar>(a: &Mat<T>, x: &[T], y: &mut [T]) {
    assert_eq!(a.cols(), x.len(), "gemv: x length mismatch");
    assert_eq!(a.rows(), y.len(), "gemv: y length mismatch");
    for (r, out) in y.iter_mut().enumerate() {
        *out = dot(a.row(r), x);
    }
}

/// `y = Aᵀ · x` for row-major `A` (`rows×cols`), `x` of length `rows`.
/// Implemented as a row-sweep so memory access stays contiguous.
pub fn gemv_t<T: Scalar>(a: &Mat<T>, x: &[T], y: &mut [T]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: x length mismatch");
    assert_eq!(a.cols(), y.len(), "gemv_t: y length mismatch");
    y.fill(T::ZERO);
    for (r, &xr) in x.iter().enumerate() {
        axpy(xr, a.row(r), y);
    }
}

/// Rank-1 update `A += a · x yᵀ` (BLAS `ger`).
pub fn ger<T: Scalar>(a_mat: &mut Mat<T>, a: T, x: &[T], y: &[T]) {
    assert_eq!(a_mat.rows(), x.len(), "ger: x length mismatch");
    assert_eq!(a_mat.cols(), y.len(), "ger: y length mismatch");
    for (r, &xr) in x.iter().enumerate() {
        axpy(a * xr, y, a_mat.row_mut(r));
    }
}

/// The OS-ELM `P` downdate:
/// `P ← P − (P Hᵀ)(H P) / denom`, where `ph = P·Hᵀ` and `hp = H·P` are
/// precomputed `d`-vectors and `denom` is `1 + H·P·Hᵀ` (regularized) or
/// `H·P·Hᵀ` (the paper's literal Algorithm 1 line 5).
///
/// For symmetric `P` the two vectors coincide; they are kept separate so the
/// fixed-point pipeline can model both datapaths.
pub fn p_downdate<T: Scalar>(p: &mut Mat<T>, ph: &[T], hp: &[T], denom: T) {
    assert_eq!(p.rows(), ph.len());
    assert_eq!(p.cols(), hp.len());
    let inv = T::ONE / denom;
    ger(p, -inv, ph, hp);
}

/// Elementwise `out = x - y`.
pub fn sub<T: Scalar>(x: &[T], y: &[T], out: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), out.len());
    for i in 0..x.len() {
        out[i] = x[i] - y[i];
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid<T: Scalar>(x: T) -> T {
    if x.to_f64() >= 0.0 {
        let e = (-x).exp();
        T::ONE / (T::ONE + e)
    } else {
        let e = x.exp();
        e / (T::ONE + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_scal() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
        assert!((norm2(&[3.0f32, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Mat::from_vec(2, 3, vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.0, -1.0];
        let mut y = [0.0; 2];
        gemv(&a, &x, &mut y);
        assert_eq!(y, [-2.0, -2.0]);
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let a = Mat::from_fn(3, 2, |r, c| (r + c * 2) as f64);
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 2];
        gemv_t(&a, &x, &mut y1);
        let at = a.transpose();
        let mut y2 = [0.0; 2];
        gemv(&at, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn ger_rank1() {
        let mut a = Mat::<f64>::zeros(2, 2);
        ger(&mut a, 2.0, &[1.0, 3.0], &[5.0, 7.0]);
        assert_eq!(a.as_slice(), &[10.0, 14.0, 30.0, 42.0]);
    }

    #[test]
    fn p_downdate_keeps_symmetry_and_shrinks() {
        // P = I, H = e0. Regularized downdate: P' = I - e0 e0ᵀ / 2.
        let mut p = Mat::<f64>::identity(3);
        let h = [1.0, 0.0, 0.0];
        let mut ph = [0.0; 3];
        gemv(&p, &h, &mut ph);
        let hp = ph; // symmetric P
        let denom = 1.0 + dot(&h, &ph);
        p_downdate(&mut p, &ph, &hp, denom);
        assert!((p[(0, 0)] - 0.5).abs() < 1e-12);
        assert_eq!(p[(1, 1)], 1.0);
        assert_eq!(p[(0, 1)], 0.0);
        // Symmetric after the update.
        assert_eq!(p[(1, 0)], p[(0, 1)]);
    }

    #[test]
    fn sherman_morrison_identity() {
        // After the downdate, P should equal (P0^{-1} + HᵀH)^{-1} for P0 = I:
        // with H = [1, 1], that's (I + 1s)^{-1}; spot-check via P' · (I + HᵀH) = I.
        let mut p = Mat::<f64>::identity(2);
        let h = [1.0, 1.0];
        let mut ph = [0.0; 2];
        gemv(&p, &h, &mut ph);
        let denom = 1.0 + dot(&h, &ph);
        let hp = ph;
        p_downdate(&mut p, &ph, &hp, denom);
        // M = I + HᵀH
        let mut m = Mat::<f64>::identity(2);
        ger(&mut m, 1.0, &h, &h);
        let prod = p.matmul(&m);
        assert!(prod.max_abs_diff(&Mat::identity(2)) < 1e-12);
    }

    #[test]
    fn sub_elementwise() {
        let mut out = [0.0f32; 2];
        sub(&[3.0, 1.0], &[1.0, 4.0], &mut out);
        assert_eq!(out, [2.0, -3.0]);
    }

    #[test]
    fn sigmoid_stable_and_correct() {
        assert!((sigmoid(0.0f64) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0f64) <= 1.0);
        assert!(sigmoid(-100.0f64) >= 0.0);
        assert!(sigmoid(-100.0f64) < 1e-30);
        let s = sigmoid(2.0f32);
        assert!((s.to_f64() - 1.0 / (1.0 + (-2.0f64).exp())).abs() < 1e-6);
        // Symmetry: σ(-x) = 1 - σ(x)
        assert!((sigmoid(-1.3f64) - (1.0 - sigmoid(1.3f64))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gemv")]
    fn gemv_shape_mismatch_panics() {
        let a = Mat::<f64>::zeros(2, 3);
        let mut y = [0.0; 2];
        gemv(&a, &[1.0, 2.0], &mut y);
    }
}
