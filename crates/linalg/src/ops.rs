//! Vector and matrix-vector kernels used by the training inner loops.
//!
//! These are the exact operations in Algorithm 1 / Algorithm 2 of the paper:
//! dot products (`H·βcol`), axpy column updates (`β += (P·Hᵀ)·e`), gemv
//! (`P·Hᵀ`, `H·P`), and the symmetric rank-1 downdate of `P`.
//!
//! The element-parallel kernels (`dot`, `axpy`, `scal`, `gemv`, …) are
//! written over `chunks_exact` with 8-wide unrolling so LLVM autovectorizes
//! them without a SIMD dependency. `axpy`/`scal` stay bit-identical to a
//! sequential loop (elementwise, no reassociation); `dot` carries eight
//! independent accumulators, which reassociates the sum — [`dot_ref`] keeps
//! the sequential fold as the tolerance oracle and bench baseline.
//!
//! Two fused/batched kernels serve the OS-ELM hot path specifically:
//! [`p_downdate_forget`] collapses the EW-RLS `P` maintenance
//! (downdate → inflate → trace-cap → symmetrize) into one contiguous
//! full-matrix sweep, and [`gemv_rows`]/[`ger_rows`] turn the sample
//! stage's scattered per-column dot/axpy pairs into gathered-row block
//! operations.
//!
//! The symmetric `P` kernels ([`p_downdate_sym`], [`p_downdate_forget`])
//! rest on one IEEE-754 fact: multiplication is commutative *bitwise*
//! (`a*b == b*a` exactly). Writing the rank-1 term as
//! `neg_inv·(ph[r]·ph[c])` — instead of hoisting `neg_inv·ph[r]` per
//! row — makes the (r,c) and (c,r) updates compute the identical value,
//! so exactly symmetric input stays exactly symmetric through a plain
//! full-matrix sweep with contiguous stores. An earlier iteration
//! mirrored an upper-triangle sweep into the lower triangle instead;
//! the column-strided stores made it ~3× slower than the naive ger it
//! replaced, which is why no kernel here writes across rows.

use crate::matrix::Mat;
use crate::scalar::Scalar;

/// `x · y`, unrolled 8-wide with independent accumulators (two 4-lane
/// registers' worth, enough chains to hide the add latency).
///
/// The accumulator chains reassociate the sum relative to a sequential
/// fold; the difference is bounded by ordinary float summation error
/// (≈ n·ε·Σ|xᵢyᵢ|). For `len < 8` only the tail loop runs and the
/// result is bit-identical to [`dot_ref`].
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut xs = x.chunks_exact(8);
    let mut ys = y.chunks_exact(8);
    let (mut a0, mut a1, mut a2, mut a3) = (T::ZERO, T::ZERO, T::ZERO, T::ZERO);
    let (mut a4, mut a5, mut a6, mut a7) = (T::ZERO, T::ZERO, T::ZERO, T::ZERO);
    for (cx, cy) in (&mut xs).zip(&mut ys) {
        a0 += cx[0] * cy[0];
        a1 += cx[1] * cy[1];
        a2 += cx[2] * cy[2];
        a3 += cx[3] * cy[3];
        a4 += cx[4] * cy[4];
        a5 += cx[5] * cy[5];
        a6 += cx[6] * cy[6];
        a7 += cx[7] * cy[7];
    }
    let mut tail = T::ZERO;
    for (&xv, &yv) in xs.remainder().iter().zip(ys.remainder()) {
        tail += xv * yv;
    }
    ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7)) + tail
}

/// Sequential-fold `x · y` — the pre-vectorization kernel, kept as the
/// reassociation oracle for tests and the baseline for the kernel benches.
#[inline]
pub fn dot_ref<T: Scalar>(x: &[T], y: &[T]) -> T {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = T::ZERO;
    for i in 0..x.len() {
        acc += x[i] * y[i];
    }
    acc
}

/// `y += a · x`. Elementwise (no reassociation): bit-identical to the
/// sequential loop for every length.
#[inline]
pub fn axpy<T: Scalar>(a: T, x: &[T], y: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    let mut xs = x.chunks_exact(8);
    let mut ys = y.chunks_exact_mut(8);
    for (cx, cy) in (&mut xs).zip(&mut ys) {
        cy[0] += a * cx[0];
        cy[1] += a * cx[1];
        cy[2] += a * cx[2];
        cy[3] += a * cx[3];
        cy[4] += a * cx[4];
        cy[5] += a * cx[5];
        cy[6] += a * cx[6];
        cy[7] += a * cx[7];
    }
    for (&xv, yv) in xs.remainder().iter().zip(ys.into_remainder()) {
        *yv += a * xv;
    }
}

/// `x *= a`. Elementwise: bit-identical to the sequential loop.
#[inline]
pub fn scal<T: Scalar>(a: T, x: &mut [T]) {
    let mut xs = x.chunks_exact_mut(8);
    for c in &mut xs {
        c[0] *= a;
        c[1] *= a;
        c[2] *= a;
        c[3] *= a;
        c[4] *= a;
        c[5] *= a;
        c[6] *= a;
        c[7] *= a;
    }
    for v in xs.into_remainder() {
        *v *= a;
    }
}

/// Euclidean norm.
pub fn norm2<T: Scalar>(x: &[T]) -> T {
    dot(x, x).sqrt()
}

/// `y = A · x` for row-major `A` (`rows×cols`), `x` of length `cols`.
/// One unrolled [`dot`] per row: consecutive rows carry independent
/// accumulator chains, so the out-of-order core overlaps them without
/// any explicit interleaving (hand-paired two-row chains measured
/// *slower* than this loop).
pub fn gemv<T: Scalar>(a: &Mat<T>, x: &[T], y: &mut [T]) {
    assert_eq!(a.cols(), x.len(), "gemv: x length mismatch");
    assert_eq!(a.rows(), y.len(), "gemv: y length mismatch");
    for (r, out) in y.iter_mut().enumerate() {
        *out = dot(a.row(r), x);
    }
}

/// `y = Aᵀ · x` for row-major `A` (`rows×cols`), `x` of length `rows`.
/// Implemented as a row-sweep so memory access stays contiguous.
pub fn gemv_t<T: Scalar>(a: &Mat<T>, x: &[T], y: &mut [T]) {
    assert_eq!(a.rows(), x.len(), "gemv_t: x length mismatch");
    assert_eq!(a.cols(), y.len(), "gemv_t: y length mismatch");
    y.fill(T::ZERO);
    for (r, &xr) in x.iter().enumerate() {
        axpy(xr, a.row(r), y);
    }
}

/// Rank-1 update `A += a · x yᵀ` (BLAS `ger`).
pub fn ger<T: Scalar>(a_mat: &mut Mat<T>, a: T, x: &[T], y: &[T]) {
    assert_eq!(a_mat.rows(), x.len(), "ger: x length mismatch");
    assert_eq!(a_mat.cols(), y.len(), "ger: y length mismatch");
    for (r, &xr) in x.iter().enumerate() {
        axpy(a * xr, y, a_mat.row_mut(r));
    }
}

/// Batched gathered-row dot: `out[k] = A[rows[k], :] · x`.
///
/// This is the sample stage's block kernel — the per-sample `H·β[:,s]`
/// dots of Algorithm 1 line 9 gathered into one call, writing into a
/// reused buffer so the sample loop carries no per-sample bounds
/// re-derivation or allocation. Each output is `dot(a.row(rows[k]), x)`
/// exactly.
pub fn gemv_rows<T: Scalar>(a: &Mat<T>, rows: &[usize], x: &[T], out: &mut Vec<T>) {
    assert_eq!(a.cols(), x.len(), "gemv_rows: x length mismatch");
    out.clear();
    out.reserve(rows.len());
    for &r in rows {
        out.push(dot(a.row(r), x));
    }
}

/// Batched gathered-row rank-1 accumulation: `A[rows[k], :] += coeffs[k]·x`,
/// applied in index order so duplicate rows accumulate exactly like the
/// sequential axpy loop it replaces.
pub fn ger_rows<T: Scalar>(a: &mut Mat<T>, rows: &[usize], coeffs: &[T], x: &[T]) {
    assert_eq!(rows.len(), coeffs.len(), "ger_rows: coeffs length mismatch");
    assert_eq!(a.cols(), x.len(), "ger_rows: x length mismatch");
    for (&r, &c) in rows.iter().zip(coeffs) {
        axpy(c, x, a.row_mut(r));
    }
}

/// The OS-ELM `P` downdate:
/// `P ← P − (P Hᵀ)(H P) / denom`, where `ph = P·Hᵀ` and `hp = H·P` are
/// precomputed `d`-vectors and `denom` is `1 + H·P·Hᵀ` (regularized) or
/// `H·P·Hᵀ` (the paper's literal Algorithm 1 line 5).
///
/// For symmetric `P` the two vectors coincide; they are kept separate so the
/// fixed-point pipeline can model both datapaths.
pub fn p_downdate<T: Scalar>(p: &mut Mat<T>, ph: &[T], hp: &[T], denom: T) {
    assert_eq!(p.rows(), ph.len());
    assert_eq!(p.cols(), hp.len());
    let inv = T::ONE / denom;
    ger(p, -inv, ph, hp);
}

/// Symmetric rank-1 downdate `P ← P − (ph·phᵀ)/denom`.
///
/// The update term is formed as `neg_inv·(ph[r]·ph[c])` — both inner
/// products commute bitwise, so positions (r,c) and (c,r) receive the
/// identical addend and exactly symmetric `P` stays exactly symmetric:
/// the property the downdate analytically preserves and the hardware's
/// triangular `P` storage enforces for free. Versus [`p_downdate`]
/// (which hoists `neg_inv·ph[r]` per row) each element differs by at
/// most the one re-rounding of the reassociated product — ulp-level.
/// The sweep itself is full-matrix with contiguous stores, so it runs
/// at [`ger`] speed rather than paying strided mirror writes.
pub fn p_downdate_sym<T: Scalar>(p: &mut Mat<T>, ph: &[T], denom: T) {
    let d = p.rows();
    assert_eq!(p.cols(), d, "p_downdate_sym: P must be square");
    assert_eq!(ph.len(), d, "p_downdate_sym: ph length mismatch");
    let neg_inv = -(T::ONE / denom);
    let s = p.as_mut_slice();
    for (row, &phr) in s.chunks_exact_mut(d).zip(ph) {
        for (v, &phc) in row.iter_mut().zip(ph) {
            *v += neg_inv * (phr * phc);
        }
    }
}

/// Fused EW-RLS `P` maintenance: rank-1 downdate, `1/λ` inflation, and
/// PSD-preserving trace cap in one O(d) diagonal pass plus one
/// contiguous full-matrix sweep. The multi-pass form
/// ([`p_downdate_forget_ref`]) walks the `d×d` matrix up to four times
/// (downdate, inflate, cap, symmetrize); the fused sweep touches each
/// element exactly once.
///
/// `inv_lambda` must be the caller-computed `1/λ` and `cap` the trace cap
/// (`p0_scale · d`).
///
/// The reference's symmetrize pass is not replicated — it is made
/// redundant: the commutative-product form `neg_inv·(ph[r]·ph[c])` gives
/// (r,c) and (c,r) bitwise-identical updates, so exactly symmetric `P`
/// stays exactly symmetric with no averaging pass (callers establish
/// exact symmetry at cold entry points; see `Mat::symmetrize`). Versus
/// the reference the result differs only by float reassociation: one
/// re-rounding from the product regrouping plus the symmetrize average
/// of two ulp-apart mirror values — ≤ a few ulp per element, covered by
/// the tolerance test below. (The λ = 1 model path calls
/// [`p_downdate_sym`], which makes the same trade.)
pub fn p_downdate_forget<T: Scalar>(p: &mut Mat<T>, ph: &[T], denom: T, inv_lambda: T, cap: T) {
    let d = p.rows();
    assert_eq!(p.cols(), d, "p_downdate_forget: P must be square");
    assert_eq!(ph.len(), d, "p_downdate_forget: ph length mismatch");
    let neg_inv = -(T::ONE / denom);
    let s = p.as_mut_slice();
    // The trace cap depends on the post-downdate inflated diagonal, which
    // is computable in O(d) before any element is written.
    let mut trace = T::ZERO;
    for i in 0..d {
        trace += (s[i * d + i] + neg_inv * (ph[i] * ph[i])) * inv_lambda;
    }
    let capped = trace > cap;
    let gain = if capped { cap / trace } else { T::ONE };
    for (row, &phr) in s.chunks_exact_mut(d).zip(ph) {
        if capped {
            for (v, &phc) in row.iter_mut().zip(ph) {
                *v = ((*v + neg_inv * (phr * phc)) * inv_lambda) * gain;
            }
        } else {
            for (v, &phc) in row.iter_mut().zip(ph) {
                *v = (*v + neg_inv * (phr * phc)) * inv_lambda;
            }
        }
    }
}

/// Multi-pass reference for [`p_downdate_forget`]: the literal
/// downdate → `scal(1/λ)` → trace-cap → symmetrize sequence the fused
/// kernel replaces. Kept as the equivalence oracle and the bench baseline.
pub fn p_downdate_forget_ref<T: Scalar>(p: &mut Mat<T>, ph: &[T], denom: T, inv_lambda: T, cap: T) {
    p_downdate(p, ph, ph, denom);
    scal(inv_lambda, p.as_mut_slice());
    let d = p.rows();
    let trace: T = (0..d).map(|i| p[(i, i)]).sum();
    if trace > cap {
        scal(cap / trace, p.as_mut_slice());
    }
    let half = T::from_f64(0.5);
    for r in 0..d {
        for c in (r + 1)..d {
            let avg = half * (p[(r, c)] + p[(c, r)]);
            p[(r, c)] = avg;
            p[(c, r)] = avg;
        }
    }
}

/// Elementwise `out = x - y`.
pub fn sub<T: Scalar>(x: &[T], y: &[T], out: &mut [T]) {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), out.len());
    for i in 0..x.len() {
        out[i] = x[i] - y[i];
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid<T: Scalar>(x: T) -> T {
    if x.to_f64() >= 0.0 {
        let e = (-x).exp();
        T::ONE / (T::ONE + e)
    } else {
        let e = x.exp();
        e / (T::ONE + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(n: usize, f: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..n).map(f).collect()
    }

    #[test]
    fn dot_axpy_scal() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [6.0, 9.0, 12.0]);
        scal(0.5, &mut y);
        assert_eq!(y, [3.0, 4.5, 6.0]);
        assert!((norm2(&[3.0f32, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn unrolled_dot_close_to_sequential_reference() {
        // The 4-accumulator unroll reassociates the sum; the drift must
        // stay within float summation error at every length (remainder
        // paths 0..3 included).
        for n in [1usize, 3, 4, 5, 7, 8, 31, 64, 97] {
            let x = fill(n, |i| (i as f64 * 0.7).sin());
            let y = fill(n, |i| (i as f64 * 1.3).cos());
            let (a, b) = (dot(&x, &y), dot_ref(&x, &y));
            assert!((a - b).abs() <= 1e-12 * n as f64, "n={n}: {a} vs {b}");
            if n < 4 {
                assert_eq!(a, b, "sub-chunk lengths take the sequential tail path");
            }
        }
    }

    #[test]
    fn axpy_scal_bit_identical_to_sequential() {
        for n in [1usize, 3, 4, 6, 8, 17, 33] {
            let x = fill(n, |i| (i as f64 * 0.9).sin());
            let mut y = fill(n, |i| (i as f64 * 0.4).cos());
            let mut y_ref = y.clone();
            axpy(1.7, &x, &mut y);
            for i in 0..n {
                y_ref[i] += 1.7 * x[i];
            }
            assert_eq!(y, y_ref, "axpy n={n}");
            let mut z = y.clone();
            let mut z_ref = y;
            scal(0.3, &mut z);
            for v in &mut z_ref {
                *v *= 0.3;
            }
            assert_eq!(z, z_ref, "scal n={n}");
        }
    }

    #[test]
    fn gemv_matches_manual() {
        let a = Mat::from_vec(2, 3, vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.0, -1.0];
        let mut y = [0.0; 2];
        gemv(&a, &x, &mut y);
        assert_eq!(y, [-2.0, -2.0]);
    }

    #[test]
    fn gemv_row_pairing_matches_per_row_dots() {
        // Odd row count and width exercise the unrolled body plus the tail.
        let a = Mat::from_fn(7, 9, |r, c| ((r * 9 + c) as f64 * 0.31).sin());
        let x = fill(9, |i| (i as f64 * 0.77).cos());
        let mut y = [0.0; 7];
        gemv(&a, &x, &mut y);
        for (r, &yr) in y.iter().enumerate() {
            assert_eq!(yr, dot(a.row(r), &x), "row {r}");
        }
    }

    #[test]
    fn gemv_t_matches_transpose_gemv() {
        let a = Mat::from_fn(3, 2, |r, c| (r + c * 2) as f64);
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 2];
        gemv_t(&a, &x, &mut y1);
        let at = a.transpose();
        let mut y2 = [0.0; 2];
        gemv(&at, &x, &mut y2);
        // gemv_t accumulates by row-sweep, gemv by per-row dot: the sums
        // reassociate, so equality is up to float summation error.
        for (v1, v2) in y1.iter().zip(&y2) {
            assert!((v1 - v2).abs() < 1e-12, "{v1} vs {v2}");
        }
    }

    #[test]
    fn ger_rank1() {
        let mut a = Mat::<f64>::zeros(2, 2);
        ger(&mut a, 2.0, &[1.0, 3.0], &[5.0, 7.0]);
        assert_eq!(a.as_slice(), &[10.0, 14.0, 30.0, 42.0]);
    }

    #[test]
    fn gemv_rows_matches_individual_dots() {
        let a = Mat::from_fn(10, 13, |r, c| ((r * 13 + c) as f64 * 0.23).sin());
        let x = fill(13, |i| (i as f64 * 0.5).cos());
        for rows in [vec![3usize], vec![9, 0], vec![1, 1, 4, 4, 2]] {
            let mut out = Vec::new();
            gemv_rows(&a, &rows, &x, &mut out);
            assert_eq!(out.len(), rows.len());
            for (k, &r) in rows.iter().enumerate() {
                assert_eq!(out[k], dot(a.row(r), &x), "rows={rows:?} k={k}");
            }
        }
    }

    #[test]
    fn ger_rows_accumulates_duplicates_in_order() {
        let mut a = Mat::<f64>::zeros(4, 3);
        let x = [1.0, 2.0, 4.0];
        // Row 2 appears twice: updates must stack exactly like two axpys.
        ger_rows(&mut a, &[2, 0, 2], &[1.0, 10.0, 0.5], &x);
        assert_eq!(a.row(0), &[10.0, 20.0, 40.0]);
        assert_eq!(a.row(2), &[1.5, 3.0, 6.0]);
        assert_eq!(a.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn p_downdate_keeps_symmetry_and_shrinks() {
        // P = I, H = e0. Regularized downdate: P' = I - e0 e0ᵀ / 2.
        let mut p = Mat::<f64>::identity(3);
        let h = [1.0, 0.0, 0.0];
        let mut ph = [0.0; 3];
        gemv(&p, &h, &mut ph);
        let hp = ph; // symmetric P
        let denom = 1.0 + dot(&h, &ph);
        p_downdate(&mut p, &ph, &hp, denom);
        assert!((p[(0, 0)] - 0.5).abs() < 1e-12);
        assert_eq!(p[(1, 1)], 1.0);
        assert_eq!(p[(0, 1)], 0.0);
        // Symmetric after the update.
        assert_eq!(p[(1, 0)], p[(0, 1)]);
    }

    #[test]
    fn sherman_morrison_identity() {
        // After the downdate, P should equal (P0^{-1} + HᵀH)^{-1} for P0 = I:
        // with H = [1, 1], that's (I + 1s)^{-1}; spot-check via P' · (I + HᵀH) = I.
        let mut p = Mat::<f64>::identity(2);
        let h = [1.0, 1.0];
        let mut ph = [0.0; 2];
        gemv(&p, &h, &mut ph);
        let denom = 1.0 + dot(&h, &ph);
        let hp = ph;
        p_downdate(&mut p, &ph, &hp, denom);
        // M = I + HᵀH
        let mut m = Mat::<f64>::identity(2);
        ger(&mut m, 1.0, &h, &h);
        let prod = p.matmul(&m);
        assert!(prod.max_abs_diff(&Mat::identity(2)) < 1e-12);
    }

    /// An exactly symmetric PSD-ish matrix (the invariant the models
    /// establish at cold entry points via `Mat::symmetrize`).
    fn sym_p(d: usize) -> Mat<f32> {
        Mat::from_fn(d, d, |r, c| {
            let (lo, hi) = (r.min(c), r.max(c));
            if r == c {
                5.0
            } else {
                0.1 * ((lo * d + hi) as f32 * 0.7).sin()
            }
        })
    }

    #[test]
    fn sym_downdate_matches_general_within_reassociation() {
        for d in [1usize, 2, 3, 8, 17] {
            let ph: Vec<f32> = (0..d).map(|i| ((i + 1) as f32 * 0.37).sin()).collect();
            let mut sym = sym_p(d);
            let mut gen = sym_p(d);
            p_downdate_sym(&mut sym, &ph, 1.37);
            p_downdate(&mut gen, &ph, &ph, 1.37);
            // One product regrouping per element: ulp-level drift only.
            assert!(sym.max_abs_diff(&gen) <= 1e-5, "d={d}");
        }
    }

    #[test]
    fn sym_downdate_preserves_exact_symmetry() {
        let mut p = sym_p(9);
        let ph: Vec<f32> = (0..9).map(|i| (i as f32 * 0.9).cos()).collect();
        for _ in 0..50 {
            p_downdate_sym(&mut p, &ph, 2.0);
        }
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(p[(r, c)], p[(c, r)], "({r},{c})");
            }
        }
    }

    #[test]
    fn fused_p_downdate_forget_matches_multipass_within_reassociation() {
        for d in [1usize, 2, 3, 8, 17] {
            let ph: Vec<f32> = (0..d).map(|i| ((i + 1) as f32 * 0.37).sin()).collect();
            let denom = 1.37f32;
            let inv_lambda = 1.0 / 0.98f32;
            // Cap low enough to trigger the rescale branch on some dims.
            for cap in [4.0f32 * d as f32, 1000.0] {
                let mut fused = sym_p(d);
                let mut multi = sym_p(d);
                p_downdate_forget(&mut fused, &ph, denom, inv_lambda, cap);
                p_downdate_forget_ref(&mut multi, &ph, denom, inv_lambda, cap);
                // Drift bound: the product regrouping re-rounds once and
                // the reference's symmetrize averages two ulp-apart mirror
                // values — a few ulp of ~5.0-magnitude f32 entries.
                assert!(
                    fused.max_abs_diff(&multi) <= 1e-5,
                    "d={d} cap={cap}: fused sweep beyond reassociation bound"
                );
            }
        }
    }

    #[test]
    fn fused_p_downdate_forget_preserves_exact_symmetry() {
        let mut p = sym_p(9);
        let ph: Vec<f32> = (0..9).map(|i| (i as f32 * 0.9).cos()).collect();
        // Iterate with forgetting: any seeded asymmetry would inflate by
        // 1/λ per step, so exact preservation is load-bearing here.
        for _ in 0..50 {
            p_downdate_forget(&mut p, &ph, 2.0, 1.0 / 0.95, 45.0);
        }
        for r in 0..9 {
            for c in 0..9 {
                assert_eq!(p[(r, c)], p[(c, r)], "({r},{c})");
            }
        }
    }

    #[test]
    fn mat_symmetrize_is_noop_on_symmetric_input() {
        let mut p = sym_p(6);
        let before = p.as_slice().to_vec();
        p.symmetrize();
        assert_eq!(p.as_slice(), &before[..], "½·(a+a) must round-trip");
        // And it repairs a dented matrix to exact symmetry.
        let mut dented = sym_p(6);
        dented[(2, 4)] += 1e-3;
        dented.symmetrize();
        assert_eq!(dented[(2, 4)], dented[(4, 2)]);
    }

    #[test]
    fn sub_elementwise() {
        let mut out = [0.0f32; 2];
        sub(&[3.0, 1.0], &[1.0, 4.0], &mut out);
        assert_eq!(out, [2.0, -3.0]);
    }

    #[test]
    fn sigmoid_stable_and_correct() {
        assert!((sigmoid(0.0f64) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0f64) <= 1.0);
        assert!(sigmoid(-100.0f64) >= 0.0);
        assert!(sigmoid(-100.0f64) < 1e-30);
        let s = sigmoid(2.0f32);
        assert!((s.to_f64() - 1.0 / (1.0 + (-2.0f64).exp())).abs() < 1e-6);
        // Symmetry: σ(-x) = 1 - σ(x)
        assert!((sigmoid(-1.3f64) - (1.0 - sigmoid(1.3f64))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gemv")]
    fn gemv_shape_mismatch_panics() {
        let a = Mat::<f64>::zeros(2, 3);
        let mut y = [0.0; 2];
        gemv(&a, &[1.0, 2.0], &mut y);
    }
}
