//! Small-matrix inversion for the OS-ELM initialization.
//!
//! The batch OS-ELM init computes `P₀ = (H₀ᵀH₀ + λI)⁻¹` for a `d×d` SPD
//! matrix (d ≤ 96 in the paper): Cholesky is the right tool. A Gauss–Jordan
//! fallback covers general (non-SPD) matrices in tests and diagnostics.

use crate::matrix::Mat;
use crate::scalar::Scalar;

/// Errors from the dense solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix was not positive definite (Cholesky pivot ≤ 0).
    NotPositiveDefinite {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The matrix was singular to working precision (Gauss–Jordan).
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// The matrix was not square.
    NotSquare,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            SolveError::Singular { pivot } => write!(f, "matrix is singular (pivot {pivot})"),
            SolveError::NotSquare => write!(f, "matrix is not square"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Cholesky factorization `A = L·Lᵀ` (lower triangular `L`).
pub fn cholesky<T: Scalar>(a: &Mat<T>) -> Result<Mat<T>, SolveError> {
    if a.rows() != a.cols() {
        return Err(SolveError::NotSquare);
    }
    let n = a.rows();
    let mut l = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum.to_f64() <= 0.0 {
                    return Err(SolveError::NotPositiveDefinite { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Inverse of an SPD matrix via Cholesky (`A⁻¹ = L⁻ᵀ·L⁻¹`).
pub fn cholesky_inverse<T: Scalar>(a: &Mat<T>) -> Result<Mat<T>, SolveError> {
    let l = cholesky(a)?;
    let n = a.rows();
    // Invert L (lower triangular) by forward substitution per unit vector.
    let mut linv = Mat::zeros(n, n);
    for col in 0..n {
        for i in col..n {
            let mut sum = if i == col { T::ONE } else { T::ZERO };
            for k in col..i {
                sum -= l[(i, k)] * linv[(k, col)];
            }
            linv[(i, col)] = sum / l[(i, i)];
        }
    }
    // A⁻¹ = Linvᵀ · Linv
    let mut inv = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let mut sum = T::ZERO;
            for k in i.max(j)..n {
                sum += linv[(k, i)] * linv[(k, j)];
            }
            inv[(i, j)] = sum;
        }
    }
    Ok(inv)
}

/// General inverse via Gauss–Jordan with partial pivoting.
pub fn gauss_jordan_inverse<T: Scalar>(a: &Mat<T>) -> Result<Mat<T>, SolveError> {
    if a.rows() != a.cols() {
        return Err(SolveError::NotSquare);
    }
    let n = a.rows();
    let mut work = a.clone();
    let mut inv = Mat::identity(n);
    for col in 0..n {
        // Partial pivot: largest |entry| in this column at/below the diagonal.
        let mut pivot_row = col;
        let mut best = work[(col, col)].abs();
        for r in (col + 1)..n {
            let v = work[(r, col)].abs();
            if v > best {
                best = v;
                pivot_row = r;
            }
        }
        if best.to_f64() <= f64::EPSILON {
            return Err(SolveError::Singular { pivot: col });
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = work[(col, j)];
                work[(col, j)] = work[(pivot_row, j)];
                work[(pivot_row, j)] = tmp;
                let tmp = inv[(col, j)];
                inv[(col, j)] = inv[(pivot_row, j)];
                inv[(pivot_row, j)] = tmp;
            }
        }
        let pivot = work[(col, col)];
        for j in 0..n {
            work[(col, j)] /= pivot;
            inv[(col, j)] /= pivot;
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = work[(r, col)];
            if factor == T::ZERO {
                continue;
            }
            for j in 0..n {
                let wc = work[(col, j)];
                let ic = inv[(col, j)];
                work[(r, j)] -= factor * wc;
                inv[(r, j)] -= factor * ic;
            }
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ger;

    fn spd3() -> Mat<f64> {
        // A = B·Bᵀ + I is SPD for any B.
        let b = Mat::from_vec(3, 3, vec![1.0, 2.0, 0.0, 0.5, 1.0, 3.0, 2.0, 0.0, 1.0]);
        let mut a = b.matmul(&b.transpose());
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose());
        assert!(recon.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Mat::<f64>::identity(2);
        a[(1, 1)] = -1.0;
        assert!(matches!(cholesky(&a), Err(SolveError::NotPositiveDefinite { pivot: 1 })));
    }

    #[test]
    fn cholesky_inverse_is_inverse() {
        let a = spd3();
        let inv = cholesky_inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Mat::identity(3)) < 1e-10);
    }

    #[test]
    fn gauss_jordan_matches_cholesky_on_spd() {
        let a = spd3();
        let gi = gauss_jordan_inverse(&a).unwrap();
        let ci = cholesky_inverse(&a).unwrap();
        assert!(gi.max_abs_diff(&ci) < 1e-9);
    }

    #[test]
    fn gauss_jordan_handles_permutation() {
        // Requires pivoting (zero on the diagonal).
        let a = Mat::from_vec(2, 2, vec![0.0f64, 1.0, 1.0, 0.0]);
        let inv = gauss_jordan_inverse(&a).unwrap();
        assert!(inv.max_abs_diff(&a) < 1e-12); // a permutation is its own inverse
    }

    #[test]
    fn gauss_jordan_rejects_singular() {
        let a = Mat::from_vec(2, 2, vec![1.0f64, 2.0, 2.0, 4.0]);
        assert!(matches!(gauss_jordan_inverse(&a), Err(SolveError::Singular { .. })));
    }

    #[test]
    fn non_square_rejected() {
        let a = Mat::<f64>::zeros(2, 3);
        assert_eq!(cholesky(&a).unwrap_err(), SolveError::NotSquare);
        assert_eq!(gauss_jordan_inverse(&a).unwrap_err(), SolveError::NotSquare);
    }

    #[test]
    fn rls_batch_equivalence() {
        // Sherman–Morrison chain must equal direct inversion:
        // P = (λI + Σ hᵢᵀhᵢ)⁻¹ built incrementally matches cholesky_inverse.
        let lambda = 0.1f64;
        let hs = [[1.0, 0.5, 0.0], [0.2, 1.0, 0.3], [0.0, 0.4, 1.0], [1.0, 1.0, 1.0]];
        // Direct
        let mut gram = Mat::<f64>::scaled_identity(3, lambda);
        for h in &hs {
            ger(&mut gram, 1.0, h, h);
        }
        let direct = cholesky_inverse(&gram).unwrap();
        // Incremental
        let mut p = Mat::<f64>::scaled_identity(3, 1.0 / lambda);
        for h in &hs {
            let mut ph = [0.0; 3];
            crate::ops::gemv(&p, h, &mut ph);
            let denom = 1.0 + crate::ops::dot(h, &ph);
            let hp = ph;
            crate::ops::p_downdate(&mut p, &ph, &hp, denom);
        }
        assert!(p.max_abs_diff(&direct) < 1e-9);
    }
}
