//! Minimal floating-point abstraction so the same kernels serve the f32
//! proposed model and the f64 baseline without a numeric-traits dependency.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar used by the matrix and vector kernels.
pub trait Scalar:
    Copy
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;

    /// Lossy conversion from `f64`.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64`.
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm.
    fn ln(self) -> Self;
    /// Whether the value is finite (not NaN/∞).
    fn is_finite(self) -> bool;
    /// Larger of two values (NaN-propagating like `f64::max` is fine here).
    fn max_s(self, other: Self) -> Self;
    /// Smaller of two values.
    fn min_s(self, other: Self) -> Self;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;

            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn ln(self) -> Self {
                <$t>::ln(self)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline]
            fn max_s(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min_s(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(x: f64) -> f64 {
        T::from_f64(x).to_f64()
    }

    #[test]
    fn conversions() {
        assert_eq!(roundtrip::<f64>(1.25), 1.25);
        assert_eq!(roundtrip::<f32>(1.25), 1.25);
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
    }

    #[test]
    fn math_helpers() {
        assert_eq!((-2.0f32).abs(), 2.0);
        assert_eq!(Scalar::sqrt(9.0f64), 3.0);
        assert!(Scalar::is_finite(1.0f32));
        assert!(!Scalar::is_finite(f64::NAN));
        assert_eq!(Scalar::max_s(1.0f32, 2.0), 2.0);
        assert_eq!(Scalar::min_s(1.0f64, 2.0), 1.0);
    }
}
