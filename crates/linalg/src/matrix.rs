//! Row-major dense matrix.

use crate::scalar::Scalar;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix of [`Scalar`] values.
///
/// Indexing is `m[(row, col)]`. Rows are contiguous, so `row(i)` is a slice —
/// the training loops exploit this by treating weight matrices as `N` rows of
/// length `d` and updating a handful of rows per sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> Mat<T> {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![T::ZERO; rows * cols] }
    }

    /// Matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Mat { rows, cols, data: vec![value; rows * cols] }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// `scale · I` — the standard OS-ELM `P₀ = (1/λ)·I` initialization.
    pub fn scaled_identity(n: usize, scale: T) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = scale;
        }
        m
    }

    /// Builds from a row-major `Vec`; `data.len()` must equal `rows·cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Mat { rows, cols, data }
    }

    /// Builds from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Two distinct rows mutably at once (used by swap-style updates).
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [T], &mut [T]) {
        assert_ne!(a, b, "rows must be distinct");
        let cols = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * cols);
            (&mut lo[a * cols..(a + 1) * cols], &mut hi[..cols])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * cols);
            let blo = &mut lo[b * cols..(b + 1) * cols];
            // Can't return both from one split in this order; recompute.
            (&mut hi[..cols], blo)
        }
    }

    /// Column `c` copied into a `Vec` (columns are strided; copy is explicit).
    pub fn col_to_vec(&self, c: usize) -> Vec<T> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Forces exact symmetry in place: `self[(r,c)] = self[(c,r)] =
    /// ½·(self[(r,c)] + self[(c,r)])`. A no-op (bit-for-bit) on an
    /// already-symmetric matrix. The OS-ELM models call this once at cold
    /// entry points (batch init, state restore) so the hot-path `P`
    /// kernels — which *preserve* exact symmetry but do not restore it —
    /// can skip per-update symmetrization.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize: matrix must be square");
        let half = T::from_f64(0.5);
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                let avg = half * (self[(r, c)] + self[(c, r)]);
                self[(r, c)] = avg;
                self[(c, r)] = avg;
            }
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat<T> {
        Mat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Dense product `self · other` (naïve triple loop — fine for the `d×d`
    /// shapes this crate exists for; tall weight matrices never hit this).
    pub fn matmul(&self, other: &Mat<T>) -> Mat<T> {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == T::ZERO {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for j in 0..other.cols {
                    out_row[j] += a * orow[j];
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> T {
        self.data.iter().map(|&x| x * x).sum::<T>().sqrt()
    }

    /// Largest absolute entry difference against `other` (test helper and
    /// fixed-point error metric).
    pub fn max_abs_diff(&self, other: &Mat<T>) -> T {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(T::ZERO, |m, x| m.max_s(x))
    }

    /// Whether every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Heap footprint in bytes (model-size reporting).
    pub fn heap_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Converts element type (e.g. f64 reference result → f32 for comparison).
    pub fn cast<U: Scalar>(&self) -> Mat<U> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| U::from_f64(x.to_f64())).collect(),
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Mat<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Mat<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut m = Mat::<f64>::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        m[(1, 2)] = 5.0;
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn identity_and_scaled() {
        let i = Mat::<f32>::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        let p0 = Mat::<f32>::scaled_identity(2, 10.0);
        assert_eq!(p0[(1, 1)], 10.0);
    }

    #[test]
    fn from_vec_checks_length() {
        let m = Mat::from_vec(2, 2, vec![1.0f64, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_wrong_length_panics() {
        let _ = Mat::from_vec(2, 2, vec![1.0f64]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_small() {
        let a = Mat::from_vec(2, 2, vec![1.0f64, 2.0, 3.0, 4.0]);
        let b = Mat::from_vec(2, 2, vec![5.0f64, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_fn(3, 3, |r, c| (r + 2 * c) as f32);
        assert_eq!(a.matmul(&Mat::identity(3)), a);
        assert_eq!(Mat::identity(3).matmul(&a), a);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = Mat::from_fn(3, 2, |r, _| r as f64);
        {
            let (a, b) = m.two_rows_mut(0, 2);
            a[0] = 10.0;
            b[0] = 20.0;
        }
        assert_eq!(m[(0, 0)], 10.0);
        assert_eq!(m[(2, 0)], 20.0);
        {
            let (a, b) = m.two_rows_mut(2, 0);
            assert_eq!(a[0], 20.0);
            assert_eq!(b[0], 10.0);
        }
    }

    #[test]
    fn norms_and_diffs() {
        let a = Mat::from_vec(1, 2, vec![3.0f64, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        let b = Mat::from_vec(1, 2, vec![3.5f64, 4.0]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn finite_check_and_cast() {
        let mut a = Mat::<f64>::zeros(1, 2);
        assert!(a.all_finite());
        a[(0, 1)] = f64::INFINITY;
        assert!(!a.all_finite());
        let c: Mat<f32> = Mat::from_vec(1, 1, vec![0.5f64]).cast();
        assert_eq!(c[(0, 0)], 0.5f32);
    }

    #[test]
    fn col_to_vec_extracts_strided_column() {
        let m = Mat::from_fn(3, 2, |r, c| (10 * r + c) as f64);
        assert_eq!(m.col_to_vec(1), vec![1.0, 11.0, 21.0]);
    }

    #[test]
    fn heap_bytes() {
        let m = Mat::<f32>::zeros(4, 4);
        assert_eq!(m.heap_bytes(), 64);
        let m64 = Mat::<f64>::zeros(4, 4);
        assert_eq!(m64.heap_bytes(), 128);
    }
}
