//! Rayon-parallel kernels for tall-matrix passes.
//!
//! The sequential training loops are inherently serial (each update reads the
//! previous state), but several *bulk* passes are embarrassingly parallel
//! across rows: extracting the embedding (`μ·βᵀ`), scoring every node in the
//! downstream classifier, and dense error sweeps. These helpers chunk rows
//! across the rayon pool; per the Rayon guide, callers just see the same
//! results as the sequential kernels.

use crate::matrix::Mat;
use crate::ops;
use crate::scalar::Scalar;
use rayon::prelude::*;

/// Parallel `y = A·x` over the rows of a tall `A`.
pub fn par_gemv<T: Scalar>(a: &Mat<T>, x: &[T], y: &mut [T]) {
    assert_eq!(a.cols(), x.len(), "par_gemv: x length mismatch");
    assert_eq!(a.rows(), y.len(), "par_gemv: y length mismatch");
    let cols = a.cols();
    y.par_iter_mut().enumerate().for_each(|(r, out)| {
        let row = &a.as_slice()[r * cols..(r + 1) * cols];
        *out = ops::dot(row, x);
    });
}

/// Parallel row map: `out.row(r) = f(r, a.row(r))` for a fresh matrix of the
/// same shape.
pub fn par_row_map<T: Scalar>(a: &Mat<T>, f: impl Fn(usize, &[T], &mut [T]) + Sync) -> Mat<T> {
    let (rows, cols) = (a.rows(), a.cols());
    let mut out = Mat::zeros(rows, cols);
    out.as_mut_slice().par_chunks_mut(cols).enumerate().for_each(|(r, dst)| {
        f(r, a.row(r), dst);
    });
    out
}

/// Parallel scaled transpose `out = s · Aᵀ`: the embedding-extraction step
/// (`W_in = μ·βᵀ`, Section 3.1 of the paper) for tall `β` stored as `d×N`.
pub fn par_scaled_transpose<T: Scalar>(a: &Mat<T>, s: T) -> Mat<T> {
    let (rows, cols) = (a.rows(), a.cols());
    let mut out = Mat::zeros(cols, rows);
    out.as_mut_slice().par_chunks_mut(rows).enumerate().for_each(|(c, dst)| {
        for (r, d) in dst.iter_mut().enumerate() {
            *d = s * a[(r, c)];
        }
    });
    out
}

/// Parallel Frobenius-norm of the difference of two same-shape matrices;
/// used by convergence diagnostics over full weight matrices.
pub fn par_diff_norm<T: Scalar>(a: &Mat<T>, b: &Mat<T>) -> T {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "shape mismatch");
    let sum: f64 = a
        .as_slice()
        .par_iter()
        .zip(b.as_slice().par_iter())
        .map(|(&x, &y)| {
            let d = (x - y).to_f64();
            d * d
        })
        .sum();
    T::from_f64(sum.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_gemv_matches_serial() {
        let a = Mat::from_fn(100, 17, |r, c| ((r * 31 + c * 7) % 13) as f64 - 6.0);
        let x: Vec<f64> = (0..17).map(|i| i as f64 * 0.25 - 2.0).collect();
        let mut y_par = vec![0.0; 100];
        let mut y_ser = vec![0.0; 100];
        par_gemv(&a, &x, &mut y_par);
        ops::gemv(&a, &x, &mut y_ser);
        assert_eq!(y_par, y_ser);
    }

    #[test]
    fn par_row_map_applies_per_row() {
        let a = Mat::from_fn(10, 3, |r, c| (r + c) as f32);
        let out = par_row_map(&a, |_, src, dst| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s * 2.0;
            }
        });
        for r in 0..10 {
            for c in 0..3 {
                assert_eq!(out[(r, c)], a[(r, c)] * 2.0);
            }
        }
    }

    #[test]
    fn par_scaled_transpose_matches_transpose() {
        let a = Mat::from_fn(5, 8, |r, c| (r * 8 + c) as f64);
        let out = par_scaled_transpose(&a, 0.5);
        let expect = a.transpose();
        for r in 0..8 {
            for c in 0..5 {
                assert_eq!(out[(r, c)], 0.5 * expect[(r, c)]);
            }
        }
    }

    #[test]
    fn par_diff_norm_matches_manual() {
        let a = Mat::from_vec(1, 2, vec![1.0f64, 2.0]);
        let b = Mat::from_vec(1, 2, vec![4.0f64, 6.0]);
        assert!((par_diff_norm(&a, &b) - 5.0).abs() < 1e-12);
    }
}
