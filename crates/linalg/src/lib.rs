//! # seqge-linalg — small dense linear algebra for OS-ELM
//!
//! The OS-ELM recursive least-squares update works on a `d×d` matrix `P`
//! (d = embedding dimension, 32–96 in the paper) and `d`-vectors, while the
//! model weights are tall `N×d` matrices touched a few rows/columns at a
//! time. General-purpose BLAS is overkill for that shape profile; this crate
//! provides exactly the kernels the training loops need, generic over
//! [`Scalar`] (`f32` for the proposed model, `f64` for the baseline, matching
//! the paper's memory accounting).
//!
//! * [`Mat`] — row-major dense matrix.
//! * [`ops`] — dot / axpy / gemv / rank-1 update kernels.
//! * [`solve`] — Cholesky and Gauss–Jordan inversion for the `P₀` init.
//! * [`parallel`] — rayon-chunked variants for the tall-matrix passes.

pub mod matrix;
pub mod ops;
pub mod parallel;
pub mod scalar;
pub mod solve;

pub use matrix::Mat;
pub use scalar::Scalar;
