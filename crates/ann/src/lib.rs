//! # seqge-ann — incremental approximate-nearest-neighbor index
//!
//! The serving read path answers `topk` by scoring the query embedding
//! against *every* vertex in the published snapshot — O(n·d) per query,
//! which is fine at cora scale and fatal at 10^6+ vertices under heavy
//! read traffic. This crate is the sublinear alternative: locality-
//! sensitive hashing with `bands` independent hash tables, each keyed by a
//! `bits`-bit signature of signed random-hyperplane projections. A query
//! hashes its embedding (O(bands·bits·d)), unions the matching buckets
//! (plus `probes` low-margin bit-flip probes per band), and the caller
//! exactly re-ranks that candidate set under the requested operator — so
//! the approximation only ever affects *which* vertices compete, never the
//! scores or the tie-break order of the survivors.
//!
//! Two halves:
//!
//! * [`AnnIndex`] — the immutable artifact published alongside an
//!   embedding snapshot. Buckets are `Arc<Vec<u32>>`, so publishing a new
//!   version shares every untouched bucket with its predecessor
//!   structurally; readers holding an old snapshot keep a consistent
//!   index/embedding pair forever.
//! * [`AnnBuilder`] — the trainer-side maintainer. On every snapshot
//!   republish it detects the *dirty region* (rows whose bytes actually
//!   changed, via per-row hashes) and re-hashes only those vertices:
//!   O(dirty·bands·bits·d) instead of a full rebuild. Bucket edits
//!   copy-on-write through `Arc::make_mut`, and [`AnnBuilder::sync`]
//!   returns a fresh immutable [`AnnIndex`] whose cost is one shallow
//!   bucket-map clone (O(#buckets), not O(n)).
//!
//! The exemplar shape is SNIPPETS.md snippets 2–3 (`ATree`, `LayeredLsh`,
//! `DynamicQuery` from the wembed/rembed line of work): a spatial index
//! maintained *dynamically* under a mutating embedding set, queried
//! through the same interface as the brute-force path it replaces.

#![warn(missing_docs)]

pub mod index;
pub mod lsh;

pub use index::{AnnBuilder, AnnIndex, SyncReport};
pub use lsh::{AnnConfig, Hyperplanes};
