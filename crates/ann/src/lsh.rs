//! Signed random-hyperplane hashing: configuration, plane generation, and
//! signature/multi-probe computation.
//!
//! A signature bit is `sign(⟨plane, x⟩)`, so two vectors collide in a band
//! with probability `(1 - θ/π)^bits` for angle `θ` — the family is
//! locality-sensitive for *angular* similarity. The serving layer re-ranks
//! candidates exactly under the requested operator (`dot`, `cosine`,
//! `neg_l2`), so the hash family only shapes the candidate pool; the
//! recall guarantee is strongest for cosine-like operators and degrades
//! gracefully for norm-sensitive ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqge_linalg::Mat;

/// Hard cap on the per-band signature width.
pub const MAX_BITS: usize = 24;

/// Index configuration. `Default` matches the serving defaults documented
/// in DESIGN.md ("Sublinear reads").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnConfig {
    /// Independent hash tables (bands). More bands buy recall linearly in
    /// index size and query hash cost.
    pub bands: usize,
    /// Signature bits per band. `0` picks `ceil(log2(n / 32))` clamped to
    /// `4..=MAX_BITS` at first sync, targeting ~32-vertex buckets.
    pub bits: usize,
    /// Seed for the hyperplane matrix (deterministic index layout).
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        AnnConfig { bands: 8, bits: 0, seed: 0xA55_5EED }
    }
}

impl AnnConfig {
    /// The signature width used for an `n`-point index: the explicit
    /// `bits` if nonzero, otherwise the auto rule.
    pub fn bits_for(&self, n: usize) -> usize {
        if self.bits != 0 {
            return self.bits.clamp(1, MAX_BITS);
        }
        let mut bits = 4usize;
        while (n >> bits) > 32 && bits < MAX_BITS {
            bits += 1;
        }
        bits
    }
}

/// The `bands × bits` random hyperplanes, one row per bit, generated once
/// per index lifetime and shared (`Arc`) between builder and every
/// published [`crate::AnnIndex`].
#[derive(Debug)]
pub struct Hyperplanes {
    planes: Mat<f32>,
    bands: usize,
    bits: usize,
}

impl Hyperplanes {
    /// Draws `bands * bits` planes of dimension `dim` from `seed`
    /// (coordinates uniform in `[-1, 1)`; any symmetric coordinate
    /// distribution yields the sign-collision property).
    pub fn generate(dim: usize, bands: usize, bits: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let planes = Mat::from_fn(bands * bits, dim, |_, _| rng.gen_range(-1.0f64..1.0) as f32);
        Hyperplanes { planes, bands, bits }
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Signature bits per band.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Embedding dimensionality the planes were drawn for.
    pub fn dim(&self) -> usize {
        self.planes.cols()
    }

    /// Writes the per-band signatures of `x` into `sigs` (`bands` slots).
    pub fn signatures(&self, x: &[f32], sigs: &mut [u32]) {
        debug_assert_eq!(sigs.len(), self.bands);
        for (band, sig) in sigs.iter_mut().enumerate() {
            *sig = 0;
            for bit in 0..self.bits {
                if self.project(band * self.bits + bit, x) >= 0.0 {
                    *sig |= 1 << bit;
                }
            }
        }
    }

    /// Per-band signatures of `x` plus, for each band, up to `probes`
    /// extra signatures obtained by flipping the bits with the smallest
    /// projection magnitude — the bits most likely to disagree between a
    /// vector and its near neighbors (classic multi-probe LSH). Calls
    /// `visit(band, signature)` for the exact signature first, then each
    /// probe in ascending-margin order.
    pub fn probe_signatures(&self, x: &[f32], probes: usize, mut visit: impl FnMut(usize, u32)) {
        let probes = probes.min(self.bits);
        let mut margins: Vec<(f32, usize)> = Vec::with_capacity(self.bits);
        for band in 0..self.bands {
            let mut sig = 0u32;
            margins.clear();
            for bit in 0..self.bits {
                let p = self.project(band * self.bits + bit, x);
                if p >= 0.0 {
                    sig |= 1 << bit;
                }
                margins.push((p.abs(), bit));
            }
            visit(band, sig);
            if probes > 0 {
                // Total order (f32 margins are finite for finite input;
                // NaN sorts last via total_cmp) keeps probe sets
                // deterministic across republishes.
                margins.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                for &(_, bit) in margins.iter().take(probes) {
                    visit(band, sig ^ (1 << bit));
                }
            }
        }
    }

    fn project(&self, plane: usize, x: &[f32]) -> f32 {
        let row = self.planes.row(plane);
        let d = row.len().min(x.len());
        let mut acc = 0.0f32;
        for i in 0..d {
            acc += row[i] * x[i];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_bits_track_point_count() {
        let cfg = AnnConfig::default();
        assert_eq!(cfg.bits_for(0), 4);
        assert_eq!(cfg.bits_for(1_000), 5);
        assert_eq!(cfg.bits_for(100_000), 12);
        assert_eq!(cfg.bits_for(1_000_000), 15);
        // Explicit bits win and are capped.
        assert_eq!(AnnConfig { bits: 10, ..cfg }.bits_for(7), 10);
        assert_eq!(AnnConfig { bits: 99, ..cfg }.bits_for(7), MAX_BITS);
    }

    #[test]
    fn signatures_are_deterministic_and_band_sized() {
        let h = Hyperplanes::generate(8, 4, 6, 7);
        let x: Vec<f32> = (0..8).map(|i| i as f32 / 3.0 - 1.0).collect();
        let mut a = vec![0u32; 4];
        let mut b = vec![0u32; 4];
        h.signatures(&x, &mut a);
        h.signatures(&x, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().all(|&s| s < 1 << 6));
        // Same seed, same planes.
        let h2 = Hyperplanes::generate(8, 4, 6, 7);
        h2.signatures(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn opposite_vectors_get_complementary_signatures() {
        let h = Hyperplanes::generate(16, 2, 12, 3);
        let x: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let neg: Vec<f32> = x.iter().map(|&v| -v).collect();
        let (mut sx, mut sn) = (vec![0u32; 2], vec![0u32; 2]);
        h.signatures(&x, &mut sx);
        h.signatures(&neg, &mut sn);
        // A plane projecting exactly to 0.0 would put both on the same
        // side; with generic inputs every bit flips.
        for (a, b) in sx.iter().zip(&sn) {
            assert_eq!(a ^ b, (1 << 12) - 1);
        }
    }

    #[test]
    fn probe_signatures_yield_exact_then_single_bit_flips() {
        let h = Hyperplanes::generate(8, 3, 8, 11);
        let x: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut exact = vec![0u32; 3];
        h.signatures(&x, &mut exact);
        let mut seen: Vec<Vec<u32>> = vec![Vec::new(); 3];
        h.probe_signatures(&x, 4, |band, sig| seen[band].push(sig));
        for band in 0..3 {
            assert_eq!(seen[band].len(), 5, "exact + 4 probes");
            assert_eq!(seen[band][0], exact[band]);
            for &p in &seen[band][1..] {
                assert_eq!((p ^ exact[band]).count_ones(), 1, "single-bit probe");
            }
        }
        // probes are capped at `bits`.
        let mut count = 0usize;
        h.probe_signatures(&x, 999, |_, _| count += 1);
        assert_eq!(count, 3 * (1 + 8));
    }
}
