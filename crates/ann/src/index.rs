//! The published index and its incremental maintainer.

use crate::lsh::{AnnConfig, Hyperplanes};
use seqge_linalg::Mat;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One band's table: signature → bucket of vertex ids. Buckets are
/// `Arc`'d so successive index versions share every bucket the dirty
/// region did not touch.
type Band = HashMap<u32, Arc<Vec<u32>>>;

/// An immutable ANN index over one embedding snapshot. Cheap to clone
/// across versions (buckets are structurally shared); queries are
/// lock-free and allocation is bounded by the candidate-set size.
#[derive(Debug, Clone)]
pub struct AnnIndex {
    planes: Arc<Hyperplanes>,
    bands: Vec<Band>,
    num_points: usize,
}

impl AnnIndex {
    /// Vertices the index covers.
    pub fn num_points(&self) -> usize {
        self.num_points
    }

    /// Number of bands (hash tables).
    pub fn bands(&self) -> usize {
        self.planes.bands()
    }

    /// Signature bits per band.
    pub fn bits(&self) -> usize {
        self.planes.bits()
    }

    /// Candidate set for query vector `x`: the union of the matching
    /// bucket in every band, plus `probes` low-margin bit-flip probes per
    /// band, deduplicated and in ascending-id order (deterministic for a
    /// given index version). The caller re-ranks these exactly.
    pub fn candidates(&self, x: &[f32], probes: usize) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        self.planes.probe_signatures(x, probes, |band, sig| {
            if let Some(bucket) = self.bands[band].get(&sig) {
                out.extend_from_slice(bucket);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// What one [`AnnBuilder::sync`] did — the trainer mirrors this into the
/// `seqge_ann_*` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Vertices the index covers after the sync.
    pub total: usize,
    /// Vertices whose embedding bytes changed since the previous sync
    /// (on the first sync: every vertex).
    pub dirty: usize,
    /// Vertices actually re-hashed. Equals `dirty` — reported separately
    /// so the metrics assert the incremental invariant rather than assume
    /// it.
    pub rehashed: usize,
    /// Wall time of the sync (dirty scan + re-hash + publish clone).
    pub build_ns: u64,
}

impl SyncReport {
    /// Dirty vertices as parts-per-million of the total (0 when empty).
    pub fn dirty_ppm(&self) -> u64 {
        if self.total == 0 {
            return 0;
        }
        (self.dirty as u64).saturating_mul(1_000_000) / self.total as u64
    }
}

/// The trainer-side maintainer: owns the mutable bucket tables and the
/// per-row change-detection hashes, and renders an immutable [`AnnIndex`]
/// per snapshot publication.
///
/// Change detection compares an FNV-1a hash of each row's raw bytes
/// against the previous sync — O(n·d) reads per publish, roughly two
/// orders of magnitude cheaper than re-hashing every row through
/// `bands × bits` hyperplanes. (A hash collision would leave one vertex
/// filed under a stale signature: a recall blip on that vertex until its
/// row changes again, never a scoring error — candidates are always
/// re-ranked against the snapshot's true embeddings.)
#[derive(Debug)]
pub struct AnnBuilder {
    cfg: AnnConfig,
    planes: Option<Arc<Hyperplanes>>,
    row_hash: Vec<u64>,
    sigs: Vec<u32>,
    bands: Vec<Band>,
    num_points: usize,
}

impl AnnBuilder {
    /// A builder with no points; dimensions are fixed by the first
    /// [`AnnBuilder::sync`].
    pub fn new(cfg: AnnConfig) -> Self {
        AnnBuilder {
            cfg,
            planes: None,
            row_hash: Vec::new(),
            sigs: Vec::new(),
            bands: Vec::new(),
            num_points: 0,
        }
    }

    /// Brings the index in line with `emb` and returns the immutable
    /// version to publish. Only rows whose bytes changed since the last
    /// sync are re-hashed; the first sync (or a geometry change — row or
    /// column count) is a full rebuild.
    pub fn sync(&mut self, emb: &Mat<f32>) -> (Arc<AnnIndex>, SyncReport) {
        let t0 = Instant::now();
        let n = emb.rows();
        let full = match &self.planes {
            Some(p) => p.dim() != emb.cols() || self.num_points != n,
            None => true,
        };
        if full {
            let bits = self.cfg.bits_for(n);
            let bands = self.cfg.bands.max(1);
            self.planes =
                Some(Arc::new(Hyperplanes::generate(emb.cols(), bands, bits, self.cfg.seed)));
            self.bands = vec![Band::new(); bands];
            self.row_hash = vec![0; n];
            self.sigs = vec![0; n * bands];
            self.num_points = n;
        }
        let planes = self.planes.as_ref().expect("planes exist after init").clone();
        let bands = planes.bands();
        let mut dirty = 0usize;
        let mut fresh = vec![0u32; bands];
        for row in 0..n {
            let h = fnv1a(emb.row(row));
            if !full && self.row_hash[row] == h {
                continue;
            }
            dirty += 1;
            planes.signatures(emb.row(row), &mut fresh);
            let old = &mut self.sigs[row * bands..(row + 1) * bands];
            for band in 0..bands {
                if full {
                    bucket_insert(&mut self.bands[band], fresh[band], row as u32);
                } else if old[band] != fresh[band] {
                    bucket_remove(&mut self.bands[band], old[band], row as u32);
                    bucket_insert(&mut self.bands[band], fresh[band], row as u32);
                }
            }
            old.copy_from_slice(&fresh);
            self.row_hash[row] = h;
        }
        let index = Arc::new(AnnIndex {
            planes,
            // Shallow clone: one Arc bump per bucket, no vertex copies.
            bands: self.bands.clone(),
            num_points: n,
        });
        let report = SyncReport {
            total: n,
            dirty,
            rehashed: dirty,
            build_ns: t0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        };
        (index, report)
    }
}

/// Copy-on-write bucket insert: clones the bucket only if a published
/// index still shares it.
fn bucket_insert(band: &mut Band, sig: u32, id: u32) {
    Arc::make_mut(band.entry(sig).or_default()).push(id);
}

fn bucket_remove(band: &mut Band, sig: u32, id: u32) {
    if let Some(bucket) = band.get_mut(&sig) {
        let b = Arc::make_mut(bucket);
        if let Some(pos) = b.iter().position(|&v| v == id) {
            // Order inside a bucket is irrelevant: candidates are sorted
            // and deduped at query time.
            b.swap_remove(pos);
        }
        if b.is_empty() {
            band.remove(&sig);
        }
    }
}

fn fnv1a(row: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in row {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize, dim: usize) -> Mat<f32> {
        // Two antipodal clusters with a small deterministic wobble.
        Mat::from_fn(n, dim, |r, c| {
            let base = if r % 2 == 0 { 1.0 } else { -1.0 };
            base + ((r * 31 + c * 7) % 13) as f32 * 0.01
        })
    }

    #[test]
    fn first_sync_indexes_everything() {
        let emb = clustered(100, 8);
        let mut b = AnnBuilder::new(AnnConfig::default());
        let (idx, rep) = b.sync(&emb);
        assert_eq!(rep, SyncReport { total: 100, dirty: 100, rehashed: 100, ..rep });
        assert_eq!(idx.num_points(), 100);
        // Every point is its own candidate at zero probes.
        for r in (0..100).step_by(17) {
            assert!(idx.candidates(emb.row(r), 0).contains(&(r as u32)));
        }
    }

    #[test]
    fn resync_rehashes_only_dirty_rows() {
        let mut emb = clustered(200, 8);
        let mut b = AnnBuilder::new(AnnConfig::default());
        let (idx0, _) = b.sync(&emb);
        // Move one vertex to the other cluster.
        for c in 0..8 {
            emb.row_mut(42)[c] = -1.0 - c as f32 * 0.01;
        }
        let (idx1, rep) = b.sync(&emb);
        assert_eq!((rep.total, rep.dirty, rep.rehashed), (200, 1, 1));
        assert_eq!(rep.dirty_ppm(), 5_000);
        // The new index files 42 under its new signature…
        assert!(idx1.candidates(emb.row(42), 0).contains(&42));
        // …while the previously published index is untouched (old home).
        assert!(idx0.candidates(clustered(200, 8).row(42), 0).contains(&42));
        // A no-op sync is free.
        let (_, rep) = b.sync(&emb);
        assert_eq!(rep.dirty, 0);
    }

    #[test]
    fn geometry_change_forces_full_rebuild() {
        let mut b = AnnBuilder::new(AnnConfig::default());
        let (_, rep) = b.sync(&clustered(50, 8));
        assert_eq!(rep.dirty, 50);
        let (_, rep) = b.sync(&clustered(60, 8));
        assert_eq!((rep.total, rep.dirty), (60, 60));
        let (idx, rep) = b.sync(&clustered(60, 4));
        assert_eq!(rep.dirty, 60);
        assert!(idx.candidates(clustered(60, 4).row(3), 0).contains(&3));
    }

    #[test]
    fn candidates_are_sorted_dedup_and_cluster_local() {
        let emb = clustered(300, 16);
        let mut b = AnnBuilder::new(AnnConfig { bands: 6, bits: 4, seed: 9 });
        let (idx, _) = b.sync(&emb);
        let cands = idx.candidates(emb.row(10), 2);
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
        assert!(cands.contains(&10));
        // The antipodal cluster should be (almost) absent at zero probes.
        let tight = idx.candidates(emb.row(10), 0);
        let wrong = tight.iter().filter(|&&v| v % 2 == 1).count();
        assert!(
            wrong * 5 < tight.len().max(1),
            "opposite cluster dominates the bucket: {wrong}/{}",
            tight.len()
        );
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        let mut b = AnnBuilder::new(AnnConfig::default());
        let (idx, rep) = b.sync(&Mat::zeros(0, 8));
        assert_eq!((idx.num_points(), rep.total), (0, 0));
        assert_eq!(rep.dirty_ppm(), 0);
        assert!(idx.candidates(&[0.0; 8], 4).is_empty());
        let (idx, _) = b.sync(&Mat::filled(1, 8, 0.5));
        assert_eq!(idx.candidates(&[0.5; 8], 0), vec![0]);
    }
}
