//! Golden parity: the trait refactor must change *nothing* about what gets
//! trained.
//!
//! * [`FloatBackend`] vs. driving `OsElmSkipGram` + `IncrementalTrainer` by
//!   hand (the pre-refactor serve trainer) — snapshot **bytes** compared.
//! * [`FpgaSimBackend`] vs. the offline `seqge-fpga` functional execution of
//!   the same event stream — raw Q8.24 words compared.
//! * The deviation probe must not perturb the accelerator's RNG stream.
//! * Save → load → replay is deterministic (the WAL recovery contract).

use seqge_backend::{BackendKind, BackendSpec, FpgaSimBackend, TrainBackend};
use seqge_core::model::EmbeddingModel;
use seqge_core::{persist, IncrementalTrainer, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_fpga::Accelerator;
use seqge_graph::generators::classic::erdos_renyi;
use seqge_graph::{spanning_forest, EdgeEvent, Graph};
use seqge_sampling::UpdatePolicy;
use std::path::PathBuf;

const DIM: usize = 8;
const SEED: u64 = 11;

fn train_cfg() -> TrainConfig {
    let mut cfg = TrainConfig::paper_defaults(DIM);
    cfg.walk.walk_length = 12;
    cfg.walk.walks_per_node = 2;
    cfg
}

fn ocfg() -> OsElmConfig {
    OsElmConfig { model: train_cfg().model, ..OsElmConfig::paper_defaults(DIM) }
}

fn spec(kind: BackendKind) -> BackendSpec {
    BackendSpec::new(kind, train_cfg(), ocfg(), UpdatePolicy::every_edge(), SEED)
}

/// Boot graph + the held-out event stream.
fn scenario() -> (Graph, Vec<EdgeEvent>) {
    let full = erdos_renyi(40, 0.18, 7);
    let split = spanning_forest(&full);
    let initial = split.initial_graph(&full);
    let events = split.removed_edges.iter().map(|&(u, v)| EdgeEvent::Add(u, v)).collect::<Vec<_>>();
    assert!(events.len() >= 10, "scenario must hold out a real stream");
    (initial, events)
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("seqge-backend-parity-{}-{name}", std::process::id()))
}

#[test]
fn float_backend_is_byte_identical_to_manual_driver() {
    // Pre-refactor serve trainer: hand-driven model + driver.
    let (mut g, events) = scenario();
    let mut model = OsElmSkipGram::new(g.num_nodes(), ocfg());
    let mut inc =
        IncrementalTrainer::new(g.num_nodes(), &train_cfg(), UpdatePolicy::every_edge(), SEED);
    inc.bootstrap(&g, &mut model);
    for &e in &events {
        inc.ingest(&mut g, e, &mut model).unwrap();
    }

    // Refactored path: same calls through the trait object.
    let (mut g2, _) = scenario();
    let mut be = spec(BackendKind::Float).cold(g2.num_nodes());
    be.bootstrap(&g2);
    for &e in &events {
        be.ingest(&mut g2, e).unwrap();
    }

    let mut manual_bytes = Vec::new();
    persist::write_oselm(&model, &mut manual_bytes).unwrap();
    let path = tmp("float.sge");
    be.save_state(&path).unwrap();
    let backend_bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(manual_bytes, backend_bytes, "snapshot bytes must match pre-refactor trainer");
    assert_eq!(be.outcome().walks_trained, inc.outcome().walks_trained);
    assert_eq!(be.publish_view().as_slice(), model.embedding().as_slice());
}

#[test]
fn fpga_sim_matches_offline_functional_execution() {
    // The offline repro: the Q8.24 kernel driven directly by the sequential
    // trainer (what `seqge-fpga` executes over a prerecorded stream).
    let (mut g, events) = scenario();
    let mut acc = Accelerator::new(g.num_nodes(), ocfg());
    let mut inc =
        IncrementalTrainer::new(g.num_nodes(), &train_cfg(), UpdatePolicy::every_edge(), SEED);
    inc.bootstrap(&g, &mut acc);
    for &e in &events {
        inc.ingest(&mut g, e, &mut acc).unwrap();
    }

    // The serving backend over the same stream, deviation probe ON: the
    // probe must be invisible to the fixed-point trajectory.
    let (mut g2, _) = scenario();
    let mut be = FpgaSimBackend::cold(g2.num_nodes(), &spec(BackendKind::FpgaSim));
    be.bootstrap(&g2);
    for &e in &events {
        be.ingest(&mut g2, e).unwrap();
    }

    assert_eq!(be.accel().beta_bits(), acc.beta_bits(), "β words must match offline execution");
    assert_eq!(be.accel().p_bits(), acc.p_bits(), "P words must match offline execution");
    assert_eq!(be.accel().stats.cycles, acc.stats.cycles, "cycle accounting must match");
    // And the published view is exactly the dequantized kernel state.
    assert_eq!(
        be.publish_view().as_slice(),
        EmbeddingModel::embedding(&acc).as_slice(),
        "dirty-row publish must equal full dequantization"
    );
}

#[test]
fn deviation_probe_does_not_perturb_the_stream_and_reports() {
    let (mut g1, events) = scenario();
    let (mut g2, _) = scenario();
    let on = spec(BackendKind::FpgaSim);
    let off = spec(BackendKind::FpgaSim).with_deviation_probe(false);
    let mut with_probe = FpgaSimBackend::cold(g1.num_nodes(), &on);
    let mut without = FpgaSimBackend::cold(g2.num_nodes(), &off);
    with_probe.bootstrap(&g1);
    without.bootstrap(&g2);
    for &e in &events {
        with_probe.ingest(&mut g1, e).unwrap();
        without.ingest(&mut g2, e).unwrap();
    }
    assert_eq!(with_probe.accel().beta_bits(), without.accel().beta_bits());
    assert_eq!(with_probe.accel().p_bits(), without.accel().p_bits());

    let _ = with_probe.publish_view();
    let dev = with_probe.deviation_ppm().expect("probe measures deviation");
    assert!(dev > 0, "fixed point must deviate measurably from float");
    assert!(dev < 100_000, "deviation should stay in the Fig. 4 band (got {dev} ppm)");
    assert_eq!(without.publish_view().as_slice(), with_probe.publish_view().as_slice());
    assert!(without.deviation_ppm().is_none(), "no probe, no reading");
}

#[test]
fn save_load_replay_is_deterministic() {
    for kind in [BackendKind::Float, BackendKind::FpgaSim] {
        let (mut g, events) = scenario();
        let (head, tail) = events.split_at(events.len() / 2);
        let mut be = spec(kind).cold(g.num_nodes());
        be.bootstrap(&g);
        for &e in head {
            be.ingest(&mut g, e).unwrap();
        }
        let path = tmp(&format!("replay-{kind}.sge"));
        be.save_state(&path).unwrap();

        // Two independent recoveries replaying the same suffix must agree
        // bit-for-bit (fresh driver each time — WAL recovery semantics).
        let mut views = Vec::new();
        for _ in 0..2 {
            // Rebuild the graph state at the snapshot: boot forest + head.
            let (mut gr, _) = scenario();
            for &e in head {
                e.apply(&mut gr).unwrap();
            }
            let mut rec = spec(kind).load(&path).unwrap();
            for &e in tail {
                rec.ingest(&mut gr, e).unwrap();
            }
            let v = rec.publish_view();
            views.push(v.as_slice().to_vec());
        }
        let _ = std::fs::remove_file(&path);
        assert_eq!(views[0], views[1], "{kind}: double replay must be bit-identical");
    }
}

#[test]
fn load_refuses_wrong_backend_kind() {
    let (g, _) = scenario();
    let mut be = spec(BackendKind::Float).cold(g.num_nodes());
    be.bootstrap(&g);
    let path = tmp("kind.sge");
    be.save_state(&path).unwrap();
    let err = spec(BackendKind::FpgaSim).load(&path).err().expect("kind mismatch refused");
    assert!(err.to_string().contains("float"), "error names the writing backend: {err}");
    let mut fx = spec(BackendKind::FpgaSim).cold(g.num_nodes());
    fx.bootstrap(&g);
    fx.save_state(&path).unwrap();
    let err = spec(BackendKind::Float).load(&path).err().expect("kind mismatch refused");
    assert!(err.to_string().contains("fpga-sim"), "error names the writing backend: {err}");
    let _ = std::fs::remove_file(&path);
}
