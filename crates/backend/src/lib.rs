//! # seqge-backend — pluggable training backends for the serving path
//!
//! The paper's contribution is not the float OS-ELM model — it is Algorithm 2
//! executed as a deferred-Δ fixed-point dataflow kernel with a calibrated
//! cycle model. Until this crate, that kernel lived only in the offline
//! `seqge-fpga` repro; the online server always trained in float. The
//! [`TrainBackend`] trait makes the training engine a *configuration choice*:
//!
//! * [`FloatBackend`] — the existing float OS-ELM
//!   ([`seqge_core::OsElmSkipGram`] driven by
//!   [`seqge_core::IncrementalTrainer`]), refactored behind the trait with
//!   bit-identical behavior: the trait methods delegate exactly the calls the
//!   serve trainer used to make, in the same order, on the same RNG stream.
//! * [`FpgaSimBackend`] — the paper's accelerator semantics online: every
//!   walk runs through the Q8.24 functional kernel
//!   ([`seqge_fpga::Accelerator`], deferred Δβ committed per walk, cycle
//!   accounting per walk), the dequantized float serving view is refreshed
//!   *lazily at publish time* over only the rows the kernel dirtied (the
//!   host-side analogue of the accelerator's batched DRAM write-back), the
//!   cycle model doubles as a live throughput planner ([`CyclePlan`]), and an
//!   optional float shadow trained on the same walks/negatives measures the
//!   Fig. 4-style accuracy deviation as a live metric.
//!
//! The contract every backend must honor (the serve/WAL planes rely on it):
//!
//! 1. **Deterministic replay** — a backend restored from [`save_state`] bytes
//!    and fed the same event sequence produces bit-identical state. For the
//!    float backend the state is (β, P) in f32; for fpga-sim it is the *raw
//!    Q8.24 words* (an f32 round-trip would not be bit-faithful).
//! 2. **Publish-view purity** — [`publish_view`] returns the current
//!    embedding without changing training state (it may flush caches).
//! 3. **Restore keeps the corpus** — [`restore_state`] swaps the model
//!    weights only; the live walk corpus / negative table survive (matching
//!    the pre-refactor serve `restore` semantics).
//!
//! [`save_state`]: TrainBackend::save_state
//! [`publish_view`]: TrainBackend::publish_view
//! [`restore_state`]: TrainBackend::restore_state

#![warn(missing_docs)]

pub mod fixedstate;
pub mod float;
pub mod fpga_sim;

use seqge_core::{OsElmConfig, SeqOutcome, TrainConfig};
use seqge_graph::{EdgeEvent, Graph, GraphError};
use seqge_linalg::Mat;
use seqge_sampling::UpdatePolicy;
use std::io;
use std::path::Path;

pub use float::FloatBackend;
pub use fpga_sim::FpgaSimBackend;

/// Which training engine a server runs. The wire `stats` reply and
/// `cluster_status` carry the name so operators can see what a node is
/// actually running, and the cluster router asserts homogeneity across
/// shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BackendKind {
    /// Float OS-ELM (`OsElmSkipGram`), the pre-existing serving default.
    Float,
    /// Fixed-point deferred-Δ accelerator semantics (`seqge-fpga` kernel).
    FpgaSim,
}

impl BackendKind {
    /// The CLI / wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            BackendKind::Float => "float",
            BackendKind::FpgaSim => "fpga-sim",
        }
    }

    /// Parses the CLI spelling (`float` | `fpga-sim`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "float" => Ok(BackendKind::Float),
            "fpga-sim" | "fpga_sim" | "fpgasim" => Ok(BackendKind::FpgaSim),
            other => Err(format!("unknown backend `{other}` (expected `float` or `fpga-sim`)")),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The live throughput plan derived from the accelerator's cycle model: what
/// ingest rate the modeled hardware *should* sustain at the configured clock,
/// to compare against what the server measures. Float backends have no cycle
/// model and return `None` from [`TrainBackend::planner`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CyclePlan {
    /// Modeled PL cycles accumulated so far.
    pub cycles_total: u64,
    /// Walks priced into `cycles_total`.
    pub walks: u64,
    /// The clock the plan is evaluated at.
    pub clock_mhz: u32,
    /// Modeled mean per-walk latency in microseconds.
    pub predicted_walk_us: f64,
    /// Predicted sustainable ingest rate in edge events/s: each event
    /// restarts a walk from both endpoints (§4.3.2), so one event costs two
    /// modeled walks.
    pub predicted_ingest_eps: f64,
}

impl CyclePlan {
    /// Builds a plan from accumulated cycle telemetry.
    pub fn from_cycles(cycles_total: u64, walks: u64, clock_mhz: u32) -> CyclePlan {
        let (predicted_walk_us, predicted_ingest_eps) = if walks == 0 {
            (0.0, 0.0)
        } else {
            let walk_us = cycles_total as f64 / walks as f64 / clock_mhz as f64;
            (walk_us, 1e6 / (walk_us * 2.0))
        };
        CyclePlan { cycles_total, walks, clock_mhz, predicted_walk_us, predicted_ingest_eps }
    }
}

/// A training engine the serve plane can drive. One instance owns both the
/// model state and the sequential-training driver (walker, RNG, corpus,
/// negative table); see the crate docs for the replay/restore contract.
pub trait TrainBackend: Send {
    /// Which engine this is.
    fn kind(&self) -> BackendKind;

    /// Name + key parameters as one compact JSON object (embedded verbatim
    /// in the wire `stats` reply and `cluster_status`).
    fn descriptor(&self) -> String;

    /// Node capacity of the model.
    fn num_nodes(&self) -> usize;

    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// Walker-thread count for corpus resamples (bit-identical for any
    /// value; purely a throughput knob).
    fn set_walk_threads(&mut self, threads: usize);

    /// Full "all"-protocol pass over the boot graph (start-up only).
    fn bootstrap(&mut self, g: &Graph);

    /// Applies one edge event: mutate the graph, restart a walk from both
    /// endpoints, train. Returns walks trained or the graph's rejection with
    /// all state untouched.
    fn ingest(&mut self, g: &mut Graph, event: EdgeEvent) -> Result<usize, GraphError>;

    /// Full corpus resample + retrain (the drift arm). Returns walks trained.
    fn refresh(&mut self, g: &Graph) -> usize;

    /// The current embedding for publication. May flush internal caches
    /// (fpga-sim re-dequantizes dirty rows here — the Δ-batch application
    /// that amortizes per-walk cost) but must not advance training state.
    fn publish_view(&mut self) -> Mat<f32>;

    /// Training telemetry so far.
    fn outcome(&self) -> SeqOutcome;

    /// Edges retracted so far.
    fn edges_removed(&self) -> usize;

    /// Persists the model state (everything deterministic replay needs).
    fn save_state(&self, path: &Path) -> io::Result<()>;

    /// Replaces the model state from `path`, keeping the live training
    /// corpus. Fails without mutating anything if the file is invalid or its
    /// node count differs from `expect_nodes`.
    fn restore_state(&mut self, path: &Path, expect_nodes: usize) -> io::Result<()>;

    /// The cycle-model throughput plan, if this backend has one.
    fn planner(&self) -> Option<CyclePlan> {
        None
    }

    /// Latest measured float-vs-fixed embedding deviation in parts-per-
    /// million (refreshed by [`TrainBackend::publish_view`]), if this
    /// backend runs a deviation probe.
    fn deviation_ppm(&self) -> Option<i64> {
        None
    }
}

/// Everything needed to construct a backend — cold, or over a persisted
/// snapshot during WAL recovery. The spec (not a live backend) is what boot
/// paths and replay carry around, because recovery may need to build the
/// backend several times (verify-replay builds two).
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// Which engine to build.
    pub kind: BackendKind,
    /// Walk + model hyper-parameters for the sequential driver.
    pub train: TrainConfig,
    /// OS-ELM hyper-parameters for the model.
    pub oselm: OsElmConfig,
    /// Negative-table rebuild cadence.
    pub policy: UpdatePolicy,
    /// Walk/negative RNG seed.
    pub seed: u64,
    /// Run the float deviation shadow alongside fpga-sim (Fig. 4 live
    /// metric). Ignored by the float backend. The shadow trains on a
    /// *cloned* RNG, so the accelerator's stream — and therefore replay
    /// bit-identity — is unaffected by this switch.
    pub deviation_probe: bool,
    /// Clock the cycle planner is evaluated at (fpga-sim only).
    pub clock_mhz: u32,
}

impl BackendSpec {
    /// A spec with the default probe (on) and clock (the paper's 200 MHz).
    pub fn new(
        kind: BackendKind,
        train: TrainConfig,
        oselm: OsElmConfig,
        policy: UpdatePolicy,
        seed: u64,
    ) -> BackendSpec {
        BackendSpec { kind, train, oselm, policy, seed, deviation_probe: true, clock_mhz: 200 }
    }

    /// Shorthand for the float engine (the pre-refactor serving default).
    pub fn float(
        train: TrainConfig,
        oselm: OsElmConfig,
        policy: UpdatePolicy,
        seed: u64,
    ) -> BackendSpec {
        BackendSpec::new(BackendKind::Float, train, oselm, policy, seed)
    }

    /// Disables or enables the fpga-sim deviation shadow.
    pub fn with_deviation_probe(mut self, on: bool) -> BackendSpec {
        self.deviation_probe = on;
        self
    }

    /// Builds a cold (untrained) backend over `num_nodes` nodes.
    pub fn cold(&self, num_nodes: usize) -> Box<dyn TrainBackend> {
        match self.kind {
            BackendKind::Float => Box::new(FloatBackend::cold(num_nodes, self)),
            BackendKind::FpgaSim => Box::new(FpgaSimBackend::cold(num_nodes, self)),
        }
    }

    /// Builds a backend over a persisted model snapshot with a *fresh*
    /// sequential driver (WAL replay semantics: the corpus is rebuilt by the
    /// replayed events, exactly as the pre-refactor float path did). The
    /// snapshot's kind byte must match `self.kind` — booting `--backend
    /// float` over an fpga-sim store (or vice versa) is refused loudly
    /// rather than silently retrained.
    pub fn load(&self, path: &Path) -> io::Result<Box<dyn TrainBackend>> {
        let kind = fixedstate::sniff_kind(path)?;
        let found = match kind {
            fixedstate::KIND_OSELM => BackendKind::Float,
            fixedstate::KIND_FIXED => BackendKind::FpgaSim,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("model snapshot has unsupported payload kind {other}"),
                ))
            }
        };
        if found != self.kind {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "model snapshot was written by the `{found}` backend, \
                     but this server is configured for `{}`",
                    self.kind
                ),
            ));
        }
        match self.kind {
            BackendKind::Float => Ok(Box::new(FloatBackend::load(path, self)?)),
            BackendKind::FpgaSim => Ok(Box::new(FpgaSimBackend::load(path, self)?)),
        }
    }
}
