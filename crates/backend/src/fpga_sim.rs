//! The fpga-sim backend: the paper's deferred-Δ fixed-point accelerator
//! semantics on the serving path.
//!
//! Every walk the sequential driver produces is trained through the Q8.24
//! functional kernel ([`Accelerator`]) — deferred Δβ committed once per walk
//! (Algorithm 2 line 20), cycle accounting per walk. The dequantized float
//! serving view is **not** maintained per walk: the kernel tracks which β
//! rows each walk's commit dirtied, and [`TrainBackend::publish_view`]
//! re-dequantizes only those rows into a cached matrix — the host-side
//! analogue of the accelerator's batched DRAM write-back, amortizing the
//! per-walk cost across a publish batch exactly as the hardware does.
//!
//! Two live by-products:
//!
//! * **Cycle planner** — the calibrated per-walk cycle model accumulates
//!   into [`CyclePlan`]: predicted sustainable ingest rate at the configured
//!   clock, exported next to the measured rate so capacity headroom is a
//!   metric, not a guess.
//! * **Deviation probe** (Fig. 4 live) — an optional float
//!   [`DataflowOsElm`] shadow trains on the *same walks and negative draws*
//!   (it consumes a cloned RNG, so the accelerator's stream — and replay
//!   bit-identity — is untouched), and every publish measures the
//!   fixed-vs-float embedding deviation in ppm. After each measurement the
//!   shadow re-syncs to the dequantized fixed-point state: two numeric
//!   trajectories run chaotically apart over thousands of events however
//!   correct both are (tiny rounding differences compound through P), so
//!   the *cumulative* distance says nothing actionable. The per-publish-
//!   window drift stays in the ppm band Fig. 4 implies — a wrong
//!   quantization scale or a saturation storm blows it up immediately —
//!   which is what `scripts/bench_gate.sh` puts a ceiling on.

use crate::{BackendKind, CyclePlan, TrainBackend};
use seqge_core::model::EmbeddingModel;
use seqge_core::{DataflowOsElm, IncrementalTrainer, SeqOutcome};
use seqge_fpga::Accelerator;
use seqge_graph::{EdgeEvent, Graph, GraphError, NodeId};
use seqge_linalg::Mat;
use seqge_sampling::{NegativeTable, Rng64};
use std::io;
use std::path::Path;

/// The accelerator plus its optional float shadow, presented to the
/// sequential driver as one [`EmbeddingModel`]: the driver stays unaware
/// that each walk is trained twice.
struct ProbeModel {
    accel: Accelerator,
    shadow: Option<DataflowOsElm>,
}

impl EmbeddingModel for ProbeModel {
    fn train_walk(&mut self, walk: &[NodeId], negatives: &NegativeTable, rng: &mut Rng64) {
        if let Some(shadow) = &mut self.shadow {
            // The shadow replays the identical draw schedule from a clone;
            // the real stream advances exactly as it would without a probe.
            let mut shadow_rng = rng.clone();
            self.accel.train_walk(walk, negatives, rng);
            shadow.train_walk(walk, negatives, &mut shadow_rng);
        } else {
            self.accel.train_walk(walk, negatives, rng);
        }
    }

    fn embedding(&self) -> Mat<f32> {
        self.accel.embedding()
    }

    fn num_nodes(&self) -> usize {
        self.accel.num_nodes()
    }

    fn dim(&self) -> usize {
        self.accel.dim()
    }

    fn model_bytes(&self) -> usize {
        self.accel.model_bytes()
    }

    fn name(&self) -> &'static str {
        "fpga-sim"
    }
}

/// Fixed-point deferred-Δ training behind the serving trait.
pub struct FpgaSimBackend {
    probe: ProbeModel,
    inc: IncrementalTrainer,
    /// Cached dequantized serving view; `None` forces a full rebuild at the
    /// next publish (cold boot, restore).
    view: Option<Mat<f32>>,
    deviation_ppm: Option<i64>,
    /// Kernel walk count at the last shadow sync: a publish with no walks
    /// trained since (flush barriers publish freely) keeps the previous
    /// measurement instead of reporting a trivial zero.
    shadow_synced_walks: u64,
    clock_mhz: u32,
    seed: u64,
}

/// Fixed-vs-float mean absolute embedding deviation, normalized by the
/// float magnitude, in parts-per-million.
fn deviation_ppm(fixed: &Mat<f32>, float: &Mat<f32>) -> i64 {
    let mut num = 0f64;
    let mut den = 0f64;
    for (a, b) in fixed.as_slice().iter().zip(float.as_slice()) {
        num += (a - b).abs() as f64;
        den += b.abs() as f64;
    }
    if den <= f64::EPSILON {
        return 0;
    }
    (num / den * 1e6).round() as i64
}

impl FpgaSimBackend {
    fn assemble(accel: Accelerator, spec: &crate::BackendSpec) -> FpgaSimBackend {
        let shadow = spec.deviation_probe.then(|| {
            // The shadow runs the accelerator's own (PerWalk-forced) config,
            // so both consume the identical negative-draw schedule.
            DataflowOsElm::from_parts(*accel.config(), accel.beta_f32(), accel.p_f32())
        });
        let inc = IncrementalTrainer::new(accel.num_nodes(), &spec.train, spec.policy, spec.seed);
        let shadow_synced_walks = accel.stats.walks;
        FpgaSimBackend {
            probe: ProbeModel { accel, shadow },
            inc,
            view: None,
            deviation_ppm: None,
            shadow_synced_walks,
            clock_mhz: spec.clock_mhz,
            seed: spec.seed,
        }
    }

    /// Cold (untrained) engine over `num_nodes` nodes. The accelerator
    /// quantizes the same float init the CPU models use, and the shadow
    /// starts from the accelerator's dequantized state, so the first
    /// deviation measurement covers exactly the walks up to that publish.
    pub fn cold(num_nodes: usize, spec: &crate::BackendSpec) -> FpgaSimBackend {
        FpgaSimBackend::assemble(Accelerator::new(num_nodes, spec.oselm), spec)
    }

    /// Engine over a persisted kind-3 snapshot (raw Q8.24 words) with a
    /// fresh sequential driver (WAL replay semantics). The shadow restarts
    /// from the restored fixed-point state.
    pub fn load(path: &Path, spec: &crate::BackendSpec) -> io::Result<FpgaSimBackend> {
        Ok(FpgaSimBackend::assemble(crate::fixedstate::load_fixed(path)?, spec))
    }

    /// The wrapped accelerator (tests and benches: cycle stats, raw state).
    pub fn accel(&self) -> &Accelerator {
        &self.probe.accel
    }
}

impl TrainBackend for FpgaSimBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::FpgaSim
    }

    fn descriptor(&self) -> String {
        let cfg = self.probe.accel.config();
        format!(
            "{{\"name\":\"fpga-sim\",\"dim\":{},\"seed\":{},\"mu\":{},\"forgetting\":{},\
             \"clock_mhz\":{},\"deviation_probe\":{}}}",
            cfg.model.dim,
            self.seed,
            cfg.mu,
            cfg.forgetting,
            self.clock_mhz,
            self.probe.shadow.is_some()
        )
    }

    fn num_nodes(&self) -> usize {
        self.probe.accel.num_nodes()
    }

    fn dim(&self) -> usize {
        self.probe.accel.dim()
    }

    fn set_walk_threads(&mut self, threads: usize) {
        self.inc.set_walk_threads(threads);
    }

    fn bootstrap(&mut self, g: &Graph) {
        self.inc.bootstrap(g, &mut self.probe);
    }

    fn ingest(&mut self, g: &mut Graph, event: EdgeEvent) -> Result<usize, GraphError> {
        self.inc.ingest(g, event, &mut self.probe)
    }

    fn refresh(&mut self, g: &Graph) -> usize {
        self.inc.refresh(g, &mut self.probe)
    }

    fn publish_view(&mut self) -> Mat<f32> {
        let dirty = self.probe.accel.take_dirty();
        let view = match &mut self.view {
            Some(view) => {
                // The Δ-batch application: only rows committed since the
                // last publish are re-dequantized.
                for &node in &dirty {
                    self.probe.accel.embed_row(node, view.row_mut(node as usize));
                }
                view.clone()
            }
            None => {
                let full = self.probe.accel.embedding();
                self.view = Some(full.clone());
                full
            }
        };
        if let Some(shadow) = &mut self.probe.shadow {
            if self.probe.accel.stats.walks > self.shadow_synced_walks {
                let ppm = deviation_ppm(&view, &shadow.embedding());
                self.deviation_ppm = Some(ppm);
                seqge_obs::static_gauge!("seqge_backend_deviation_ppm").set(ppm);
                // Re-sync: the next measurement covers only the walks
                // trained between this publish and the next (see module
                // docs). Walk-free publishes (flush barriers) keep the
                // last measurement.
                let accel = &self.probe.accel;
                *shadow =
                    DataflowOsElm::from_parts(*accel.config(), accel.beta_f32(), accel.p_f32());
                self.shadow_synced_walks = accel.stats.walks;
            }
        }
        view
    }

    fn outcome(&self) -> SeqOutcome {
        self.inc.outcome()
    }

    fn edges_removed(&self) -> usize {
        self.inc.edges_removed()
    }

    fn save_state(&self, path: &Path) -> io::Result<()> {
        crate::fixedstate::save_fixed(&self.probe.accel, path)
    }

    fn restore_state(&mut self, path: &Path, expect_nodes: usize) -> io::Result<()> {
        let accel = crate::fixedstate::load_fixed(path)?;
        if accel.num_nodes() != expect_nodes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot mismatch: model covers {} nodes, graph has {expect_nodes}",
                    accel.num_nodes()
                ),
            ));
        }
        self.probe.shadow =
            self.probe.shadow.is_some().then(|| {
                DataflowOsElm::from_parts(*accel.config(), accel.beta_f32(), accel.p_f32())
            });
        self.probe.accel = accel;
        self.shadow_synced_walks = self.probe.accel.stats.walks;
        self.view = None;
        self.deviation_ppm = None;
        Ok(())
    }

    fn planner(&self) -> Option<CyclePlan> {
        let s = &self.probe.accel.stats;
        Some(CyclePlan::from_cycles(s.cycles, s.walks, self.clock_mhz))
    }

    fn deviation_ppm(&self) -> Option<i64> {
        self.deviation_ppm
    }
}
