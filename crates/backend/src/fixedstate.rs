//! Fixed-point model persistence: SGE1 payload kind 3.
//!
//! The fpga-sim backend's deterministic-replay state is the accelerator's
//! *raw Q8.24 words* — an f32 round-trip would perturb the low bits and
//! break kill -9 bit-identity. This module extends the `seqge_core::persist`
//! SGE1 container with a fixed-point payload:
//!
//! ```text
//! magic  "SGE1"            4 bytes
//! kind   u8                3 = fixed-point OS-ELM (Q8.24 raw bits)
//! payload                  config JSON (u32 len + bytes), N u64, d u64,
//!                          beta i32[N*d], p i32[d*d]   (little-endian bits)
//! ```
//!
//! Kind bytes 1 (embedding) and 2 (float OS-ELM) stay owned by
//! `seqge_core::persist`; [`sniff_kind`] reads just the 5-byte header so
//! boot paths can refuse a snapshot written by the wrong backend before
//! parsing anything.

use seqge_core::OsElmConfig;
use seqge_fixed::Q8_24;
use seqge_fpga::Accelerator;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SGE1";
/// `seqge_core::persist` float OS-ELM payload kind.
pub const KIND_OSELM: u8 = 2;
/// Fixed-point (Q8.24 raw bits) OS-ELM payload kind.
pub const KIND_FIXED: u8 = 3;

/// Largest number of fixed-point words any section may declare (matches
/// `seqge_core::persist::MAX_ELEMS`); bigger counts are treated as corruption.
const MAX_ELEMS: usize = 1 << 31;
/// Largest config blob accepted (matches `seqge_core::persist`).
const MAX_CONFIG_BYTES: usize = 1 << 20;

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_bits<W: Write>(w: &mut W, xs: &[Q8_24]) -> io::Result<()> {
    for &x in xs {
        w.write_all(&x.to_bits().to_le_bytes())?;
    }
    Ok(())
}

fn read_bits<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<Q8_24>> {
    let byte_len = n
        .checked_mul(4)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "element count overflows"))?;
    let mut bytes = Vec::new();
    r.take(byte_len as u64).read_to_end(&mut bytes)?;
    if bytes.len() != byte_len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("payload truncated: expected {byte_len} bytes, found {}", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| Q8_24::from_bits(i32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect())
}

fn checked_shape(rows: usize, cols: usize, what: &str) -> io::Result<usize> {
    match rows.checked_mul(cols) {
        Some(n) if n <= MAX_ELEMS => Ok(n),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unreasonable {what} shape {rows}x{cols}"),
        )),
    }
}

/// Reads the 5-byte SGE1 header of `path` and returns the payload kind.
pub fn sniff_kind(path: &Path) -> io::Result<u8> {
    let mut r = File::open(path)?;
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    if &head[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a seqge file"));
    }
    Ok(head[4])
}

/// Serializes the accelerator's replay state (config + raw β + raw P).
pub fn write_fixed<W: Write>(acc: &Accelerator, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[KIND_FIXED])?;
    let cfg = serde_json::to_vec(acc.config()).expect("config serializes");
    w.write_all(&(cfg.len() as u32).to_le_bytes())?;
    w.write_all(&cfg)?;
    use seqge_core::EmbeddingModel;
    write_u64(&mut w, acc.num_nodes() as u64)?;
    write_u64(&mut w, acc.dim() as u64)?;
    write_bits(&mut w, acc.beta_bits())?;
    write_bits(&mut w, acc.p_bits())
}

/// Restores an accelerator written by [`write_fixed`]; bit-identical
/// continuation (same raw words, same PerWalk-forced RNG schedule).
pub fn read_fixed<R: Read>(mut r: R) -> io::Result<Accelerator> {
    let mut head = [0u8; 5];
    r.read_exact(&mut head)?;
    if &head[..4] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a seqge file"));
    }
    if head[4] != KIND_FIXED {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wrong payload kind {} (expected {KIND_FIXED})", head[4]),
        ));
    }
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let cfg_len = u32::from_le_bytes(len) as usize;
    if cfg_len > MAX_CONFIG_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unreasonable config length {cfg_len}"),
        ));
    }
    let mut cfg_bytes = vec![0u8; cfg_len];
    r.read_exact(&mut cfg_bytes)?;
    let cfg: OsElmConfig = serde_json::from_slice(&cfg_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    if cols != cfg.model.dim {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "dim/config mismatch"));
    }
    let beta_n = checked_shape(rows, cols, "beta")?;
    let p_n = checked_shape(cols, cols, "P")?;
    let beta = read_bits(&mut r, beta_n)?;
    let p = read_bits(&mut r, p_n)?;
    Ok(Accelerator::from_raw_parts(rows, cfg, beta, p))
}

/// File-path convenience wrappers.
pub fn save_fixed(acc: &Accelerator, path: &Path) -> io::Result<()> {
    write_fixed(acc, File::create(path)?)
}

/// Loads an accelerator from `path`.
pub fn load_fixed(path: &Path) -> io::Result<Accelerator> {
    read_fixed(File::open(path)?)
}
