//! The float OS-ELM backend — the pre-refactor serving engine behind the
//! trait, bit-identical to driving [`OsElmSkipGram`] +
//! [`IncrementalTrainer`] by hand: every trait method delegates exactly the
//! call the serve trainer used to make, in the same order, on the same RNG
//! stream.

use crate::{BackendKind, TrainBackend};
use seqge_core::model::EmbeddingModel;
use seqge_core::{persist, IncrementalTrainer, OsElmSkipGram, SeqOutcome};
use seqge_graph::{EdgeEvent, Graph, GraphError};
use seqge_linalg::Mat;
use std::io;
use std::path::Path;

/// Float OS-ELM ([`OsElmSkipGram`]) driven by [`IncrementalTrainer`].
pub struct FloatBackend {
    model: OsElmSkipGram,
    inc: IncrementalTrainer,
}

impl FloatBackend {
    /// Cold (untrained) engine over `num_nodes` nodes.
    pub fn cold(num_nodes: usize, spec: &crate::BackendSpec) -> FloatBackend {
        FloatBackend {
            model: OsElmSkipGram::new(num_nodes, spec.oselm),
            inc: IncrementalTrainer::new(num_nodes, &spec.train, spec.policy, spec.seed),
        }
    }

    /// Engine over a persisted snapshot with a fresh sequential driver
    /// (WAL replay semantics).
    pub fn load(path: &Path, spec: &crate::BackendSpec) -> io::Result<FloatBackend> {
        let model = persist::load_oselm(path)?;
        let inc = IncrementalTrainer::new(model.num_nodes(), &spec.train, spec.policy, spec.seed);
        Ok(FloatBackend { model, inc })
    }

    /// Wraps an already-built (possibly already-trained) model + driver pair
    /// — the compatibility path for callers that boot through the historic
    /// `boot_cold`/`boot_restore` helpers.
    pub fn from_parts(model: OsElmSkipGram, inc: IncrementalTrainer) -> FloatBackend {
        FloatBackend { model, inc }
    }

    /// The wrapped model (tests and benches).
    pub fn model(&self) -> &OsElmSkipGram {
        &self.model
    }
}

impl TrainBackend for FloatBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Float
    }

    fn descriptor(&self) -> String {
        let cfg = self.model.config();
        format!(
            "{{\"name\":\"float\",\"dim\":{},\"seed\":{},\"mu\":{},\"forgetting\":{}}}",
            cfg.model.dim, cfg.model.seed, cfg.mu, cfg.forgetting
        )
    }

    fn num_nodes(&self) -> usize {
        self.model.num_nodes()
    }

    fn dim(&self) -> usize {
        EmbeddingModel::dim(&self.model)
    }

    fn set_walk_threads(&mut self, threads: usize) {
        self.inc.set_walk_threads(threads);
    }

    fn bootstrap(&mut self, g: &Graph) {
        self.inc.bootstrap(g, &mut self.model);
    }

    fn ingest(&mut self, g: &mut Graph, event: EdgeEvent) -> Result<usize, GraphError> {
        self.inc.ingest(g, event, &mut self.model)
    }

    fn refresh(&mut self, g: &Graph) -> usize {
        self.inc.refresh(g, &mut self.model)
    }

    fn publish_view(&mut self) -> Mat<f32> {
        self.model.embedding()
    }

    fn outcome(&self) -> SeqOutcome {
        self.inc.outcome()
    }

    fn edges_removed(&self) -> usize {
        self.inc.edges_removed()
    }

    fn save_state(&self, path: &Path) -> io::Result<()> {
        persist::save_oselm(&self.model, path)
    }

    fn restore_state(&mut self, path: &Path, expect_nodes: usize) -> io::Result<()> {
        let model = persist::load_oselm(path)?;
        if model.num_nodes() != expect_nodes {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "snapshot mismatch: model covers {} nodes, graph has {expect_nodes}",
                    model.num_nodes()
                ),
            ));
        }
        self.model = model;
        Ok(())
    }
}
