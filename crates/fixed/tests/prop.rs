//! Property-based tests for the fixed-point datapath.

use proptest::prelude::*;
use seqge_fixed::ops::{mac_dot, naive_dot};
use seqge_fixed::{Fx, Q8_24};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// In-range conversion round-trips within half an ulp.
    #[test]
    fn roundtrip_within_half_ulp(x in -100.0f64..100.0) {
        let q = Q8_24::from_f64(x);
        prop_assert!(!q.is_saturated());
        prop_assert!((q.to_f64() - x).abs() <= 0.5 / Q8_24::SCALE + 1e-15);
    }

    /// Saturating ops are total (no panic) and idempotent at the rails.
    #[test]
    fn ops_total_and_bounded(a in any::<i32>(), b in any::<i32>()) {
        let x = Q8_24::from_bits(a);
        let y = Q8_24::from_bits(b);
        let results = [x.sat_add(y), x.sat_sub(y), x.sat_mul(y), x.sat_div(y), x.sat_neg(), x.abs()];
        // No panics is the main property; also the rails absorb further adds.
        prop_assert!(results.len() == 6);
        prop_assert_eq!(Q8_24::MAX.sat_add(Q8_24::ONE), Q8_24::MAX);
        prop_assert_eq!(Q8_24::MIN.sat_sub(Q8_24::ONE), Q8_24::MIN);
    }

    /// Addition is commutative; multiplication is commutative.
    #[test]
    fn commutativity(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
        let x = Q8_24::from_f64(a);
        let y = Q8_24::from_f64(b);
        prop_assert_eq!(x.sat_add(y), y.sat_add(x));
        prop_assert_eq!(x.sat_mul(y), y.sat_mul(x));
    }

    /// Fixed-point multiply tracks float multiply within quantization error
    /// for in-range operands/products.
    #[test]
    fn mul_tracks_float(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let q = Q8_24::from_f64(a).sat_mul(Q8_24::from_f64(b));
        // Error: input quantization (~|b|+|a| halves of an ulp) + one
        // truncation; all ≪ 1e-5 at these magnitudes.
        prop_assert!((q.to_f64() - a * b).abs() < 1e-5, "{} vs {}", q.to_f64(), a * b);
    }

    /// Ordering is preserved by conversion.
    #[test]
    fn conversion_is_monotone(a in -100.0f64..100.0, b in -100.0f64..100.0) {
        if a <= b {
            prop_assert!(Q8_24::from_f64(a) <= Q8_24::from_f64(b));
        }
    }

    /// The MAC tree quantizes exactly once, so relative to the
    /// quantized-input exact dot product its error is at most half an ulp —
    /// while the naive per-step datapath accumulates one rounding per
    /// element.
    #[test]
    fn mac_tree_single_rounding_bound(
        xs in proptest::collection::vec(-1.0f64..1.0, 1..64),
        ys in proptest::collection::vec(-1.0f64..1.0, 64),
    ) {
        let n = xs.len();
        let ys = &ys[..n];
        let xq: Vec<Q8_24> = xs.iter().map(|&v| Q8_24::from_f64(v)).collect();
        let yq: Vec<Q8_24> = ys.iter().map(|&v| Q8_24::from_f64(v)).collect();
        // Exact dot of the *quantized* inputs (what the datapaths both see).
        let exact_q: f64 = xq.iter().zip(&yq).map(|(a, b)| a.to_f64() * b.to_f64()).sum();
        let ulp = 1.0 / Q8_24::SCALE;
        let mac_err = (mac_dot(&xq, &yq).to_f64() - exact_q).abs();
        prop_assert!(mac_err <= 0.5 * ulp + 1e-12, "mac err {mac_err}");
        // Naive error is bounded by one rounding per element.
        let naive_err = (naive_dot(&xq, &yq).to_f64() - exact_q).abs();
        prop_assert!(naive_err <= (n as f64) * 0.5 * ulp + 1e-12, "naive err {naive_err}");
    }

    /// Division by self is ≈1 for values well inside the range.
    #[test]
    fn div_self_is_one(a in 0.01f64..100.0) {
        let x = Q8_24::from_f64(a);
        let r = x.sat_div(x).to_f64();
        prop_assert!((r - 1.0).abs() < 1e-4, "{r}");
    }

    /// `recip` agrees with float reciprocal inside the representable band.
    #[test]
    fn recip_tracks_float(a in 0.05f64..100.0) {
        let r = Q8_24::from_f64(a).recip().to_f64();
        prop_assert!((r - 1.0 / a).abs() < 1e-3, "{r} vs {}", 1.0 / a);
    }

    /// Fx<16> has wider range: values > Q8.24's rail still convert exactly.
    #[test]
    fn q16_16_range(x in 200.0f64..30000.0) {
        prop_assert!(Q8_24::from_f64(x).is_saturated());
        let w = Fx::<16>::from_f64(x);
        prop_assert!(!w.is_saturated());
        prop_assert!((w.to_f64() - x).abs() <= 0.5 / Fx::<16>::SCALE + 1e-12);
    }
}
