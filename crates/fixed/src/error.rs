//! Quantization-error measurement.
//!
//! Used by the fixed-point format-sweep ablation bench to justify the Q8.24
//! datapath choice: measure the error a given format introduces into the
//! kinds of values the training loop produces.

use crate::q::Fx;

/// Error statistics of quantizing a float slice through format `FRAC`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantError {
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Root-mean-square error.
    pub rms: f64,
    /// Number of values that saturated.
    pub saturated: usize,
}

/// Measures round-trip error `x → Fx<FRAC> → f64` over `xs`.
pub fn roundtrip_error<const FRAC: u32>(xs: &[f64]) -> QuantError {
    let mut max_abs = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut saturated = 0usize;
    for &x in xs {
        let q = Fx::<FRAC>::from_f64(x);
        if q.is_saturated() {
            saturated += 1;
        }
        let e = (q.to_f64() - x).abs();
        max_abs = max_abs.max(e);
        sum_sq += e * e;
    }
    QuantError {
        max_abs,
        rms: if xs.is_empty() { 0.0 } else { (sum_sq / xs.len() as f64).sqrt() },
        saturated,
    }
}

/// Theoretical worst-case round-trip error of format `FRAC` for in-range
/// values: half an ulp (round-to-nearest conversion).
pub fn half_ulp<const FRAC: u32>() -> f64 {
    0.5 / Fx::<FRAC>::SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_error_bounded_by_half_ulp() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 - 500.0) * 0.01).collect();
        let e = roundtrip_error::<24>(&xs);
        assert!(e.max_abs <= half_ulp::<24>() + 1e-15);
        assert_eq!(e.saturated, 0);
        assert!(e.rms <= e.max_abs);
    }

    #[test]
    fn saturation_detected_and_counted() {
        let xs = [1e6, -1e6, 0.5];
        let e = roundtrip_error::<24>(&xs);
        assert_eq!(e.saturated, 2);
        assert!(e.max_abs > 1.0);
    }

    #[test]
    fn wider_fraction_means_smaller_error() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.0137).collect();
        let e24 = roundtrip_error::<24>(&xs);
        let e16 = roundtrip_error::<16>(&xs);
        assert!(e24.rms <= e16.rms);
        assert!(half_ulp::<24>() < half_ulp::<16>());
    }

    #[test]
    fn empty_slice() {
        let e = roundtrip_error::<24>(&[]);
        assert_eq!(e.rms, 0.0);
        assert_eq!(e.max_abs, 0.0);
    }
}
