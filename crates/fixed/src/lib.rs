//! # seqge-fixed — Q-format fixed-point arithmetic
//!
//! The paper's accelerator parallelizes "fixed-point multiply-add operations"
//! on the FPGA's DSP slices (§4.5). This crate models that datapath bit-for-
//! bit on the host so the simulator's *functional* results carry the same
//! quantization behaviour the hardware would produce:
//!
//! * [`Fx`] — a 32-bit signed fixed-point value with a const-generic number
//!   of fraction bits (`Fx<24>` = Q8.24, the default datapath format;
//!   `Fx<16>` = Q16.16).
//! * Saturating add/sub/neg, truncating multiply with an i64 intermediate
//!   (exactly a DSP48 multiply feeding a wide accumulator), saturating
//!   divide.
//! * [`vector`] — dot/axpy kernels that accumulate in 64 bits before one
//!   final quantization, matching the accelerator's MAC trees.
//! * [`error`] — quantization-error measurement used by the format-sweep
//!   ablation bench.

pub mod error;
pub mod ops;
pub mod q;
pub mod vector;

pub use q::{Fx, Q16_16, Q8_24};
