//! Widened multiply-accumulate primitives.
//!
//! A DSP48E2 slice multiplies 27×18-bit operands into a 48-bit accumulator;
//! the accelerator chains them so an entire dot product accumulates at full
//! width and is quantized **once** at the end. [`MacAccumulator`] reproduces
//! that behaviour: products stay in `i64` (which dominates the 48-bit
//! accumulator, so no additional overflow can occur for the vector lengths
//! involved) and a single truncation happens on read-out.

use crate::q::Fx;

/// Running multiply-accumulate at accumulator width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacAccumulator {
    acc: i64,
}

impl MacAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        MacAccumulator { acc: 0 }
    }

    /// Accumulates the full-width product `a·b` (no intermediate truncation).
    #[inline]
    pub fn mac<const FRAC: u32>(&mut self, a: Fx<FRAC>, b: Fx<FRAC>) {
        self.acc = self.acc.saturating_add(a.to_bits() as i64 * b.to_bits() as i64);
    }

    /// Adds another accumulator (adder-tree reduction).
    #[inline]
    pub fn merge(&mut self, other: MacAccumulator) {
        self.acc = self.acc.saturating_add(other.acc);
    }

    /// Quantizes the accumulated value back to the lane format: one
    /// round-to-nearest shift (`AP_RND`; see `Fx::sat_mul` for why unbiased
    /// quantization is load-bearing) + saturation, as the hardware does on
    /// write-back.
    #[inline]
    pub fn finish<const FRAC: u32>(self) -> Fx<FRAC> {
        let shifted = self.acc.saturating_add(1i64 << (FRAC - 1)) >> FRAC;
        let clamped = shifted.clamp(i32::MIN as i64, i32::MAX as i64) as i32;
        Fx::from_bits(clamped)
    }

    /// Raw accumulator bits (diagnostics).
    pub fn raw(self) -> i64 {
        self.acc
    }
}

/// Full-width dot product of two fixed-point slices with a single final
/// quantization — the accelerator's MAC-tree semantics. Contrast with naive
/// per-element `sat_mul` + `sat_add`, which truncates every step.
pub fn mac_dot<const FRAC: u32>(x: &[Fx<FRAC>], y: &[Fx<FRAC>]) -> Fx<FRAC> {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = MacAccumulator::new();
    for i in 0..x.len() {
        acc.mac(x[i], y[i]);
    }
    acc.finish()
}

/// Naive (per-step quantizing) dot product — what a scalar datapath without
/// a wide accumulator would compute. Kept for the error-analysis ablation.
pub fn naive_dot<const FRAC: u32>(x: &[Fx<FRAC>], y: &[Fx<FRAC>]) -> Fx<FRAC> {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = Fx::<FRAC>::ZERO;
    for i in 0..x.len() {
        acc = acc.sat_add(x[i].sat_mul(y[i]));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::q::Q8_24;

    #[test]
    fn mac_dot_matches_float_for_exact_inputs() {
        let x: Vec<Q8_24> = [1.0, 2.0, -0.5].iter().map(|&v| Q8_24::from_f64(v)).collect();
        let y: Vec<Q8_24> = [0.5, 0.25, 4.0].iter().map(|&v| Q8_24::from_f64(v)).collect();
        // 0.5 + 0.5 - 2.0 = -1.0
        assert_eq!(mac_dot(&x, &y).to_f64(), -1.0);
    }

    #[test]
    fn mac_is_more_accurate_than_naive() {
        // Many half-ulp products: the per-step datapath quantizes each one
        // (0.5 ulp rounds to 1 ulp → 2× the true sum), while the wide
        // accumulator keeps full precision and quantizes once.
        let eps = Q8_24::EPSILON;
        let half = Q8_24::from_f64(0.5);
        let xs = vec![eps; 1000];
        let ys = vec![half; 1000];
        let naive = naive_dot(&xs, &ys);
        let mac = mac_dot(&xs, &ys);
        // True value: 1000 * (eps * 0.5) = 500 ulp.
        assert_eq!(mac.to_bits(), 500, "wide accumulator is exact here");
        assert_eq!(naive.to_bits(), 1000, "per-step rounding doubles each half-ulp product");
    }

    #[test]
    fn accumulator_merge_is_associative_reduction() {
        let a = Q8_24::from_f64(1.5);
        let b = Q8_24::from_f64(2.0);
        let mut lane0 = MacAccumulator::new();
        let mut lane1 = MacAccumulator::new();
        lane0.mac(a, b);
        lane1.mac(b, b);
        let mut tree = lane0;
        tree.merge(lane1);
        let mut seq = MacAccumulator::new();
        seq.mac(a, b);
        seq.mac(b, b);
        assert_eq!(tree.finish::<24>(), seq.finish::<24>());
        assert_eq!(tree.finish::<24>().to_f64(), 7.0);
    }

    #[test]
    fn finish_saturates() {
        let big = Q8_24::from_f64(127.0);
        let mut acc = MacAccumulator::new();
        for _ in 0..100 {
            acc.mac(big, big); // 100 * 16129 ≫ Q8.24 range
        }
        assert_eq!(acc.finish::<24>(), Q8_24::MAX);
    }

    #[test]
    fn empty_dot_is_zero() {
        let empty: Vec<Q8_24> = vec![];
        assert_eq!(mac_dot(&empty, &empty), Q8_24::ZERO);
    }
}
