//! Vector kernels over fixed-point lanes — the operations Stage 1–4 of the
//! accelerator pipeline perform on `d`-vectors.

use crate::ops::{mac_dot, MacAccumulator};
use crate::q::Fx;

/// `y += a · x` with full-width products quantized per element on write-back
/// (each lane has its own DSP, so per-element quantization is the hardware
/// behaviour for axpy — unlike dot products there is no accumulation chain).
pub fn axpy<const FRAC: u32>(a: Fx<FRAC>, x: &[Fx<FRAC>], y: &mut [Fx<FRAC>]) {
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] = y[i].sat_add(a.sat_mul(x[i]));
    }
}

/// `x *= a` elementwise.
pub fn scale<const FRAC: u32>(a: Fx<FRAC>, x: &mut [Fx<FRAC>]) {
    for v in x {
        *v = v.sat_mul(a);
    }
}

/// Dot product with MAC-tree semantics (single final quantization).
pub fn dot<const FRAC: u32>(x: &[Fx<FRAC>], y: &[Fx<FRAC>]) -> Fx<FRAC> {
    mac_dot(x, y)
}

/// Matrix–vector product `y = M·x` for a row-major `d×d` matrix stored as a
/// flat slice. One MAC tree per output element.
pub fn gemv<const FRAC: u32>(m: &[Fx<FRAC>], d: usize, x: &[Fx<FRAC>], y: &mut [Fx<FRAC>]) {
    assert_eq!(m.len(), d * d, "matrix must be d*d");
    assert_eq!(x.len(), d);
    assert_eq!(y.len(), d);
    for r in 0..d {
        y[r] = mac_dot(&m[r * d..(r + 1) * d], x);
    }
}

/// Symmetric rank-1 downdate `M -= (ph · hpᵀ) * inv` over a flat `d×d`
/// matrix: the Stage 2/4 `ΔP` computation.
///
/// Multiply order matters in fixed point: `(ph[r]·hp[c])` can exceed the
/// Q-format rail even when the final entry `ph[r]·hp[c]·inv` is small
/// (`inv = 1/denom` with `denom ≈ 1 + H·ph`, so the two factors largely
/// cancel). The datapath therefore scales one operand by `inv` *first* —
/// `t[r] = ph[r]·inv` stays O(1/|H|) — and multiplies by `hp[c]` second.
/// Same DSP count; no intermediate saturation.
pub fn rank1_downdate<const FRAC: u32>(
    m: &mut [Fx<FRAC>],
    d: usize,
    ph: &[Fx<FRAC>],
    hp: &[Fx<FRAC>],
    inv: Fx<FRAC>,
) {
    assert_eq!(m.len(), d * d);
    assert_eq!(ph.len(), d);
    assert_eq!(hp.len(), d);
    for r in 0..d {
        let mut acc = MacAccumulator::new();
        acc.mac(ph[r], inv);
        let scaled: Fx<FRAC> = acc.finish();
        let row = &mut m[r * d..(r + 1) * d];
        for c in 0..d {
            let mut acc2 = MacAccumulator::new();
            acc2.mac(scaled, hp[c]);
            row[c] = row[c].sat_sub(acc2.finish());
        }
    }
}

/// Counts saturated lanes in a slice — overflow telemetry for the simulator.
pub fn saturation_count<const FRAC: u32>(x: &[Fx<FRAC>]) -> usize {
    x.iter().filter(|v| v.is_saturated()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::q::Q8_24;

    fn q(v: f64) -> Q8_24 {
        Q8_24::from_f64(v)
    }

    fn qv(vs: &[f64]) -> Vec<Q8_24> {
        vs.iter().map(|&v| q(v)).collect()
    }

    #[test]
    fn axpy_matches_float() {
        let x = qv(&[1.0, -2.0, 0.5]);
        let mut y = qv(&[0.0, 1.0, 1.0]);
        axpy(q(2.0), &x, &mut y);
        let out: Vec<f64> = y.iter().map(|v| v.to_f64()).collect();
        assert_eq!(out, vec![2.0, -3.0, 2.0]);
    }

    #[test]
    fn scale_matches_float() {
        let mut x = qv(&[1.0, -4.0]);
        scale(q(0.25), &mut x);
        assert_eq!(x[0].to_f64(), 0.25);
        assert_eq!(x[1].to_f64(), -1.0);
    }

    #[test]
    fn gemv_identity() {
        let d = 3;
        let mut m = vec![Q8_24::ZERO; 9];
        for i in 0..3 {
            m[i * 3 + i] = Q8_24::ONE;
        }
        let x = qv(&[1.0, 2.0, 3.0]);
        let mut y = vec![Q8_24::ZERO; 3];
        gemv(&m, d, &x, &mut y);
        assert_eq!(Q8_24::dequantize_slice(&y), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn rank1_downdate_matches_float_reference() {
        let d = 2;
        let mut m = qv(&[1.0, 0.0, 0.0, 1.0]);
        let ph = qv(&[0.5, 0.25]);
        let hp = qv(&[0.5, 0.25]);
        rank1_downdate(&mut m, d, &ph, &hp, q(2.0));
        // m -= 2 * ph hpᵀ → [[1-0.5, -0.25],[-0.25, 1-0.125]]
        let out = Q8_24::dequantize_slice(&m);
        let expect = [0.5, -0.25, -0.25, 0.875];
        for (a, b) in out.iter().zip(expect) {
            assert!((*a as f64 - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn saturation_counting() {
        let xs = vec![Q8_24::MAX, Q8_24::ONE, Q8_24::MIN];
        assert_eq!(saturation_count(&xs), 2);
    }

    #[test]
    #[should_panic(expected = "d*d")]
    fn gemv_checks_shape() {
        let m = vec![Q8_24::ZERO; 5];
        let x = vec![Q8_24::ZERO; 2];
        let mut y = vec![Q8_24::ZERO; 2];
        gemv(&m, 2, &x, &mut y);
    }
}
