//! The core fixed-point type.

use std::fmt;

/// 32-bit signed fixed-point number with `FRAC` fraction bits (Q(31−FRAC).FRAC
/// plus sign). Arithmetic saturates instead of wrapping — the HLS `ap_fixed`
/// overflow mode the accelerator uses (`AP_SAT`), because wrapping weights
/// silently destroy a model.
///
/// `FRAC` must be in `1..=30`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fx<const FRAC: u32>(i32);

/// Q8.24: 8 integer bits (incl. sign), 24 fraction bits — the datapath format
/// of the simulated accelerator. Weights and P-matrix entries of a trained
/// embedding stay well inside ±128.
pub type Q8_24 = Fx<24>;

/// Q16.16: wider dynamic range, coarser resolution; used by the format-sweep
/// ablation.
pub type Q16_16 = Fx<16>;

impl<const FRAC: u32> Fx<FRAC> {
    /// Scale factor `2^FRAC`.
    pub const SCALE: f64 = (1u64 << FRAC) as f64;
    /// Largest representable value.
    pub const MAX: Self = Fx(i32::MAX);
    /// Smallest representable value.
    pub const MIN: Self = Fx(i32::MIN);
    /// Zero.
    pub const ZERO: Self = Fx(0);
    /// One.
    pub const ONE: Self = Fx(1i32 << FRAC);
    /// Resolution (smallest positive step).
    pub const EPSILON: Self = Fx(1);

    const _ASSERT: () = assert!(FRAC >= 1 && FRAC <= 30, "FRAC must be in 1..=30");

    /// Constructs from the raw underlying bits.
    #[inline]
    pub const fn from_bits(bits: i32) -> Self {
        Fx(bits)
    }

    /// The raw underlying bits.
    #[inline]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Converts from `f64`, rounding to nearest and saturating out-of-range
    /// values (including NaN → 0, ±∞ → ±MAX).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        if x.is_nan() {
            return Fx(0);
        }
        let scaled = x * Self::SCALE;
        if scaled >= i32::MAX as f64 {
            Self::MAX
        } else if scaled <= i32::MIN as f64 {
            Self::MIN
        } else {
            Fx(scaled.round_ties_even() as i32)
        }
    }

    /// Converts from `f32` (via `f64`, exact).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        Self::from_f64(x as f64)
    }

    /// Converts to `f64` (exact).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / Self::SCALE
    }

    /// Converts to `f32` (may round).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Saturating addition.
    #[inline]
    pub fn sat_add(self, rhs: Self) -> Self {
        Fx(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub fn sat_sub(self, rhs: Self) -> Self {
        Fx(self.0.saturating_sub(rhs.0))
    }

    /// Saturating negation (`-MIN` saturates to `MAX`).
    #[inline]
    pub fn sat_neg(self) -> Self {
        Fx(self.0.checked_neg().unwrap_or(i32::MAX))
    }

    /// Fixed-point multiply: 32×32→64-bit product, round-to-nearest
    /// quantization (`AP_RND` — half-ulp added before the shift), then
    /// saturation back to 32 bits.
    ///
    /// Round-to-nearest instead of the cheaper `AP_TRN` truncation is a
    /// *load-bearing* choice: truncation biases every product by up to one
    /// ulp toward −∞, and the OS-ELM `P` matrix — which RLS drives toward
    /// zero as training converges — integrates that bias over hundreds of
    /// thousands of updates until it loses definiteness and training
    /// destabilizes (observed on the densest dataset). One extra adder per
    /// multiplier buys unbiased quantization.
    #[inline]
    pub fn sat_mul(self, rhs: Self) -> Self {
        let wide = (self.0 as i64 * rhs.0 as i64 + (1i64 << (FRAC - 1))) >> FRAC;
        Fx(clamp_i64(wide))
    }

    /// Fixed-point divide: `(a << FRAC) / b` in 64 bits, saturating; division
    /// by zero saturates to ±MAX by sign (hardware reciprocal units clamp).
    #[inline]
    pub fn sat_div(self, rhs: Self) -> Self {
        if rhs.0 == 0 {
            return if self.0 >= 0 { Self::MAX } else { Self::MIN };
        }
        let wide = ((self.0 as i64) << FRAC) / rhs.0 as i64;
        Fx(clamp_i64(wide))
    }

    /// Reciprocal `1/x` — the `hpht_inv` datapath of Algorithm 1 line 5.
    #[inline]
    pub fn recip(self) -> Self {
        Self::ONE.sat_div(self)
    }

    /// Absolute value (saturating on `MIN`).
    #[inline]
    pub fn abs(self) -> Self {
        if self.0 < 0 {
            self.sat_neg()
        } else {
            self
        }
    }

    /// Whether the value equals one of the saturation rails. Lets the
    /// simulator count overflow events.
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.0 == i32::MAX || self.0 == i32::MIN
    }

    /// Quantizes an `f32` slice into fixed point.
    pub fn quantize_slice(xs: &[f32]) -> Vec<Self> {
        xs.iter().map(|&x| Self::from_f32(x)).collect()
    }

    /// Dequantizes back to `f32`.
    pub fn dequantize_slice(xs: &[Self]) -> Vec<f32> {
        xs.iter().map(|x| x.to_f32()).collect()
    }
}

#[inline]
fn clamp_i64(x: i64) -> i32 {
    if x > i32::MAX as i64 {
        i32::MAX
    } else if x < i32::MIN as i64 {
        i32::MIN
    } else {
        x as i32
    }
}

impl<const FRAC: u32> fmt::Debug for Fx<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fx<{}>({})", FRAC, self.to_f64())
    }
}

impl<const FRAC: u32> fmt::Display for Fx<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl<const FRAC: u32> std::ops::Add for Fx<FRAC> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.sat_add(rhs)
    }
}

impl<const FRAC: u32> std::ops::Sub for Fx<FRAC> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.sat_sub(rhs)
    }
}

impl<const FRAC: u32> std::ops::Mul for Fx<FRAC> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.sat_mul(rhs)
    }
}

impl<const FRAC: u32> std::ops::Div for Fx<FRAC> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self.sat_div(rhs)
    }
}

impl<const FRAC: u32> std::ops::Neg for Fx<FRAC> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        self.sat_neg()
    }
}

impl<const FRAC: u32> std::ops::AddAssign for Fx<FRAC> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> std::ops::SubAssign for Fx<FRAC> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Q8_24::ONE.to_f64(), 1.0);
        assert_eq!(Q8_24::ZERO.to_f64(), 0.0);
        assert_eq!(Q8_24::EPSILON.to_f64(), 1.0 / (1 << 24) as f64);
    }

    #[test]
    fn roundtrip_exact_values() {
        for &x in &[0.0, 1.0, -1.0, 0.5, -0.25, 3.141592502593994] {
            let fx = Q8_24::from_f64(x);
            assert!((fx.to_f64() - x).abs() <= Q8_24::EPSILON.to_f64(), "roundtrip {x}");
        }
    }

    #[test]
    fn saturation_on_conversion() {
        assert_eq!(Q8_24::from_f64(1e9), Q8_24::MAX);
        assert_eq!(Q8_24::from_f64(-1e9), Q8_24::MIN);
        assert_eq!(Q8_24::from_f64(f64::NAN), Q8_24::ZERO);
        assert_eq!(Q8_24::from_f64(f64::INFINITY), Q8_24::MAX);
        assert_eq!(Q8_24::from_f64(f64::NEG_INFINITY), Q8_24::MIN);
    }

    #[test]
    fn add_sub_saturate() {
        let big = Q8_24::from_f64(127.0);
        assert_eq!(big.sat_add(big), Q8_24::MAX);
        let small = Q8_24::from_f64(-127.0);
        assert_eq!(small.sat_sub(big), Q8_24::MIN);
        assert!(Q8_24::MIN.sat_neg() == Q8_24::MAX);
    }

    #[test]
    fn multiply_rounds_to_nearest() {
        // 3 ulp * 0.5 = 1.5 ulp → rounds to 2 ulp (half away from −∞).
        let three_ulp = Q8_24::from_bits(3);
        let half = Q8_24::from_f64(0.5);
        assert_eq!(three_ulp.sat_mul(half).to_bits(), 2);
        // -3 ulp * 0.5 = -1.5 ulp → rounds to -1 ulp.
        let neg = Q8_24::from_bits(-3);
        assert_eq!(neg.sat_mul(half).to_bits(), -1);
        // 2 ulp * 0.5 = exactly 1 ulp — exact results unaffected.
        assert_eq!(Q8_24::from_bits(2).sat_mul(half).to_bits(), 1);
    }

    #[test]
    fn multiply_is_unbiased_over_many_products() {
        // The property the accelerator needs: quantization error has ~zero
        // mean (truncation would give a −0.5 ulp systematic bias).
        let half = Q8_24::from_f64(0.5);
        let mut err_sum = 0i64;
        for bits in -1001i32..=1001 {
            let exact2x = bits as i64; // (bits * 0.5) in half-ulps
            let got = Q8_24::from_bits(bits).sat_mul(half).to_bits() as i64;
            err_sum += 2 * got - exact2x;
        }
        assert!(err_sum.abs() <= 1002, "mean bias too large: {err_sum}");
    }

    #[test]
    fn multiply_basic() {
        let a = Q8_24::from_f64(1.5);
        let b = Q8_24::from_f64(-2.0);
        assert_eq!(a.sat_mul(b).to_f64(), -3.0);
        assert_eq!((Q8_24::ONE * Q8_24::ONE).to_f64(), 1.0);
    }

    #[test]
    fn multiply_saturates() {
        let a = Q8_24::from_f64(100.0);
        assert_eq!(a.sat_mul(a), Q8_24::MAX); // 10000 >> 127.99…
        let b = Q8_24::from_f64(-100.0);
        assert_eq!(a.sat_mul(b), Q8_24::MIN);
    }

    #[test]
    fn divide_and_recip() {
        let a = Q8_24::from_f64(3.0);
        let b = Q8_24::from_f64(2.0);
        assert!((a.sat_div(b).to_f64() - 1.5).abs() < 1e-6);
        assert!((b.recip().to_f64() - 0.5).abs() < 1e-6);
        assert_eq!(a.sat_div(Q8_24::ZERO), Q8_24::MAX);
        assert_eq!((-a).sat_div(Q8_24::ZERO), Q8_24::MIN);
    }

    #[test]
    fn q16_16_has_wider_range_coarser_step() {
        assert_eq!(Q16_16::from_f64(30000.0).to_f64(), 30000.0);
        assert_eq!(Q8_24::from_f64(30000.0), Q8_24::MAX);
        assert!(Q16_16::EPSILON.to_f64() > Q8_24::EPSILON.to_f64());
    }

    #[test]
    fn operators_match_sat_methods() {
        let a = Q8_24::from_f64(2.0);
        let b = Q8_24::from_f64(0.5);
        assert_eq!(a + b, a.sat_add(b));
        assert_eq!(a - b, a.sat_sub(b));
        assert_eq!(a * b, a.sat_mul(b));
        assert_eq!(a / b, a.sat_div(b));
        assert_eq!(-a, a.sat_neg());
        let mut c = a;
        c += b;
        assert_eq!(c.to_f64(), 2.5);
        c -= b;
        assert_eq!(c.to_f64(), 2.0);
    }

    #[test]
    fn saturation_flag() {
        assert!(Q8_24::MAX.is_saturated());
        assert!(Q8_24::MIN.is_saturated());
        assert!(!Q8_24::ONE.is_saturated());
    }

    #[test]
    fn slice_quantize_roundtrip() {
        let xs = [0.1f32, -0.2, 0.3];
        let q = Q8_24::quantize_slice(&xs);
        let back = Q8_24::dequantize_slice(&q);
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
