//! Plain-text persistence for graphs: whitespace-separated edge lists with an
//! optional label section.
//!
//! Format (line-oriented, `#` comments allowed):
//!
//! ```text
//! # nodes <n>
//! <u> <v> [weight]
//! ...
//! # labels
//! <label of node 0>
//! <label of node 1>
//! ...
//! ```

use crate::error::GraphError;
use crate::graph::Graph;
use crate::Result;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Serializes `g` in the crate's edge-list format.
pub fn write_graph<W: Write>(g: &Graph, w: W) -> Result<()> {
    let mut w = BufWriter::new(w);
    writeln!(w, "# nodes {}", g.num_nodes())?;
    for (u, v, wt) in g.edges() {
        if (wt - 1.0).abs() < f32::EPSILON {
            writeln!(w, "{u} {v}")?;
        } else {
            writeln!(w, "{u} {v} {wt}")?;
        }
    }
    if let Some(labels) = g.labels() {
        writeln!(w, "# labels")?;
        for l in labels {
            writeln!(w, "{l}")?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Deserializes a graph written by [`write_graph`].
pub fn read_graph<R: Read>(r: R) -> Result<Graph> {
    let reader = BufReader::new(r);
    let mut g: Option<Graph> = None;
    let mut labels: Vec<u16> = Vec::new();
    let mut in_labels = false;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim();
            if let Some(n) = rest.strip_prefix("nodes") {
                let n: usize = n
                    .trim()
                    .parse()
                    .map_err(|_| GraphError::Io(format!("line {}: bad node count", lineno + 1)))?;
                g = Some(Graph::with_nodes(n));
            } else if rest == "labels" {
                in_labels = true;
            }
            continue;
        }
        if in_labels {
            let l: u16 = line
                .parse()
                .map_err(|_| GraphError::Io(format!("line {}: bad label", lineno + 1)))?;
            labels.push(l);
            continue;
        }
        let g =
            g.as_mut().ok_or_else(|| GraphError::Io("edge before '# nodes <n>' header".into()))?;
        let mut it = line.split_whitespace();
        let parse_u32 = |s: Option<&str>| -> Result<u32> {
            s.ok_or_else(|| GraphError::Io(format!("line {}: missing field", lineno + 1)))?
                .parse()
                .map_err(|_| GraphError::Io(format!("line {}: bad node id", lineno + 1)))
        };
        let u = parse_u32(it.next())?;
        let v = parse_u32(it.next())?;
        let w: f32 = match it.next() {
            Some(s) => {
                s.parse().map_err(|_| GraphError::Io(format!("line {}: bad weight", lineno + 1)))?
            }
            None => 1.0,
        };
        g.add_weighted_edge(u, v, w)?;
    }
    let mut g = g.ok_or_else(|| GraphError::Io("missing '# nodes <n>' header".into()))?;
    if !labels.is_empty() {
        g.set_labels(labels)?;
    }
    Ok(g)
}

/// Writes `g` to `path`.
pub fn save_graph<P: AsRef<Path>>(g: &Graph, path: P) -> Result<()> {
    write_graph(g, std::fs::File::create(path)?)
}

/// Reads a graph from `path`.
pub fn load_graph<P: AsRef<Path>>(path: P) -> Result<Graph> {
    read_graph(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::ring;

    fn roundtrip(g: &Graph) -> Graph {
        let mut buf = Vec::new();
        write_graph(g, &mut buf).unwrap();
        read_graph(&buf[..]).unwrap()
    }

    #[test]
    fn roundtrip_unlabelled() {
        let g = ring(5);
        let h = roundtrip(&g);
        assert_eq!(h.num_nodes(), 5);
        assert_eq!(g.edges().collect::<Vec<_>>(), h.edges().collect::<Vec<_>>());
        assert!(h.labels().is_none());
    }

    #[test]
    fn roundtrip_labelled_weighted() {
        let mut g = Graph::with_nodes(3);
        g.add_weighted_edge(0, 1, 2.5).unwrap();
        g.add_edge(1, 2).unwrap();
        g.set_labels(vec![1, 0, 1]).unwrap();
        let h = roundtrip(&g);
        assert_eq!(h.labels().unwrap(), &[1, 0, 1]);
        let e: Vec<_> = h.edges().collect();
        assert_eq!(e, vec![(0, 1, 2.5), (1, 2, 1.0)]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(read_graph("0 1\n".as_bytes()).is_err()); // no header
        assert!(read_graph("# nodes x\n".as_bytes()).is_err());
        assert!(read_graph("# nodes 2\n0\n".as_bytes()).is_err()); // missing v
        assert!(read_graph("# nodes 2\n0 9\n".as_bytes()).is_err()); // out of range
        assert!(read_graph("# nodes 2\n0 1 nan?\n".as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let txt = "# nodes 3\n\n# a comment\n0 1\n\n1 2\n";
        let g = read_graph(txt.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("seqge-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.edges");
        let g = ring(4);
        save_graph(&g, &p).unwrap();
        let h = load_graph(&p).unwrap();
        assert_eq!(h.num_edges(), 4);
        std::fs::remove_file(p).ok();
    }
}
