//! Structural statistics: components, degree distributions, density.

use crate::graph::{Graph, NodeId};

/// Number of connected components (BFS over all nodes).
pub fn connected_components(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut visited = vec![false; n];
    let mut queue: Vec<NodeId> = Vec::new();
    let mut components = 0usize;
    for start in 0..n {
        if visited[start] {
            continue;
        }
        components += 1;
        visited[start] = true;
        queue.push(start as NodeId);
        while let Some(u) = queue.pop() {
            for &(v, _) in g.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push(v);
                }
            }
        }
    }
    components
}

/// Summary of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
}

/// Computes [`DegreeStats`] for `g`. Panics on an empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    assert!(g.num_nodes() > 0, "degree stats of an empty graph");
    let mut degs: Vec<usize> = (0..g.num_nodes() as NodeId).map(|u| g.degree(u)).collect();
    degs.sort_unstable();
    let n = degs.len();
    DegreeStats {
        min: degs[0],
        max: degs[n - 1],
        mean: degs.iter().sum::<usize>() as f64 / n as f64,
        median: degs[n / 2],
        isolated: degs.iter().take_while(|&&d| d == 0).count(),
    }
}

/// Edge density `m / (n(n-1)/2)`.
pub fn density(g: &Graph) -> f64 {
    let n = g.num_nodes() as f64;
    if n < 2.0 {
        return 0.0;
    }
    g.num_edges() as f64 / (n * (n - 1.0) / 2.0)
}

/// Fraction of edges whose endpoints share a class label. Returns `None` if
/// the graph is unlabelled or has no edges. For a planted-partition graph
/// this recovers the generator's `intra_fraction`.
pub fn label_homophily(g: &Graph) -> Option<f64> {
    let labels = g.labels()?;
    if g.num_edges() == 0 {
        return None;
    }
    let intra = g.edges().filter(|&(u, v, _)| labels[u as usize] == labels[v as usize]).count();
    Some(intra as f64 / g.num_edges() as f64)
}

/// PageRank by power iteration with uniform teleport (damping `d`), on the
/// undirected graph (each edge contributes both directions). Dangling nodes
/// (degree 0) redistribute uniformly. Returns per-node scores summing to 1.
pub fn pagerank(g: &Graph, damping: f64, iterations: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let mut dangling_mass = 0.0f64;
        next.fill((1.0 - damping) * uniform);
        for (u, &rank_u) in rank.iter().enumerate() {
            let deg = g.degree(u as NodeId);
            if deg == 0 {
                dangling_mass += rank_u;
                continue;
            }
            let share = damping * rank_u / deg as f64;
            for &(v, _) in g.neighbors(u as NodeId) {
                next[v as usize] += share;
            }
        }
        let dangling_share = damping * dangling_mass * uniform;
        for v in next.iter_mut() {
            *v += dangling_share;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Local clustering coefficient of `u`: the fraction of neighbor pairs that
/// are themselves connected (0 for degree < 2).
pub fn local_clustering(g: &Graph, u: NodeId) -> f64 {
    let nbrs = g.neighbors(u);
    let k = nbrs.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..k {
        for j in (i + 1)..k {
            if g.has_edge(nbrs[i].0, nbrs[j].0) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (k * (k - 1)) as f64
}

/// Mean local clustering coefficient over all nodes (0 for empty graphs).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    (0..n as NodeId).map(|u| local_clustering(g, u)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{path, ring, star};

    #[test]
    fn components_of_disjoint_rings() {
        let mut g = Graph::with_nodes(8);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            g.add_edge(u, v).unwrap();
        }
        // nodes 6, 7 isolated
        assert_eq!(connected_components(&g), 4);
    }

    #[test]
    fn components_of_connected_graph() {
        assert_eq!(connected_components(&ring(10)), 1);
    }

    #[test]
    fn degree_stats_star() {
        let s = degree_stats(&star(5));
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert_eq!(s.isolated, 0);
        assert!((s.mean - 8.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_counts_isolated() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1).unwrap();
        let s = degree_stats(&g);
        assert_eq!(s.isolated, 2);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn density_path() {
        let g = path(4); // 3 edges of 6 possible
        assert!((density(&g) - 0.5).abs() < 1e-12);
        assert_eq!(density(&Graph::with_nodes(1)), 0.0);
    }

    #[test]
    fn homophily() {
        let mut g = path(4);
        assert_eq!(label_homophily(&g), None);
        g.set_labels(vec![0, 0, 1, 1]).unwrap();
        // edges (0,1) same, (1,2) diff, (2,3) same → 2/3
        let h = label_homophily(&g).unwrap();
        assert!((h - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pagerank_sums_to_one_and_favors_hubs() {
        let g = star(8);
        let pr = pagerank(&g, 0.85, 50);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        assert!(pr[0] > pr[1] * 2.0, "hub {} vs leaf {}", pr[0], pr[1]);
        // Leaves are symmetric.
        for leaf in 2..8 {
            assert!((pr[leaf] - pr[1]).abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_uniform_on_ring() {
        let g = ring(10);
        let pr = pagerank(&g, 0.85, 60);
        for &x in &pr {
            assert!((x - 0.1).abs() < 1e-9, "{x}");
        }
    }

    #[test]
    fn pagerank_handles_isolated_nodes() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1).unwrap();
        let pr = pagerank(&g, 0.85, 50);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(pr[2] > 0.0 && (pr[2] - pr[3]).abs() < 1e-12);
    }

    #[test]
    fn clustering_coefficients() {
        // Triangle: fully clustered.
        let mut tri = Graph::with_nodes(3);
        for (u, v) in [(0, 1), (1, 2), (2, 0)] {
            tri.add_edge(u, v).unwrap();
        }
        assert_eq!(local_clustering(&tri, 0), 1.0);
        assert_eq!(average_clustering(&tri), 1.0);
        // Star: hub neighbors never interconnect.
        let s = star(6);
        assert_eq!(local_clustering(&s, 0), 0.0);
        // Degree-1 nodes are defined as 0.
        assert_eq!(local_clustering(&s, 1), 0.0);
        // Path middle node: two unconnected neighbors.
        let p = path(3);
        assert_eq!(local_clustering(&p, 1), 0.0);
    }
}
