//! Fluent construction of validated graphs.

use crate::graph::{Graph, NodeId};
use crate::Result;

/// Accumulates nodes, edges, and labels, then validates everything in one
/// [`GraphBuilder::build`] call. Unlike [`Graph::add_edge`], the builder
/// collects *all* errors lazily: generation code can `push` freely and decide
/// at build time whether duplicates should be fatal or skipped.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, f32)>,
    labels: Option<Vec<u16>>,
    skip_invalid: bool,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder { num_nodes: n, ..Default::default() }
    }

    /// Queues an unweighted edge.
    pub fn edge(mut self, u: NodeId, v: NodeId) -> Self {
        self.edges.push((u, v, 1.0));
        self
    }

    /// Queues a weighted edge.
    pub fn weighted_edge(mut self, u: NodeId, v: NodeId, w: f32) -> Self {
        self.edges.push((u, v, w));
        self
    }

    /// Queues many unweighted edges.
    pub fn edges<I: IntoIterator<Item = (NodeId, NodeId)>>(mut self, it: I) -> Self {
        self.edges.extend(it.into_iter().map(|(u, v)| (u, v, 1.0)));
        self
    }

    /// Attaches per-node class labels.
    pub fn labels(mut self, labels: Vec<u16>) -> Self {
        self.labels = Some(labels);
        self
    }

    /// Skip (rather than fail on) duplicate edges and self loops at build
    /// time. Out-of-range nodes and bad weights remain fatal.
    pub fn skip_invalid(mut self) -> Self {
        self.skip_invalid = true;
        self
    }

    /// Validates and produces the [`Graph`].
    pub fn build(self) -> Result<Graph> {
        let mut g = Graph::with_nodes(self.num_nodes);
        for (u, v, w) in self.edges {
            match g.add_weighted_edge(u, v, w) {
                Ok(()) => {}
                Err(e) if self.skip_invalid => match e {
                    crate::GraphError::DuplicateEdge(..) | crate::GraphError::SelfLoop(_) => {}
                    other => return Err(other),
                },
                Err(e) => return Err(e),
            }
        }
        if let Some(labels) = self.labels {
            g.set_labels(labels)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphError;

    #[test]
    fn builds_labelled_graph() {
        let g = GraphBuilder::new(3)
            .edge(0, 1)
            .weighted_edge(1, 2, 2.5)
            .labels(vec![0, 0, 1])
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_classes(), 2);
    }

    #[test]
    fn strict_mode_rejects_duplicates() {
        let err = GraphBuilder::new(2).edge(0, 1).edge(1, 0).build().unwrap_err();
        assert!(matches!(err, GraphError::DuplicateEdge(..)));
    }

    #[test]
    fn skip_invalid_drops_dupes_and_loops_only() {
        let g = GraphBuilder::new(3)
            .skip_invalid()
            .edges([(0, 1), (1, 0), (1, 1), (1, 2)])
            .build()
            .unwrap();
        assert_eq!(g.num_edges(), 2);

        let err = GraphBuilder::new(2).skip_invalid().edge(0, 5).build().unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }
}
