//! Spanning-forest extraction for the paper's "seq" scenario (§4.3.2).
//!
//! > "As the initial graph of the 'seq' case, we remove edges from an entire
//! > graph so that the initial graph becomes a forest without changing the
//! > number of connected components to the original entire graph."
//!
//! [`spanning_forest`] partitions a graph's edges into a spanning forest
//! (kept) and the remainder (removed, to be replayed one at a time by
//! [`crate::dynamic::EdgeStream`]).

use crate::graph::{Graph, NodeId};

/// Union–find with path halving and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSet {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl DisjointSet {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet { parent: (0..n as u32).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }
}

/// Result of [`spanning_forest`]: the forest edges and the removed edges.
#[derive(Debug, Clone)]
pub struct ForestSplit {
    /// Edges kept in the initial forest (`u < v`).
    pub forest_edges: Vec<(NodeId, NodeId)>,
    /// Edges removed from the full graph, to be replayed sequentially.
    pub removed_edges: Vec<(NodeId, NodeId)>,
    /// Connected component count (identical for forest and full graph).
    pub components: usize,
}

impl ForestSplit {
    /// Materializes the initial forest as a [`Graph`] with the same node set
    /// and labels as `full`.
    pub fn initial_graph(&self, full: &Graph) -> Graph {
        let mut g = Graph::with_nodes(full.num_nodes());
        for &(u, v) in &self.forest_edges {
            g.add_edge(u, v).expect("forest edges are unique by construction");
        }
        if let Some(labels) = full.labels() {
            g.set_labels(labels.to_vec()).expect("same node count");
        }
        g
    }
}

/// Splits `g`'s edge set into a spanning forest and the remaining edges.
/// The forest spans every connected component, so adding the removed edges
/// back (in any order) never changes the component structure — exactly the
/// paper's initialization.
pub fn spanning_forest(g: &Graph) -> ForestSplit {
    let mut dsu = DisjointSet::new(g.num_nodes());
    let mut forest_edges = Vec::with_capacity(g.num_nodes().saturating_sub(1));
    let mut removed_edges = Vec::with_capacity(g.num_edges());
    for (u, v, _) in g.edges() {
        if dsu.union(u, v) {
            forest_edges.push((u, v));
        } else {
            removed_edges.push((u, v));
        }
    }
    ForestSplit { forest_edges, removed_edges, components: dsu.components() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{erdos_renyi, ring};
    use crate::stats::connected_components;

    #[test]
    fn dsu_basics() {
        let mut d = DisjointSet::new(4);
        assert_eq!(d.components(), 4);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert_eq!(d.components(), 2);
        assert!(d.connected(0, 1));
        assert!(!d.connected(0, 2));
        d.union(1, 3);
        assert_eq!(d.components(), 1);
        assert!(d.connected(0, 2));
    }

    #[test]
    fn ring_splits_into_path_plus_one() {
        let g = ring(5);
        let split = spanning_forest(&g);
        assert_eq!(split.forest_edges.len(), 4);
        assert_eq!(split.removed_edges.len(), 1);
        assert_eq!(split.components, 1);
    }

    #[test]
    fn forest_preserves_components() {
        // Two components: a ring of 4 (nodes 0..4) and an edge (4,5), node 6 isolated.
        let mut g = Graph::with_nodes(7);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)] {
            g.add_edge(u, v).unwrap();
        }
        let split = spanning_forest(&g);
        assert_eq!(split.components, 3);
        let init = split.initial_graph(&g);
        assert_eq!(connected_components(&init), 3);
        assert_eq!(init.num_edges() + split.removed_edges.len(), g.num_edges());
    }

    #[test]
    fn forest_edge_count_is_nodes_minus_components() {
        let g = erdos_renyi(200, 0.03, 3);
        let split = spanning_forest(&g);
        let comps = connected_components(&g);
        assert_eq!(split.components, comps);
        assert_eq!(split.forest_edges.len(), 200 - comps);
    }

    #[test]
    fn initial_graph_carries_labels() {
        let mut g = ring(4);
        g.set_labels(vec![0, 1, 0, 1]).unwrap();
        let init = spanning_forest(&g).initial_graph(&g);
        assert_eq!(init.labels().unwrap(), &[0, 1, 0, 1]);
    }

    #[test]
    fn replaying_removed_edges_restores_graph() {
        let g = erdos_renyi(80, 0.1, 9);
        let split = spanning_forest(&g);
        let mut rebuilt = split.initial_graph(&g);
        for &(u, v) in &split.removed_edges {
            rebuilt.add_edge(u, v).unwrap();
        }
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        let mut a: Vec<_> = rebuilt.edges().map(|(u, v, _)| (u, v)).collect();
        let mut b: Vec<_> = g.edges().map(|(u, v, _)| (u, v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
