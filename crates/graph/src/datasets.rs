//! Evaluation dataset specifications (paper Table 1) and their synthetic
//! instantiations.
//!
//! The paper evaluates on Cora, Amazon Photo ("ampt"), and Amazon Electronics
//! Computers ("amcp"). Those datasets cannot be shipped here, so each spec is
//! realized as a seeded degree-corrected planted-partition graph matched to
//! the published node / edge / class counts — same sizes, same densities,
//! same class cardinalities, recoverable community structure. See DESIGN.md §1.

use crate::generators::sbm::{PlantedPartition, SbmParams};
use crate::graph::Graph;

/// The three evaluation datasets of the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dataset {
    /// Cora citation network: 2708 nodes, 5429 edges, 7 classes.
    Cora,
    /// Amazon Photo co-purchase subset: 7650 nodes, 143663 edges, 8 classes.
    AmazonPhoto,
    /// Amazon Electronics Computers subset: 13752 nodes, 287209 edges, 10 classes.
    AmazonComputers,
}

impl Dataset {
    /// All three datasets in the paper's presentation order.
    pub const ALL: [Dataset; 3] = [Dataset::Cora, Dataset::AmazonPhoto, Dataset::AmazonComputers];

    /// The short name the paper uses in its figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Dataset::Cora => "cora",
            Dataset::AmazonPhoto => "ampt",
            Dataset::AmazonComputers => "amcp",
        }
    }

    /// Full human-readable name.
    pub fn full_name(self) -> &'static str {
        match self {
            Dataset::Cora => "Cora",
            Dataset::AmazonPhoto => "Amazon Photo",
            Dataset::AmazonComputers => "Amazon Electronics Computers",
        }
    }

    /// Published statistics (Table 1) as a generator spec.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Cora => DatasetSpec::new(self, 2708, 5429, 7),
            Dataset::AmazonPhoto => DatasetSpec::new(self, 7650, 143_663, 8),
            Dataset::AmazonComputers => DatasetSpec::new(self, 13_752, 287_209, 10),
        }
    }

    /// Generates the synthetic stand-in graph for this dataset.
    pub fn generate(self, seed: u64) -> Graph {
        self.spec().generate(seed)
    }

    /// A proportionally shrunk variant (same density and class count, fewer
    /// nodes) for fast tests and CI-scale experiment runs. `scale` in (0, 1].
    pub fn generate_scaled(self, scale: f64, seed: u64) -> Graph {
        self.spec().scaled(scale).generate(seed)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Size parameters for one dataset together with the generator configuration
/// used to synthesize it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this spec describes.
    pub dataset: Dataset,
    /// Node count (Table 1).
    pub num_nodes: usize,
    /// Edge count (Table 1).
    pub num_edges: usize,
    /// Class count (Table 1).
    pub num_classes: usize,
}

impl DatasetSpec {
    fn new(dataset: Dataset, n: usize, m: usize, k: usize) -> Self {
        DatasetSpec { dataset, num_nodes: n, num_edges: m, num_classes: k }
    }

    /// Average degree `2m / n`.
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.num_edges as f64 / self.num_nodes as f64
    }

    /// Shrinks the spec to `scale` of its node count, preserving average
    /// degree and class count. Clamps so every class keeps at least 4 nodes.
    pub fn scaled(&self, scale: f64) -> DatasetSpec {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.num_nodes as f64 * scale) as usize).max(self.num_classes * 4);
        let m = ((self.num_edges as f64) * (n as f64 / self.num_nodes as f64)) as usize;
        let max_m = n * (n - 1) / 2;
        DatasetSpec { num_nodes: n, num_edges: m.min(max_m).max(n), ..*self }
    }

    /// Instantiates the spec as a labelled planted-partition graph.
    pub fn generate(&self, seed: u64) -> Graph {
        let params = SbmParams::new(self.num_nodes, self.num_edges, self.num_classes);
        PlantedPartition::new(params)
            .expect("published dataset sizes are always valid")
            .generate(seed ^ stable_hash(self.dataset.short_name()))
    }
}

/// Tiny stable string hash (FNV-1a) so each dataset gets decorrelated streams
/// from the same user seed.
fn stable_hash(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table1() {
        let c = Dataset::Cora.spec();
        assert_eq!((c.num_nodes, c.num_edges, c.num_classes), (2708, 5429, 7));
        let p = Dataset::AmazonPhoto.spec();
        assert_eq!((p.num_nodes, p.num_edges, p.num_classes), (7650, 143_663, 8));
        let e = Dataset::AmazonComputers.spec();
        assert_eq!((e.num_nodes, e.num_edges, e.num_classes), (13_752, 287_209, 10));
    }

    #[test]
    fn cora_generates_to_spec() {
        let g = Dataset::Cora.generate(0);
        assert_eq!(g.num_nodes(), 2708);
        assert_eq!(g.num_edges(), 5429);
        assert_eq!(g.num_classes(), 7);
    }

    #[test]
    fn scaled_preserves_density_and_classes() {
        let spec = Dataset::AmazonComputers.spec();
        let small = spec.scaled(0.05);
        assert_eq!(small.num_classes, 10);
        let ratio = small.avg_degree() / spec.avg_degree();
        assert!((0.8..=1.2).contains(&ratio), "avg degree ratio {ratio}");
        let g = small.generate(1);
        assert_eq!(g.num_nodes(), small.num_nodes);
        assert_eq!(g.num_edges(), small.num_edges);
    }

    #[test]
    fn scaled_floor_keeps_classes_populated() {
        let tiny = Dataset::Cora.spec().scaled(0.001);
        assert!(tiny.num_nodes >= 7 * 4);
        let g = tiny.generate(2);
        assert_eq!(g.num_classes(), 7);
    }

    #[test]
    fn datasets_decorrelated_for_same_seed() {
        let a = Dataset::Cora.generate_scaled(0.05, 7);
        let b = Dataset::AmazonPhoto.generate_scaled(0.02, 7);
        // Different datasets, same user seed — structurally different graphs.
        assert_ne!(a.num_nodes(), b.num_nodes());
    }

    #[test]
    fn short_names_match_paper_figures() {
        assert_eq!(Dataset::Cora.to_string(), "cora");
        assert_eq!(Dataset::AmazonPhoto.to_string(), "ampt");
        assert_eq!(Dataset::AmazonComputers.to_string(), "amcp");
    }
}
