//! Attributed dynamic-graph generator: a planted-partition graph whose
//! edges carry *arrival timestamps*, for driving richer sequential-training
//! scenarios than the paper's forest replay (an extension used by the
//! examples and stress tests).
//!
//! The paper's "seq" protocol removes edges from a finished graph and
//! replays them in random order. Real IoT edge streams are burstier: some
//! regions densify early, others late. [`TimestampedGraph`] assigns each
//! edge an arrival time drawn from a per-community activity window, so a
//! stream replayed in time order exercises drift — the situation where
//! catastrophic forgetting actually bites.

use crate::generators::sbm::{PlantedPartition, SbmParams};
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A graph plus an edge-arrival schedule.
#[derive(Debug, Clone)]
pub struct TimestampedGraph {
    /// The complete labelled graph.
    pub graph: Graph,
    /// `(time, u, v)` triples sorted by arrival time, covering every edge.
    pub schedule: Vec<(f64, NodeId, NodeId)>,
}

impl TimestampedGraph {
    /// Generates a planted-partition graph whose community `c` receives its
    /// edges centered at time `c / k` with spread `burstiness` (0 = strict
    /// phases, 1 ≈ uniform arrival).
    pub fn generate(params: SbmParams, burstiness: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&burstiness), "burstiness must be in [0, 1]");
        let k = params.num_classes.max(1);
        let graph = PlantedPartition::new(params).expect("valid params").generate(seed);
        let labels = graph.labels().expect("sbm graphs are labelled").to_vec();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x71AE);
        let mut schedule: Vec<(f64, NodeId, NodeId)> = graph
            .edges()
            .map(|(u, v, _)| {
                // Edge community = endpoint community (u's for cross edges).
                let c = labels[u as usize] as f64;
                let center = (c + 0.5) / k as f64;
                let spread = 0.02 + burstiness;
                let t = (center + (rng.gen::<f64>() - 0.5) * spread).clamp(0.0, 1.0);
                (t, u, v)
            })
            .collect();
        schedule.sort_by(|a, b| a.0.total_cmp(&b.0));
        TimestampedGraph { graph, schedule }
    }

    /// The edge stream in arrival order (drops the timestamps).
    pub fn arrival_order(&self) -> Vec<(NodeId, NodeId)> {
        self.schedule.iter().map(|&(_, u, v)| (u, v)).collect()
    }

    /// Fraction of each community's edges that arrive in its own time
    /// quartile — a drift-severity diagnostic (1.0 = perfectly phased).
    pub fn phase_concentration(&self) -> f64 {
        let labels = self.graph.labels().expect("labelled");
        let k = self.graph.num_classes().max(1);
        let mut in_phase = 0usize;
        for &(t, u, _) in &self.schedule {
            let c = labels[u as usize] as usize;
            let lo = c as f64 / k as f64;
            let hi = (c + 1) as f64 / k as f64;
            if (lo..hi).contains(&t) || (t == 1.0 && c == k - 1) {
                in_phase += 1;
            }
        }
        in_phase as f64 / self.schedule.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SbmParams {
        SbmParams::new(200, 800, 4)
    }

    #[test]
    fn schedule_covers_every_edge_and_is_sorted() {
        let tg = TimestampedGraph::generate(params(), 0.2, 1);
        assert_eq!(tg.schedule.len(), tg.graph.num_edges());
        assert!(tg.schedule.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(tg.schedule.iter().all(|&(t, ..)| (0.0..=1.0).contains(&t)));
    }

    #[test]
    fn low_burstiness_phases_communities() {
        let strict = TimestampedGraph::generate(params(), 0.05, 2);
        let diffuse = TimestampedGraph::generate(params(), 1.0, 2);
        assert!(
            strict.phase_concentration() > diffuse.phase_concentration(),
            "strict {} vs diffuse {}",
            strict.phase_concentration(),
            diffuse.phase_concentration()
        );
        assert!(strict.phase_concentration() > 0.6);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TimestampedGraph::generate(params(), 0.3, 5);
        let b = TimestampedGraph::generate(params(), 0.3, 5);
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn arrival_order_length() {
        let tg = TimestampedGraph::generate(params(), 0.5, 3);
        assert_eq!(tg.arrival_order().len(), tg.graph.num_edges());
    }

    #[test]
    #[should_panic(expected = "burstiness")]
    fn bad_burstiness_panics() {
        TimestampedGraph::generate(params(), 1.5, 1);
    }
}
