//! Synthetic graph generators.
//!
//! Two families:
//!
//! * [`classic`] — small deterministic/random topologies (paths, rings,
//!   stars, grids, Erdős–Rényi, Barabási–Albert) used by tests, examples,
//!   and micro-benchmarks.
//! * [`sbm`] — the degree-corrected planted-partition generator that stands
//!   in for the paper's evaluation datasets (Cora, Amazon Photo, Amazon
//!   Computers). See DESIGN.md §1 for the substitution argument.

pub mod attributed;
pub mod classic;
pub mod sbm;

pub use attributed::TimestampedGraph;
pub use classic::{barabasi_albert, erdos_renyi, grid, path, ring, star};
pub use sbm::{PlantedPartition, SbmParams};
