//! Degree-corrected planted-partition ("SBM") generator.
//!
//! This is the stand-in for the paper's evaluation datasets. It produces a
//! labelled graph with an exact node count, an exact distinct-edge count, a
//! given class count, a controllable intra-class edge fraction (community
//! strength — what makes the embedding-classification pipeline meaningful),
//! and power-law-ish degree skew inside each class (citation and co-purchase
//! graphs are heavy-tailed).

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Parameters of the planted-partition generator.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SbmParams {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of distinct undirected edges (exact in the output).
    pub num_edges: usize,
    /// Number of classes / planted communities.
    pub num_classes: usize,
    /// Fraction of edges whose endpoints share a class. `0.8` gives clearly
    /// recoverable communities without being trivial.
    pub intra_fraction: f64,
    /// Exponent of the within-class degree propensity `rank^(-gamma)`.
    /// `0.0` is uniform; `~0.6` resembles citation-graph skew.
    pub degree_skew: f64,
}

impl SbmParams {
    /// Sensible defaults for a graph of `n` nodes, `m` edges, `k` classes.
    pub fn new(n: usize, m: usize, k: usize) -> Self {
        SbmParams {
            num_nodes: n,
            num_edges: m,
            num_classes: k,
            intra_fraction: 0.8,
            degree_skew: 0.6,
        }
    }

    /// Validates parameter consistency (enough node pairs for the requested
    /// edge count, at least one node per class, probabilities in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_classes == 0 || self.num_nodes < self.num_classes {
            return Err(format!(
                "need num_nodes >= num_classes >= 1, got {} nodes / {} classes",
                self.num_nodes, self.num_classes
            ));
        }
        let max_edges = self.num_nodes * (self.num_nodes - 1) / 2;
        if self.num_edges > max_edges {
            return Err(format!(
                "{} edges exceed the {} possible pairs",
                self.num_edges, max_edges
            ));
        }
        if !(0.0..=1.0).contains(&self.intra_fraction) {
            return Err("intra_fraction must be in [0, 1]".into());
        }
        if self.degree_skew < 0.0 {
            return Err("degree_skew must be non-negative".into());
        }
        Ok(())
    }
}

/// One planted community: its member nodes and the cumulative propensity
/// table used for weighted node sampling.
struct Community {
    members: Vec<NodeId>,
    cumulative: Vec<f64>,
}

impl Community {
    fn build(members: Vec<NodeId>, skew: f64) -> Self {
        let mut cumulative = Vec::with_capacity(members.len());
        let mut acc = 0.0f64;
        for rank in 0..members.len() {
            acc += (rank as f64 + 1.0).powf(-skew);
            cumulative.push(acc);
        }
        Community { members, cumulative }
    }

    fn total(&self) -> f64 {
        *self.cumulative.last().expect("non-empty community")
    }

    /// Weighted sample of a member node.
    fn sample(&self, rng: &mut StdRng) -> NodeId {
        let x = rng.gen_range(0.0..self.total());
        let idx = self.cumulative.partition_point(|&c| c < x);
        self.members[idx.min(self.members.len() - 1)]
    }
}

/// The generator. Create with [`PlantedPartition::new`], then call
/// [`PlantedPartition::generate`] with a seed; each seed yields a distinct,
/// reproducible graph (the paper averages over three trials — use three
/// seeds).
#[derive(Debug, Clone)]
pub struct PlantedPartition {
    params: SbmParams,
}

impl PlantedPartition {
    /// Validates `params` and builds the generator.
    pub fn new(params: SbmParams) -> Result<Self, String> {
        params.validate()?;
        Ok(PlantedPartition { params })
    }

    /// Accessor for the parameters.
    pub fn params(&self) -> &SbmParams {
        &self.params
    }

    /// Generates the labelled graph.
    pub fn generate(&self, seed: u64) -> Graph {
        let p = &self.params;
        let mut rng = StdRng::seed_from_u64(seed);

        // Class assignment: contiguous near-equal blocks, then shuffle node
        // ids so class is independent of node index.
        let mut perm: Vec<NodeId> = (0..p.num_nodes as NodeId).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let mut labels = vec![0u16; p.num_nodes];
        let mut communities: Vec<Community> = Vec::with_capacity(p.num_classes);
        let base = p.num_nodes / p.num_classes;
        let extra = p.num_nodes % p.num_classes;
        let mut cursor = 0usize;
        for c in 0..p.num_classes {
            let size = base + usize::from(c < extra);
            let members: Vec<NodeId> = perm[cursor..cursor + size].to_vec();
            cursor += size;
            for &u in &members {
                labels[u as usize] = c as u16;
            }
            communities.push(Community::build(members, p.degree_skew));
        }

        // Edge sampling until the exact distinct-edge budget is met.
        let mut g = Graph::with_nodes(p.num_nodes);
        let mut seen: HashSet<u64> = HashSet::with_capacity(p.num_edges * 2);
        let class_cum: Vec<f64> = {
            let mut acc = 0.0;
            communities
                .iter()
                .map(|c| {
                    // Class pick probability ∝ total propensity mass so large
                    // classes host proportionally more intra edges.
                    acc += c.total();
                    acc
                })
                .collect()
        };
        let class_total = *class_cum.last().expect("at least one class");
        let pick_class = |rng: &mut StdRng| -> usize {
            let x = rng.gen_range(0.0..class_total);
            class_cum.partition_point(|&c| c < x).min(communities.len() - 1)
        };

        let mut added = 0usize;
        // The loop always terminates: each iteration either adds a distinct
        // valid edge or retries, and the edge budget is validated to be below
        // the number of available pairs.
        while added < p.num_edges {
            let (u, v) = if rng.gen_bool(p.intra_fraction) {
                // Intra-class edge; fall back to cross-class when a class has
                // a single node.
                let ci = pick_class(&mut rng);
                if communities[ci].members.len() < 2 {
                    continue;
                }
                (communities[ci].sample(&mut rng), communities[ci].sample(&mut rng))
            } else {
                let ci = pick_class(&mut rng);
                let mut cj = pick_class(&mut rng);
                if communities.len() > 1 {
                    while cj == ci {
                        cj = pick_class(&mut rng);
                    }
                }
                (communities[ci].sample(&mut rng), communities[cj].sample(&mut rng))
            };
            if u == v {
                continue;
            }
            let key = (u.min(v) as u64) << 32 | u.max(v) as u64;
            if !seen.insert(key) {
                continue;
            }
            g.add_edge(u, v).expect("deduped, validated edge");
            added += 1;
        }

        g.set_labels(labels).expect("labels sized to node count");
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PlantedPartition {
        PlantedPartition::new(SbmParams::new(300, 900, 3)).unwrap()
    }

    #[test]
    fn exact_counts() {
        let g = small().generate(1);
        assert_eq!(g.num_nodes(), 300);
        assert_eq!(g.num_edges(), 900);
        assert_eq!(g.num_classes(), 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().generate(9);
        let b = small().generate(9);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let a = small().generate(1);
        let b = small().generate(2);
        assert_ne!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn intra_fraction_is_respected() {
        let g = small().generate(3);
        let labels = g.labels().unwrap();
        let intra = g.edges().filter(|&(u, v, _)| labels[u as usize] == labels[v as usize]).count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!((0.7..=0.9).contains(&frac), "intra fraction {frac} outside expected band");
    }

    #[test]
    fn class_sizes_near_equal() {
        let g = small().generate(4);
        let labels = g.labels().unwrap();
        let mut counts = [0usize; 3];
        for &l in labels {
            counts[l as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 300);
        assert!(counts.iter().all(|&c| c == 100));
    }

    #[test]
    fn degree_skew_creates_hubs() {
        let skewed =
            PlantedPartition::new(SbmParams { degree_skew: 0.9, ..SbmParams::new(400, 2400, 4) })
                .unwrap()
                .generate(5);
        let flat =
            PlantedPartition::new(SbmParams { degree_skew: 0.0, ..SbmParams::new(400, 2400, 4) })
                .unwrap()
                .generate(5);
        let max_deg = |g: &Graph| (0..g.num_nodes() as NodeId).map(|u| g.degree(u)).max().unwrap();
        assert!(
            max_deg(&skewed) > max_deg(&flat),
            "skewed generator should produce larger hubs ({} vs {})",
            max_deg(&skewed),
            max_deg(&flat)
        );
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(SbmParams::new(10, 100, 3).validate().is_err()); // too many edges
        assert!(SbmParams::new(2, 1, 3).validate().is_err()); // classes > nodes
        let mut p = SbmParams::new(10, 5, 2);
        p.intra_fraction = 1.5;
        assert!(p.validate().is_err());
        p.intra_fraction = 0.5;
        p.degree_skew = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn single_class_graph_works() {
        let g = PlantedPartition::new(SbmParams::new(50, 100, 1)).unwrap().generate(6);
        assert_eq!(g.num_edges(), 100);
        assert_eq!(g.num_classes(), 1);
    }
}
