//! Classic deterministic and random graph topologies.
//!
//! These are plumbing for tests, examples, and micro-benchmarks; the paper's
//! datasets are produced by [`crate::generators::sbm`].

use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Path graph `0 — 1 — … — (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 1..n as NodeId {
        g.add_edge(u - 1, u).expect("path edges are unique");
    }
    g
}

/// Cycle graph on `n ≥ 3` nodes.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = path(n);
    g.add_edge(n as NodeId - 1, 0).expect("closing edge is unique");
    g
}

/// Star graph: node 0 connected to nodes `1..n`.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::with_nodes(n);
    for u in 1..n as NodeId {
        g.add_edge(0, u).expect("star edges are unique");
    }
    g
}

/// `rows × cols` 4-connected grid.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::with_nodes(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1)).expect("grid edges are unique");
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c)).expect("grid edges are unique");
            }
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` graph, seeded.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen_bool(p) {
                g.add_edge(u, v).expect("each pair visited once");
            }
        }
    }
    g
}

/// Barabási–Albert preferential attachment: starts from a clique of `m`
/// nodes, then each new node attaches to `m` distinct existing nodes chosen
/// with probability proportional to degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1 && n > m, "need n > m >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    // `targets` holds one entry per edge endpoint, so uniform sampling from it
    // is degree-proportional sampling.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for u in 0..m as NodeId {
        for v in (u + 1)..m as NodeId {
            g.add_edge(u, v).expect("clique edges are unique");
            targets.push(u);
            targets.push(v);
        }
    }
    for u in m as NodeId..n as NodeId {
        let mut picked: Vec<NodeId> = Vec::with_capacity(m);
        while picked.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if t != u && !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            g.add_edge(u, t).expect("picked targets are distinct");
            targets.push(u);
            targets.push(t);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::connected_components;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn ring_shape() {
        let g = ring(6);
        assert_eq!(g.num_edges(), 6);
        assert!((0..6).all(|u| g.degree(u) == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn ring_too_small_panics() {
        let _ = ring(2);
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|u| g.degree(u) == 1));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // edges: 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(50, 0.1, 42);
        let b = erdos_renyi(50, 0.1, 42);
        let c = erdos_renyi(50, 0.1, 43);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
        // Overwhelmingly likely to differ.
        assert_ne!(a.num_edges(), 0);
        assert!(c.num_edges() > 0);
    }

    #[test]
    fn erdos_renyi_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
    }

    #[test]
    fn barabasi_albert_edge_count_and_connectivity() {
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, 7);
        // clique(m) + (n - m) * m edges
        assert_eq!(g.num_edges(), m * (m - 1) / 2 + (n - m) * m);
        assert_eq!(connected_components(&g), 1);
    }

    #[test]
    fn barabasi_albert_has_skewed_degrees() {
        let g = barabasi_albert(500, 2, 11);
        let max_deg = (0..500).map(|u| g.degree(u)).max().unwrap();
        // Preferential attachment should concentrate degree far above the mean (~4).
        assert!(max_deg > 20, "max degree {max_deg} too small for BA");
    }
}
