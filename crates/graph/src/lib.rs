//! # seqge-graph — graph substrate for sequential graph embedding
//!
//! This crate provides everything the embedding layers need from a graph:
//!
//! * [`Graph`] — an undirected, weighted, *dynamic* graph (edges can be added
//!   after construction, which is the whole point of the paper's sequential
//!   training scenario) with optional per-node class labels.
//! * [`Csr`] — an immutable compressed-sparse-row snapshot used by the random
//!   walk kernels (cache-friendly, sorted neighbor lists, O(log deg) edge
//!   membership queries).
//! * [`generators`] — synthetic labelled graph generators. The paper evaluates
//!   on Cora and two Amazon co-purchase subsets; those datasets are not
//!   redistributable here, so [`datasets`] instantiates seeded
//!   degree-corrected planted-partition graphs matched to each dataset's
//!   published node / edge / class counts (see DESIGN.md §1).
//! * [`forest`] — spanning-forest extraction used to build the initial graph
//!   of the paper's "seq" scenario (§4.3.2): the initial graph is a forest
//!   with the *same connected components* as the full graph, and the removed
//!   edges are replayed one at a time.
//! * [`dynamic`] — the replayable edge-insertion stream driving that scenario.
//!
//! All randomness is seeded and deterministic for a given seed.

pub mod builder;
pub mod csr;
pub mod datasets;
pub mod dynamic;
pub mod error;
pub mod forest;
pub mod generators;
pub mod graph;
pub mod io;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use datasets::{Dataset, DatasetSpec};
pub use dynamic::{EdgeEvent, EdgeStream};
pub use error::GraphError;
pub use forest::{spanning_forest, ForestSplit};
pub use graph::{Graph, NodeId};

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
