//! Replayable edge-insertion stream for the "seq" training scenario.
//!
//! The paper's dynamic-graph evaluation starts from a spanning forest and
//! adds the removed edges back one at a time; after each insertion a random
//! walk is started from *both* ends of the new edge and the model is trained.
//! [`EdgeStream`] owns the insertion order (seeded shuffle) and supports
//! subsampling for scaled-down runs.

use crate::error::GraphError;
use crate::forest::ForestSplit;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A single mutation of a dynamic graph, as delivered by a live write
/// plane (e.g. the `seqge-serve` ingestion log). The "seq" scenario of the
/// paper only ever *adds* edges; a deployed system also sees retractions,
/// so the event vocabulary carries both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeEvent {
    /// Insert the undirected edge `(u, v)`.
    Add(NodeId, NodeId),
    /// Retract the undirected edge `(u, v)`.
    Remove(NodeId, NodeId),
}

impl EdgeEvent {
    /// The two endpoints the event touches (walk restart points for
    /// incremental training — the paper restarts walks "from both the ends
    /// of an added edge", and retraction symmetrically refreshes both
    /// stranded neighborhoods).
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            EdgeEvent::Add(u, v) | EdgeEvent::Remove(u, v) => (u, v),
        }
    }

    /// Applies the event to `g`, enforcing all graph invariants
    /// (range/self-loop/duplicate checks on add, existence on remove).
    pub fn apply(&self, g: &mut Graph) -> Result<(), GraphError> {
        match *self {
            EdgeEvent::Add(u, v) => g.add_edge(u, v),
            EdgeEvent::Remove(u, v) => g.remove_edge(u, v),
        }
    }
}

/// A deterministic, optionally subsampled ordering of edges to insert.
#[derive(Debug, Clone)]
pub struct EdgeStream {
    edges: Vec<(NodeId, NodeId)>,
}

impl EdgeStream {
    /// Builds a stream from the removed edges of a [`ForestSplit`], shuffled
    /// with `seed` (the paper inserts edges in an unspecified order; a seeded
    /// shuffle makes runs reproducible while avoiding generator-order bias).
    pub fn from_forest_split(split: &ForestSplit, seed: u64) -> Self {
        Self::from_edges(split.removed_edges.clone(), seed)
    }

    /// Builds a stream from an explicit edge list, shuffled with `seed`.
    pub fn from_edges(mut edges: Vec<(NodeId, NodeId)>, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..edges.len()).rev() {
            edges.swap(i, rng.gen_range(0..=i));
        }
        EdgeStream { edges }
    }

    /// Number of edges in the stream.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The full insertion order.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Keeps an evenly spaced subsample of about `fraction` of the stream
    /// (at least one edge if the stream is non-empty). Used by `--scale`
    /// experiment runs: the *graph* still ends up complete only at
    /// `fraction = 1.0`, so scaled runs trade final density for speed — the
    /// experiment binaries document this.
    pub fn subsample(&self, fraction: f64) -> EdgeStream {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
        if self.edges.is_empty() || fraction >= 1.0 {
            return self.clone();
        }
        let keep = ((self.edges.len() as f64 * fraction).round() as usize).max(1);
        let stride = self.edges.len() as f64 / keep as f64;
        let edges = (0..keep).map(|i| self.edges[(i as f64 * stride) as usize]).collect::<Vec<_>>();
        EdgeStream { edges }
    }

    /// Iterates the insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::spanning_forest;
    use crate::generators::classic::erdos_renyi;

    #[test]
    fn shuffle_is_deterministic() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)];
        let a = EdgeStream::from_edges(edges.clone(), 42);
        let b = EdgeStream::from_edges(edges.clone(), 42);
        let c = EdgeStream::from_edges(edges, 43);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn stream_preserves_multiset() {
        let g = erdos_renyi(60, 0.1, 5);
        let split = spanning_forest(&g);
        let s = EdgeStream::from_forest_split(&split, 1);
        let mut got: Vec<_> = s.edges().to_vec();
        let mut want = split.removed_edges.clone();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn subsample_sizes() {
        let edges: Vec<_> = (0..100u32).map(|i| (i, i + 100)).collect();
        let s = EdgeStream::from_edges(edges, 0);
        assert_eq!(s.subsample(1.0).len(), 100);
        assert_eq!(s.subsample(0.25).len(), 25);
        assert_eq!(s.subsample(0.001).len(), 1);
    }

    #[test]
    fn subsample_keeps_order() {
        let edges: Vec<_> = (0..50u32).map(|i| (i, i + 50)).collect();
        let s = EdgeStream::from_edges(edges, 3);
        let sub = s.subsample(0.2);
        // Subsample must be a subsequence of the original order.
        let mut pos = 0usize;
        for e in sub.iter() {
            while pos < s.len() && s.edges()[pos] != e {
                pos += 1;
            }
            assert!(pos < s.len(), "subsample element not found in order");
        }
    }

    #[test]
    fn edge_events_apply_and_roundtrip() {
        let mut g = Graph::with_nodes(4);
        EdgeEvent::Add(0, 1).apply(&mut g).unwrap();
        EdgeEvent::Add(1, 2).apply(&mut g).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(EdgeEvent::Add(0, 1).apply(&mut g).is_err(), "duplicate add rejected");
        EdgeEvent::Remove(0, 1).apply(&mut g).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(EdgeEvent::Remove(0, 1).apply(&mut g).is_err(), "missing remove rejected");
        assert_eq!(EdgeEvent::Remove(3, 2).endpoints(), (3, 2));
    }

    #[test]
    fn empty_stream() {
        let s = EdgeStream::from_edges(vec![], 1);
        assert!(s.is_empty());
        assert!(s.subsample(0.5).is_empty());
    }
}
