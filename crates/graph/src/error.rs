//! Error type shared by all graph operations.

use std::fmt;

/// Errors produced by graph construction, mutation, and I/O.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index was out of range for the graph.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// Attempted to add an edge that already exists.
    DuplicateEdge(u32, u32),
    /// Attempted to remove an edge that does not exist.
    MissingEdge(u32, u32),
    /// Attempted to add a self loop, which the walk model forbids.
    SelfLoop(u32),
    /// An edge weight was non-finite or non-positive.
    BadWeight(f32),
    /// Label vector length did not match the node count.
    LabelLengthMismatch {
        /// Number of labels supplied.
        labels: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A parse or I/O failure, with a human-readable description.
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range (graph has {num_nodes} nodes)")
            }
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::SelfLoop(u) => write!(f, "self loop on node {u} is not allowed"),
            GraphError::BadWeight(w) => write!(f, "edge weight {w} must be finite and positive"),
            GraphError::LabelLengthMismatch { labels, num_nodes } => {
                write!(f, "{labels} labels supplied for {num_nodes} nodes")
            }
            GraphError::Io(msg) => write!(f, "graph i/o error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange { node: 7, num_nodes: 3 };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("3"));
        assert!(GraphError::DuplicateEdge(1, 2).to_string().contains("(1, 2)"));
        assert!(GraphError::SelfLoop(4).to_string().contains("4"));
        assert!(GraphError::BadWeight(-1.0).to_string().contains("-1"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
