//! The dynamic, undirected, weighted graph type.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::Result;

/// Node identifier. Graphs in the paper's evaluation have at most ~14k nodes,
/// so `u32` keeps adjacency lists compact (see the type-size guidance in the
/// Rust Performance Book).
pub type NodeId = u32;

/// An undirected, weighted graph supporting incremental edge insertion.
///
/// Invariants maintained by every constructor and mutator:
///
/// * no self loops;
/// * no parallel edges (at most one edge per unordered node pair);
/// * every stored weight is finite and strictly positive;
/// * adjacency is symmetric: `v ∈ adj(u)` ⇔ `u ∈ adj(v)`, with equal weights.
///
/// The adjacency representation is a vector of neighbor lists, which makes
/// single-edge insertion O(deg) (for the duplicate check) — cheap enough for
/// the "seq" scenario where one edge arrives at a time. Hot read paths
/// (random walks) should snapshot with [`Graph::to_csr`] instead.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<(NodeId, f32)>>,
    num_edges: usize,
    labels: Option<Vec<u16>>,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], num_edges: 0, labels: None }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj[u as usize].len()
    }

    /// Neighbor list of `u` as `(neighbor, weight)` pairs, in insertion order.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[(NodeId, f32)] {
        &self.adj[u as usize]
    }

    /// Whether the unordered pair `(u, v)` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.adj[a as usize].iter().any(|&(w, _)| w == b)
    }

    /// Adds an undirected edge with weight 1.0.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        self.add_weighted_edge(u, v, 1.0)
    }

    /// Adds an undirected weighted edge, enforcing all graph invariants.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: f32) -> Result<()> {
        let n = self.num_nodes();
        for x in [u, v] {
            if x as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: x, num_nodes: n });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::BadWeight(w));
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
        self.num_edges += 1;
        Ok(())
    }

    /// Removes the undirected edge `(u, v)`. The reverse of
    /// [`Graph::add_edge`], needed by live-ingestion write planes where
    /// edges can be retracted as well as inserted.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        let n = self.num_nodes();
        for x in [u, v] {
            if x as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: x, num_nodes: n });
            }
        }
        if !self.has_edge(u, v) {
            return Err(GraphError::MissingEdge(u, v));
        }
        self.adj[u as usize].retain(|&(w, _)| w != v);
        self.adj[v as usize].retain(|&(w, _)| w != u);
        self.num_edges -= 1;
        Ok(())
    }

    /// Attaches one class label per node (used by the downstream
    /// classification evaluation). Labels are small unsigned class indices.
    pub fn set_labels(&mut self, labels: Vec<u16>) -> Result<()> {
        if labels.len() != self.num_nodes() {
            return Err(GraphError::LabelLengthMismatch {
                labels: labels.len(),
                num_nodes: self.num_nodes(),
            });
        }
        self.labels = Some(labels);
        Ok(())
    }

    /// Per-node class labels, if attached.
    #[inline]
    pub fn labels(&self) -> Option<&[u16]> {
        self.labels.as_deref()
    }

    /// Number of distinct classes among the labels (0 if unlabelled).
    pub fn num_classes(&self) -> usize {
        self.labels
            .as_ref()
            .map(|l| l.iter().copied().max().map_or(0, |m| m as usize + 1))
            .unwrap_or(0)
    }

    /// Iterates every undirected edge exactly once as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as NodeId;
            nbrs.iter().filter_map(move |&(v, w)| (u < v).then_some((u, v, w)))
        })
    }

    /// Takes an immutable CSR snapshot for the walk kernels.
    pub fn to_csr(&self) -> Csr {
        Csr::from_graph(self)
    }

    /// Builds a graph from an edge list over `n` nodes, skipping duplicate
    /// edges and self loops silently (convenient for generated edge streams
    /// that may contain repeats).
    pub fn from_edges_lossy(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = Graph::with_nodes(n);
        for &(u, v) in edges {
            let _ = g.add_edge(u, v);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        g.add_edge(2, 0).unwrap();
        g
    }

    #[test]
    fn empty_graph() {
        let g = Graph::with_nodes(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn remove_edge_is_symmetric_and_validated() {
        let mut g = triangle();
        g.remove_edge(1, 0).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1) && !g.has_edge(1, 0));
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.remove_edge(0, 1), Err(GraphError::MissingEdge(0, 1)));
        assert!(matches!(g.remove_edge(0, 9), Err(GraphError::NodeOutOfRange { .. })));
        // Removed edges can be re-added (full add/remove cycle).
        g.add_edge(0, 1).unwrap();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn add_edge_is_symmetric() {
        let g = triangle();
        assert_eq!(g.num_edges(), 3);
        for u in 0..3u32 {
            assert_eq!(g.degree(u), 2);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn rejects_self_loop() {
        let mut g = Graph::with_nodes(2);
        assert_eq!(g.add_edge(1, 1), Err(GraphError::SelfLoop(1)));
    }

    #[test]
    fn rejects_duplicate_either_direction() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1).unwrap();
        assert!(matches!(g.add_edge(0, 1), Err(GraphError::DuplicateEdge(..))));
        assert!(matches!(g.add_edge(1, 0), Err(GraphError::DuplicateEdge(..))));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(g.add_edge(0, 2), Err(GraphError::NodeOutOfRange { .. })));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut g = Graph::with_nodes(2);
        assert!(matches!(g.add_weighted_edge(0, 1, 0.0), Err(GraphError::BadWeight(_))));
        assert!(matches!(g.add_weighted_edge(0, 1, -2.0), Err(GraphError::BadWeight(_))));
        assert!(matches!(g.add_weighted_edge(0, 1, f32::NAN), Err(GraphError::BadWeight(_))));
        assert!(matches!(g.add_weighted_edge(0, 1, f32::INFINITY), Err(GraphError::BadWeight(_))));
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = triangle();
        let mut es: Vec<_> = g.edges().map(|(u, v, _)| (u, v)).collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn labels_roundtrip_and_classes() {
        let mut g = triangle();
        assert_eq!(g.num_classes(), 0);
        g.set_labels(vec![0, 2, 1]).unwrap();
        assert_eq!(g.labels().unwrap(), &[0, 2, 1]);
        assert_eq!(g.num_classes(), 3);
    }

    #[test]
    fn labels_length_checked() {
        let mut g = triangle();
        assert!(matches!(g.set_labels(vec![0, 1]), Err(GraphError::LabelLengthMismatch { .. })));
    }

    #[test]
    fn from_edges_lossy_skips_bad_edges() {
        let g = Graph::from_edges_lossy(3, &[(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
    }
}
