//! Immutable compressed-sparse-row snapshot of a [`Graph`].
//!
//! The node2vec walk kernel queries, per step, (a) the neighbor list of the
//! current node and (b) whether a candidate next-hop is adjacent to the
//! *previous* node (to decide the `d_tx` distance in the paper's Eq. 2).
//! CSR with sorted neighbor lists serves (a) with one contiguous slice and
//! (b) with a binary search, and the whole structure lives in three flat
//! allocations, which is what the hot loop wants.

use crate::graph::{Graph, NodeId};

/// Compressed sparse row adjacency with sorted neighbor lists and per-edge
/// weights. Construct via [`Graph::to_csr`] or [`Csr::from_graph`].
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
    weights: Vec<f32>,
}

impl Csr {
    /// Builds a CSR snapshot of `g`, sorting each neighbor list by node id.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * g.num_edges());
        let mut weights = Vec::with_capacity(2 * g.num_edges());
        offsets.push(0u32);
        let mut scratch: Vec<(NodeId, f32)> = Vec::new();
        for u in 0..n {
            scratch.clear();
            scratch.extend_from_slice(g.neighbors(u as NodeId));
            scratch.sort_unstable_by_key(|&(v, _)| v);
            for &(v, w) in &scratch {
                neighbors.push(v);
                weights.push(w);
            }
            offsets.push(neighbors.len() as u32);
        }
        Csr { offsets, neighbors, weights }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// Sorted neighbor ids of `u`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Edge weights aligned with [`Csr::neighbors`].
    #[inline]
    pub fn weights(&self, u: NodeId) -> &[f32] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// Whether `(u, v)` is an edge — O(log deg(u)) via binary search.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Total weight of edges incident to `u`.
    pub fn weighted_degree(&self, u: NodeId) -> f32 {
        self.weights(u).iter().sum()
    }

    /// Approximate heap footprint in bytes (used by the model-size report).
    pub fn heap_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.neighbors.len() * std::mem::size_of::<NodeId>()
            + self.weights.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Csr {
        // 0 - 1 - 2 - 3
        let mut g = Graph::with_nodes(4);
        g.add_edge(1, 0).unwrap();
        g.add_edge(2, 1).unwrap();
        g.add_edge(3, 2).unwrap();
        g.to_csr()
    }

    #[test]
    fn shape_matches_graph() {
        let c = path4();
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.num_edges(), 3);
        assert_eq!(c.degree(0), 1);
        assert_eq!(c.degree(1), 2);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let mut g = Graph::with_nodes(5);
        for v in [4u32, 2, 3, 1] {
            g.add_edge(0, v).unwrap();
        }
        let c = g.to_csr();
        assert_eq!(c.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn has_edge_matches_membership() {
        let c = path4();
        assert!(c.has_edge(1, 2));
        assert!(c.has_edge(2, 1));
        assert!(!c.has_edge(0, 3));
        assert!(!c.has_edge(0, 0));
    }

    #[test]
    fn weights_follow_sort_order() {
        let mut g = Graph::with_nodes(3);
        g.add_weighted_edge(0, 2, 5.0).unwrap();
        g.add_weighted_edge(0, 1, 3.0).unwrap();
        let c = g.to_csr();
        assert_eq!(c.neighbors(0), &[1, 2]);
        assert_eq!(c.weights(0), &[3.0, 5.0]);
        assert_eq!(c.weighted_degree(0), 8.0);
    }

    #[test]
    fn empty_node_has_empty_slices() {
        let g = Graph::with_nodes(2);
        let c = g.to_csr();
        assert!(c.neighbors(0).is_empty());
        assert!(c.weights(1).is_empty());
    }
}
