//! Property-based tests for graph invariants.

use proptest::prelude::*;
use seqge_graph::generators::classic::erdos_renyi;
use seqge_graph::stats::connected_components;
use seqge_graph::{spanning_forest, EdgeStream, Graph};

fn random_graph() -> impl Strategy<Value = Graph> {
    (5usize..60, 0.0f64..0.3, any::<u64>()).prop_map(|(n, p, seed)| erdos_renyi(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adjacency symmetry and degree/edge-count consistency.
    #[test]
    fn adjacency_is_symmetric(g in random_graph()) {
        let mut degree_sum = 0usize;
        for u in 0..g.num_nodes() as u32 {
            degree_sum += g.degree(u);
            for &(v, _) in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "({u},{v}) present but not mirrored");
            }
        }
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// CSR snapshot is a faithful, sorted view of the graph.
    #[test]
    fn csr_matches_graph(g in random_graph()) {
        let csr = g.to_csr();
        prop_assert_eq!(csr.num_nodes(), g.num_nodes());
        prop_assert_eq!(csr.num_edges(), g.num_edges());
        for u in 0..g.num_nodes() as u32 {
            prop_assert_eq!(csr.degree(u), g.degree(u));
            let nbrs = csr.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted neighbors");
            for &v in nbrs {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    /// The spanning forest keeps components, is acyclic (edge count =
    /// n − components), and replaying removed edges restores the graph.
    #[test]
    fn spanning_forest_invariants(g in random_graph()) {
        let split = spanning_forest(&g);
        let comps = connected_components(&g);
        prop_assert_eq!(split.components, comps);
        prop_assert_eq!(split.forest_edges.len(), g.num_nodes() - comps);
        prop_assert_eq!(split.forest_edges.len() + split.removed_edges.len(), g.num_edges());
        let init = split.initial_graph(&g);
        prop_assert_eq!(connected_components(&init), comps);

        let mut rebuilt = init;
        for &(u, v) in &split.removed_edges {
            rebuilt.add_edge(u, v).expect("removed edge is re-insertable");
        }
        prop_assert_eq!(rebuilt.num_edges(), g.num_edges());
    }

    /// Edge streams are permutations; subsampling keeps a subsequence.
    #[test]
    fn edge_stream_permutation(g in random_graph(), seed in any::<u64>(), frac in 0.1f64..1.0) {
        let split = spanning_forest(&g);
        let stream = EdgeStream::from_forest_split(&split, seed);
        let mut a: Vec<_> = stream.edges().to_vec();
        let mut b = split.removed_edges.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        let sub = stream.subsample(frac);
        prop_assert!(sub.len() <= stream.len());
        if !stream.is_empty() {
            prop_assert!(!sub.is_empty());
        }
    }
}
