//! The accounting plane: reply classification, per-op/per-window metrics,
//! and the machine-readable `results/bench_load.json` report.
//!
//! Every reply is classified into an [`Outcome`] using the protocol's
//! `code` field first (see `seqge_serve::protocol`), falling back to the
//! legacy message prefixes for servers that predate it. Latencies land in
//! client-side `seqge-obs` log-histograms labeled `{op, window}`; outcomes
//! and SLO violations in counters with the same label split. The report
//! is aggregated from the registry at the end of the run, so the hot path
//! is lock-free counter bumps — the same discipline the server itself
//! uses.

use crate::slo::Slo;
use crate::workload::OP_LABELS;
use seqge_obs::{Histogram, Registry};
use seqge_serve::protocol::{CODE_DEGRADED, CODE_OVERLOADED};
use serde::Serialize;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Exemplar trace ids retained per `(op, window)` SLO-violation bucket —
/// enough to pull a few representative span trees out of the server's
/// `trace` op without unbounded growth.
pub const MAX_EXEMPLARS: usize = 5;

/// The accounting windows, in report order.
pub const WINDOWS: [&str; 2] = ["steady", "fault"];

/// What a reply (or its absence) meant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// `ok:true`, full-fidelity answer.
    Ok,
    /// Served, but degraded: partial scatter-gather, replica fallback, or
    /// an explicit `code:"degraded"` refusal.
    Degraded,
    /// Load-shed: `code:"overloaded"` — the backpressure plane working as
    /// designed, retryable.
    Shed,
    /// A hard protocol error (validation failure, unknown op, malformed
    /// reply) — these are bugs, CI asserts zero.
    HardError,
    /// The transport died (connect/read/write failure, timeout).
    Transport,
}

impl Outcome {
    /// The metric/report label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Degraded => "degraded",
            Outcome::Shed => "shed",
            Outcome::HardError => "hard_error",
            Outcome::Transport => "transport",
        }
    }
}

/// Classifies one raw reply line. The `code` field is authoritative;
/// message prefixes are the compatibility fallback; an unparseable line
/// is a hard error (the server must always answer one JSON object).
pub fn classify(line: &str) -> Outcome {
    let Ok(v) = serde_json::from_str::<Value>(line) else {
        return Outcome::HardError;
    };
    let code = v.get("code").and_then(Value::as_str);
    match v.get("ok") {
        Some(&Value::Bool(true)) => {
            let degraded = code == Some(CODE_DEGRADED)
                || v.get("degraded") == Some(&Value::Bool(true))
                || v.get("source").and_then(Value::as_str) == Some("replica");
            if degraded {
                Outcome::Degraded
            } else {
                Outcome::Ok
            }
        }
        Some(&Value::Bool(false)) => {
            let msg = v.get("error").and_then(Value::as_str).unwrap_or("");
            match code {
                Some(CODE_OVERLOADED) => Outcome::Shed,
                Some(CODE_DEGRADED) => Outcome::Degraded,
                Some(_) => Outcome::HardError,
                None if msg.starts_with("overloaded") => Outcome::Shed,
                None if msg.starts_with("degraded") => Outcome::Degraded,
                None => Outcome::HardError,
            }
        }
        _ => Outcome::HardError,
    }
}

/// The run's metric sink: a private registry (not the process-global one,
/// so an in-process server under test can't bleed into client accounting).
pub struct Accounting {
    registry: Registry,
    slo: Slo,
    /// `(op, window) -> exemplar trace ids` for SLO-violating samples.
    /// Registries hold only numbers, so the ids live beside one; the
    /// mutex is taken only on a violation (never on the happy path).
    exemplars: Mutex<HashMap<(String, String), Vec<String>>>,
}

impl Accounting {
    /// A fresh sink enforcing `slo`.
    pub fn new(slo: Slo) -> Self {
        Accounting { registry: Registry::new(), slo, exemplars: Mutex::new(HashMap::new()) }
    }

    /// The SLO in force.
    pub fn slo(&self) -> &Slo {
        &self.slo
    }

    /// Records one completed op: outcome, latency (for answered ops), and
    /// the per-sample SLO check. `latency_ns` is `None` for transport
    /// failures, which have no meaningful service time. `trace_id` (the
    /// context the driver attached to the request) is kept as an exemplar
    /// when the sample violates its SLO, so the report links straight to
    /// the server-side span tree.
    pub fn record(
        &self,
        op: &str,
        window: &str,
        outcome: Outcome,
        latency_ns: Option<u64>,
        trace_id: Option<u64>,
    ) {
        self.registry
            .counter_with(
                "seqge_loadgen_outcomes_total",
                &[("op", op), ("window", window), ("outcome", outcome.label())],
            )
            .inc();
        if let Some(ns) = latency_ns {
            self.latency(op, window).record(ns);
            if self.slo.violates(op, ns as f64 / 1e6) {
                self.registry
                    .counter_with(
                        "seqge_loadgen_slo_violations_total",
                        &[("op", op), ("window", window)],
                    )
                    .inc();
                if let Some(id) = trace_id {
                    let mut ex = self.exemplars.lock().expect("exemplar store poisoned");
                    let bucket = ex.entry((op.to_string(), window.to_string())).or_default();
                    if bucket.len() < MAX_EXEMPLARS {
                        bucket.push(seqge_obs::trace::fmt_id(id));
                    }
                }
            }
        }
    }

    fn latency(&self, op: &str, window: &str) -> Arc<Histogram> {
        self.registry.histogram_with("seqge_loadgen_latency_ns", &[("op", op), ("window", window)])
    }

    fn outcome_count(&self, op: &str, window: &str, outcome: Outcome) -> u64 {
        self.registry
            .counter_with(
                "seqge_loadgen_outcomes_total",
                &[("op", op), ("window", window), ("outcome", outcome.label())],
            )
            .get()
    }

    fn violations(&self, op: &str, window: &str) -> u64 {
        self.registry
            .counter_with("seqge_loadgen_slo_violations_total", &[("op", op), ("window", window)])
            .get()
    }

    /// Aggregates everything recorded so far into the report.
    pub fn report(&self, meta: RunMeta) -> Report {
        let windows: Vec<WindowReport> = WINDOWS.iter().map(|w| self.window_report(w)).collect();
        let steady = &windows[0];
        let steady_ok_rate = if steady.ops == 0 {
            1.0
        } else {
            (steady.ok + steady.degraded + steady.shed) as f64 / steady.ops as f64
        };
        let steady_topk_p99_ms = steady
            .per_op
            .iter()
            .filter(|o| o.op.starts_with("topk"))
            .map(|o| o.p99_ms)
            .fold(0.0f64, f64::max);
        let slo = SloReport {
            max_error_rate: self.slo.max_error_rate,
            targets: self
                .slo
                .p99_ms
                .iter()
                .map(|&(op, target_ms)| {
                    let measured =
                        steady.per_op.iter().find(|o| o.op == op).map(|o| o.p99_ms).unwrap_or(0.0);
                    SloEntry {
                        op: op.to_string(),
                        target_p99_ms: target_ms,
                        steady_p99_ms: measured,
                        pass: measured <= target_ms,
                    }
                })
                .collect(),
        };
        let slo_pass =
            slo.targets.iter().all(|t| t.pass) && steady.error_rate <= self.slo.max_error_rate;
        let total_ops = windows.iter().map(|w| w.ops).sum();
        let mut exemplars: Vec<ExemplarReport> = self
            .exemplars
            .lock()
            .expect("exemplar store poisoned")
            .iter()
            .map(|((op, window), ids)| ExemplarReport {
                op: op.clone(),
                window: window.clone(),
                trace_ids: ids.clone(),
            })
            .collect();
        exemplars.sort_by(|a, b| (&a.op, &a.window).cmp(&(&b.op, &b.window)));
        Report {
            scenario: meta.scenario,
            target: meta.target,
            seed: meta.seed,
            connections: meta.connections,
            scale: meta.scale,
            nodes: meta.nodes,
            backend: meta.backend,
            schedule_hash: meta.schedule_hash,
            wall_s: meta.wall_s,
            total_ops,
            steady_ok_rate,
            steady_topk_p99_ms,
            slo_pass,
            windows,
            slo,
            exemplars,
        }
    }

    fn window_report(&self, window: &str) -> WindowReport {
        let mut per_op = Vec::new();
        let (mut ops, mut ok, mut degraded, mut shed, mut hard, mut transport, mut viol) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for op in OP_LABELS {
            let h = self.latency(op, window);
            let counts = [
                self.outcome_count(op, window, Outcome::Ok),
                self.outcome_count(op, window, Outcome::Degraded),
                self.outcome_count(op, window, Outcome::Shed),
                self.outcome_count(op, window, Outcome::HardError),
                self.outcome_count(op, window, Outcome::Transport),
            ];
            let op_total: u64 = counts.iter().sum();
            ops += op_total;
            ok += counts[0];
            degraded += counts[1];
            shed += counts[2];
            hard += counts[3];
            transport += counts[4];
            viol += self.violations(op, window);
            if op_total > 0 {
                per_op.push(OpReport {
                    op: op.to_string(),
                    count: op_total,
                    p50_ms: h.quantile(0.50) / 1e6,
                    p90_ms: h.quantile(0.90) / 1e6,
                    p99_ms: h.quantile(0.99) / 1e6,
                    max_ms: h.max() as f64 / 1e6,
                });
            }
        }
        WindowReport {
            window: window.to_string(),
            ops,
            ok,
            degraded,
            shed,
            hard_errors: hard,
            transport_errors: transport,
            slo_violations: viol,
            error_rate: if ops == 0 { 0.0 } else { (hard + transport) as f64 / ops as f64 },
            per_op,
        }
    }
}

/// Run identity threaded into the report.
pub struct RunMeta {
    /// Scenario name.
    pub scenario: String,
    /// `host:port` driven.
    pub target: String,
    /// The `--seed`.
    pub seed: u64,
    /// Concurrent connections.
    pub connections: usize,
    /// The `--scale` multiplier.
    pub scale: f64,
    /// Vertex count assumed for key generation.
    pub nodes: u32,
    /// Training backend the target reported in its `stats` reply
    /// (`"unknown"` for targets predating the descriptor).
    pub backend: String,
    /// Hex FNV-1a of the full materialized schedule.
    pub schedule_hash: String,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
}

/// The machine-readable run report (`results/bench_load.json`).
#[derive(Serialize)]
pub struct Report {
    /// Scenario name.
    pub scenario: String,
    /// Target address driven.
    pub target: String,
    /// Seed the schedule was generated from.
    pub seed: u64,
    /// Concurrent connections.
    pub connections: usize,
    /// Scale multiplier applied to phase op counts.
    pub scale: f64,
    /// Vertex count used for key generation.
    pub nodes: u32,
    /// Training backend the target runs (from its `stats` descriptor), so
    /// load reports for `float` and `fpga-sim` targets are comparable
    /// side by side.
    pub backend: String,
    /// Determinism witness: identical for identical `(scenario, nodes,
    /// connections, seed, scale)`.
    pub schedule_hash: String,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Ops across all windows.
    pub total_ops: u64,
    /// Steady-window `(ok + degraded + shed) / ops` — the gate's
    /// availability floor (shed is correct backpressure, not failure).
    pub steady_ok_rate: f64,
    /// Worst steady-window topk p99 (exact or ann), ms — the gate's
    /// banded latency headline.
    pub steady_topk_p99_ms: f64,
    /// Verdict: steady p99s under target and error rate within budget.
    pub slo_pass: bool,
    /// Per-window breakdowns (steady first, then fault).
    pub windows: Vec<WindowReport>,
    /// The SLO in force and how the steady window measured against it.
    pub slo: SloReport,
    /// Exemplar trace ids per SLO-violating `(op, window)` bucket — feed
    /// one to `seqge obs trace` to pull the full span tree.
    pub exemplars: Vec<ExemplarReport>,
}

/// Exemplar trace ids for one SLO-violating `(op, window)` bucket.
#[derive(Serialize)]
pub struct ExemplarReport {
    /// Op label.
    pub op: String,
    /// Accounting window.
    pub window: String,
    /// Up to [`MAX_EXEMPLARS`] 16-hex-digit trace ids.
    pub trace_ids: Vec<String>,
}

/// One accounting window's totals.
#[derive(Serialize)]
pub struct WindowReport {
    /// `"steady"` or `"fault"`.
    pub window: String,
    /// Ops attempted in this window.
    pub ops: u64,
    /// Full-fidelity successes.
    pub ok: u64,
    /// Degraded (partial / replica / explicit degraded refusal).
    pub degraded: u64,
    /// Load-shed replies.
    pub shed: u64,
    /// Hard protocol errors.
    pub hard_errors: u64,
    /// Transport failures.
    pub transport_errors: u64,
    /// Per-sample SLO violations.
    pub slo_violations: u64,
    /// `(hard + transport) / ops`.
    pub error_rate: f64,
    /// Per-op latency breakdown (answered ops only).
    pub per_op: Vec<OpReport>,
}

/// One op's latency profile within a window.
#[derive(Serialize)]
pub struct OpReport {
    /// Op label (see [`OP_LABELS`]).
    pub op: String,
    /// Ops attempted.
    pub count: u64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// p90 latency, ms.
    pub p90_ms: f64,
    /// p99 latency, ms.
    pub p99_ms: f64,
    /// Worst observed, ms.
    pub max_ms: f64,
}

/// The SLO section of the report.
#[derive(Serialize)]
pub struct SloReport {
    /// Error-rate ceiling applied to the steady window.
    pub max_error_rate: f64,
    /// Per-op targets vs steady-window measurements.
    pub targets: Vec<SloEntry>,
}

/// One op's SLO verdict.
#[derive(Serialize)]
pub struct SloEntry {
    /// Op label.
    pub op: String,
    /// Target p99, ms.
    pub target_p99_ms: f64,
    /// Measured steady-window p99, ms (0 when the op never ran).
    pub steady_p99_ms: f64,
    /// Whether the measurement met the target.
    pub pass: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_honors_the_code_field_first() {
        assert_eq!(classify(r#"{"ok":true,"dim":8}"#), Outcome::Ok);
        assert_eq!(classify(r#"{"ok":true,"degraded":true,"code":"degraded"}"#), Outcome::Degraded);
        assert_eq!(
            classify(r#"{"ok":true,"source":"replica","code":"degraded"}"#),
            Outcome::Degraded
        );
        assert_eq!(
            classify(r#"{"ok":false,"code":"overloaded","error":"overloaded: backlog"}"#),
            Outcome::Shed
        );
        assert_eq!(
            classify(r#"{"ok":false,"code":"degraded","error":"degraded: no shard"}"#),
            Outcome::Degraded
        );
        assert_eq!(classify(r#"{"ok":false,"error":"u and v must differ"}"#), Outcome::HardError);
        assert_eq!(classify("not json at all"), Outcome::HardError);
        assert_eq!(classify(r#"{"no_ok_field":1}"#), Outcome::HardError);
    }

    #[test]
    fn legacy_prefixes_still_classify_without_a_code() {
        assert_eq!(
            classify(r#"{"ok":false,"error":"overloaded: trainer backlog"}"#),
            Outcome::Shed
        );
        assert_eq!(
            classify(r#"{"ok":false,"error":"degraded: shard 1 unavailable"}"#),
            Outcome::Degraded
        );
    }

    #[test]
    fn real_protocol_builders_classify_as_expected() {
        use seqge_serve::protocol::Response;
        assert_eq!(classify(&Response::ok().field("dim", 4u32).build()), Outcome::Ok);
        assert_eq!(
            classify(&Response::err_code(CODE_OVERLOADED, "overloaded: queue full")),
            Outcome::Shed
        );
        assert_eq!(
            classify(&Response::err_code(CODE_DEGRADED, "degraded: no shard reachable")),
            Outcome::Degraded
        );
        assert_eq!(classify(&Response::err("node 9 out of range")), Outcome::HardError);
    }

    #[test]
    fn report_splits_windows_and_flags_slo_breaches() {
        let acc = Accounting::new(Slo { p99_ms: vec![("topk_exact", 5.0)], max_error_rate: 0.5 });
        // Steady: 3 fast oks; fault: one slow (violating) op and one shed.
        for _ in 0..3 {
            acc.record("topk_exact", "steady", Outcome::Ok, Some(1_000_000), None);
        }
        acc.record("topk_exact", "fault", Outcome::Ok, Some(50_000_000), Some(0xabcd));
        acc.record("topk_exact", "fault", Outcome::Shed, None, None);
        acc.record("add_edge", "fault", Outcome::HardError, None, None);
        let meta = RunMeta {
            scenario: "t".into(),
            target: "t".into(),
            seed: 1,
            connections: 1,
            scale: 1.0,
            nodes: 8,
            backend: "float".into(),
            schedule_hash: "00".into(),
            wall_s: 0.1,
        };
        let r = acc.report(meta);
        assert_eq!(r.total_ops, 6);
        assert_eq!(r.windows[0].window, "steady");
        assert_eq!(r.windows[0].ops, 3);
        assert_eq!(r.windows[0].slo_violations, 0);
        assert_eq!(r.windows[1].ops, 3);
        assert_eq!(r.windows[1].slo_violations, 1, "the 50ms fault-window op breaches 5ms");
        assert_eq!(r.windows[1].shed, 1);
        assert_eq!(r.windows[1].hard_errors, 1);
        assert!(r.slo_pass, "fault-window breaches must not fail the steady verdict");
        assert!((r.steady_ok_rate - 1.0).abs() < 1e-9);
        // The violating sample carried a trace id: it must surface as an
        // exemplar for its (op, window) bucket.
        assert_eq!(r.exemplars.len(), 1);
        assert_eq!(r.exemplars[0].op, "topk_exact");
        assert_eq!(r.exemplars[0].window, "fault");
        assert_eq!(r.exemplars[0].trace_ids, vec!["000000000000abcd".to_string()]);
        // Serializes into the schema the gate scrapes.
        let json = serde_json::to_string_pretty(&r).unwrap();
        for key in
            ["steady_ok_rate", "steady_topk_p99_ms", "schedule_hash", "slo_pass", "exemplars"]
        {
            assert!(json.contains(key), "report missing {key}");
        }
        assert!(json.contains("000000000000abcd"), "exemplar trace id serialized");
    }

    #[test]
    fn exemplars_cap_at_max_and_skip_non_violations() {
        let acc = Accounting::new(Slo { p99_ms: vec![("topk_exact", 5.0)], max_error_rate: 0.5 });
        for i in 0..(MAX_EXEMPLARS as u64 + 3) {
            acc.record("topk_exact", "steady", Outcome::Ok, Some(50_000_000), Some(i + 1));
        }
        // Fast sample with a trace id: no violation, no exemplar.
        acc.record("topk_exact", "fault", Outcome::Ok, Some(1_000_000), Some(99));
        let meta = RunMeta {
            scenario: "t".into(),
            target: "t".into(),
            seed: 1,
            connections: 1,
            scale: 1.0,
            nodes: 8,
            backend: "float".into(),
            schedule_hash: "00".into(),
            wall_s: 0.1,
        };
        let r = acc.report(meta);
        assert_eq!(r.exemplars.len(), 1, "only the violating bucket collects exemplars");
        assert_eq!(r.exemplars[0].trace_ids.len(), MAX_EXEMPLARS);
    }
}
