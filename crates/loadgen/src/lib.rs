//! `seqge-loadgen` — mixed-traffic load generator for the serve protocol.
//!
//! Production readiness claims ("the serving plane sheds load instead of
//! collapsing", "replica fallback keeps reads available through a shard
//! loss") are only as good as the traffic they were tested under. This
//! crate is the workload side of that argument: a closed- and open-loop
//! driver that speaks the line protocol over N concurrent connections
//! against a single `seqge serve` listener or the cluster router, with an
//! accounting plane that splits every outcome by steady-vs-fault window.
//!
//! The pieces:
//!
//! * [`zipf`] — allocation-free rejection-inversion Zipf sampler: reads
//!   concentrate on hot vertices like real traffic does.
//! * [`workload`] — op mixes over the six workload ops, rendered as
//!   protocol lines with correct write-dedup identities.
//! * [`arrival`] — closed, fixed-rate, Poisson, and on/off bursty arrival
//!   processes, materialized as offsets to dodge coordinated omission.
//! * [`scenario`] — the named scenario matrix (`hot_read`, `edge_churn`,
//!   `deletion_storm`, `drift_replay`) as phased schedules, deterministic
//!   under `--seed` with an FNV-1a schedule hash as the witness.
//! * [`slo`] — per-op p99 targets and the error budget.
//! * [`report`] — reply classification (`ok` / `degraded` / `shed` /
//!   `hard_error` / `transport`) via the protocol `code` field, per-op
//!   log-histogram latency, and the `results/bench_load.json` schema.
//! * [`driver`] — the connection fleet: phase barriers, reconnects,
//!   flush points, aggregation.
//!
//! Everything upstream of the socket is deterministic: two runs with the
//! same `(scenario, nodes, connections, seed, scale)` issue bit-identical
//! request streams (witnessed by `schedule_hash`); only latencies and
//! server-side outcomes differ.

pub mod arrival;
pub mod driver;
pub mod report;
pub mod scenario;
pub mod slo;
pub mod workload;
pub mod zipf;

pub use arrival::Arrival;
pub use driver::{materialize, probe_backend, probe_nodes, run, LoadOpts};
pub use report::{classify, Accounting, Outcome, Report};
pub use scenario::{builtin, names, schedule, schedule_hash, ConnSchedule, Scenario};
pub use slo::Slo;
pub use workload::{OpMix, WireOp, WorkloadGen, OP_LABELS};
pub use zipf::Zipf;
