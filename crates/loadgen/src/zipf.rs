//! Allocation-free Zipf(s) rank sampling by rejection inversion.
//!
//! Production read traffic is not uniform: a handful of celebrity vertices
//! absorb most of the queries. The sampler draws ranks `0..n` with
//! `P(rank = k) ∝ 1/(k+1)^s` using Hörmann & Derflinger's
//! rejection-inversion method (the same algorithm behind Apache Commons'
//! `RejectionInversionZipfSampler`): O(1) state computed once in `new`,
//! no per-draw allocation, an expected ~1.1 RNG draws per sample at any
//! skew, and bit-deterministic output for a seeded RNG — the property the
//! whole schedule-hash contract rests on.
//!
//! Rank 0 is the hottest key. Callers map ranks to vertex ids directly:
//! consecutive ids spread across modulo-partitioned shards, so a hot-rank
//! prefix also exercises every shard.

use rand::Rng;

/// A Zipf(s) sampler over ranks `0..n` (rank 0 most probable).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    exponent: f64,
    /// `H(1.5) - 1`: lower bound of the inversion domain.
    h_x1: f64,
    /// `H(n + 0.5)`: upper bound of the inversion domain.
    h_n: f64,
    /// Acceptance shortcut threshold `s` from the paper.
    s: f64,
}

impl Zipf {
    /// Builds a sampler over `n ≥ 1` ranks with skew `exponent ≥ 0`
    /// (0 = uniform, 1 = classic Zipf, >1 = sharper head).
    pub fn new(n: u64, exponent: f64) -> Zipf {
        assert!(n >= 1, "need at least one rank");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "skew exponent must be finite and non-negative"
        );
        let h_x1 = h_integral(1.5, exponent) - 1.0;
        let h_n = h_integral(n as f64 + 0.5, exponent);
        let s = 2.0 - h_integral_inverse(h_integral(2.5, exponent) - h(2.0, exponent), exponent);
        Zipf { n, exponent, h_x1, h_n, s }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            // u uniform in (h_x1, h_n]: gen::<f64>() ∈ [0,1) walks from
            // h_n (inclusive) toward h_x1 (exclusive).
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = h_integral_inverse(u, self.exponent);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= h_integral(k + 0.5, self.exponent) - h(k, self.exponent) {
                return k as u64 - 1;
            }
        }
    }
}

/// The density `h(x) = x^(-e)`.
fn h(x: f64, e: f64) -> f64 {
    x.powf(-e)
}

/// `H(x) = ∫₁ˣ t^(-e) dt = (x^(1-e) - 1)/(1-e)`, continued as `ln x` at
/// `e = 1`.
fn h_integral(x: f64, e: f64) -> f64 {
    let log_x = x.ln();
    helper2((1.0 - e) * log_x) * log_x
}

/// `H⁻¹(y)`.
fn h_integral_inverse(y: f64, e: f64) -> f64 {
    let mut t = y * (1.0 - e);
    if t < -1.0 {
        // Numerical round-off can push t slightly past the domain edge.
        t = -1.0;
    }
    (helper1(t) * y).exp()
}

/// `(exp(x) - 1)/x`, stable near 0.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))
    }
}

/// `ln(1 + x)/x`, stable near 0.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(n: u64, s: f64, draws: usize, seed: u64) -> Vec<usize> {
        let z = Zipf::new(n, s);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn stays_in_range_and_is_deterministic() {
        let z = Zipf::new(100, 1.1);
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = z.sample(&mut a);
            assert!(x < 100);
            assert_eq!(x, z.sample(&mut b), "same seed, same stream");
        }
    }

    #[test]
    fn head_dominates_at_high_skew() {
        let counts = frequencies(1_000, 1.2, 50_000, 3);
        // Rank 0 beats rank 10 beats rank 100 by wide margins.
        assert!(counts[0] > 2 * counts[10], "{} vs {}", counts[0], counts[10]);
        assert!(counts[10] > 2 * counts[100], "{} vs {}", counts[10], counts[100]);
    }

    #[test]
    fn zero_skew_is_uniform() {
        let counts = frequencies(50, 0.0, 100_000, 5);
        let expect = 100_000 / 50;
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect as u64 / 2,
                "rank {rank}: {c} far from uniform {expect}"
            );
        }
    }

    #[test]
    fn classic_zipf_ratio_roughly_two() {
        // At s=1, P(0)/P(1) = 2.
        let counts = frequencies(10_000, 1.0, 200_000, 11);
        let ratio = counts[0] as f64 / counts[1].max(1) as f64;
        assert!((1.6..=2.5).contains(&ratio), "P(0)/P(1) = {ratio}, expected ≈ 2");
    }

    #[test]
    fn single_rank_never_loops() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
