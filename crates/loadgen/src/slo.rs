//! SLO definitions: per-op tail-latency targets and an error-rate budget.
//!
//! Two kinds of accounting hang off an [`Slo`]:
//!
//! * **per-sample violations** — every reply slower than its op's target
//!   increments `seqge_loadgen_slo_violations_total{op,window}`; the
//!   fault/steady split in the report quantifies chaos degradation as
//!   "violations during the fault window vs steady state".
//! * **pass/fail verdict** — the run passes if, in the *steady* window
//!   only, every op's measured p99 is under its target and the error rate
//!   (hard + transport errors over total ops) is within budget. Fault
//!   windows are reported but never fail the run by themselves.

/// Per-op p99 targets (milliseconds) and an error-rate ceiling.
#[derive(Debug, Clone)]
pub struct Slo {
    /// `(op label, p99 target in ms)` — ops not listed are unconstrained.
    pub p99_ms: Vec<(&'static str, f64)>,
    /// Maximum tolerated `(hard + transport errors) / ops` in the steady
    /// window.
    pub max_error_rate: f64,
}

impl Default for Slo {
    /// Generous defaults sized for CI machines, not production hardware:
    /// the point of the default band is to catch order-of-magnitude
    /// regressions, not to benchmark. They must also survive deliberate
    /// chaos — smoke runs inject ~30ms connection stalls, and at smoke
    /// scale an op may have only a handful of steady samples (p99 = max),
    /// so one stalled reply must not breach a target on its own.
    fn default() -> Self {
        Slo {
            p99_ms: vec![
                ("get_embedding", 50.0),
                ("topk_exact", 100.0),
                ("topk_ann", 50.0),
                ("score_link", 50.0),
                ("add_edge", 100.0),
                ("remove_edge", 100.0),
            ],
            max_error_rate: 0.02,
        }
    }
}

impl Slo {
    /// The p99 target for `op`, if one is defined.
    pub fn threshold_ms(&self, op: &str) -> Option<f64> {
        self.p99_ms.iter().find(|(name, _)| *name == op).map(|&(_, ms)| ms)
    }

    /// Whether a single sample of `op` at `latency_ms` violates its target.
    pub fn violates(&self, op: &str, latency_ms: f64) -> bool {
        self.threshold_ms(op).is_some_and(|t| latency_ms > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_covers_every_workload_op() {
        let slo = Slo::default();
        for op in crate::workload::OP_LABELS {
            assert!(slo.threshold_ms(op).is_some(), "{op} has no SLO target");
        }
        assert!(slo.threshold_ms("ping").is_none());
    }

    #[test]
    fn violation_is_a_strict_threshold() {
        let slo = Slo { p99_ms: vec![("topk_exact", 10.0)], max_error_rate: 0.0 };
        assert!(!slo.violates("topk_exact", 10.0));
        assert!(slo.violates("topk_exact", 10.01));
        assert!(!slo.violates("unlisted_op", 1e9));
    }
}
