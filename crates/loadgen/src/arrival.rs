//! Arrival processes: when each request of a phase is due.
//!
//! Open-loop processes emit a deterministic schedule of offsets from the
//! phase start; the driver sleeps until each offset and measures latency
//! from the *scheduled* start, so a server that falls behind is charged
//! its queueing delay instead of being let off the hook (the coordinated-
//! omission trap). The closed loop is the classic back-to-back prober:
//! offset 0 for every op, latency measured from send.

use rand::Rng;

/// How a connection paces its requests within one phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Closed loop: next request leaves when the previous reply lands.
    Closed,
    /// Open loop at a fixed per-connection rate (requests/second):
    /// request `i` is due at `i/rate`.
    Fixed {
        /// Requests per second per connection.
        rate: f64,
    },
    /// Open loop, Poisson process: exponential inter-arrival gaps with
    /// mean `1/rate`.
    Poisson {
        /// Mean requests per second per connection.
        rate: f64,
    },
    /// On/off bursty traffic: Poisson at `rate` during `on_ms` windows,
    /// silent for `off_ms` between them. Arrivals falling into an off
    /// window are pushed to the start of the next on window — the front
    /// edge of each burst carries the pile-up, which is the point.
    OnOff {
        /// Mean requests per second while the source is on.
        rate: f64,
        /// Burst length in milliseconds.
        on_ms: u64,
        /// Silence between bursts in milliseconds.
        off_ms: u64,
    },
}

impl Arrival {
    /// Whether the driver paces sends by wall clock (vs reply-driven).
    pub fn is_open_loop(&self) -> bool {
        !matches!(self, Arrival::Closed)
    }

    /// The deterministic offsets (nanoseconds from phase start) of
    /// `count` requests. Non-decreasing; all zeros for the closed loop.
    pub fn offsets<R: Rng>(&self, count: usize, rng: &mut R) -> Vec<u64> {
        match *self {
            Arrival::Closed => vec![0; count],
            Arrival::Fixed { rate } => {
                assert!(rate > 0.0, "fixed rate must be positive");
                (0..count).map(|i| (i as f64 / rate * 1e9) as u64).collect()
            }
            Arrival::Poisson { rate } => {
                assert!(rate > 0.0, "poisson rate must be positive");
                let mut t = 0.0f64;
                (0..count)
                    .map(|_| {
                        t += exp_gap_ns(rate, rng);
                        t as u64
                    })
                    .collect()
            }
            Arrival::OnOff { rate, on_ms, off_ms } => {
                assert!(rate > 0.0, "on/off rate must be positive");
                assert!(on_ms > 0, "on window must be non-empty");
                let on_ns = on_ms as f64 * 1e6;
                let period_ns = (on_ms + off_ms) as f64 * 1e6;
                let mut t = 0.0f64;
                (0..count)
                    .map(|_| {
                        t += exp_gap_ns(rate, rng);
                        let phase = t % period_ns;
                        if phase >= on_ns {
                            // Landed in silence: jump to the next burst.
                            t = (t / period_ns).floor() * period_ns + period_ns;
                        }
                        t as u64
                    })
                    .collect()
            }
        }
    }
}

/// One exponential inter-arrival gap in nanoseconds.
fn exp_gap_ns<R: Rng>(rate: f64, rng: &mut R) -> f64 {
    // 1 - gen ∈ (0, 1] keeps ln away from zero.
    -(1.0 - rng.gen::<f64>()).ln() / rate * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn closed_loop_is_all_zeros() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Arrival::Closed.offsets(4, &mut rng), vec![0, 0, 0, 0]);
        assert!(!Arrival::Closed.is_open_loop());
    }

    #[test]
    fn fixed_rate_is_an_even_grid() {
        let mut rng = StdRng::seed_from_u64(1);
        let offs = Arrival::Fixed { rate: 1000.0 }.offsets(5, &mut rng);
        assert_eq!(offs, vec![0, 1_000_000, 2_000_000, 3_000_000, 4_000_000]);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut rng = StdRng::seed_from_u64(42);
        let offs = Arrival::Poisson { rate: 10_000.0 }.offsets(20_000, &mut rng);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        // Mean inter-arrival should be ~100µs = 1e5 ns, within 5%.
        let mean = *offs.last().unwrap() as f64 / offs.len() as f64;
        assert!((0.95e5..=1.05e5).contains(&mean), "mean gap {mean} ns");
    }

    #[test]
    fn on_off_never_schedules_into_silence() {
        let mut rng = StdRng::seed_from_u64(9);
        let (on_ms, off_ms) = (10u64, 30u64);
        let offs = Arrival::OnOff { rate: 5_000.0, on_ms, off_ms }.offsets(2_000, &mut rng);
        assert!(offs.windows(2).all(|w| w[0] <= w[1]), "non-decreasing");
        let period = (on_ms + off_ms) * 1_000_000;
        let on = on_ms * 1_000_000;
        for &t in &offs {
            assert!(t % period <= on, "offset {t} lands {} into the period", t % period);
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        for arrival in
            [Arrival::Poisson { rate: 777.0 }, Arrival::OnOff { rate: 777.0, on_ms: 5, off_ms: 7 }]
        {
            let a = arrival.offsets(500, &mut StdRng::seed_from_u64(123));
            let b = arrival.offsets(500, &mut StdRng::seed_from_u64(123));
            assert_eq!(a, b);
            let c = arrival.offsets(500, &mut StdRng::seed_from_u64(124));
            assert_ne!(a, c, "different seed must move the schedule");
        }
    }
}
