//! The scenario matrix: named, phased workload schedules.
//!
//! A scenario is a sequence of [`Phase`]s. Each phase names an accounting
//! [`Window`] (`steady` or `fault` — the split the chaos report is built
//! on), an op source, an arrival process, and a per-connection op count.
//! [`schedule`] expands a scenario into fully materialized per-connection
//! schedules *before* any traffic flows, seeded so the same
//! `(scenario, nodes, connections, seed)` tuple is bit-identical across
//! runs, hosts, and thread interleavings — [`schedule_hash`] is the proof
//! the CI smoke asserts on.
//!
//! Built-ins (`--list`):
//!
//! * `hot_read` — Zipf-skewed read storm on hot vertices.
//! * `edge_churn` — bursty add/remove churn against a read background.
//! * `deletion_storm` — grow, then mass-retract.
//! * `drift_replay` — temporal community drift: streamed-SBM edges whose
//!   block structure rotates phase over phase, reads interleaved.

use crate::arrival::Arrival;
use crate::workload::{OpMix, WireOp, WorkloadGen};
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqge_bench::{SbmStream, SbmStreamParams};

/// Accounting window of a phase: SLO violations are reported separately
/// per window, so chaos degradation is quantified against the steady
/// baseline instead of polluting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Window {
    /// Baseline traffic; SLOs are enforced here.
    Steady,
    /// The storm/chaos window; violations are counted but only bounded,
    /// not forbidden.
    Fault,
}

impl Window {
    /// The report/metric label value.
    pub fn as_str(self) -> &'static str {
        match self {
            Window::Steady => "steady",
            Window::Fault => "fault",
        }
    }
}

/// Where a phase's ops come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OpSource {
    /// Draw from an [`OpMix`] with Zipf key skew.
    Mix {
        /// Op weights.
        mix: OpMix,
        /// Zipf exponent for key choice (0 = uniform).
        skew: f64,
    },
    /// Replay a streamed-SBM edge sequence whose community membership is
    /// rotated by `rotation_num/rotation_den · nodes` vertex ids — the
    /// temporal-drift emulation: the same block structure, progressively
    /// relabeled, so edges increasingly contradict what the model learned
    /// in earlier phases. Every `read_every`-th op is a `topk` probe on
    /// the last touched vertex instead of a write.
    DriftReplay {
        /// Rotation numerator (of `nodes`).
        rotation_num: u32,
        /// Rotation denominator.
        rotation_den: u32,
        /// Interleave one read per this many ops.
        read_every: usize,
    },
}

/// One phase of a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Display name (also the progress log label).
    pub name: &'static str,
    /// Accounting window this phase belongs to.
    pub window: Window,
    /// Op source.
    pub source: OpSource,
    /// Arrival pacing.
    pub arrival: Arrival,
    /// Ops per connection at scale 1.0.
    pub ops_per_conn: usize,
    /// Issue a cluster-wide `flush` barrier when the phase ends (conn 0
    /// only), so later read phases observe this phase's writes.
    pub flush_after: bool,
}

/// A named, phased workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The `--scenario` name.
    pub name: &'static str,
    /// One-line description (`--list`).
    pub description: &'static str,
    /// The phases, in order.
    pub phases: Vec<Phase>,
}

/// `(name, description)` of every built-in scenario.
pub fn names() -> Vec<(&'static str, &'static str)> {
    ["hot_read", "edge_churn", "deletion_storm", "drift_replay"]
        .iter()
        .map(|&n| {
            let s = builtin(n, 1.0).expect("builtin exists");
            (s.name, s.description)
        })
        .collect()
}

/// Builds a built-in scenario by name; `scale` multiplies every phase's
/// op count (floor 1), so the same shape runs as a 2-second smoke or a
/// minutes-long soak.
pub fn builtin(name: &str, scale: f64) -> Option<Scenario> {
    assert!(scale > 0.0, "scale must be positive");
    let n = |base: usize| ((base as f64 * scale) as usize).max(1);
    let mixed_background = OpSource::Mix {
        mix: OpMix {
            add_edge: 10,
            remove_edge: 5,
            get_embedding: 40,
            topk_exact: 15,
            topk_ann: 20,
            score_link: 10,
        },
        skew: 0.8,
    };
    let scenario = match name {
        "hot_read" => Scenario {
            name: "hot_read",
            description:
                "Zipf-skewed read storm hammering hot vertices (topk exact+ann, embeddings)",
            phases: vec![
                Phase {
                    name: "warmup",
                    window: Window::Steady,
                    source: mixed_background,
                    arrival: Arrival::Poisson { rate: 200.0 },
                    ops_per_conn: n(200),
                    flush_after: true,
                },
                Phase {
                    name: "hot_storm",
                    window: Window::Fault,
                    source: OpSource::Mix { mix: OpMix::reads(50, 15, 25, 10), skew: 1.2 },
                    arrival: Arrival::Poisson { rate: 500.0 },
                    ops_per_conn: n(600),
                    flush_after: false,
                },
                Phase {
                    name: "cooldown",
                    window: Window::Steady,
                    source: mixed_background,
                    arrival: Arrival::Fixed { rate: 100.0 },
                    ops_per_conn: n(100),
                    flush_after: false,
                },
            ],
        },
        "edge_churn" => Scenario {
            name: "edge_churn",
            description: "Bursty add/remove churn (on/off arrivals) against a read background",
            phases: vec![
                Phase {
                    name: "seed_edges",
                    window: Window::Steady,
                    source: OpSource::Mix { mix: OpMix::writes(1, 0), skew: 0.6 },
                    arrival: Arrival::Closed,
                    ops_per_conn: n(250),
                    flush_after: true,
                },
                Phase {
                    name: "churn_burst",
                    window: Window::Fault,
                    source: OpSource::Mix {
                        mix: OpMix {
                            add_edge: 35,
                            remove_edge: 35,
                            get_embedding: 10,
                            topk_exact: 5,
                            topk_ann: 10,
                            score_link: 5,
                        },
                        skew: 0.9,
                    },
                    arrival: Arrival::OnOff { rate: 800.0, on_ms: 200, off_ms: 100 },
                    ops_per_conn: n(600),
                    flush_after: true,
                },
                Phase {
                    name: "settle",
                    window: Window::Steady,
                    source: OpSource::Mix { mix: OpMix::reads(40, 20, 30, 10), skew: 0.9 },
                    arrival: Arrival::Poisson { rate: 200.0 },
                    ops_per_conn: n(150),
                    flush_after: false,
                },
            ],
        },
        "deletion_storm" => Scenario {
            name: "deletion_storm",
            description: "Grow the graph, then mass-retract edges while reads continue",
            phases: vec![
                Phase {
                    name: "grow",
                    window: Window::Steady,
                    source: OpSource::Mix { mix: OpMix::writes(1, 0), skew: 0.7 },
                    arrival: Arrival::Closed,
                    ops_per_conn: n(400),
                    flush_after: true,
                },
                Phase {
                    name: "storm",
                    window: Window::Fault,
                    source: OpSource::Mix {
                        mix: OpMix {
                            add_edge: 10,
                            remove_edge: 70,
                            get_embedding: 5,
                            topk_exact: 5,
                            topk_ann: 5,
                            score_link: 5,
                        },
                        skew: 1.1,
                    },
                    arrival: Arrival::Poisson { rate: 600.0 },
                    ops_per_conn: n(500),
                    flush_after: true,
                },
                Phase {
                    name: "recovery",
                    window: Window::Steady,
                    source: OpSource::Mix { mix: OpMix::reads(50, 20, 20, 10), skew: 0.9 },
                    arrival: Arrival::Fixed { rate: 200.0 },
                    ops_per_conn: n(150),
                    flush_after: false,
                },
            ],
        },
        "drift_replay" => Scenario {
            name: "drift_replay",
            description:
                "Temporal community drift: streamed-SBM edges, block labels rotating each epoch",
            phases: vec![
                Phase {
                    name: "epoch_0",
                    window: Window::Steady,
                    source: OpSource::DriftReplay {
                        rotation_num: 0,
                        rotation_den: 4,
                        read_every: 4,
                    },
                    arrival: Arrival::Closed,
                    ops_per_conn: n(300),
                    flush_after: true,
                },
                Phase {
                    name: "epoch_1",
                    window: Window::Fault,
                    source: OpSource::DriftReplay {
                        rotation_num: 1,
                        rotation_den: 4,
                        read_every: 4,
                    },
                    arrival: Arrival::Poisson { rate: 400.0 },
                    ops_per_conn: n(300),
                    flush_after: true,
                },
                Phase {
                    name: "epoch_2",
                    window: Window::Fault,
                    source: OpSource::DriftReplay {
                        rotation_num: 2,
                        rotation_den: 4,
                        read_every: 4,
                    },
                    arrival: Arrival::Poisson { rate: 400.0 },
                    ops_per_conn: n(300),
                    flush_after: true,
                },
                Phase {
                    name: "verify_reads",
                    window: Window::Steady,
                    source: OpSource::Mix { mix: OpMix::reads(30, 25, 35, 10), skew: 0.9 },
                    arrival: Arrival::Poisson { rate: 200.0 },
                    ops_per_conn: n(150),
                    flush_after: false,
                },
            ],
        },
        _ => return None,
    };
    Some(scenario)
}

/// One scheduled request: due at `offset_ns` from its phase start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Nanoseconds from phase start (0 in closed loops).
    pub offset_ns: u64,
    /// The request.
    pub op: WireOp,
}

/// One connection's fully materialized run: `phases[p]` is that phase's
/// op sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnSchedule {
    /// Per-phase scheduled ops.
    pub phases: Vec<Vec<ScheduledOp>>,
}

/// Mixes `(seed, phase, conn, stream)` into one RNG seed. SplitMix-style
/// multiplies keep distinct coordinates from colliding under xor.
fn lane_seed(seed: u64, phase: usize, conn: usize, stream: u64) -> u64 {
    seed ^ (phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (conn as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
        ^ stream.wrapping_mul(0x1656_67B1_9E37_79F9)
}

/// Expands `scenario` into the per-connection schedule for connection
/// `conn` of `connections`, over a server with `nodes` vertices, with
/// `topk` asking for `k` results. Deterministic in all arguments.
pub fn schedule(
    scenario: &Scenario,
    nodes: u32,
    k: usize,
    conn: usize,
    connections: usize,
    seed: u64,
) -> ConnSchedule {
    assert!(conn < connections);
    assert!(nodes >= 4, "loadgen needs a server with at least 4 nodes");
    let mut phases = Vec::with_capacity(scenario.phases.len());
    for (p, phase) in scenario.phases.iter().enumerate() {
        let mut op_rng = StdRng::seed_from_u64(lane_seed(seed, p, conn, 1));
        let mut arr_rng = StdRng::seed_from_u64(lane_seed(seed, p, conn, 2));
        let offsets = phase.arrival.offsets(phase.ops_per_conn, &mut arr_rng);
        let ops: Vec<WireOp> = match phase.source {
            OpSource::Mix { mix, skew } => {
                let mut gen = WorkloadGen::new(mix, nodes, skew, k);
                (0..phase.ops_per_conn).map(|_| gen.next_op(&mut op_rng)).collect()
            }
            OpSource::DriftReplay { rotation_num, rotation_den, read_every } => drift_ops(
                nodes,
                k,
                phase.ops_per_conn,
                rotation_num,
                rotation_den,
                read_every,
                lane_seed(seed, p, conn, 3),
            ),
        };
        phases.push(
            offsets
                .into_iter()
                .zip(ops)
                .map(|(offset_ns, op)| ScheduledOp { offset_ns, op })
                .collect(),
        );
    }
    ConnSchedule { phases }
}

/// The drift replay op stream: SBM edges with vertex ids rotated by
/// `nodes · num/den`, one `topk` read interleaved every `read_every` ops
/// on the most recently written vertex.
fn drift_ops(
    nodes: u32,
    k: usize,
    count: usize,
    rotation_num: u32,
    rotation_den: u32,
    read_every: usize,
    seed: u64,
) -> Vec<WireOp> {
    assert!(rotation_den > 0);
    let rot = (nodes as u64 * rotation_num as u64 / rotation_den as u64) as u32;
    let mut params = SbmStreamParams::sized(nodes as usize, seed);
    // The stream length only bounds the iterator; ask for exactly what the
    // phase consumes (writes = count minus the interleaved reads).
    params.edges = count;
    let mut stream = SbmStream::new(params);
    let mut out = Vec::with_capacity(count);
    let mut last = 0u32;
    for i in 0..count {
        if read_every > 0 && i % read_every.max(1) == read_every.max(1) - 1 {
            out.push(WireOp::TopK(last, k, i % 2 == 0));
            continue;
        }
        let Some((u, v)) = stream.next() else {
            // Stream exhausted (can't happen with edges = count, but keep
            // the fallback total): re-read the last vertex.
            out.push(WireOp::GetEmbedding(last));
            continue;
        };
        let (u, v) = (
            ((u as u64 + rot as u64) % nodes as u64) as u32,
            ((v as u64 + rot as u64) % nodes as u64) as u32,
        );
        last = u;
        out.push(WireOp::AddEdge(u, v));
    }
    out
}

/// FNV-1a over every scheduled op of every connection: the run's
/// bit-determinism witness (dedup client ids and wall-clock jitter are
/// excluded by construction).
pub fn schedule_hash(schedules: &[ConnSchedule]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (c, sched) in schedules.iter().enumerate() {
        for (p, ops) in sched.phases.iter().enumerate() {
            for s in ops {
                eat(&(c as u64).to_le_bytes());
                eat(&(p as u64).to_le_bytes());
                eat(&s.offset_ns.to_le_bytes());
                eat(s.op.hash_repr().as_bytes());
            }
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_builds_and_lists() {
        for (name, desc) in names() {
            assert!(!desc.is_empty());
            let s = builtin(name, 1.0).unwrap();
            assert!(!s.phases.is_empty(), "{name} has phases");
            assert!(
                s.phases.iter().any(|p| p.window == Window::Fault),
                "{name} needs a fault window for the chaos split"
            );
            assert!(
                s.phases.iter().any(|p| p.window == Window::Steady),
                "{name} needs a steady window for the SLO baseline"
            );
        }
        assert!(builtin("no_such_scenario", 1.0).is_none());
    }

    #[test]
    fn scale_shrinks_op_counts_with_a_floor() {
        let full = builtin("hot_read", 1.0).unwrap();
        let tiny = builtin("hot_read", 0.001).unwrap();
        for (f, t) in full.phases.iter().zip(&tiny.phases) {
            assert!(t.ops_per_conn >= 1);
            assert!(t.ops_per_conn < f.ops_per_conn);
        }
    }

    #[test]
    fn schedules_are_bit_deterministic_under_seed() {
        let s = builtin("edge_churn", 0.05).unwrap();
        let make = |seed| {
            let scheds: Vec<ConnSchedule> =
                (0..3).map(|c| schedule(&s, 120, 10, c, 3, seed)).collect();
            (schedule_hash(&scheds), scheds)
        };
        let (h1, s1) = make(42);
        let (h2, s2) = make(42);
        assert_eq!(h1, h2);
        assert_eq!(s1, s2, "same seed ⇒ identical schedules, not just identical hashes");
        let (h3, _) = make(43);
        assert_ne!(h1, h3, "seed must move the schedule");
    }

    #[test]
    fn connections_get_distinct_streams() {
        let s = builtin("hot_read", 0.05).unwrap();
        let a = schedule(&s, 120, 10, 0, 2, 7);
        let b = schedule(&s, 120, 10, 1, 2, 7);
        assert_ne!(a, b, "per-connection lanes must differ");
    }

    #[test]
    fn drift_replay_rotates_and_interleaves_reads() {
        let ops = drift_ops(100, 10, 200, 1, 4, 4, 99);
        assert_eq!(ops.len(), 200);
        let reads = ops.iter().filter(|o| matches!(o, WireOp::TopK(..))).count();
        assert_eq!(reads, 50, "every 4th op is a read");
        for op in &ops {
            if let WireOp::AddEdge(u, v) = op {
                assert!(*u < 100 && *v < 100);
                assert_ne!(u, v);
            }
        }
        // Rotation relabels the writes: same seed, different rotation ⇒
        // different edges.
        let rotated = drift_ops(100, 10, 200, 2, 4, 4, 99);
        assert_ne!(ops, rotated);
    }
}
