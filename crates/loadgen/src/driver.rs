//! The load driver: N connection threads replaying materialized schedules
//! against one target, with phase barriers and end-of-run aggregation.
//!
//! Execution discipline:
//!
//! * Every connection thread hits **two barriers per phase** — one after
//!   its op loop, one after the flush point — unconditionally, even when
//!   its socket died. Fault windows therefore align across connections,
//!   and a half-dead run still produces an honest report instead of a
//!   deadlock.
//! * Open-loop latency is measured from the *scheduled* send time, so a
//!   server that falls behind is charged its queueing delay (no
//!   coordinated omission). Closed-loop latency is measured from the
//!   actual send.
//! * Transport failures are recorded, then the connection re-dials with a
//!   short backoff; after [`MAX_CONSECUTIVE_FAILURES`] the rest of the
//!   phase is charged as transport errors — the schedule's op count is
//!   always fully accounted, one outcome per scheduled op.

use crate::report::{classify, Accounting, Outcome, Report, RunMeta};
use crate::scenario::{schedule, schedule_hash, ConnSchedule, Scenario};
use crate::slo::Slo;
use seqge_serve::{Client, ClientConfig};
use serde_json::Value;
use std::io;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Consecutive transport failures before a connection gives up on the
/// remainder of the current phase.
const MAX_CONSECUTIVE_FAILURES: u32 = 20;

/// Driver knobs (the `seqge loadgen` flags).
#[derive(Debug, Clone)]
pub struct LoadOpts {
    /// `host:port` of a `seqge serve` listener or a cluster router.
    pub target: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Schedule seed: same seed, same schedule, bit for bit.
    pub seed: u64,
    /// Multiplier on every phase's op count.
    pub scale: f64,
    /// Vertex count for key generation; `None` probes the server's
    /// `stats` op.
    pub nodes: Option<u32>,
    /// `k` for `topk` requests.
    pub k: usize,
    /// Per-call read deadline.
    pub timeout: Duration,
}

impl Default for LoadOpts {
    fn default() -> Self {
        LoadOpts {
            target: "127.0.0.1:7878".to_string(),
            connections: 4,
            seed: 42,
            scale: 1.0,
            nodes: None,
            k: 10,
            timeout: Duration::from_secs(10),
        }
    }
}

/// Materializes every connection's schedule and the run's determinism
/// witness. Exposed for `--dry-run`.
pub fn materialize(
    scenario: &Scenario,
    nodes: u32,
    k: usize,
    connections: usize,
    seed: u64,
) -> (Vec<ConnSchedule>, String) {
    let schedules: Vec<ConnSchedule> =
        (0..connections).map(|c| schedule(scenario, nodes, k, c, connections, seed)).collect();
    let hash = format!("{:016x}", schedule_hash(&schedules));
    (schedules, hash)
}

/// Asks the target's `stats` op how many vertices it serves.
pub fn probe_nodes(target: &str, timeout: Duration) -> io::Result<u32> {
    let cfg = ClientConfig { timeout, ..ClientConfig::default() };
    let mut client = Client::connect_with(target, cfg)?;
    let stats = client.stats()?;
    stats.get("nodes").and_then(Value::as_u64).map(|n| n as u32).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, "stats reply carries no node count")
    })
}

/// Asks the target's `stats` op which training backend it runs, reduced
/// to the backend name (`"float"`, `"fpga-sim"`); `"unknown"` when the
/// target predates the descriptor or cannot be reached.
pub fn probe_backend(target: &str, timeout: Duration) -> String {
    let cfg = ClientConfig { timeout, ..ClientConfig::default() };
    let backend = Client::connect_with(target, cfg)
        .and_then(|mut client| client.stats())
        .ok()
        .and_then(|stats| match stats.get("backend") {
            Some(Value::Str(s)) => Some(s.clone()),
            Some(v) => v.get("kind").and_then(Value::as_str).map(str::to_string),
            None => None,
        });
    backend.unwrap_or_else(|| "unknown".to_string())
}

/// Runs `scenario` against `opts.target` and returns the aggregated
/// report. Fails only on setup errors (unreachable target at start);
/// mid-run transport trouble is accounted, not fatal.
pub fn run(scenario: &Scenario, opts: &LoadOpts) -> io::Result<Report> {
    let nodes = match opts.nodes {
        Some(n) => n,
        None => probe_nodes(&opts.target, opts.timeout)?,
    };
    if nodes < 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("target serves {nodes} nodes; loadgen needs at least 4"),
        ));
    }
    let (schedules, hash) = materialize(scenario, nodes, opts.k, opts.connections, opts.seed);
    let acc = Accounting::new(Slo::default());
    let barrier = Barrier::new(opts.connections);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (c, sched) in schedules.iter().enumerate() {
            let acc = &acc;
            let barrier = &barrier;
            let opts = &*opts;
            scope.spawn(move || drive_connection(c, sched, scenario, opts, acc, barrier));
        }
    });
    let meta = RunMeta {
        scenario: scenario.name.to_string(),
        target: opts.target.clone(),
        seed: opts.seed,
        connections: opts.connections,
        scale: opts.scale,
        nodes,
        backend: probe_backend(&opts.target, opts.timeout),
        schedule_hash: hash,
        wall_s: started.elapsed().as_secs_f64(),
    };
    Ok(acc.report(meta))
}

/// One connection thread: replay each phase, barrier, maybe flush,
/// barrier again.
fn drive_connection(
    conn: usize,
    sched: &ConnSchedule,
    scenario: &Scenario,
    opts: &LoadOpts,
    acc: &Accounting,
    barrier: &Barrier,
) {
    let client_id = format!("loadgen-c{conn}");
    let cfg = ClientConfig {
        timeout: opts.timeout,
        retries: 0,
        client_id: client_id.clone(),
        ..ClientConfig::default()
    };
    let mut client = Client::connect_with(&opts.target, cfg.clone()).ok();
    // One strictly increasing write sequence per connection for the whole
    // run: the server dedups on (client_id, seq), so a reconnect must not
    // rewind it.
    let mut next_seq = 1u64;
    for (p, phase) in scenario.phases.iter().enumerate() {
        let ops = &sched.phases[p];
        let window = phase.window.as_str();
        let open_loop = phase.arrival.is_open_loop();
        let phase_start = Instant::now();
        let mut consecutive_failures = 0u32;
        for s in ops {
            let op_label = s.op.label();
            if consecutive_failures >= MAX_CONSECUTIVE_FAILURES {
                acc.record(op_label, window, Outcome::Transport, None, None);
                continue;
            }
            let due = Duration::from_nanos(s.offset_ns);
            if open_loop {
                let elapsed = phase_start.elapsed();
                if due > elapsed {
                    std::thread::sleep(due - elapsed);
                }
            }
            let line = s.op.request_line(&client_id, &mut next_seq);
            // Every request carries a fresh always-sampled trace context:
            // when the server has tracing on, each op leaves a span tree
            // keyed by this id, and SLO-violating samples surface it as an
            // exemplar in the report. The server ignores the field when
            // tracing is off; id generation is one atomic add.
            let trace_id = seqge_obs::trace::next_id();
            let ctx = seqge_obs::TraceCtx { trace_id, parent_span: 0, sampled: true };
            let line = seqge_serve::protocol::attach_trace(&line, &ctx);
            // Scheduled start for open loops (charges queueing delay when
            // the driver or server falls behind), actual send otherwise.
            let t0 = if open_loop { phase_start + due } else { Instant::now() };
            let reply = match client.as_mut() {
                Some(cl) => cl.call_raw(&line),
                None => Err(io::Error::new(io::ErrorKind::NotConnected, "no connection")),
            };
            match reply {
                Ok(body) => {
                    consecutive_failures = 0;
                    let latency_ns = t0.elapsed().as_nanos() as u64;
                    acc.record(op_label, window, classify(&body), Some(latency_ns), Some(trace_id));
                }
                Err(_) => {
                    consecutive_failures += 1;
                    acc.record(op_label, window, Outcome::Transport, None, Some(trace_id));
                    std::thread::sleep(Duration::from_millis(20));
                    client = Client::connect_with(&opts.target, cfg.clone()).ok();
                }
            }
        }
        // Both barriers run unconditionally: a dead connection must not
        // stall the fleet.
        barrier.wait();
        if phase.flush_after && conn == 0 {
            if client.is_none() {
                client = Client::connect_with(&opts.target, cfg.clone()).ok();
            }
            if let Some(cl) = client.as_mut() {
                // Make this phase's writes visible to the next phase's
                // reads; not an accounted workload op.
                let _ = cl.flush();
            }
        }
        barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::builtin;

    #[test]
    fn materialize_is_deterministic_and_hex_hashed() {
        let s = builtin("hot_read", 0.02).unwrap();
        let (a, ha) = materialize(&s, 64, 10, 2, 7);
        let (b, hb) = materialize(&s, 64, 10, 2, 7);
        assert_eq!(a, b);
        assert_eq!(ha, hb);
        assert_eq!(ha.len(), 16, "hash renders as 16 hex chars");
        assert!(ha.chars().all(|c| c.is_ascii_hexdigit()));
        let (_, hc) = materialize(&s, 64, 10, 2, 8);
        assert_ne!(ha, hc);
    }

    #[test]
    fn run_rejects_unreachable_targets() {
        let s = builtin("hot_read", 0.01).unwrap();
        let opts = LoadOpts {
            // Port 1 on loopback refuses immediately (no hung connect).
            target: "127.0.0.1:1".to_string(),
            connections: 1,
            timeout: Duration::from_millis(200),
            ..LoadOpts::default()
        };
        assert!(run(&s, &opts).is_err());
    }
}
