//! The workload model: which op, on which keys, rendered as wire lines.
//!
//! An [`OpMix`] gives integer weights to the six workload ops; a
//! [`WorkloadGen`] draws ops from the mix with Zipf-skewed key choice and
//! yields [`WireOp`]s — pre-rendered protocol lines except for write ids,
//! which the driver stamps at send time (the sequence number must be fixed
//! per *logical* write, and only the driver knows the retry story).

use crate::zipf::Zipf;
use rand::Rng;
use std::collections::VecDeque;

/// Edges remembered for later removal (per connection).
const RECENT_EDGE_CAP: usize = 1024;

/// Integer weights over the workload ops; zero weight removes an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Weight of `add_edge`.
    pub add_edge: u32,
    /// Weight of `remove_edge`.
    pub remove_edge: u32,
    /// Weight of `get_embedding`.
    pub get_embedding: u32,
    /// Weight of `topk` with `mode:"exact"`.
    pub topk_exact: u32,
    /// Weight of `topk` with `mode:"ann"`.
    pub topk_ann: u32,
    /// Weight of `score_link`.
    pub score_link: u32,
}

impl OpMix {
    /// A read-only mix (no writes).
    pub const fn reads(
        get_embedding: u32,
        topk_exact: u32,
        topk_ann: u32,
        score_link: u32,
    ) -> Self {
        OpMix { add_edge: 0, remove_edge: 0, get_embedding, topk_exact, topk_ann, score_link }
    }

    /// A write-only mix.
    pub const fn writes(add_edge: u32, remove_edge: u32) -> Self {
        OpMix { add_edge, remove_edge, get_embedding: 0, topk_exact: 0, topk_ann: 0, score_link: 0 }
    }

    /// Sum of all weights.
    pub fn total(&self) -> u32 {
        self.add_edge
            + self.remove_edge
            + self.get_embedding
            + self.topk_exact
            + self.topk_ann
            + self.score_link
    }

    fn pick<R: Rng>(&self, rng: &mut R) -> OpKind {
        let total = self.total();
        assert!(total > 0, "op mix must have at least one positive weight");
        let mut roll = rng.gen_range(0..total);
        for (weight, kind) in [
            (self.add_edge, OpKind::AddEdge),
            (self.remove_edge, OpKind::RemoveEdge),
            (self.get_embedding, OpKind::GetEmbedding),
            (self.topk_exact, OpKind::TopKExact),
            (self.topk_ann, OpKind::TopKAnn),
            (self.score_link, OpKind::ScoreLink),
        ] {
            if roll < weight {
                return kind;
            }
            roll -= weight;
        }
        unreachable!("roll bounded by total")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    AddEdge,
    RemoveEdge,
    GetEmbedding,
    TopKExact,
    TopKAnn,
    ScoreLink,
}

/// One concrete request, keys chosen, ready to render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOp {
    /// `add_edge` of `(u, v)`.
    AddEdge(u32, u32),
    /// `remove_edge` of `(u, v)`.
    RemoveEdge(u32, u32),
    /// `get_embedding` of a node.
    GetEmbedding(u32),
    /// `topk` — `(node, k, ann)`.
    TopK(u32, usize, bool),
    /// `score_link` of `(u, v)`.
    ScoreLink(u32, u32),
}

/// Report/metric label of each op (splits the two `topk` modes, unlike the
/// server's wire-level `op` label).
pub const OP_LABELS: [&str; 6] =
    ["add_edge", "remove_edge", "get_embedding", "topk_exact", "topk_ann", "score_link"];

impl WireOp {
    /// The label used in the accounting plane (see [`OP_LABELS`]).
    pub fn label(&self) -> &'static str {
        match self {
            WireOp::AddEdge(..) => "add_edge",
            WireOp::RemoveEdge(..) => "remove_edge",
            WireOp::GetEmbedding(..) => "get_embedding",
            WireOp::TopK(_, _, false) => "topk_exact",
            WireOp::TopK(_, _, true) => "topk_ann",
            WireOp::ScoreLink(..) => "score_link",
        }
    }

    /// Whether this op goes through the write plane (and needs a
    /// [`seqge_serve::protocol::WriteId`]).
    pub fn is_write(&self) -> bool {
        matches!(self, WireOp::AddEdge(..) | WireOp::RemoveEdge(..))
    }

    /// Renders the request line. Writes take the caller's dedup identity
    /// and consume one sequence number from `next_seq`; reads leave it
    /// untouched.
    pub fn request_line(&self, client: &str, next_seq: &mut u64) -> String {
        match *self {
            WireOp::AddEdge(u, v) | WireOp::RemoveEdge(u, v) => {
                let cmd =
                    if matches!(self, WireOp::AddEdge(..)) { "add_edge" } else { "remove_edge" };
                let seq = *next_seq;
                *next_seq += 1;
                format!(r#"{{"cmd":"{cmd}","u":{u},"v":{v},"client":"{client}","seq":{seq}}}"#)
            }
            WireOp::GetEmbedding(node) => format!(r#"{{"cmd":"get_embedding","node":{node}}}"#),
            WireOp::TopK(node, k, ann) => {
                let mode = if ann { "ann" } else { "exact" };
                format!(r#"{{"cmd":"topk","node":{node},"k":{k},"mode":"{mode}"}}"#)
            }
            WireOp::ScoreLink(u, v) => format!(r#"{{"cmd":"score_link","u":{u},"v":{v}}}"#),
        }
    }

    /// A stable byte rendering *without* write ids, for schedule hashing:
    /// two runs with the same seed must hash identically even though their
    /// dedup client ids differ.
    pub fn hash_repr(&self) -> String {
        match *self {
            WireOp::AddEdge(u, v) => format!("add:{u}:{v}"),
            WireOp::RemoveEdge(u, v) => format!("rem:{u}:{v}"),
            WireOp::GetEmbedding(node) => format!("get:{node}"),
            WireOp::TopK(node, k, ann) => format!("topk:{node}:{k}:{}", ann as u8),
            WireOp::ScoreLink(u, v) => format!("score:{u}:{v}"),
        }
    }
}

/// Draws a stream of [`WireOp`]s from a mix with Zipf key skew.
pub struct WorkloadGen {
    mix: OpMix,
    zipf: Zipf,
    nodes: u32,
    k: usize,
    /// Edges this generator has added and not yet removed: removals target
    /// these first so a churn mix actually retracts existing edges instead
    /// of bouncing off `rejected`.
    recent_edges: VecDeque<(u32, u32)>,
}

impl WorkloadGen {
    /// A generator over `nodes ≥ 2` vertices with the given skew and
    /// `topk` result count.
    pub fn new(mix: OpMix, nodes: u32, skew: f64, k: usize) -> Self {
        assert!(nodes >= 2, "need at least two nodes for edges");
        WorkloadGen {
            mix,
            zipf: Zipf::new(nodes as u64, skew),
            nodes,
            k,
            recent_edges: VecDeque::new(),
        }
    }

    /// One Zipf-hot node.
    fn hot<R: Rng>(&self, rng: &mut R) -> u32 {
        self.zipf.sample(rng) as u32
    }

    /// A uniform partner distinct from `u`.
    fn partner<R: Rng>(&self, rng: &mut R, u: u32) -> u32 {
        let v = rng.gen_range(0..self.nodes - 1);
        if v >= u {
            v + 1
        } else {
            v
        }
    }

    /// Draws the next op.
    pub fn next_op<R: Rng>(&mut self, rng: &mut R) -> WireOp {
        match self.mix.pick(rng) {
            OpKind::AddEdge => {
                let u = self.hot(rng);
                let v = self.partner(rng, u);
                if self.recent_edges.len() == RECENT_EDGE_CAP {
                    self.recent_edges.pop_front();
                }
                self.recent_edges.push_back((u, v));
                WireOp::AddEdge(u, v)
            }
            OpKind::RemoveEdge => match self.recent_edges.pop_front() {
                Some((u, v)) => WireOp::RemoveEdge(u, v),
                None => {
                    // Nothing known to remove: target a random pair. The
                    // server may reject it (`rejected` counter) — a
                    // deletion storm hitting absent edges is itself a
                    // realistic failure mode worth exercising.
                    let u = self.hot(rng);
                    WireOp::RemoveEdge(u, self.partner(rng, u))
                }
            },
            OpKind::GetEmbedding => WireOp::GetEmbedding(self.hot(rng)),
            OpKind::TopKExact => WireOp::TopK(self.hot(rng), self.k, false),
            OpKind::TopKAnn => WireOp::TopK(self.hot(rng), self.k, true),
            OpKind::ScoreLink => {
                let u = self.hot(rng);
                WireOp::ScoreLink(u, self.partner(rng, u))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mix_respects_zero_weights() {
        let mix = OpMix::reads(1, 1, 1, 1);
        let mut gen = WorkloadGen::new(mix, 100, 0.9, 10);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            assert!(!gen.next_op(&mut rng).is_write(), "read-only mix produced a write");
        }
    }

    #[test]
    fn writes_never_self_loop_or_leave_range() {
        let mix = OpMix::writes(3, 1);
        let mut gen = WorkloadGen::new(mix, 17, 1.1, 10);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2_000 {
            match gen.next_op(&mut rng) {
                WireOp::AddEdge(u, v) | WireOp::RemoveEdge(u, v) => {
                    assert_ne!(u, v, "self loop generated");
                    assert!(u < 17 && v < 17, "({u},{v}) out of range");
                }
                other => panic!("write-only mix produced {other:?}"),
            }
        }
    }

    #[test]
    fn removals_prefer_previously_added_edges() {
        let mix = OpMix { add_edge: 1, remove_edge: 1, ..OpMix::reads(0, 0, 0, 0) };
        let mut gen = WorkloadGen::new(mix, 50, 0.8, 10);
        let mut rng = StdRng::seed_from_u64(4);
        let mut added = Vec::new();
        let mut removed_known = 0usize;
        let mut removed = 0usize;
        for _ in 0..1_000 {
            match gen.next_op(&mut rng) {
                WireOp::AddEdge(u, v) => added.push((u, v)),
                WireOp::RemoveEdge(u, v) => {
                    removed += 1;
                    if added.contains(&(u, v)) {
                        removed_known += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(removed > 100);
        assert!(
            removed_known * 10 >= removed * 9,
            "only {removed_known}/{removed} removals hit known edges"
        );
    }

    #[test]
    fn write_lines_consume_sequence_numbers_and_reads_do_not() {
        let mut seq = 1u64;
        let add = WireOp::AddEdge(1, 2).request_line("cX", &mut seq);
        assert_eq!(seq, 2);
        assert!(add.contains(r#""seq":1"#) && add.contains(r#""client":"cX""#), "{add}");
        let get = WireOp::GetEmbedding(5).request_line("cX", &mut seq);
        assert_eq!(seq, 2, "reads must not consume seq");
        assert!(!get.contains("seq"));
        let rem = WireOp::RemoveEdge(2, 1).request_line("cX", &mut seq);
        assert!(rem.contains(r#""cmd":"remove_edge""#) && rem.contains(r#""seq":2"#), "{rem}");
        // Every rendered line parses under the server grammar.
        for line in [&add, &get, &rem] {
            seqge_serve::protocol::parse_request(line).expect("rendered line parses");
        }
    }

    #[test]
    fn topk_lines_carry_the_mode() {
        let mut seq = 1u64;
        let exact = WireOp::TopK(3, 10, false).request_line("c", &mut seq);
        let ann = WireOp::TopK(3, 10, true).request_line("c", &mut seq);
        assert!(exact.contains(r#""mode":"exact""#), "{exact}");
        assert!(ann.contains(r#""mode":"ann""#), "{ann}");
        assert_eq!(WireOp::TopK(3, 10, false).label(), "topk_exact");
        assert_eq!(WireOp::TopK(3, 10, true).label(), "topk_ann");
    }
}
