//! Property tests for the deterministic workload plane.
//!
//! The loadgen's whole value rests on two properties: the generated
//! traffic is *deterministic under seed* (so a regression seen in CI can
//! be replayed bit-for-bit on a laptop), and the Zipf/arrival machinery
//! actually has the statistical shape it claims (so "hot-vertex storm"
//! means what it says). Both are checked here over randomized parameters,
//! not just the unit tests' fixed points.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seqge_loadgen::arrival::Arrival;
use seqge_loadgen::scenario::{builtin, schedule, schedule_hash};
use seqge_loadgen::zipf::Zipf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed, same draws — for any (n, skew, seed).
    #[test]
    fn zipf_is_deterministic_under_seed(
        seed in 0u64..10_000,
        n in 1u64..5_000,
        skew_milli in 0u64..2_500,
    ) {
        let z = Zipf::new(n, skew_milli as f64 / 1000.0);
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let x = z.sample(&mut a);
            prop_assert!(x < n);
            prop_assert_eq!(x, z.sample(&mut b));
        }
    }

    /// At real skew, empirical frequency must decay with rank: the head
    /// rank beats ranks an order of magnitude down, for any seed.
    #[test]
    fn zipf_frequency_ranking_matches_skew(
        seed in 0u64..10_000,
        skew_milli in 800u64..2_000,
    ) {
        let n = 1_000u64;
        let z = Zipf::new(n, skew_milli as f64 / 1000.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u32; n as usize];
        for _ in 0..30_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Compare rank bands, not single ranks: bands smooth the noise a
        // 30k-draw sample carries at individual tail ranks.
        let band: Vec<u32> = [0..1u64, 10..20, 100..200, 500..1000]
            .into_iter()
            .map(|r| {
                let w = r.end - r.start;
                counts[r.start as usize..r.end as usize].iter().sum::<u32>() / w as u32
            })
            .collect();
        for pair in band.windows(2) {
            prop_assert!(
                pair[0] > pair[1],
                "mean frequency must fall across rank bands: {:?}", band
            );
        }
    }

    /// Open-loop offsets are non-decreasing, count-exact, and identical
    /// under the same seed for every arrival family.
    #[test]
    fn arrival_offsets_are_sane_and_deterministic(
        seed in 0u64..10_000,
        rate in 1u64..50_000,
        count in 1usize..2_000,
    ) {
        for arrival in [
            Arrival::Fixed { rate: rate as f64 },
            Arrival::Poisson { rate: rate as f64 },
            Arrival::OnOff { rate: rate as f64, on_ms: 7, off_ms: 3 },
        ] {
            let a = arrival.offsets(count, &mut StdRng::seed_from_u64(seed));
            let b = arrival.offsets(count, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(&a, &b, "same seed must reproduce {:?}", arrival);
            prop_assert_eq!(a.len(), count);
            prop_assert!(a.windows(2).all(|w| w[0] <= w[1]), "{:?} went backwards", arrival);
        }
    }

    /// The full scenario pipeline — mix draws, Zipf keys, arrival offsets,
    /// drift replay — hashes identically under the same seed and moves
    /// under a different one, for every built-in.
    #[test]
    fn schedules_hash_deterministically(seed in 0u64..10_000) {
        for name in ["hot_read", "edge_churn", "deletion_storm", "drift_replay"] {
            let s = builtin(name, 0.02).unwrap();
            let make = |seed: u64| {
                let scheds: Vec<_> =
                    (0..2).map(|c| schedule(&s, 64, 5, c, 2, seed)).collect();
                schedule_hash(&scheds)
            };
            prop_assert_eq!(make(seed), make(seed), "{} unstable under seed {}", name, seed);
            prop_assert_ne!(make(seed), make(seed + 1));
        }
    }
}
