//! Loadgen-vs-server end-to-end: the client-side ledger must agree with
//! the server's own books.
//!
//! A load generator that miscounts is worse than none — its SLO verdicts
//! would be fiction. So the contract test here is double-entry: run a
//! scenario against a real in-process server, then reconcile the report's
//! per-op counts with the server's `seqge_serve_requests_total{op}`
//! counters scraped over the wire. Every scheduled op must appear exactly
//! once on both sides. A second leg drives the 2-shard cluster router and
//! checks the satellite guarantees: zero hard protocol errors, and the
//! router's merged metrics carrying the per-shard `seqge_serve_*` series
//! the loadgen traffic implies.

use seqge_cluster::{Cluster, ClusterConfig};
use seqge_core::{OsElmConfig, TrainConfig};
use seqge_graph::generators::sbm::{PlantedPartition, SbmParams};
use seqge_loadgen::{builtin, materialize, run, LoadOpts};
use seqge_sampling::UpdatePolicy;
use seqge_serve::{boot_cold, start, Client, ServeConfig};
use std::time::Duration;

const DIM: usize = 8;
const SEED: u64 = 11;
const NODES: u32 = 180;

fn sbm_graph() -> seqge_graph::Graph {
    PlantedPartition::new(SbmParams::new(NODES as usize, 1200, 4))
        .expect("valid SBM params")
        .generate(SEED)
}

fn sbm_server() -> seqge_serve::ServerHandle {
    let graph = sbm_graph();
    let mut cfg = TrainConfig::paper_defaults(DIM);
    cfg.walk.walk_length = 12;
    cfg.walk.walks_per_node = 2;
    let ocfg = OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(DIM) };
    let (model, inc) = boot_cold(&graph, &cfg, ocfg, UpdatePolicy::every_edge(), SEED);
    start("127.0.0.1:0", graph, model, inc, ServeConfig::default()).expect("server starts")
}

/// Scrapes one counter value from a Prometheus text body, summed over
/// every matching labeled series.
fn scrape_sum(body: &str, name: &str, label: &str) -> u64 {
    body.lines()
        .filter(|l| l.starts_with(name) && l.contains(label))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

fn small_opts(target: String) -> LoadOpts {
    LoadOpts {
        target,
        connections: 2,
        seed: 7,
        scale: 0.05,
        nodes: Some(NODES),
        k: 5,
        timeout: Duration::from_secs(30),
    }
}

/// Single node: every op the report claims was sent must be on the
/// server's request counters, op for op, with zero errors anywhere.
#[test]
fn report_counts_reconcile_with_server_counters() {
    let handle = sbm_server();
    let scenario = builtin("hot_read", 0.05).unwrap();
    let opts = small_opts(handle.addr().to_string());
    let (schedules, hash) = materialize(&scenario, NODES, opts.k, opts.connections, opts.seed);
    let scheduled: usize =
        schedules.iter().map(|s| s.phases.iter().map(Vec::len).sum::<usize>()).sum();

    let report = run(&scenario, &opts).expect("run completes");
    assert_eq!(report.schedule_hash, hash, "run must replay the materialized schedule");
    assert_eq!(report.total_ops as usize, scheduled, "every scheduled op accounted exactly once");

    let steady = &report.windows[0];
    let fault = &report.windows[1];
    for w in [steady, fault] {
        assert_eq!(w.hard_errors, 0, "{} window saw hard errors", w.window);
        assert_eq!(w.transport_errors, 0, "{} window saw transport errors", w.window);
    }
    assert!(report.steady_ok_rate > 0.999);

    // Double-entry: client ledger vs server counters, per op. The server
    // books both topk modes under one wire op.
    let mut c = Client::connect(handle.addr()).expect("client connects");
    let body = c.metrics("prometheus").expect("metrics scrape");
    let count_for = |label: &str| -> u64 {
        [steady, fault]
            .iter()
            .flat_map(|w| &w.per_op)
            .filter(|o| o.op == label)
            .map(|o| o.count)
            .sum()
    };
    for wire_op in ["add_edge", "remove_edge", "get_embedding", "score_link"] {
        let client_side = count_for(wire_op);
        let server_side =
            scrape_sum(&body, "seqge_serve_requests_total", &format!("op=\"{wire_op}\""));
        assert_eq!(
            client_side, server_side,
            "{wire_op}: report says {client_side}, server counted {server_side}"
        );
    }
    let client_topk = count_for("topk_exact") + count_for("topk_ann");
    let server_topk = scrape_sum(&body, "seqge_serve_requests_total", "op=\"topk\"");
    assert_eq!(client_topk, server_topk, "topk modes must sum to the wire op");
    assert!(client_topk > 0, "hot_read must exercise topk");

    // Satellite 2: the open-connection gauge exists and has settled back
    // to this scrape's own connection.
    let open = scrape_sum(&body, "seqge_serve_open_connections", "");
    assert!(open >= 1, "gauge must count at least the scraping client, got {open}");

    // The workload itself must be clean server-side too: no error replies
    // on the workload ops (queued writes are acked, rejects happen async).
    for op in ["add_edge", "remove_edge", "get_embedding", "topk", "score_link"] {
        let errs = scrape_sum(&body, "seqge_serve_errors_total", &format!("op=\"{op}\""));
        assert_eq!(errs, 0, "server counted {errs} error replies for {op}");
    }

    handle.shutdown().expect("clean shutdown");
}

/// Same seed, two materializations, one live run: the schedule hash is
/// the determinism witness the CI smoke asserts on.
#[test]
fn schedule_hash_is_stable_across_materializations() {
    let scenario = builtin("edge_churn", 0.02).unwrap();
    let (_, h1) = materialize(&scenario, NODES, 5, 3, 99);
    let (_, h2) = materialize(&scenario, NODES, 5, 3, 99);
    assert_eq!(h1, h2);
    let (_, h3) = materialize(&scenario, NODES, 5, 3, 100);
    assert_ne!(h1, h3);
}

/// Cluster leg: drive the 2-shard router, expect zero hard errors (shed
/// and degraded are acceptable outcomes, bugs are not) and the merged
/// per-shard `seqge_serve_*` series in the router's metrics reply.
#[test]
fn cluster_router_serves_loadgen_and_merges_shard_metrics() {
    let base = std::env::temp_dir().join(format!("seqge_loadgen_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let graph = sbm_graph();
    let cfg = ClusterConfig::in_process(2, base.clone(), DIM, SEED);
    let cluster = Cluster::start(&cfg, &graph).expect("cluster boots");

    let scenario = builtin("edge_churn", 0.03).unwrap();
    let opts = small_opts(cluster.addr().to_string());
    let report = run(&scenario, &opts).expect("run completes");

    assert!(report.total_ops > 0);
    for w in &report.windows {
        assert_eq!(w.hard_errors, 0, "{} window saw hard protocol errors", w.window);
        assert_eq!(w.transport_errors, 0, "{} window saw transport errors", w.window);
    }

    // Satellite 2 through the router: the merged scrape must expose the
    // shard-side request counters for the traffic just sent.
    let mut c = Client::connect(cluster.addr()).expect("client connects to router");
    let body = c.metrics("prometheus").expect("router metrics scrape");
    let adds = scrape_sum(&body, "seqge_serve_requests_total", "op=\"add_edge\"");
    // Each write reaches exactly one owning shard, so the shard-side
    // count is at least the client-side one (retries can push it higher).
    let client_adds: u64 = report
        .windows
        .iter()
        .flat_map(|w| &w.per_op)
        .filter(|o| o.op == "add_edge")
        .map(|o| o.count)
        .sum();
    assert!(client_adds > 0, "edge_churn must add edges");
    assert!(adds >= client_adds, "router merge lost shard counters: {adds} < {client_adds}");

    cluster.shutdown().expect("clean cluster shutdown");
    let _ = std::fs::remove_dir_all(&base);
}
