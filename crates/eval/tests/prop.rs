//! Property-based tests for the evaluation layer.

use proptest::prelude::*;
use seqge_eval::{confusion_matrix, f1_scores, train_test_split};

fn labels_strategy() -> impl Strategy<Value = Vec<u16>> {
    proptest::collection::vec(0u16..5, 20..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Split is always a partition and respects the requested fraction
    /// approximately (stratified rounding).
    #[test]
    fn split_is_partition(labels in labels_strategy(), frac in 0.05f64..0.5, seed in any::<u64>()) {
        let (train, test) = train_test_split(&labels, frac, seed);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all.len(), labels.len());
        prop_assert!(all.windows(2).all(|w| w[0] < w[1]), "duplicate index in split");
        // Fraction within per-class rounding slack.
        let classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
        let expected = labels.len() as f64 * frac;
        prop_assert!((test.len() as f64 - expected).abs() <= classes as f64 + 1.0);
    }

    /// Micro-F1 equals accuracy, is bounded, and perfect prediction is 1.
    #[test]
    fn f1_properties(labels in labels_strategy(), seed in any::<u64>()) {
        let classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
        // A deterministic pseudo-random prediction vector.
        let preds: Vec<u16> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                if (seed.wrapping_add(i as u64)).wrapping_mul(2654435761) % 3 == 0 {
                    ((l as usize + 1) % classes) as u16
                } else {
                    l
                }
            })
            .collect();
        let f = f1_scores(&labels, &preds, classes);
        prop_assert!((0.0..=1.0).contains(&f.micro));
        prop_assert!((0.0..=1.0).contains(&f.macro_));
        let correct = labels.iter().zip(&preds).filter(|(a, b)| a == b).count();
        prop_assert!((f.micro - correct as f64 / labels.len() as f64).abs() < 1e-12);
        let perfect = f1_scores(&labels, &labels, classes);
        prop_assert_eq!(perfect.micro, 1.0);
        prop_assert_eq!(perfect.macro_, 1.0);
    }

    /// Confusion-matrix mass equals the number of samples, and the diagonal
    /// counts agreements.
    #[test]
    fn confusion_mass(labels in labels_strategy()) {
        let classes = labels.iter().copied().max().unwrap_or(0) as usize + 1;
        let preds: Vec<u16> = labels.iter().rev().copied().collect();
        let m = confusion_matrix(&labels, &preds, classes);
        let mass: usize = m.iter().map(|row| row.iter().sum::<usize>()).sum();
        prop_assert_eq!(mass, labels.len());
        let diag: usize = (0..classes).map(|c| m[c][c]).sum();
        let agree = labels.iter().zip(&preds).filter(|(a, b)| a == b).count();
        prop_assert_eq!(diag, agree);
    }
}
