//! Seeded stratified train/test splitting.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Splits indices `0..labels.len()` into (train, test) with `test_fraction`
/// of *each class* held out (stratified, so small classes keep test
/// representation even at the paper's 10 % split). Deterministic per seed.
pub fn train_test_split(labels: &[u16], test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&test_fraction), "test fraction must be in [0, 1)");
    let num_classes = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &l) in labels.iter().enumerate() {
        per_class[l as usize].push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train = Vec::with_capacity(labels.len());
    let mut test = Vec::with_capacity((labels.len() as f64 * test_fraction) as usize + 1);
    for members in &mut per_class {
        // Fisher–Yates, then slice off the test tail.
        for i in (1..members.len()).rev() {
            members.swap(i, rng.gen_range(0..=i));
        }
        let n_test = ((members.len() as f64) * test_fraction).round() as usize;
        // Keep at least one training example per non-empty class.
        let n_test = n_test.min(members.len().saturating_sub(1));
        test.extend_from_slice(&members[..n_test]);
        train.extend_from_slice(&members[n_test..]);
    }
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(counts: &[usize]) -> Vec<u16> {
        counts.iter().enumerate().flat_map(|(c, &n)| std::iter::repeat_n(c as u16, n)).collect()
    }

    #[test]
    fn sizes_match_fraction() {
        let l = labels(&[100, 100]);
        let (train, test) = train_test_split(&l, 0.1, 1);
        assert_eq!(test.len(), 20);
        assert_eq!(train.len(), 180);
    }

    #[test]
    fn split_is_a_partition() {
        let l = labels(&[50, 30, 20]);
        let (train, test) = train_test_split(&l, 0.2, 2);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn stratification_holds() {
        let l = labels(&[90, 10]);
        let (_, test) = train_test_split(&l, 0.1, 3);
        let class1_in_test = test.iter().filter(|&&i| l[i] == 1).count();
        assert_eq!(class1_in_test, 1, "small class must keep test representation");
    }

    #[test]
    fn deterministic_per_seed() {
        let l = labels(&[40, 40]);
        let a = train_test_split(&l, 0.25, 7);
        let b = train_test_split(&l, 0.25, 7);
        let c = train_test_split(&l, 0.25, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_class_keeps_a_training_example() {
        let l = labels(&[10, 1]);
        let (train, test) = train_test_split(&l, 0.5, 1);
        assert!(train.iter().any(|&i| l[i] == 1), "singleton class stays in train");
        assert!(!test.iter().any(|&i| l[i] == 1));
    }
}
