//! One-vs-rest logistic regression trained by SGD (§4.3: lr = 0.01).
//!
//! `K` independent binary classifiers share the feature matrix; they train
//! in parallel on the rayon pool (each classifier owns its weight vector, so
//! the parallelism is embarrassing — the Rayon guide's ideal case).

use crate::split::train_test_split;
use rayon::prelude::*;
use seqge_linalg::{ops, Mat};

/// Logistic-regression hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LogRegConfig {
    /// SGD learning rate (paper: 0.01).
    pub learning_rate: f64,
    /// Training epochs over the training set.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffle/init seed.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig { learning_rate: 0.01, epochs: 100, l2: 1e-4, seed: 0 }
    }
}

/// A trained one-vs-rest model: one `(d+1)`-weight vector per class
/// (last entry = bias).
#[derive(Debug, Clone)]
pub struct OneVsRest {
    weights: Vec<Vec<f64>>,
    dim: usize,
}

impl OneVsRest {
    /// Trains on `features.row(i)` ↔ `labels[i]` for `i ∈ train_idx`.
    pub fn fit(
        features: &Mat<f32>,
        labels: &[u16],
        train_idx: &[usize],
        num_classes: usize,
        cfg: &LogRegConfig,
    ) -> Self {
        assert_eq!(features.rows(), labels.len(), "features/labels must align");
        assert!(num_classes >= 1, "need at least one class");
        let d = features.cols();
        // Per-epoch example order, shared by all classes (deterministic).
        let orders: Vec<Vec<usize>> = {
            let mut rng = SplitMix::new(cfg.seed);
            (0..cfg.epochs)
                .map(|_| {
                    let mut idx = train_idx.to_vec();
                    for i in (1..idx.len()).rev() {
                        idx.swap(i, rng.below(i as u64 + 1) as usize);
                    }
                    idx
                })
                .collect()
        };
        let weights: Vec<Vec<f64>> = (0..num_classes)
            .into_par_iter()
            .map(|class| {
                let mut w = vec![0.0f64; d + 1];
                for order in &orders {
                    for &i in order {
                        let x = features.row(i);
                        let y = if labels[i] as usize == class { 1.0 } else { 0.0 };
                        let mut z = w[d]; // bias
                        for j in 0..d {
                            z += w[j] * x[j] as f64;
                        }
                        let g = cfg.learning_rate * (y - ops::sigmoid(z));
                        for j in 0..d {
                            w[j] += g * x[j] as f64 - cfg.learning_rate * cfg.l2 * w[j];
                        }
                        w[d] += g;
                    }
                }
                w
            })
            .collect();
        OneVsRest { weights, dim: d }
    }

    /// Per-class decision scores for one feature row.
    pub fn scores(&self, x: &[f32]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "feature dimension mismatch");
        self.weights
            .iter()
            .map(|w| {
                let mut z = w[self.dim];
                for j in 0..self.dim {
                    z += w[j] * x[j] as f64;
                }
                z
            })
            .collect()
    }

    /// Predicted class (argmax of scores).
    pub fn predict(&self, x: &[f32]) -> u16 {
        let s = self.scores(x);
        let mut best = 0usize;
        for (i, &v) in s.iter().enumerate() {
            if v > s[best] {
                best = i;
            }
        }
        best as u16
    }

    /// Predicts every row index in `idx`.
    pub fn predict_all(&self, features: &Mat<f32>, idx: &[usize]) -> Vec<u16> {
        idx.par_iter().map(|&i| self.predict(features.row(i))).collect()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.weights.len()
    }
}

/// Convenience: fit on a stratified split and return (model, train, test).
pub fn fit_split(
    features: &Mat<f32>,
    labels: &[u16],
    num_classes: usize,
    test_fraction: f64,
    cfg: &LogRegConfig,
    split_seed: u64,
) -> (OneVsRest, Vec<usize>, Vec<usize>) {
    let (train, test) = train_test_split(labels, test_fraction, split_seed);
    let model = OneVsRest::fit(features, labels, &train, num_classes, cfg);
    (model, train, test)
}

/// Minimal SplitMix64 for shuffling (keeps `rand` out of the hot loop and
/// the epoch orders platform-stable).
struct SplitMix {
    s: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        SplitMix { s: seed }
    }
    fn next(&mut self) -> u64 {
        self.s = self.s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 2-D blobs, one per class.
    fn blobs(per_class: usize, num_classes: usize) -> (Mat<f32>, Vec<u16>) {
        let mut rng = SplitMix::new(42);
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for c in 0..num_classes {
            let angle = c as f32 * std::f32::consts::TAU / num_classes as f32;
            let (cx, cy) = (3.0 * angle.cos(), 3.0 * angle.sin());
            for _ in 0..per_class {
                let jx = (rng.next() % 1000) as f32 / 1000.0 - 0.5;
                let jy = (rng.next() % 1000) as f32 / 1000.0 - 0.5;
                feats.push(cx + jx);
                feats.push(cy + jy);
                labels.push(c as u16);
            }
        }
        (Mat::from_vec(per_class * num_classes, 2, feats), labels)
    }

    #[test]
    fn separable_blobs_reach_high_accuracy() {
        let (x, y) = blobs(60, 3);
        let cfg = LogRegConfig { epochs: 50, ..Default::default() };
        let (model, _, test) = fit_split(&x, &y, 3, 0.2, &cfg, 1);
        let pred = model.predict_all(&x, &test);
        let truth: Vec<u16> = test.iter().map(|&i| y[i]).collect();
        let f1 = crate::metrics::f1_scores(&truth, &pred, 3);
        assert!(f1.micro > 0.95, "separable data should classify: micro {}", f1.micro);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(30, 2);
        let idx: Vec<usize> = (0..x.rows()).collect();
        let cfg = LogRegConfig { epochs: 10, ..Default::default() };
        let a = OneVsRest::fit(&x, &y, &idx, 2, &cfg);
        let b = OneVsRest::fit(&x, &y, &idx, 2, &cfg);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn random_features_stay_near_chance() {
        // Labels independent of features → accuracy ≈ 1/K.
        let mut rng = SplitMix::new(7);
        let n = 400;
        let feats: Vec<f32> = (0..n * 4).map(|_| (rng.next() % 1000) as f32 / 1000.0).collect();
        let labels: Vec<u16> = (0..n).map(|_| (rng.next() % 4) as u16).collect();
        let x = Mat::from_vec(n, 4, feats);
        let cfg = LogRegConfig { epochs: 20, ..Default::default() };
        let (model, _, test) = fit_split(&x, &labels, 4, 0.25, &cfg, 2);
        let pred = model.predict_all(&x, &test);
        let truth: Vec<u16> = test.iter().map(|&i| labels[i]).collect();
        let f1 = crate::metrics::f1_scores(&truth, &pred, 4);
        assert!(f1.micro < 0.5, "noise should stay near chance: {}", f1.micro);
    }

    #[test]
    fn single_class_predicts_it() {
        let x = Mat::<f32>::filled(10, 2, 1.0);
        let y = vec![0u16; 10];
        let idx: Vec<usize> = (0..10).collect();
        let model = OneVsRest::fit(&x, &y, &idx, 1, &LogRegConfig::default());
        assert_eq!(model.predict(x.row(0)), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_feature_width_panics() {
        let x = Mat::<f32>::filled(4, 3, 0.5);
        let y = vec![0u16, 1, 0, 1];
        let idx: Vec<usize> = (0..4).collect();
        let model = OneVsRest::fit(&x, &y, &idx, 2, &LogRegConfig::default());
        model.predict(&[1.0, 2.0]);
    }
}
