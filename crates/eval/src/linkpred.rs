//! Link prediction — the second standard downstream evaluation of node2vec
//! embeddings (Grover & Leskovec §4.4): hold out a fraction of edges, score
//! candidate pairs by an embedding-combination operator, and report AUC.
//!
//! This extends the paper's evaluation (which only reports classification
//! F1) and gives the sequential-training experiments a task that directly
//! probes *edge* knowledge: a model that forgets old edges loses AUC on
//! them even when class labels survive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqge_graph::{Graph, NodeId};
use seqge_linalg::Mat;

/// Binary operator combining two node embeddings into an edge score
/// (Grover & Leskovec Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EdgeOp {
    /// Dot product of the two embeddings.
    Dot,
    /// Negative L2 distance.
    NegL2,
    /// Cosine similarity.
    Cosine,
}

impl EdgeOp {
    /// Scores the pair `(u, v)` under this operator.
    pub fn score(&self, emb: &Mat<f32>, u: NodeId, v: NodeId) -> f64 {
        let (x, y) = (emb.row(u as usize), emb.row(v as usize));
        match self {
            EdgeOp::Dot => x.iter().zip(y).map(|(&a, &b)| a as f64 * b as f64).sum(),
            EdgeOp::NegL2 => {
                -x.iter().zip(y).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>().sqrt()
            }
            EdgeOp::Cosine => {
                let dot: f64 = x.iter().zip(y).map(|(&a, &b)| a as f64 * b as f64).sum();
                let nx: f64 = x.iter().map(|&a| (a as f64).powi(2)).sum::<f64>().sqrt();
                let ny: f64 = y.iter().map(|&b| (b as f64).powi(2)).sum::<f64>().sqrt();
                dot / (nx * ny).max(1e-12)
            }
        }
    }
}

/// A link-prediction evaluation set: positive (held-out true) edges and
/// negative (non-edge) pairs, one negative per positive.
#[derive(Debug, Clone)]
pub struct LinkPredSet {
    /// Held-out true edges.
    pub positives: Vec<(NodeId, NodeId)>,
    /// Sampled non-edges.
    pub negatives: Vec<(NodeId, NodeId)>,
}

impl LinkPredSet {
    /// Samples an evaluation set from `g`: `fraction` of edges as positives
    /// (at least 1), and an equal number of uniform non-edges. Deterministic
    /// per seed. The caller trains on the *remaining* graph (see
    /// [`LinkPredSet::training_graph`]).
    pub fn sample(g: &Graph, fraction: f64, seed: u64) -> Self {
        assert!(fraction > 0.0 && fraction < 1.0, "fraction must be in (0, 1)");
        assert!(g.num_edges() > 0, "graph has no edges to hold out");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        for i in (1..edges.len()).rev() {
            edges.swap(i, rng.gen_range(0..=i));
        }
        let n_pos = ((edges.len() as f64 * fraction) as usize).max(1);
        let positives: Vec<_> = edges[..n_pos].to_vec();
        let n = g.num_nodes() as NodeId;
        let mut negatives = Vec::with_capacity(n_pos);
        while negatives.len() < n_pos {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !g.has_edge(u, v) {
                negatives.push((u, v));
            }
        }
        LinkPredSet { positives, negatives }
    }

    /// The graph with the held-out positives removed (what the embedding
    /// model is allowed to train on).
    pub fn training_graph(&self, g: &Graph) -> Graph {
        let held: std::collections::HashSet<(NodeId, NodeId)> =
            self.positives.iter().copied().collect();
        let mut out = Graph::with_nodes(g.num_nodes());
        for (u, v, w) in g.edges() {
            if !held.contains(&(u, v)) {
                out.add_weighted_edge(u, v, w).expect("edges unique in source graph");
            }
        }
        if let Some(labels) = g.labels() {
            out.set_labels(labels.to_vec()).expect("same node count");
        }
        out
    }

    /// AUC of `emb` under `op`: probability that a random positive outranks
    /// a random negative (exact pairwise computation).
    pub fn auc(&self, emb: &Mat<f32>, op: EdgeOp) -> f64 {
        let pos: Vec<f64> = self.positives.iter().map(|&(u, v)| op.score(emb, u, v)).collect();
        let neg: Vec<f64> = self.negatives.iter().map(|&(u, v)| op.score(emb, u, v)).collect();
        let mut wins = 0.0f64;
        for &p in &pos {
            for &n in &neg {
                if p > n {
                    wins += 1.0;
                } else if p == n {
                    wins += 0.5;
                }
            }
        }
        wins / (pos.len() * neg.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_graph::generators::classic::erdos_renyi;

    fn graph() -> Graph {
        erdos_renyi(60, 0.15, 3)
    }

    #[test]
    fn sample_shapes_and_validity() {
        let g = graph();
        let set = LinkPredSet::sample(&g, 0.2, 1);
        assert_eq!(set.positives.len(), set.negatives.len());
        assert_eq!(set.positives.len(), (g.num_edges() as f64 * 0.2) as usize);
        for &(u, v) in &set.positives {
            assert!(g.has_edge(u, v));
        }
        for &(u, v) in &set.negatives {
            assert!(!g.has_edge(u, v));
            assert_ne!(u, v);
        }
    }

    #[test]
    fn training_graph_excludes_heldout() {
        let g = graph();
        let set = LinkPredSet::sample(&g, 0.3, 2);
        let train = set.training_graph(&g);
        assert_eq!(train.num_edges(), g.num_edges() - set.positives.len());
        for &(u, v) in &set.positives {
            assert!(!train.has_edge(u, v));
        }
    }

    #[test]
    fn perfect_embedding_gets_auc_1() {
        // Oracle embedding: a dimension per node pair is impossible, but an
        // indicator trick works: score positives by construction. Use a
        // 2-node-per-edge clique embedding: nodes of held-out edges share a
        // unique coordinate.
        let g = graph();
        let set = LinkPredSet::sample(&g, 0.2, 3);
        let d = set.positives.len();
        let mut emb = Mat::<f32>::zeros(g.num_nodes(), d);
        for (i, &(u, v)) in set.positives.iter().enumerate() {
            emb[(u as usize, i)] = 1.0;
            emb[(v as usize, i)] = 1.0;
        }
        let auc = set.auc(&emb, EdgeOp::Dot);
        assert!(auc > 0.95, "oracle AUC {auc}");
    }

    #[test]
    fn random_embedding_near_half() {
        let g = graph();
        let set = LinkPredSet::sample(&g, 0.25, 4);
        let emb =
            Mat::from_fn(g.num_nodes(), 8, |r, c| (((r * 31 + c * 17) % 97) as f32 / 97.0) - 0.5);
        let auc = set.auc(&emb, EdgeOp::Dot);
        assert!((0.3..0.7).contains(&auc), "random AUC {auc}");
    }

    #[test]
    fn operators_disagree_in_general() {
        let g = graph();
        let set = LinkPredSet::sample(&g, 0.2, 5);
        let emb = Mat::from_fn(g.num_nodes(), 4, |r, c| ((r + c) % 5) as f32 - 2.0);
        let dot = set.auc(&emb, EdgeOp::Dot);
        let cos = set.auc(&emb, EdgeOp::Cosine);
        let l2 = set.auc(&emb, EdgeOp::NegL2);
        for v in [dot, cos, l2] {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = graph();
        let a = LinkPredSet::sample(&g, 0.2, 9);
        let b = LinkPredSet::sample(&g, 0.2, 9);
        assert_eq!(a.positives, b.positives);
        assert_eq!(a.negatives, b.negatives);
    }
}
