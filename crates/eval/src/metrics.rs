//! Classification metrics: confusion matrix, micro/macro F1.

/// Micro- and macro-averaged F1.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct F1 {
    /// Micro-averaged F1 (= accuracy for single-label multiclass).
    pub micro: f64,
    /// Macro-averaged F1 (unweighted mean of per-class F1).
    pub macro_: f64,
}

/// `K×K` confusion matrix: `m[true][pred]` counts.
pub fn confusion_matrix(truth: &[u16], pred: &[u16], num_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), pred.len(), "label vectors must align");
    let mut m = vec![vec![0usize; num_classes]; num_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        m[t as usize][p as usize] += 1;
    }
    m
}

/// Computes micro/macro F1 from predictions.
pub fn f1_scores(truth: &[u16], pred: &[u16], num_classes: usize) -> F1 {
    let m = confusion_matrix(truth, pred, num_classes);
    let total: usize = truth.len();
    // Micro: global TP / total for single-label multiclass.
    let tp_total: usize = m.iter().enumerate().map(|(c, row)| row[c]).sum();
    let micro = if total == 0 { 0.0 } else { tp_total as f64 / total as f64 };
    // Macro: mean per-class F1 over classes that appear in truth or pred.
    let mut f1_sum = 0.0;
    let mut classes_counted = 0usize;
    for (c, row) in m.iter().enumerate() {
        let tp = row[c];
        let fp: usize = (0..num_classes).filter(|&t| t != c).map(|t| m[t][c]).sum();
        let fneg: usize = row.iter().enumerate().filter(|&(p, _)| p != c).map(|(_, &v)| v).sum();
        if tp + fp + fneg == 0 {
            continue; // class absent entirely: skip from the macro mean
        }
        let f1 = 2.0 * tp as f64 / (2.0 * tp as f64 + fp as f64 + fneg as f64);
        f1_sum += f1;
        classes_counted += 1;
    }
    let macro_ = if classes_counted == 0 { 0.0 } else { f1_sum / classes_counted as f64 };
    F1 { micro, macro_ }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let t = [0u16, 1, 2, 1];
        let s = f1_scores(&t, &t, 3);
        assert_eq!(s.micro, 1.0);
        assert_eq!(s.macro_, 1.0);
    }

    #[test]
    fn all_wrong() {
        let t = [0u16, 0, 0];
        let p = [1u16, 1, 1];
        let s = f1_scores(&t, &p, 2);
        assert_eq!(s.micro, 0.0);
        assert_eq!(s.macro_, 0.0);
    }

    #[test]
    fn micro_equals_accuracy() {
        let t = [0u16, 1, 1, 2, 2, 2];
        let p = [0u16, 1, 0, 2, 2, 1];
        let s = f1_scores(&t, &p, 3);
        assert!((s.micro - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn macro_known_value() {
        // Binary: truth [1,1,0,0], pred [1,0,0,0].
        // class1: tp=1 fp=0 fn=1 → f1 = 2/3; class0: tp=2 fp=1 fn=0 → f1 = 4/5.
        let t = [1u16, 1, 0, 0];
        let p = [1u16, 0, 0, 0];
        let s = f1_scores(&t, &p, 2);
        assert!((s.macro_ - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn absent_class_skipped_in_macro() {
        let t = [0u16, 0];
        let p = [0u16, 0];
        // 3 classes declared, classes 1 and 2 never appear.
        let s = f1_scores(&t, &p, 3);
        assert_eq!(s.macro_, 1.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 0, 1], &[0, 1, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[1][0], 0);
    }

    #[test]
    fn empty_inputs() {
        let s = f1_scores(&[], &[], 3);
        assert_eq!(s.micro, 0.0);
        assert_eq!(s.macro_, 0.0);
    }
}
