//! # seqge-eval — downstream evaluation of graph embeddings
//!
//! The paper's accuracy metric (§4.3): feed the trained embedding into a
//! one-vs-rest logistic regression, 90 % train / 10 % test, and report the
//! F1 score averaged over three trials.
//!
//! * [`logreg`] — one-vs-rest logistic regression trained by SGD, with the
//!   `K` binary problems trained in parallel via rayon.
//! * [`split`] — seeded stratified train/test splitting.
//! * [`metrics`] — micro/macro F1 and the confusion matrix. (For single-label
//!   multiclass, micro-F1 equals accuracy; both are reported.)
//! * [`harness`] — multi-trial averaging, mirroring the paper's 3-trial mean.

pub mod clustering;
pub mod harness;
pub mod linkpred;
pub mod logreg;
pub mod metrics;
pub mod split;

pub use clustering::{clustering_nmi, kmeans, nmi, KMeans};
pub use harness::{evaluate_embedding, EvalConfig, EvalResult};
pub use linkpred::{EdgeOp, LinkPredSet};
pub use logreg::{LogRegConfig, OneVsRest};
pub use metrics::{confusion_matrix, f1_scores, F1};
pub use split::train_test_split;
