//! Unsupervised evaluation: k-means over the embedding + NMI against the
//! class labels (extension — the third standard embedding probe after
//! classification and link prediction).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seqge_linalg::Mat;

/// k-means result.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Cluster assignment per row.
    pub assignment: Vec<u16>,
    /// Final centroids (k×d).
    pub centroids: Mat<f32>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

/// Lloyd's algorithm with k-means++ seeding. Deterministic per seed.
pub fn kmeans(data: &Mat<f32>, k: usize, max_iters: usize, seed: u64) -> KMeans {
    assert!(k >= 1, "need at least one cluster");
    assert!(data.rows() >= k, "need at least k rows");
    let (n, d) = (data.rows(), data.cols());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centroids = Mat::<f32>::zeros(k, d);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut dist2 = vec![f64::INFINITY; n];
    for c in 1..k {
        for (i, di) in dist2.iter_mut().enumerate() {
            let dd = sq_dist(data.row(i), centroids.row(c - 1));
            if dd < *di {
                *di = dd;
            }
        }
        let total: f64 = dist2.iter().sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut draw = rng.gen_range(0.0..total);
            let mut idx = n - 1;
            for (i, &dd) in dist2.iter().enumerate() {
                if draw < dd {
                    idx = i;
                    break;
                }
                draw -= dd;
            }
            idx
        };
        centroids.row_mut(c).copy_from_slice(data.row(pick));
    }

    // Lloyd iterations.
    let mut assignment = vec![0u16; n];
    let mut iterations = 0;
    for it in 0..max_iters {
        iterations = it + 1;
        let mut changed = false;
        for (i, slot) in assignment.iter_mut().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dd = sq_dist(data.row(i), centroids.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            if *slot != best as u16 {
                *slot = best as u16;
                changed = true;
            }
        }
        // Recompute centroids.
        let mut counts = vec![0usize; k];
        let mut sums = Mat::<f64>::zeros(k, d);
        for i in 0..n {
            let c = assignment[i] as usize;
            counts[c] += 1;
            for j in 0..d {
                sums[(c, j)] += data[(i, j)] as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random point.
                let r = rng.gen_range(0..n);
                centroids.row_mut(c).copy_from_slice(data.row(r));
                continue;
            }
            for j in 0..d {
                centroids[(c, j)] = (sums[(c, j)] / counts[c] as f64) as f32;
            }
        }
        if !changed {
            break;
        }
    }
    let inertia = (0..n).map(|i| sq_dist(data.row(i), centroids.row(assignment[i] as usize))).sum();
    KMeans { assignment, centroids, iterations, inertia }
}

fn sq_dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| ((x - y) as f64).powi(2)).sum()
}

/// Normalized mutual information between two labelings, in `[0, 1]`
/// (arithmetic-mean normalization). 1 = identical partitions (up to
/// relabeling), ~0 = independent.
pub fn nmi(a: &[u16], b: &[u16]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must align");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ka = a.iter().copied().max().unwrap() as usize + 1;
    let kb = b.iter().copied().max().unwrap() as usize + 1;
    let mut joint = vec![vec![0usize; kb]; ka];
    let mut ca = vec![0usize; ka];
    let mut cb = vec![0usize; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x as usize][y as usize] += 1;
        ca[x as usize] += 1;
        cb[y as usize] += 1;
    }
    let nf = n as f64;
    let mut mi = 0.0f64;
    for (x, row) in joint.iter().enumerate() {
        for (y, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / nf;
            let px = ca[x] as f64 / nf;
            let py = cb[y] as f64 / nf;
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    let ent = |counts: &[usize]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / nf;
                -p * p.ln()
            })
            .sum()
    };
    let (ha, hb) = (ent(&ca), ent(&cb));
    if ha + hb == 0.0 {
        return 1.0; // both labelings are constant and identical partitions
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

/// Convenience: cluster the embedding into `k` groups and report NMI
/// against `labels`.
pub fn clustering_nmi(emb: &Mat<f32>, labels: &[u16], k: usize, seed: u64) -> f64 {
    let km = kmeans(emb, k, 100, seed);
    nmi(&km.assignment, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, k: usize, spread: f32) -> (Mat<f32>, Vec<u16>) {
        let mut rng = StdRng::seed_from_u64(1);
        let n = per * k;
        let mut data = Mat::<f32>::zeros(n, 2);
        let mut labels = Vec::with_capacity(n);
        for c in 0..k {
            let angle = c as f32 * std::f32::consts::TAU / k as f32;
            for i in 0..per {
                let row = c * per + i;
                data[(row, 0)] = 5.0 * angle.cos() + rng.gen_range(-spread..spread);
                data[(row, 1)] = 5.0 * angle.sin() + rng.gen_range(-spread..spread);
                labels.push(c as u16);
            }
        }
        (data, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, labels) = blobs(40, 3, 0.3);
        let score = clustering_nmi(&data, &labels, 3, 7);
        assert!(score > 0.95, "NMI {score}");
    }

    #[test]
    fn kmeans_converges_and_reduces_inertia() {
        let (data, _) = blobs(30, 4, 0.5);
        let km = kmeans(&data, 4, 100, 3);
        assert!(km.iterations < 100, "should converge before the cap");
        let one_iter = kmeans(&data, 4, 1, 3);
        assert!(km.inertia <= one_iter.inertia + 1e-9);
    }

    #[test]
    fn nmi_bounds_and_extremes() {
        let a = vec![0u16, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12, "identical labelings");
        // Relabeled partition is still perfect.
        let b = vec![2u16, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
        // Constant labeling carries no information.
        let c = vec![0u16; 6];
        assert!(nmi(&a, &c) < 1e-9);
    }

    #[test]
    fn nmi_independent_labelings_low() {
        let mut rng = StdRng::seed_from_u64(5);
        let a: Vec<u16> = (0..2000).map(|_| rng.gen_range(0..4)).collect();
        let b: Vec<u16> = (0..2000).map(|_| rng.gen_range(0..4)).collect();
        assert!(nmi(&a, &b) < 0.02);
    }

    #[test]
    fn single_cluster_works() {
        let (data, _) = blobs(10, 2, 0.1);
        let km = kmeans(&data, 1, 10, 0);
        assert!(km.assignment.iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "at least k rows")]
    fn too_few_rows_panics() {
        let data = Mat::<f32>::zeros(2, 2);
        kmeans(&data, 5, 10, 0);
    }
}
