//! Multi-trial evaluation harness (the paper averages three trials).

use crate::logreg::{fit_split, LogRegConfig};
use crate::metrics::{f1_scores, F1};
use seqge_linalg::Mat;

/// Evaluation protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalConfig {
    /// Held-out fraction (paper: 0.1).
    pub test_fraction: f64,
    /// Number of trials to average (paper: 3).
    pub trials: usize,
    /// Classifier settings.
    pub logreg: LogRegConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { test_fraction: 0.1, trials: 3, logreg: LogRegConfig::default() }
    }
}

/// Aggregated result across trials.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalResult {
    /// Mean micro-F1.
    pub micro_f1: f64,
    /// Mean macro-F1.
    pub macro_f1: f64,
    /// Micro-F1 standard deviation across trials.
    pub micro_std: f64,
    /// Trials run.
    pub trials: usize,
}

/// Trains a one-vs-rest classifier on `embedding` against `labels` over
/// `cfg.trials` different splits and averages the F1 scores.
pub fn evaluate_embedding(
    embedding: &Mat<f32>,
    labels: &[u16],
    num_classes: usize,
    cfg: &EvalConfig,
    seed: u64,
) -> EvalResult {
    assert!(cfg.trials >= 1, "need at least one trial");
    let mut micros = Vec::with_capacity(cfg.trials);
    let mut macros = Vec::with_capacity(cfg.trials);
    for t in 0..cfg.trials {
        let split_seed = seed.wrapping_add(t as u64).wrapping_mul(0x9E37_79B9);
        let lr_cfg = LogRegConfig { seed: split_seed, ..cfg.logreg };
        let (model, _, test) =
            fit_split(embedding, labels, num_classes, cfg.test_fraction, &lr_cfg, split_seed);
        let pred = model.predict_all(embedding, &test);
        let truth: Vec<u16> = test.iter().map(|&i| labels[i]).collect();
        let f1: F1 = f1_scores(&truth, &pred, num_classes);
        seqge_obs::debug!(
            "eval",
            "trial {t}/{}: micro-F1 {:.4}, macro-F1 {:.4} ({} test rows)",
            cfg.trials,
            f1.micro,
            f1.macro_,
            test.len()
        );
        micros.push(f1.micro);
        macros.push(f1.macro_);
    }
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let m = mean(&micros);
    let var = micros.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / micros.len() as f64;
    let result = EvalResult {
        micro_f1: m,
        macro_f1: mean(&macros),
        micro_std: var.sqrt(),
        trials: cfg.trials,
    };
    seqge_obs::debug!(
        "eval",
        "averaged {} trial(s): micro-F1 {:.4} +/- {:.4}, macro-F1 {:.4}",
        result.trials,
        result.micro_f1,
        result.micro_std,
        result.macro_f1
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn informative_embedding_beats_noise() {
        // Embedding = one-hot class indicator (+ tiny noise column count).
        let n = 300;
        let k = 3;
        let labels: Vec<u16> = (0..n).map(|i| (i % k) as u16).collect();
        let emb = Mat::from_fn(n, k, |r, c| if labels[r] as usize == c { 1.0 } else { 0.0 });
        let noise = Mat::from_fn(n, k, |r, c| ((r * 31 + c * 17) % 97) as f32 / 97.0);
        let cfg = EvalConfig {
            trials: 2,
            logreg: LogRegConfig { epochs: 30, ..Default::default() },
            ..Default::default()
        };
        let good = evaluate_embedding(&emb, &labels, k, &cfg, 1);
        let bad = evaluate_embedding(&noise, &labels, k, &cfg, 1);
        assert!(good.micro_f1 > 0.95, "indicator embedding must classify: {}", good.micro_f1);
        assert!(good.micro_f1 > bad.micro_f1 + 0.2);
    }

    #[test]
    fn std_is_zero_for_single_trial() {
        let labels: Vec<u16> = (0..40).map(|i| (i % 2) as u16).collect();
        let emb = Mat::from_fn(40, 2, |r, c| if labels[r] as usize == c { 1.0 } else { 0.0 });
        let cfg = EvalConfig {
            trials: 1,
            logreg: LogRegConfig { epochs: 5, ..Default::default() },
            ..Default::default()
        };
        let r = evaluate_embedding(&emb, &labels, 2, &cfg, 3);
        assert_eq!(r.micro_std, 0.0);
        assert_eq!(r.trials, 1);
    }

    #[test]
    fn trials_average_differs_from_each_split() {
        let labels: Vec<u16> = (0..100).map(|i| (i % 2) as u16).collect();
        let emb = Mat::from_fn(100, 4, |r, c| ((r * 7 + c * 3) % 13) as f32 / 13.0);
        let cfg = EvalConfig {
            trials: 3,
            logreg: LogRegConfig { epochs: 10, ..Default::default() },
            ..Default::default()
        };
        let r = evaluate_embedding(&emb, &labels, 2, &cfg, 5);
        assert!(r.micro_f1 >= 0.0 && r.micro_f1 <= 1.0);
        assert_eq!(r.trials, 3);
    }
}
