//! Slicing a random walk into training contexts.
//!
//! The paper trains `l − w + 1` contexts per walk (§4.2: 73 iterations for
//! `l = 80, w = 8`): context `i` covers the window `RW[i..i+w]`, with
//! `RW[i]` as the center node and the following `w − 1` nodes as positive
//! samples. Walks shorter than `w` yield proportionally shorter contexts
//! (down to a single positive); isolated-node walks yield nothing.

use seqge_graph::NodeId;

/// One training context: a center node and its positive samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Context {
    /// The center (input) node.
    pub center: NodeId,
    /// Positive (output) nodes from the same window.
    pub positives: Vec<NodeId>,
}

/// Produces the contexts of `walk` for window size `w` (`w ≥ 2`).
pub fn contexts(walk: &[NodeId], w: usize) -> Vec<Context> {
    assert!(w >= 2, "window must cover a center and at least one positive");
    if walk.len() < 2 {
        return Vec::new();
    }
    let count = walk.len().saturating_sub(w) + 1;
    let mut out = Vec::with_capacity(count);
    for i in 0..walk.len() - 1 {
        let end = (i + w).min(walk.len());
        if end - i < 2 {
            break;
        }
        // Full windows only, except truncated tail windows are *not* emitted:
        // the paper's iteration count (l − w + 1) implies the window always
        // fits. Tail positions beyond l − w would duplicate training pairs.
        if i + w > walk.len() {
            break;
        }
        out.push(Context { center: walk[i], positives: walk[i + 1..end].to_vec() });
    }
    // Short walks (< w) still produce their single truncated context so that
    // sequential training on sparse initial forests sees every edge.
    if out.is_empty() && walk.len() >= 2 {
        out.push(Context { center: walk[0], positives: walk[1..].to_vec() });
    }
    out
}

/// Total number of (center, positive) training pairs across contexts.
pub fn pair_count(ctxs: &[Context]) -> usize {
    ctxs.iter().map(|c| c.positives.len()).sum()
}

/// Zero-allocation view of [`contexts`]: yields `(center, positives)` with
/// `positives` borrowed straight from the walk (every context's positives
/// are a contiguous walk slice). Training hot paths use this — [`contexts`]
/// allocates one `Vec` per context, which at the paper's geometry is 74
/// heap allocations per walk, a measurable share of per-walk train time.
///
/// Yields exactly the `(center, positives)` pairs of `contexts(walk, w)`,
/// in order.
pub fn context_windows(walk: &[NodeId], w: usize) -> ContextWindows<'_> {
    assert!(w >= 2, "window must cover a center and at least one positive");
    let n = walk.len();
    let (count, truncated) = if n < 2 {
        (0, false)
    } else if n >= w {
        (n - w + 1, false)
    } else {
        // Short walks (< w) produce their single truncated context so that
        // sequential training on sparse initial forests sees every edge.
        (1, true)
    };
    ContextWindows { walk, w, i: 0, count, truncated }
}

/// Iterator returned by [`context_windows`].
#[derive(Debug, Clone)]
pub struct ContextWindows<'a> {
    walk: &'a [NodeId],
    w: usize,
    i: usize,
    count: usize,
    truncated: bool,
}

impl<'a> Iterator for ContextWindows<'a> {
    type Item = (NodeId, &'a [NodeId]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.i >= self.count {
            return None;
        }
        let i = self.i;
        self.i += 1;
        if self.truncated {
            Some((self.walk[0], &self.walk[1..]))
        } else {
            Some((self.walk[i], &self.walk[i + 1..i + self.w]))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.count - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ContextWindows<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_73_contexts() {
        let walk: Vec<NodeId> = (0..80).collect();
        let ctxs = contexts(&walk, 8);
        assert_eq!(ctxs.len(), 73, "l=80, w=8 must give 73 contexts (paper §4.2)");
        assert_eq!(ctxs[0].center, 0);
        assert_eq!(ctxs[0].positives, (1..8).collect::<Vec<_>>());
        assert_eq!(ctxs[72].center, 72);
        assert_eq!(ctxs[72].positives, (73..80).collect::<Vec<_>>());
    }

    #[test]
    fn every_context_has_w_minus_1_positives() {
        let walk: Vec<NodeId> = (0..20).collect();
        for c in contexts(&walk, 5) {
            assert_eq!(c.positives.len(), 4);
        }
    }

    #[test]
    fn short_walk_gets_truncated_context() {
        let walk: Vec<NodeId> = vec![3, 7, 9];
        let ctxs = contexts(&walk, 8);
        assert_eq!(ctxs.len(), 1);
        assert_eq!(ctxs[0].center, 3);
        assert_eq!(ctxs[0].positives, vec![7, 9]);
    }

    #[test]
    fn context_windows_equals_contexts_for_every_geometry() {
        // The zero-allocation iterator must reproduce the allocating form
        // exactly: same centers, same positives, same order — including
        // empty, short-truncated, exact-fit, and long walks.
        for n in [0usize, 1, 2, 3, 5, 7, 8, 9, 20, 80] {
            for w in [2usize, 5, 8] {
                let walk: Vec<NodeId> = (0..n as NodeId).map(|i| i * 3 + 1).collect();
                let alloc = contexts(&walk, w);
                let zero: Vec<_> = context_windows(&walk, w).collect();
                assert_eq!(alloc.len(), zero.len(), "n={n} w={w}");
                for (a, (center, positives)) in alloc.iter().zip(&zero) {
                    assert_eq!(a.center, *center, "n={n} w={w}");
                    assert_eq!(&a.positives[..], *positives, "n={n} w={w}");
                }
                assert_eq!(context_windows(&walk, w).len(), alloc.len(), "ExactSize n={n} w={w}");
            }
        }
    }

    #[test]
    fn singleton_walk_gives_nothing() {
        assert!(contexts(&[5], 8).is_empty());
        assert!(contexts(&[], 8).is_empty());
    }

    #[test]
    fn exact_window_length_walk() {
        let walk: Vec<NodeId> = (0..8).collect();
        let ctxs = contexts(&walk, 8);
        assert_eq!(ctxs.len(), 1);
        assert_eq!(ctxs[0].positives.len(), 7);
    }

    #[test]
    fn pair_count_sums() {
        let walk: Vec<NodeId> = (0..80).collect();
        let ctxs = contexts(&walk, 8);
        assert_eq!(pair_count(&ctxs), 73 * 7);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn window_of_one_panics() {
        contexts(&[0, 1, 2], 1);
    }
}
