//! Walker's alias method for O(1) weighted sampling.
//!
//! The paper (§3.1): "This sampling is done by the Walker's alias, which is a
//! weighted sampling method. In this case, although the time complexity to
//! build a table used in the sampling is proportional to the number of nodes,
//! the sampling can be done in O(1) time complexity."

use crate::rng::Rng64;

/// Alias table over `n` outcomes with the classic two-array layout
/// (`prob[i]`, `alias[i]`). Build is O(n); each sample costs one RNG draw,
/// one compare, and at most one indirection.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights. At least one weight must be
    /// positive. Weights need not be normalized.
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative/NaN value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one outcome");
        let n = weights.len();
        let mut total = 0.0f64;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and non-negative");
            total += w;
        }
        assert!(total > 0.0, "at least one weight must be positive");

        // Kahan-free scaled weights: w * n / total. The classic small/large
        // worklist construction.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Donate the deficit of `s` from `l`.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: everything still on a worklist gets prob 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob: prob.into_iter().map(|p| p as f32).collect(), alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    ///
    /// Single-draw form: one `u64` supplies both the bucket and the accept
    /// fraction, as one fixed-point uniform `u = x·n/2⁶⁴ ∈ [0, n)` — the
    /// integer part picks the bucket, the fractional part (uniform within
    /// the bucket by construction) is the coin against `prob[i]`. Negative
    /// sampling draws dominate the training scaffold (§4.2: ~70 per
    /// context), so halving the RNG calls per draw is measurable end to
    /// end. Bucket bias vs. rejection sampling is ≤ n/2⁶⁴ — below f32
    /// resolution for any real table.
    #[inline]
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let wide = (rng.next_u64() as u128) * (self.prob.len() as u128);
        let i = (wide >> 64) as usize;
        // Fraction formed exactly like `Rng64::next_f32`: top 24 of the
        // low word.
        let frac = ((wide as u64) >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        if frac < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Heap footprint in bytes (the paper counts this table in the proposed
    /// model's memory; Table 5).
    pub fn heap_bytes(&self) -> usize {
        self.prob.len() * std::mem::size_of::<f32>() + self.alias.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = Rng64::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let freqs = empirical(&[1.0; 8], 80_000, 1);
        for f in freqs {
            assert!((f - 0.125).abs() < 0.01, "freq {f}");
        }
    }

    #[test]
    fn skewed_weights_match_distribution() {
        let w = [1.0, 2.0, 4.0, 8.0];
        let total = 15.0;
        let freqs = empirical(&w, 150_000, 2);
        for (f, wi) in freqs.iter().zip(&w) {
            let expect = wi / total;
            assert!((f - expect).abs() < 0.01, "freq {f} expect {expect}");
        }
    }

    #[test]
    fn zero_weights_never_sampled() {
        let freqs = empirical(&[0.0, 1.0, 0.0, 3.0], 40_000, 3);
        assert_eq!(freqs[0], 0.0);
        assert_eq!(freqs[2], 0.0);
        assert!((freqs[3] - 0.75).abs() < 0.01);
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = Rng64::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn unnormalized_weights_equivalent() {
        let a = empirical(&[1.0, 3.0], 100_000, 7);
        let b = empirical(&[100.0, 300.0], 100_000, 7);
        assert!((a[0] - b[0]).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "at least one outcome")]
    fn empty_panics() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_panics() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    fn heap_bytes_scales_with_n() {
        let t = AliasTable::new(&[1.0; 100]);
        assert_eq!(t.heap_bytes(), 100 * 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any valid weight vector produces a table whose samples stay in
        /// range and whose zero-weight outcomes never appear.
        #[test]
        fn samples_in_range_and_respect_zeros(
            weights in proptest::collection::vec(0.0f64..100.0, 1..50),
            seed in any::<u64>(),
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let t = AliasTable::new(&weights);
            let mut rng = Rng64::seed_from_u64(seed);
            for _ in 0..200 {
                let s = t.sample(&mut rng);
                prop_assert!(s < weights.len());
                prop_assert!(weights[s] > 0.0, "sampled zero-weight outcome {s}");
            }
        }

        /// The table's internal probabilities are all in [0, 1].
        #[test]
        fn internal_probabilities_valid(
            weights in proptest::collection::vec(0.0f64..10.0, 1..40),
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let t = AliasTable::new(&weights);
            for i in 0..t.len() {
                prop_assert!((0.0..=1.0 + 1e-6).contains(&(t.prob[i] as f64)));
            }
        }
    }
}
