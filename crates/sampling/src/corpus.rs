//! Walk corpus: accumulated walks and node-appearance frequencies.
//!
//! The negative-sampling distribution "depends on the number of appearances
//! of each node in the entire RW" (paper §3.1), so the corpus keeps a
//! running appearance count as walks stream in. For the "all" scenario the
//! corpus is filled with `r` walks per node up front; for the "seq" scenario
//! walks arrive two at a time (both ends of each inserted edge).

use crate::rng::Rng64;
use crate::walk::{WalkGraph, Walker};
use seqge_graph::NodeId;

/// Accumulated walks and per-node appearance counts.
#[derive(Debug, Clone)]
pub struct WalkCorpus {
    counts: Vec<u64>,
    total: u64,
    walks_stored: usize,
}

impl WalkCorpus {
    /// Empty corpus over `n` nodes.
    pub fn new(num_nodes: usize) -> Self {
        WalkCorpus { counts: vec![0; num_nodes], total: 0, walks_stored: 0 }
    }

    /// Records one walk's node appearances.
    pub fn record(&mut self, walk: &[NodeId]) {
        for &u in walk {
            self.counts[u as usize] += 1;
        }
        self.total += walk.len() as u64;
        self.walks_stored += 1;
    }

    /// Per-node appearance counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total node appearances.
    pub fn total_appearances(&self) -> u64 {
        self.total
    }

    /// Number of recorded walks.
    pub fn num_walks(&self) -> usize {
        self.walks_stored
    }

    /// Appearance counts as weights for the negative table. Nodes never seen
    /// get weight 0 (they cannot be drawn as negatives, matching word2vec
    /// practice of sampling from the observed unigram distribution).
    pub fn frequency_weights(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

/// Generates the full "all"-scenario corpus: `walks_per_node` walks from
/// every node, recording each into the returned corpus. Returns the walks
/// too (the trainer consumes them in order).
pub fn generate_corpus<G: WalkGraph>(
    csr: &G,
    walker: &mut Walker,
    rng: &mut Rng64,
) -> (WalkCorpus, Vec<Vec<NodeId>>) {
    let n = csr.num_nodes();
    let r = walker.params().walks_per_node;
    let mut corpus = WalkCorpus::new(n);
    let mut walks = Vec::with_capacity(n * r);
    let mut buf: Vec<NodeId> = Vec::with_capacity(walker.params().walk_length);
    for _ in 0..r {
        for u in 0..n as NodeId {
            walker.walk_into(csr, u, rng, &mut buf);
            if buf.len() < 2 {
                continue; // isolated node: nothing to train
            }
            corpus.record(&buf);
            walks.push(buf.clone());
        }
    }
    (corpus, walks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::Node2VecParams;
    use seqge_graph::generators::classic::ring;
    use seqge_graph::Graph;

    #[test]
    fn record_counts_appearances() {
        let mut c = WalkCorpus::new(5);
        c.record(&[0, 1, 0, 2]);
        c.record(&[2, 2]);
        assert_eq!(c.counts(), &[2, 1, 3, 0, 0]);
        assert_eq!(c.total_appearances(), 6);
        assert_eq!(c.num_walks(), 2);
        assert_eq!(c.frequency_weights(), vec![2.0, 1.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn generate_corpus_counts_match_walk_lengths() {
        let csr = ring(12).to_csr();
        let params = Node2VecParams { walk_length: 10, walks_per_node: 3, ..Default::default() };
        let mut walker = Walker::new(params);
        let mut rng = Rng64::seed_from_u64(4);
        let (corpus, walks) = generate_corpus(&csr, &mut walker, &mut rng);
        assert_eq!(walks.len(), 12 * 3);
        assert!(walks.iter().all(|w| w.len() == 10));
        assert_eq!(corpus.total_appearances(), 12 * 3 * 10);
        // Every node appears at least walks_per_node times (it starts them).
        assert!(corpus.counts().iter().all(|&c| c >= 3));
    }

    #[test]
    fn isolated_nodes_are_skipped() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1).unwrap();
        let csr = g.to_csr();
        let params = Node2VecParams { walk_length: 5, walks_per_node: 2, ..Default::default() };
        let mut walker = Walker::new(params);
        let mut rng = Rng64::seed_from_u64(1);
        let (corpus, walks) = generate_corpus(&csr, &mut walker, &mut rng);
        assert_eq!(walks.len(), 4); // only nodes 0 and 1 walk, twice each
        assert_eq!(corpus.counts()[2], 0);
        assert_eq!(corpus.counts()[3], 0);
    }
}
