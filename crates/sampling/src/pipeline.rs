//! Overlapped walk generation: N producer threads, one in-order consumer.
//!
//! The paper's system hides walk generation behind training: "nodes are
//! sampled from a graph using random walk by the CPU" while the accelerator
//! trains the previous walk (§3.2). This module is the host-side analogue —
//! walker threads generate second-order walks in parallel and a consumer
//! (the trainer) receives them **in deterministic walk-index order**, so the
//! trained model is bit-identical no matter how many threads run.
//!
//! Determinism comes from two choices:
//!
//! * every walk draws from its own RNG, seeded as
//!   [`Rng64::for_stream`]`(seed, walk_index)` — a walk's randomness depends
//!   only on the run seed and its global index `round * n + start_node`,
//!   never on which worker executed it or in what order;
//! * worker `w` of `T` owns exactly the indices `w, w + T, w + 2T, …` and
//!   sends them over its own bounded channel in increasing order, so the
//!   consumer recovers global order by round-robining the channels — no
//!   reorder buffer, and memory is bounded by `threads × queue_depth` walks.
//!
//! The pipeline feeds the global `seqge_obs` registry:
//! `seqge_pipeline_walk_gen_ns` (per-walk kernel time histogram),
//! `seqge_pipeline_queue_depth` (walks in flight between producers and the
//! consumer), and `seqge_pipeline_walks_total` (walks delivered).

use crate::corpus::WalkCorpus;
use crate::rng::Rng64;
use crate::walk::{Node2VecParams, StepStrategy, WalkGraph, Walker};
use seqge_graph::NodeId;
use std::sync::mpsc::{sync_channel, Receiver};
use std::time::{Duration, Instant};

/// Tuning knobs for the walk pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Walker threads; 0 means one per available core.
    pub threads: usize,
    /// Per-worker channel capacity, in walks. Bounds producer run-ahead (and
    /// with it pipeline memory) to `threads × queue_depth` walks.
    pub queue_depth: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { threads: 0, queue_depth: 64 }
    }
}

impl PipelineConfig {
    /// Config with an explicit thread count (0 = one per core).
    pub fn with_threads(threads: usize) -> Self {
        PipelineConfig { threads, ..Default::default() }
    }

    /// The thread count actually used.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// Producer-side telemetry from one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Worker threads used.
    pub threads: usize,
    /// Walks delivered to the consumer (including sub-length walks from
    /// isolated nodes, which consumers normally skip).
    pub walks_generated: u64,
    /// Total time workers spent inside the walk kernel, summed over
    /// workers (excludes time blocked on a full channel).
    pub gen_busy: Duration,
}

/// Runs the "all"-scenario walk schedule (`walks_per_node` rounds over all
/// `n` nodes) through the pipeline, invoking `on_walk(index, walk)` on the
/// calling thread in strictly increasing `index` order. `index` is
/// `round * n + start_node`, matching the serial [`generate_corpus`]
/// schedule.
///
/// [`generate_corpus`]: crate::corpus::generate_corpus
pub fn stream_walks<G, F>(
    csr: &G,
    params: Node2VecParams,
    strategy: StepStrategy,
    seed: u64,
    config: PipelineConfig,
    mut on_walk: F,
) -> PipelineStats
where
    G: WalkGraph + Sync,
    F: FnMut(u64, Vec<NodeId>),
{
    params.validate().expect("invalid node2vec parameters");
    let n = csr.num_nodes();
    let total = (n * params.walks_per_node) as u64;
    let threads = config.effective_threads().max(1).min(total.max(1) as usize);
    if total == 0 {
        return PipelineStats { threads, walks_generated: 0, gen_busy: Duration::ZERO };
    }

    std::thread::scope(|scope| {
        let mut receivers: Vec<Receiver<Vec<NodeId>>> = Vec::with_capacity(threads);
        let mut stat_rx: Vec<Receiver<Duration>> = Vec::with_capacity(threads);
        for w in 0..threads {
            let (tx, rx) = sync_channel::<Vec<NodeId>>(config.queue_depth.max(1));
            let (stx, srx) = sync_channel::<Duration>(1);
            receivers.push(rx);
            stat_rx.push(srx);
            scope.spawn(move || {
                let mut walker = Walker::with_strategy(params, strategy);
                let mut busy = Duration::ZERO;
                let mut walk: Vec<NodeId> = Vec::with_capacity(params.walk_length);
                let mut index = w as u64;
                while index < total {
                    let start = (index % n as u64) as NodeId;
                    let mut rng = Rng64::for_stream(seed, index);
                    let t0 = Instant::now();
                    walker.walk_into(csr, start, &mut rng, &mut walk);
                    let gen = t0.elapsed();
                    busy += gen;
                    seqge_obs::static_histogram!("seqge_pipeline_walk_gen_ns")
                        .record(gen.as_nanos().min(u64::MAX as u128) as u64);
                    // A send error means the consumer hung up early (it
                    // panicked); stop producing rather than panic twice.
                    if tx.send(std::mem::take(&mut walk)).is_err() {
                        break;
                    }
                    seqge_obs::static_gauge!("seqge_pipeline_queue_depth").inc();
                    walk = Vec::with_capacity(params.walk_length);
                    index += threads as u64;
                }
                let _ = stx.send(busy);
            });
        }

        for index in 0..total {
            let walk = receivers[(index % threads as u64) as usize]
                .recv()
                .expect("walker thread terminated early");
            seqge_obs::static_gauge!("seqge_pipeline_queue_depth").dec();
            seqge_obs::static_counter!("seqge_pipeline_walks_total").inc();
            on_walk(index, walk);
        }

        let gen_busy =
            stat_rx.iter().map(|rx| rx.recv().expect("walker thread lost its stats")).sum();
        PipelineStats { threads, walks_generated: total, gen_busy }
    })
}

/// Pipelined counterpart of [`generate_corpus`]: same output contract
/// (corpus counts plus the kept walks, in schedule order, isolated-node
/// walks dropped), generated by `config.threads` workers.
///
/// Note the corpus differs from the serial `generate_corpus` for the same
/// seed — the serial path threads one RNG through all walks, the pipeline
/// gives each walk its own stream — but it is identical across thread
/// counts for a fixed seed.
///
/// [`generate_corpus`]: crate::corpus::generate_corpus
pub fn generate_corpus_pipelined<G>(
    csr: &G,
    params: Node2VecParams,
    seed: u64,
    config: PipelineConfig,
) -> (WalkCorpus, Vec<Vec<NodeId>>)
where
    G: WalkGraph + Sync,
{
    let n = csr.num_nodes();
    let mut corpus = WalkCorpus::new(n);
    let mut walks = Vec::with_capacity(n * params.walks_per_node);
    stream_walks(csr, params, StepStrategy::Cumulative, seed, config, |_, walk| {
        if walk.len() < 2 {
            return;
        }
        corpus.record(&walk);
        walks.push(walk);
    });
    (corpus, walks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_graph::generators::classic::{erdos_renyi, ring};
    use seqge_graph::Graph;

    fn params(l: usize, r: usize) -> Node2VecParams {
        Node2VecParams { walk_length: l, walks_per_node: r, ..Default::default() }
    }

    /// Acceptance criterion: the pipelined corpus is bit-identical across
    /// thread counts.
    #[test]
    fn corpus_identical_across_thread_counts() {
        let csr = erdos_renyi(60, 0.1, 3).to_csr();
        let p = params(20, 4);
        let (c1, w1) = generate_corpus_pipelined(&csr, p, 42, PipelineConfig::with_threads(1));
        for threads in [2, 3, 8] {
            let (c, w) =
                generate_corpus_pipelined(&csr, p, 42, PipelineConfig::with_threads(threads));
            assert_eq!(w, w1, "walks differ at {threads} threads");
            assert_eq!(c.counts(), c1.counts(), "counts differ at {threads} threads");
            assert_eq!(c.num_walks(), c1.num_walks());
        }
    }

    #[test]
    fn walks_arrive_in_index_order_and_follow_edges() {
        let csr = erdos_renyi(40, 0.15, 9).to_csr();
        let p = params(15, 3);
        let mut last: i64 = -1;
        let stats = stream_walks(
            &csr,
            p,
            StepStrategy::Cumulative,
            7,
            PipelineConfig::with_threads(4),
            |index, walk| {
                assert_eq!(index as i64, last + 1, "indices must be consecutive");
                last = index as i64;
                assert_eq!(walk[0], (index % 40) as NodeId, "walk starts at its scheduled node");
                for pair in walk.windows(2) {
                    assert!(csr.has_edge(pair[0], pair[1]));
                }
            },
        );
        assert_eq!(stats.walks_generated, 40 * 3);
        assert_eq!(stats.threads, 4);
        assert_eq!(last + 1, 40 * 3);
    }

    #[test]
    fn isolated_nodes_skipped_like_serial_path() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(0, 1).unwrap();
        let csr = g.to_csr();
        let (corpus, walks) =
            generate_corpus_pipelined(&csr, params(6, 2), 1, PipelineConfig::with_threads(3));
        assert_eq!(walks.len(), 4); // nodes 0 and 1, two rounds
        assert_eq!(corpus.counts()[3], 0);
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let csr = Graph::with_nodes(0).to_csr();
        let stats = stream_walks(
            &csr,
            params(5, 2),
            StepStrategy::Cumulative,
            0,
            PipelineConfig::default(),
            |_, _| panic!("no walks expected"),
        );
        assert_eq!(stats.walks_generated, 0);
    }

    #[test]
    fn more_threads_than_walks_is_fine() {
        let csr = ring(3).to_csr();
        let (_, walks) =
            generate_corpus_pipelined(&csr, params(4, 1), 5, PipelineConfig::with_threads(16));
        assert_eq!(walks.len(), 3);
    }

    #[test]
    fn rejection_strategy_is_deterministic_too() {
        let csr = erdos_renyi(30, 0.2, 11).to_csr();
        let collect = |threads| {
            let mut out = Vec::new();
            stream_walks(
                &csr,
                params(10, 2),
                StepStrategy::Rejection,
                13,
                PipelineConfig::with_threads(threads),
                |_, w| out.push(w),
            );
            out
        };
        assert_eq!(collect(1), collect(6));
    }
}
