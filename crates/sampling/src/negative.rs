//! Negative sampling with a rebuildable Walker alias table.
//!
//! §3.1: negatives are drawn with frequency proportional to each node's
//! appearance count in the walk corpus, via Walker's alias method. Because a
//! table rebuild is O(#nodes), the paper studies how often to rebuild as the
//! graph grows (Fig. 7: every 1 edge ≈ every 100 ≫ every 10 000 ≈ never).
//! [`UpdatePolicy`] encodes that knob.

use crate::alias::AliasTable;
use crate::corpus::WalkCorpus;
use crate::rng::Rng64;
use seqge_graph::NodeId;

/// How often the sampling table is rebuilt during sequential training,
/// measured in inserted edges (Fig. 7's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum UpdatePolicy {
    /// Rebuild after every `k` inserted edges (`k ≥ 1`).
    EveryEdges(u64),
    /// Never rebuild once first created ("no_change" in Fig. 7).
    Never,
}

impl UpdatePolicy {
    /// The paper's default: rebuild on every edge.
    pub fn every_edge() -> Self {
        UpdatePolicy::EveryEdges(1)
    }
}

/// Negative-sampling table over the walk corpus's node frequencies.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    table: Option<AliasTable>,
    policy: UpdatePolicy,
    edges_since_rebuild: u64,
    rebuilds: u64,
    /// Smoothing exponent applied to appearance counts (word2vec uses 0.75;
    /// the paper says only "depends on the number of appearances", i.e. 1.0 —
    /// that is the default, and the exponent is exposed for the ablation).
    exponent: f64,
}

impl NegativeTable {
    /// Creates an empty table with the given rebuild policy and exponent 1.0.
    pub fn new(policy: UpdatePolicy) -> Self {
        if let UpdatePolicy::EveryEdges(k) = policy {
            assert!(k >= 1, "rebuild period must be at least 1 edge");
        }
        NegativeTable { table: None, policy, edges_since_rebuild: 0, rebuilds: 0, exponent: 1.0 }
    }

    /// Sets the frequency-smoothing exponent (0.75 = word2vec convention).
    pub fn with_exponent(mut self, exponent: f64) -> Self {
        assert!(exponent > 0.0, "exponent must be positive");
        self.exponent = exponent;
        self
    }

    /// Unconditionally rebuilds from the corpus frequencies. No-op while the
    /// corpus has no appearances yet.
    pub fn rebuild(&mut self, corpus: &WalkCorpus) {
        if corpus.total_appearances() == 0 {
            return;
        }
        let weights: Vec<f64> = if (self.exponent - 1.0).abs() < f64::EPSILON {
            corpus.frequency_weights()
        } else {
            corpus.frequency_weights().iter().map(|&w| w.powf(self.exponent)).collect()
        };
        self.table = Some(AliasTable::new(&weights));
        self.edges_since_rebuild = 0;
        self.rebuilds += 1;
    }

    /// Notifies the table that one edge was inserted; rebuilds if the policy
    /// says so. Returns whether a rebuild happened.
    pub fn on_edge_inserted(&mut self, corpus: &WalkCorpus) -> bool {
        self.edges_since_rebuild += 1;
        match self.policy {
            UpdatePolicy::EveryEdges(k) if self.edges_since_rebuild >= k => {
                self.rebuild(corpus);
                true
            }
            // Never: build once on the first opportunity, then freeze.
            UpdatePolicy::Never if self.table.is_none() => {
                self.rebuild(corpus);
                true
            }
            _ => false,
        }
    }

    /// Whether the table has been built at least once.
    pub fn is_ready(&self) -> bool {
        self.table.is_some()
    }

    /// Number of rebuilds so far (telemetry for the Fig. 7 harness).
    pub fn rebuild_count(&self) -> u64 {
        self.rebuilds
    }

    /// Draws one negative node, resampling while the draw collides with
    /// `avoid` (the positive sample — word2vec's convention).
    ///
    /// # Panics
    /// If the table has never been built.
    pub fn sample(&self, avoid: NodeId, rng: &mut Rng64) -> NodeId {
        let table = self.table.as_ref().expect("negative table not built yet");
        // A collision-only table (single outcome == avoid) would spin; cap
        // retries and accept the collision then, which only happens on
        // degenerate 1-node corpora.
        for _ in 0..64 {
            let v = table.sample(rng) as NodeId;
            if v != avoid {
                return v;
            }
        }
        table.sample(rng) as NodeId
    }

    /// Draws `k` negatives into `out` (cleared first).
    pub fn sample_into(&self, k: usize, avoid: NodeId, rng: &mut Rng64, out: &mut Vec<NodeId>) {
        out.clear();
        for _ in 0..k {
            out.push(self.sample(avoid, rng));
        }
    }

    /// Table heap size in bytes (0 before first build) — counted into the
    /// proposed model's footprint in Table 5.
    pub fn heap_bytes(&self) -> usize {
        self.table.as_ref().map_or(0, |t| t.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_with(counts: &[u64]) -> WalkCorpus {
        let mut c = WalkCorpus::new(counts.len());
        // Record synthetic walks producing exactly these counts.
        for (node, &k) in counts.iter().enumerate() {
            for _ in 0..k {
                c.record(&[node as NodeId]);
            }
        }
        c
    }

    #[test]
    fn rebuild_then_sample_respects_frequencies() {
        let corpus = corpus_with(&[0, 10, 30, 60]);
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        let mut rng = Rng64::seed_from_u64(0);
        let mut counts = [0usize; 4];
        for _ in 0..100_000 {
            counts[t.sample(u32::MAX, &mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0, "zero-frequency node drawn as negative");
        let f3 = counts[3] as f64 / 100_000.0;
        assert!((f3 - 0.6).abs() < 0.01, "freq {f3}");
    }

    #[test]
    fn avoid_is_never_returned() {
        let corpus = corpus_with(&[5, 5]);
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        let mut rng = Rng64::seed_from_u64(1);
        for _ in 0..1000 {
            assert_ne!(t.sample(1, &mut rng), 1);
        }
    }

    #[test]
    fn policy_every_k_edges() {
        let corpus = corpus_with(&[1, 1, 1]);
        let mut t = NegativeTable::new(UpdatePolicy::EveryEdges(3));
        assert!(!t.on_edge_inserted(&corpus));
        assert!(!t.on_edge_inserted(&corpus));
        assert!(t.on_edge_inserted(&corpus)); // third edge triggers
        assert_eq!(t.rebuild_count(), 1);
        assert!(!t.on_edge_inserted(&corpus));
    }

    #[test]
    fn policy_never_builds_once() {
        let corpus = corpus_with(&[1, 2]);
        let mut t = NegativeTable::new(UpdatePolicy::Never);
        assert!(t.on_edge_inserted(&corpus)); // first build
        assert_eq!(t.rebuild_count(), 1);
        for _ in 0..10 {
            assert!(!t.on_edge_inserted(&corpus));
        }
        assert_eq!(t.rebuild_count(), 1);
    }

    #[test]
    fn empty_corpus_defers_build() {
        let corpus = WalkCorpus::new(3);
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        assert!(!t.is_ready());
    }

    #[test]
    fn exponent_flattens_distribution() {
        let corpus = corpus_with(&[10, 1000]);
        let freq_of_hub = |exponent: f64| {
            let mut t = NegativeTable::new(UpdatePolicy::every_edge()).with_exponent(exponent);
            t.rebuild(&corpus);
            let mut rng = Rng64::seed_from_u64(9);
            let mut hub = 0usize;
            for _ in 0..50_000 {
                if t.sample(u32::MAX, &mut rng) == 1 {
                    hub += 1;
                }
            }
            hub as f64 / 50_000.0
        };
        let raw = freq_of_hub(1.0);
        let smooth = freq_of_hub(0.75);
        assert!(raw > smooth, "0.75 exponent should soften hub dominance ({raw} vs {smooth})");
    }

    #[test]
    fn sample_into_fills_k() {
        let corpus = corpus_with(&[3, 3, 3]);
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        let mut rng = Rng64::seed_from_u64(2);
        let mut out = Vec::new();
        t.sample_into(10, 0, &mut rng, &mut out);
        assert_eq!(out.len(), 10);
        assert!(out.iter().all(|&v| v != 0));
    }

    #[test]
    #[should_panic(expected = "not built")]
    fn sampling_before_build_panics() {
        let t = NegativeTable::new(UpdatePolicy::Never);
        let mut rng = Rng64::seed_from_u64(0);
        t.sample(0, &mut rng);
    }
}
