//! # seqge-sampling — node2vec walks and weighted sampling
//!
//! Everything between "a graph" and "a stream of training samples":
//!
//! * [`rng`] — a small, seeded, cross-platform-deterministic xoshiro256**
//!   generator for the hot sampling loops (the walk kernel calls it several
//!   times per step; determinism per seed is what makes the experiment
//!   harness reproducible).
//! * [`alias`] — Walker's alias method: O(n) table build, O(1) sampling.
//!   The paper uses it for negative sampling and studies how often the table
//!   should be rebuilt as the graph grows (Fig. 7).
//! * [`walk`] — the second-order biased random walk of node2vec (Eq. 1–2:
//!   return parameter `p`, in-out parameter `q`), plus a rejection-sampling
//!   variant used as a baseline in the benches.
//! * [`window`] — slicing a walk into (center, positives) training contexts.
//! * [`corpus`] — walk accumulation and node-frequency bookkeeping.
//! * [`negative`] — the negative-sampling table with its update policy.
//! * [`pipeline`] — overlapped walk generation: walker threads feed a
//!   consumer in deterministic walk-index order over bounded channels.

pub mod alias;
pub mod corpus;
pub mod negative;
pub mod pipeline;
pub mod preprocessed;
pub mod rng;
pub mod walk;
pub mod window;

pub use alias::AliasTable;
pub use corpus::{generate_corpus, WalkCorpus};
pub use negative::{NegativeTable, UpdatePolicy};
pub use pipeline::{generate_corpus_pipelined, stream_walks, PipelineConfig, PipelineStats};
pub use preprocessed::PreprocessedWalker;
pub use rng::{stream_seed, Rng64};
pub use walk::{Node2VecParams, StepStrategy, WalkGraph, Walker};
pub use window::{context_windows, contexts, Context, ContextWindows};
