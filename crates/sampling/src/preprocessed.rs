//! Preprocessed second-order walking — the original node2vec
//! implementation's strategy.
//!
//! Grover & Leskovec's reference code precomputes one alias table per
//! *directed edge* `(t, u)`, over `u`'s neighbors with the `α_pq` biases
//! baked in. Sampling a step is then O(1), at the cost of
//! `O(Σ_(t,u) deg(u))` preprocessing time and memory — prohibitive for
//! dense graphs (the paper's ampt/amcp would need gigabytes), which is why
//! both this repo's default walker and FPGA walkers like LightRW sample
//! on the fly. [`PreprocessedWalker`] implements the classic strategy with
//! a memory budget: edges whose tables would blow the budget fall back to
//! the on-the-fly kernel. The `walk` bench compares the two.

use crate::alias::AliasTable;
use crate::rng::Rng64;
use crate::walk::{Node2VecParams, Walker};
use seqge_graph::{Csr, NodeId};
use std::collections::HashMap;

/// Walker with per-edge alias tables (bounded by a memory budget).
pub struct PreprocessedWalker {
    params: Node2VecParams,
    /// `(prev, cur) → alias table over cur's neighbor list`.
    edge_tables: HashMap<(NodeId, NodeId), AliasTable>,
    /// First-step tables (uniform-weight case handled by the fallback).
    fallback: Walker,
    /// Entries that fit the budget.
    table_entries: usize,
}

impl PreprocessedWalker {
    /// Builds tables for every directed edge until `budget_entries` total
    /// alias entries are allocated; remaining edges use the on-the-fly
    /// fallback. Returns the walker and the fraction of directed edges that
    /// got a table.
    pub fn build(csr: &Csr, params: Node2VecParams, budget_entries: usize) -> (Self, f64) {
        params.validate().expect("invalid node2vec parameters");
        let mut edge_tables = HashMap::new();
        let mut used = 0usize;
        let mut covered = 0usize;
        let mut total = 0usize;
        let mut weights: Vec<f64> = Vec::new();
        for t in 0..csr.num_nodes() as NodeId {
            for &u in csr.neighbors(t) {
                total += 1;
                let deg_u = csr.degree(u);
                if used + deg_u > budget_entries {
                    continue;
                }
                weights.clear();
                let nbrs = csr.neighbors(u);
                let wts = csr.weights(u);
                for (&x, &w) in nbrs.iter().zip(wts) {
                    let alpha = if x == t {
                        1.0 / params.p
                    } else if csr.has_edge(t, x) {
                        1.0
                    } else {
                        1.0 / params.q
                    };
                    weights.push(alpha * w as f64);
                }
                edge_tables.insert((t, u), AliasTable::new(&weights));
                used += deg_u;
                covered += 1;
            }
        }
        let coverage = if total == 0 { 1.0 } else { covered as f64 / total as f64 };
        (
            PreprocessedWalker {
                params,
                edge_tables,
                fallback: Walker::new(params),
                table_entries: used,
            },
            coverage,
        )
    }

    /// Total alias entries allocated (memory proxy: ~8 bytes each).
    pub fn table_entries(&self) -> usize {
        self.table_entries
    }

    /// Approximate heap bytes of the preprocessed tables.
    pub fn heap_bytes(&self) -> usize {
        self.table_entries * 8 + self.edge_tables.len() * 48
    }

    /// One walk from `start` (same distribution as [`Walker::walk`]).
    pub fn walk(&mut self, csr: &Csr, start: NodeId, rng: &mut Rng64) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.params.walk_length);
        out.push(start);
        if csr.degree(start) == 0 {
            return out;
        }
        // First step: weighted by edge weight only — delegate.
        let first = {
            let mut w2 = self.fallback.walk(csr, start, rng);
            debug_assert!(w2.len() >= 2);
            w2.swap_remove(1)
        };
        out.push(first);
        let mut prev = start;
        let mut cur = first;
        while out.len() < self.params.walk_length {
            let next = match self.edge_tables.get(&(prev, cur)) {
                Some(table) => csr.neighbors(cur)[table.sample(rng)],
                None => {
                    // Budget fallback: single on-the-fly biased step.
                    self.fallback_step(csr, prev, cur, rng)
                }
            };
            out.push(next);
            prev = cur;
            cur = next;
        }
        out
    }

    /// On-the-fly biased step (cumulative inversion), for edges without a
    /// precomputed table.
    fn fallback_step(&mut self, csr: &Csr, prev: NodeId, cur: NodeId, rng: &mut Rng64) -> NodeId {
        // Reuse Walker by asking it for a two-node walk continuation: build
        // the bias weights inline (same math as Walker::step_cumulative).
        let nbrs = csr.neighbors(cur);
        let wts = csr.weights(cur);
        let mut acc = 0.0f64;
        let mut cumulative = Vec::with_capacity(nbrs.len());
        for (&x, &w) in nbrs.iter().zip(wts) {
            let alpha = if x == prev {
                1.0 / self.params.p
            } else if csr.has_edge(prev, x) {
                1.0
            } else {
                1.0 / self.params.q
            };
            acc += alpha * w as f64;
            cumulative.push(acc);
        }
        let draw = rng.next_f64() * acc;
        let idx = cumulative.partition_point(|&c| c <= draw).min(nbrs.len() - 1);
        nbrs[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_graph::generators::classic::erdos_renyi;
    use seqge_graph::Graph;

    fn params() -> Node2VecParams {
        Node2VecParams { p: 0.5, q: 2.0, walk_length: 30, walks_per_node: 1 }
    }

    #[test]
    fn full_budget_covers_everything() {
        let csr = erdos_renyi(40, 0.2, 1).to_csr();
        let (w, coverage) = PreprocessedWalker::build(&csr, params(), usize::MAX);
        assert_eq!(coverage, 1.0);
        assert!(w.table_entries() > 0);
    }

    #[test]
    fn zero_budget_covers_nothing_but_still_walks() {
        let csr = erdos_renyi(40, 0.2, 2).to_csr();
        let (mut w, coverage) = PreprocessedWalker::build(&csr, params(), 0);
        assert_eq!(coverage, 0.0);
        let mut rng = Rng64::seed_from_u64(1);
        let walk = w.walk(&csr, 0, &mut rng);
        assert_eq!(walk.len(), 30);
        for pair in walk.windows(2) {
            assert!(csr.has_edge(pair[0], pair[1]));
        }
    }

    #[test]
    fn walks_follow_edges_and_are_full_length() {
        let csr = erdos_renyi(50, 0.15, 3).to_csr();
        let (mut w, _) = PreprocessedWalker::build(&csr, params(), usize::MAX);
        let mut rng = Rng64::seed_from_u64(5);
        for start in [0u32, 10, 25] {
            let walk = w.walk(&csr, start, &mut rng);
            assert_eq!(walk[0], start);
            assert_eq!(walk.len(), 30);
            for pair in walk.windows(2) {
                assert!(csr.has_edge(pair[0], pair[1]));
            }
        }
    }

    #[test]
    fn matches_on_the_fly_distribution() {
        // From a fixed (prev, cur) state, precomputed and fallback sampling
        // must draw from the same distribution.
        let mut g = Graph::with_nodes(5);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4)] {
            g.add_edge(u, v).unwrap();
        }
        let csr = g.to_csr();
        let (mut wp, _) = PreprocessedWalker::build(&csr, params(), usize::MAX);
        let mut rng = Rng64::seed_from_u64(9);
        let mut counts_pre = [0usize; 5];
        let mut counts_fly = [0usize; 5];
        for _ in 0..40_000 {
            let table = wp.edge_tables.get(&(0, 1)).unwrap();
            counts_pre[csr.neighbors(1)[table.sample(&mut rng)] as usize] += 1;
            counts_fly[wp.fallback_step(&csr, 0, 1, &mut rng) as usize] += 1;
        }
        for i in 0..5 {
            let a = counts_pre[i] as f64 / 40_000.0;
            let b = counts_fly[i] as f64 / 40_000.0;
            assert!((a - b).abs() < 0.012, "outcome {i}: {a:.3} vs {b:.3}");
        }
    }

    #[test]
    fn isolated_start_is_singleton() {
        let g = Graph::with_nodes(3);
        let csr = g.to_csr();
        let (mut w, _) = PreprocessedWalker::build(&csr, params(), usize::MAX);
        let mut rng = Rng64::seed_from_u64(0);
        assert_eq!(w.walk(&csr, 1, &mut rng), vec![1]);
    }

    #[test]
    fn memory_grows_with_density() {
        let sparse = erdos_renyi(60, 0.05, 4).to_csr();
        let dense = erdos_renyi(60, 0.3, 4).to_csr();
        let (ws, _) = PreprocessedWalker::build(&sparse, params(), usize::MAX);
        let (wd, _) = PreprocessedWalker::build(&dense, params(), usize::MAX);
        assert!(wd.heap_bytes() > ws.heap_bytes() * 4, "quadratic blowup with density");
    }
}
