//! Seeded xoshiro256** generator.
//!
//! The sampling loops need a fast generator whose stream is identical on
//! every platform and rustc version (the experiment harness records seeds in
//! results files). xoshiro256** with a SplitMix64 seeder is the standard
//! choice; this implementation is ~30 lines and avoids coupling hot loops to
//! `rand`'s trait machinery.

/// xoshiro256** PRNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a seed via SplitMix64 expansion (a zero seed
    /// is fine — SplitMix64 never produces the all-zero state).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng64 { s: [next_sm(), next_sm(), next_sm(), next_sm()] }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    /// Panics if `bound == 0`.
    #[inline]
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform index in `[0, len)` as `usize`.
    #[inline]
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_below(len as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Splits off an independent generator (for parallel sweeps: each worker
    /// gets a decorrelated stream derived from this one).
    pub fn split(&mut self) -> Rng64 {
        Rng64::seed_from_u64(self.next_u64())
    }

    /// Creates the generator for logical stream `stream` of `seed` — see
    /// [`stream_seed`]. This is how the walk pipeline gives every walk its
    /// own decorrelated generator that depends only on `(seed, walk_index)`,
    /// never on which worker thread runs the walk.
    pub fn for_stream(seed: u64, stream: u64) -> Rng64 {
        Rng64::seed_from_u64(stream_seed(seed, stream))
    }
}

/// Mixes `(seed, stream)` into a single decorrelated seed by running two
/// rounds of the SplitMix64 finalizer over their combination.
///
/// Unlike ad-hoc mixes such as `seed ^ (stream << 32)` (which leave most
/// low bits of `stream` untouched and collide for small seeds), every input
/// bit avalanches through both multiply-xorshift rounds, so adjacent stream
/// indices produce unrelated xoshiro initial states.
pub fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(123);
        let mut b = Rng64::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_first_value_is_stable() {
        // Pin the stream so accidental algorithm changes are caught.
        let mut r = Rng64::seed_from_u64(0);
        let v = r.next_u64();
        let mut r2 = Rng64::seed_from_u64(0);
        assert_eq!(v, r2.next_u64());
        assert_ne!(v, Rng64::seed_from_u64(1).next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut r = Rng64::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_below_bounds_and_coverage() {
        let mut r = Rng64::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.gen_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_below_uniformity_rough() {
        let mut r = Rng64::seed_from_u64(5);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.gen_index(10)] += 1;
        }
        for &c in &counts {
            let expect = n as f64 / 10.0;
            assert!((c as f64 - expect).abs() < expect * 0.1, "count {c}");
        }
    }

    #[test]
    #[should_panic(expected = "gen_below(0)")]
    fn gen_below_zero_panics() {
        Rng64::seed_from_u64(0).gen_below(0);
    }

    #[test]
    fn split_streams_decorrelated() {
        let mut base = Rng64::seed_from_u64(42);
        let mut a = base.split();
        let mut b = base.split();
        let va: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_seeds_decorrelated_even_for_adjacent_streams() {
        // Small seeds and consecutive stream indices must still give
        // unrelated streams (the failure mode of shift-based mixing).
        let mut seen = std::collections::HashSet::new();
        for seed in 0..8u64 {
            for stream in 0..256u64 {
                assert!(seen.insert(stream_seed(seed, stream)), "collision at ({seed},{stream})");
            }
        }
        let mut a = Rng64::for_stream(3, 0);
        let mut b = Rng64::for_stream(3, 1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_zero_differs_from_plain_seed() {
        // for_stream(seed, 0) is its own stream, not an alias of
        // seed_from_u64(seed).
        assert_ne!(Rng64::for_stream(7, 0).next_u64(), Rng64::seed_from_u64(7).next_u64());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng64::seed_from_u64(1);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
