//! Second-order biased random walks (node2vec, Grover & Leskovec 2016).
//!
//! Transition probability from current node `u` (having arrived from `t`) to
//! a neighbor `x` is proportional to `α_pq(t, x) · w_ux` (paper Eq. 1–2):
//!
//! ```text
//! α = 1/p  if x == t            (return)
//!     1    if x adjacent to t   (stay near)
//!     1/q  otherwise            (explore)
//! ```
//!
//! Two sampling strategies are provided: exact cumulative-weight inversion
//! (O(deg) per step, what the paper's CPU presampling does) and rejection
//! sampling (O(1) expected per step for bounded bias ratios, the strategy of
//! FPGA walkers like LightRW). Both draw from the same distribution; the
//! bench suite compares their throughput.

use crate::rng::Rng64;
use seqge_graph::{Csr, Graph, NodeId};

/// Adjacency access the walk kernel needs, implemented by both the immutable
/// [`Csr`] snapshot (fast, for the static "all" scenario) and the mutable
/// [`Graph`] (for the "seq" scenario, where re-snapshotting after every
/// inserted edge would cost O(E) per edge).
pub trait WalkGraph {
    /// Number of nodes.
    fn num_nodes(&self) -> usize;
    /// Degree of `u`.
    fn degree(&self, u: NodeId) -> usize;
    /// `i`-th neighbor of `u` with its edge weight.
    fn neighbor_at(&self, u: NodeId, i: usize) -> (NodeId, f32);
    /// Whether `(u, v)` is an edge.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;
}

impl WalkGraph for Csr {
    #[inline]
    fn num_nodes(&self) -> usize {
        Csr::num_nodes(self)
    }
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        Csr::degree(self, u)
    }
    #[inline]
    fn neighbor_at(&self, u: NodeId, i: usize) -> (NodeId, f32) {
        (self.neighbors(u)[i], self.weights(u)[i])
    }
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Csr::has_edge(self, u, v)
    }
}

impl WalkGraph for Graph {
    #[inline]
    fn num_nodes(&self) -> usize {
        Graph::num_nodes(self)
    }
    #[inline]
    fn degree(&self, u: NodeId) -> usize {
        Graph::degree(self, u)
    }
    #[inline]
    fn neighbor_at(&self, u: NodeId, i: usize) -> (NodeId, f32) {
        self.neighbors(u)[i]
    }
    #[inline]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }
}

/// node2vec walk hyper-parameters (paper Table 2 defaults).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Node2VecParams {
    /// Return parameter `p` (Table 2: 0.5).
    pub p: f64,
    /// In-out parameter `q` (Table 2: 1.0).
    pub q: f64,
    /// Walk length `l` (Table 2: 80).
    pub walk_length: usize,
    /// Walks per node `r` (Table 2: 10).
    pub walks_per_node: usize,
}

impl Default for Node2VecParams {
    fn default() -> Self {
        Node2VecParams { p: 0.5, q: 1.0, walk_length: 80, walks_per_node: 10 }
    }
}

impl Node2VecParams {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.p <= 0.0 || self.q <= 0.0 || !self.p.is_finite() || !self.q.is_finite() {
            return Err("p and q must be positive".into());
        }
        if self.walk_length < 2 {
            return Err("walk_length must be at least 2".into());
        }
        if self.walks_per_node == 0 {
            return Err("walks_per_node must be at least 1".into());
        }
        Ok(())
    }
}

/// Sampling strategy for the biased step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStrategy {
    /// Exact O(deg) cumulative inversion.
    Cumulative,
    /// Rejection sampling against the max bias (O(1) expected).
    Rejection,
}

/// A reusable walk generator over a CSR snapshot.
#[derive(Debug, Clone)]
pub struct Walker {
    params: Node2VecParams,
    strategy: StepStrategy,
    /// Scratch cumulative-weight buffer, reused across steps to avoid
    /// per-step allocation (workhorse-collection idiom).
    scratch: Vec<f64>,
}

impl Walker {
    /// Creates a walker with the exact (cumulative) step strategy.
    pub fn new(params: Node2VecParams) -> Self {
        params.validate().expect("invalid node2vec parameters");
        Walker { params, strategy: StepStrategy::Cumulative, scratch: Vec::new() }
    }

    /// Creates a walker with an explicit step strategy.
    pub fn with_strategy(params: Node2VecParams, strategy: StepStrategy) -> Self {
        params.validate().expect("invalid node2vec parameters");
        Walker { params, strategy, scratch: Vec::new() }
    }

    /// The walk parameters.
    pub fn params(&self) -> &Node2VecParams {
        &self.params
    }

    /// Performs one walk from `start`, appending nodes into `out` (cleared
    /// first). A walk from an isolated node is just `[start]`; otherwise the
    /// walk has exactly `walk_length` nodes.
    pub fn walk_into<G: WalkGraph>(
        &mut self,
        csr: &G,
        start: NodeId,
        rng: &mut Rng64,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        out.push(start);
        if csr.degree(start) == 0 {
            return;
        }
        // First step: weighted by edge weight only (no previous node yet).
        let first = weighted_neighbor(csr, start, rng, &mut self.scratch);
        out.push(first);
        let mut prev = start;
        let mut cur = first;
        while out.len() < self.params.walk_length {
            let next = match self.strategy {
                StepStrategy::Cumulative => self.step_cumulative(csr, prev, cur, rng),
                StepStrategy::Rejection => self.step_rejection(csr, prev, cur, rng),
            };
            out.push(next);
            prev = cur;
            cur = next;
        }
    }

    /// Convenience wrapper allocating the output.
    pub fn walk<G: WalkGraph>(&mut self, csr: &G, start: NodeId, rng: &mut Rng64) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.params.walk_length);
        self.walk_into(csr, start, rng, &mut out);
        out
    }

    /// One biased step by exact cumulative inversion.
    fn step_cumulative<G: WalkGraph>(
        &mut self,
        csr: &G,
        prev: NodeId,
        cur: NodeId,
        rng: &mut Rng64,
    ) -> NodeId {
        let deg = csr.degree(cur);
        debug_assert!(deg > 0, "undirected walk can always return");
        self.scratch.clear();
        let mut acc = 0.0f64;
        for i in 0..deg {
            let (x, w) = csr.neighbor_at(cur, i);
            acc += self.bias(csr, prev, x) * w as f64;
            self.scratch.push(acc);
        }
        let draw = rng.next_f64() * acc;
        let idx = self.scratch.partition_point(|&c| c <= draw).min(deg - 1);
        csr.neighbor_at(cur, idx).0
    }

    /// One biased step by rejection sampling: propose by edge weight, accept
    /// with probability `α / α_max`.
    fn step_rejection<G: WalkGraph>(
        &mut self,
        csr: &G,
        prev: NodeId,
        cur: NodeId,
        rng: &mut Rng64,
    ) -> NodeId {
        let alpha_max = (1.0 / self.params.p).max(1.0).max(1.0 / self.params.q);
        loop {
            let x = weighted_neighbor(csr, cur, rng, &mut self.scratch);
            let alpha = self.bias(csr, prev, x);
            if rng.next_f64() * alpha_max < alpha {
                return x;
            }
        }
    }

    /// The α_pq bias term for candidate `x` given previous node `prev`.
    #[inline]
    fn bias<G: WalkGraph>(&self, csr: &G, prev: NodeId, x: NodeId) -> f64 {
        if x == prev {
            1.0 / self.params.p
        } else if csr.has_edge(prev, x) {
            1.0
        } else {
            1.0 / self.params.q
        }
    }
}

/// Samples a neighbor of `u` proportionally to edge weight (first-order step).
fn weighted_neighbor<G: WalkGraph>(
    csr: &G,
    u: NodeId,
    rng: &mut Rng64,
    scratch: &mut Vec<f64>,
) -> NodeId {
    let deg = csr.degree(u);
    // Fast path: unweighted graphs (all 1.0) dominate the evaluation.
    if (0..deg).all(|i| csr.neighbor_at(u, i).1 == 1.0) {
        return csr.neighbor_at(u, rng.gen_index(deg)).0;
    }
    scratch.clear();
    let mut acc = 0.0f64;
    for i in 0..deg {
        acc += csr.neighbor_at(u, i).1 as f64;
        scratch.push(acc);
    }
    let draw = rng.next_f64() * acc;
    let idx = scratch.partition_point(|&c| c <= draw).min(deg - 1);
    csr.neighbor_at(u, idx).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_graph::generators::classic::{path, ring, star};
    use seqge_graph::Graph;

    fn params(p: f64, q: f64, l: usize) -> Node2VecParams {
        Node2VecParams { p, q, walk_length: l, walks_per_node: 1 }
    }

    #[test]
    fn walk_has_requested_length() {
        let csr = ring(10).to_csr();
        let mut w = Walker::new(params(0.5, 1.0, 80));
        let mut rng = Rng64::seed_from_u64(0);
        let walk = w.walk(&csr, 3, &mut rng);
        assert_eq!(walk.len(), 80);
        assert_eq!(walk[0], 3);
    }

    #[test]
    fn consecutive_nodes_are_adjacent() {
        let csr = seqge_graph::generators::classic::erdos_renyi(50, 0.2, 1).to_csr();
        let mut w = Walker::new(params(0.5, 2.0, 40));
        let mut rng = Rng64::seed_from_u64(5);
        for start in [0u32, 10, 20] {
            let walk = w.walk(&csr, start, &mut rng);
            for pair in walk.windows(2) {
                assert!(csr.has_edge(pair[0], pair[1]), "walk steps must follow edges");
            }
        }
    }

    #[test]
    fn isolated_node_walk_is_singleton() {
        let g = Graph::with_nodes(3);
        let csr = g.to_csr();
        let mut w = Walker::new(params(0.5, 1.0, 10));
        let mut rng = Rng64::seed_from_u64(0);
        assert_eq!(w.walk(&csr, 1, &mut rng), vec![1]);
    }

    #[test]
    fn deterministic_per_seed() {
        let csr = ring(20).to_csr();
        let mut w = Walker::new(Node2VecParams::default());
        let a = w.walk(&csr, 0, &mut Rng64::seed_from_u64(9));
        let b = w.walk(&csr, 0, &mut Rng64::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn low_p_increases_backtracking() {
        // On a star, from a leaf every step goes to the hub; from the hub,
        // returning to the previous leaf has bias 1/p vs 1/q for others.
        // Count immediate backtracks hub→same-leaf over many steps.
        let csr = star(21).to_csr(); // hub 0, leaves 1..21
        let backtrack_rate = |p: f64, q: f64, seed: u64| {
            let mut w = Walker::new(params(p, q, 2000));
            let mut rng = Rng64::seed_from_u64(seed);
            let walk = w.walk(&csr, 1, &mut rng);
            // Triples (leaf, hub, x): backtrack when x == leaf.
            let mut total = 0usize;
            let mut back = 0usize;
            for t in walk.windows(3) {
                if t[1] == 0 {
                    total += 1;
                    if t[2] == t[0] {
                        back += 1;
                    }
                }
            }
            back as f64 / total as f64
        };
        let low_p = backtrack_rate(0.1, 1.0, 42); // strong return bias
        let high_p = backtrack_rate(10.0, 1.0, 42); // strong anti-return bias
        assert!(
            low_p > 3.0 * high_p,
            "return bias not expressed: low_p={low_p:.3} high_p={high_p:.3}"
        );
    }

    #[test]
    fn low_q_encourages_exploration_on_path() {
        // On a path, from node i (arrived from i-1) candidates are i-1
        // (α=1/p) and i+1 (α=1/q). Small q should push the walk outward.
        let csr = path(200).to_csr();
        let end_pos = |q: f64| {
            let mut w = Walker::new(params(1.0, q, 100));
            let mut rng = Rng64::seed_from_u64(7);
            let walk = w.walk(&csr, 0, &mut rng);
            *walk.last().unwrap()
        };
        assert!(end_pos(0.1) > end_pos(10.0), "low q should travel farther");
    }

    #[test]
    fn rejection_matches_cumulative_distribution() {
        // Same graph, same (p, q): empirical next-step distribution from a
        // fixed (prev, cur) state must agree between strategies.
        let mut g = Graph::with_nodes(5);
        // prev = 0, cur = 1; candidates: 0 (return), 2 (adjacent to 0), 3, 4.
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (1, 4)] {
            g.add_edge(u, v).unwrap();
        }
        let csr = g.to_csr();
        let p = Node2VecParams { p: 0.5, q: 2.0, walk_length: 3, walks_per_node: 1 };
        let empirical = |strategy: StepStrategy, seed: u64| {
            let mut w = Walker::with_strategy(p, strategy);
            let mut rng = Rng64::seed_from_u64(seed);
            let mut counts = [0usize; 5];
            for _ in 0..60_000 {
                let next = match strategy {
                    StepStrategy::Cumulative => w.step_cumulative(&csr, 0, 1, &mut rng),
                    StepStrategy::Rejection => w.step_rejection(&csr, 0, 1, &mut rng),
                };
                counts[next as usize] += 1;
            }
            counts.map(|c| c as f64 / 60_000.0)
        };
        let a = empirical(StepStrategy::Cumulative, 1);
        let b = empirical(StepStrategy::Rejection, 2);
        for i in 0..5 {
            assert!((a[i] - b[i]).abs() < 0.01, "outcome {i}: {} vs {}", a[i], b[i]);
        }
        // And check against the analytic distribution:
        // weights: 0 → 1/p = 2, 2 → 1 (adjacent to prev), 3 → 1/q = 0.5, 4 → 0.5.
        let total = 2.0 + 1.0 + 0.5 + 0.5;
        assert!((a[0] - 2.0 / total).abs() < 0.01);
        assert!((a[2] - 1.0 / total).abs() < 0.01);
        assert!((a[3] - 0.5 / total).abs() < 0.01);
    }

    #[test]
    fn respects_edge_weights_on_first_step() {
        let mut g = Graph::with_nodes(3);
        g.add_weighted_edge(0, 1, 9.0).unwrap();
        g.add_weighted_edge(0, 2, 1.0).unwrap();
        let csr = g.to_csr();
        let mut w = Walker::new(params(1.0, 1.0, 2));
        let mut rng = Rng64::seed_from_u64(3);
        let mut to1 = 0;
        for _ in 0..10_000 {
            if w.walk(&csr, 0, &mut rng)[1] == 1 {
                to1 += 1;
            }
        }
        let f = to1 as f64 / 10_000.0;
        assert!((f - 0.9).abs() < 0.02, "weighted first step freq {f}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(params(0.0, 1.0, 10).validate().is_err());
        assert!(params(1.0, -1.0, 10).validate().is_err());
        assert!(params(1.0, 1.0, 1).validate().is_err());
        assert!(Node2VecParams { walks_per_node: 0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn default_params_match_table2() {
        let d = Node2VecParams::default();
        assert_eq!((d.p, d.q, d.walks_per_node, d.walk_length), (0.5, 1.0, 10, 80));
    }
}
