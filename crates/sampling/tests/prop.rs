//! Property-based tests for the walk and sampling layer.

use proptest::prelude::*;
use seqge_graph::generators::classic::erdos_renyi;
use seqge_sampling::{contexts, Node2VecParams, Rng64, StepStrategy, Walker};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every consecutive pair in a walk is an edge; the walk starts at the
    /// start node and has the requested length when the start isn't isolated.
    #[test]
    fn walks_follow_edges(
        n in 10usize..50,
        p in 0.05f64..0.4,
        seed in any::<u64>(),
        pq in (0.25f64..4.0, 0.25f64..4.0),
        strategy in prop_oneof![Just(StepStrategy::Cumulative), Just(StepStrategy::Rejection)],
    ) {
        let g = erdos_renyi(n, p, seed);
        let csr = g.to_csr();
        let params = Node2VecParams { p: pq.0, q: pq.1, walk_length: 30, walks_per_node: 1 };
        let mut walker = Walker::with_strategy(params, strategy);
        let mut rng = Rng64::seed_from_u64(seed ^ 0xF00D);
        for start in 0..n as u32 {
            let walk = walker.walk(&csr, start, &mut rng);
            prop_assert_eq!(walk[0], start);
            if csr.degree(start) == 0 {
                prop_assert_eq!(walk.len(), 1);
            } else {
                prop_assert_eq!(walk.len(), 30);
                for w in walk.windows(2) {
                    prop_assert!(csr.has_edge(w[0], w[1]), "non-edge step {:?}", w);
                }
            }
        }
    }

    /// Context extraction covers the right geometry for any walk length.
    #[test]
    fn context_geometry(len in 2usize..120, w in 2usize..12) {
        let walk: Vec<u32> = (0..len as u32).collect();
        let ctxs = contexts(&walk, w);
        if len >= w {
            prop_assert_eq!(ctxs.len(), len - w + 1);
            for (i, c) in ctxs.iter().enumerate() {
                prop_assert_eq!(c.center, i as u32);
                prop_assert_eq!(c.positives.len(), w - 1);
            }
        } else {
            prop_assert_eq!(ctxs.len(), 1);
            prop_assert_eq!(ctxs[0].positives.len(), len - 1);
        }
    }

    /// Walks are deterministic per (seed, strategy) and differ across seeds
    /// on graphs with real branching.
    #[test]
    fn walk_determinism(seed in any::<u64>()) {
        let g = erdos_renyi(30, 0.3, 7);
        let csr = g.to_csr();
        let params = Node2VecParams { walk_length: 25, ..Default::default() };
        let mut w1 = Walker::new(params);
        let mut w2 = Walker::new(params);
        let a = w1.walk(&csr, 0, &mut Rng64::seed_from_u64(seed));
        let b = w2.walk(&csr, 0, &mut Rng64::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }
}
