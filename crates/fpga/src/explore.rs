//! Design-space exploration (extension).
//!
//! §4.5 closes with: "A further speedup by higher parallelism would be
//! possible if more BRAM and DSP resources are available." This module makes
//! that quantitative: enumerate architectural variants (MAC-lane counts,
//! β-port widths, weight-cache sizes), price each with the calibrated
//! resource estimator and timing model, and report the best build that fits
//! a given device — the XCZU7EV, or a larger part.

use crate::device::FpgaDevice;
use crate::resources::{estimate_resources, AcceleratorDesign};
use crate::timing::TimingModel;

/// One explored design point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct DesignPoint {
    /// The architectural parameters.
    pub design: AcceleratorDesign,
    /// β-port width in bytes/cycle (the timing model's bandwidth knob).
    pub port_bytes: u32,
    /// Modeled paper-protocol walk latency (ms).
    pub walk_ms: f64,
    /// Whether the build fits the device.
    pub fits: bool,
    /// DSP slices used.
    pub dsp: u32,
    /// BRAM36 used.
    pub bram: u32,
}

/// Larger UltraScale+ parts for the "what if" sweep.
pub const XCZU9EG: FpgaDevice =
    FpgaDevice { name: "XCZU9EG", bram36: 912, dsp: 2520, ff: 548_160, lut: 274_080 };
/// The biggest common ZU+ MPSoC.
pub const XCZU15EG: FpgaDevice =
    FpgaDevice { name: "XCZU15EG", bram36: 744, dsp: 3528, ff: 682_560, lut: 341_280 };

/// Enumerates design variants for `dim` on `device`: lane counts from the
/// paper's build upward, and β-port widths 36/72/144 B (1×/2×/4× BRAM port
/// groups; widening the port needs proportionally more β-bandwidth banks).
pub fn explore(dim: usize, device: &FpgaDevice) -> Vec<DesignPoint> {
    let base = AcceleratorDesign::for_dim(dim);
    let mut points = Vec::new();
    for lane_mult in [1.0f64, 1.5, 2.0, 3.0] {
        for (port_mult, port_bytes) in [(1u32, 36u32), (2, 72), (4, 144)] {
            let design = AcceleratorDesign {
                mac_lanes: (base.mac_lanes as f64 * lane_mult).round() as u32,
                // Wider ports need more interleaved banks for bandwidth.
                weight_cache_banks: base.weight_cache_banks * port_mult,
                ..base
            };
            let mut est = estimate_resources(&design);
            // Port widening adds β-bandwidth banks beyond the cache growth.
            est.bram36 += 16 * (port_mult - 1);
            let timing = TimingModel { port_bytes, ..TimingModel::default() };
            // More lanes shorten the compute II; the timing model takes the
            // max of traffic and compute, so faster ports translate directly
            // until compute binds.
            let walk = timing.walk_timing(&design, 73, 77);
            points.push(DesignPoint {
                design,
                port_bytes,
                walk_ms: walk.millis(timing.clock_mhz),
                fits: device.fits(est.bram36, est.dsp, est.ff, est.lut),
                dsp: est.dsp,
                bram: est.bram36,
            });
        }
    }
    points
}

/// The fastest feasible design for `dim` on `device`, if any fits.
pub fn best_feasible(dim: usize, device: &FpgaDevice) -> Option<DesignPoint> {
    explore(dim, device)
        .into_iter()
        .filter(|p| p.fits)
        .min_by(|a, b| a.walk_ms.total_cmp(&b.walk_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_build_is_feasible_on_zcu104() {
        let best = best_feasible(32, &FpgaDevice::XCZU7EV).expect("some build fits");
        assert!(best.fits);
        // The paper's own build (1× lanes, 36 B port) must be in the set.
        let points = explore(32, &FpgaDevice::XCZU7EV);
        assert!(points.iter().any(|p| p.port_bytes == 36 && p.design.mac_lanes == 457 && p.fits));
    }

    #[test]
    fn bigger_device_unlocks_faster_designs() {
        // §4.5's claim, quantified: on a larger part, the best feasible
        // build is strictly faster than on the XCZU7EV.
        for dim in [32usize, 96] {
            let small = best_feasible(dim, &FpgaDevice::XCZU7EV).unwrap();
            let large = best_feasible(dim, &XCZU15EG).unwrap();
            assert!(
                large.walk_ms < small.walk_ms,
                "d={dim}: {} ms on ZU15 vs {} ms on ZU7",
                large.walk_ms,
                small.walk_ms
            );
        }
    }

    #[test]
    fn lane_tripling_alone_does_not_fit_zcu7ev() {
        // DSP is the binding resource (Table 6: 80–91 % used), so 3× lanes
        // must be infeasible on the paper's device.
        let points = explore(64, &FpgaDevice::XCZU7EV);
        let tripled: Vec<_> = points.iter().filter(|p| p.design.mac_lanes > 1500).collect();
        assert!(!tripled.is_empty());
        assert!(tripled.iter().all(|p| !p.fits), "3x lanes should blow the DSP budget");
    }

    #[test]
    fn wider_port_helps_when_traffic_bound() {
        // The kernel is column-traffic bound; the payload share of the
        // traffic grows with d, so the port-width lever bites hardest at
        // d = 96 (at d = 32 the per-column overhead dominates and widening
        // buys only a few percent).
        let at = |dim: usize, port: u32| {
            explore(dim, &XCZU15EG)
                .into_iter()
                .find(|p| {
                    p.port_bytes == port
                        && p.design.mac_lanes == AcceleratorDesign::for_dim(dim).mac_lanes
                })
                .unwrap()
        };
        let narrow96 = at(96, 36);
        let wide96 = at(96, 72);
        assert!(
            wide96.walk_ms < narrow96.walk_ms * 0.92,
            "{} vs {}",
            wide96.walk_ms,
            narrow96.walk_ms
        );
        // And monotone at d=32 too, just with a smaller margin.
        assert!(at(32, 72).walk_ms < at(32, 36).walk_ms);
    }
}
