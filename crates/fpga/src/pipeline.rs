//! Per-stage initiation-interval model of the four-stage dataflow kernel.
//!
//! Algorithm 2 splits one context into four stages:
//!
//! 1. fetch `β[center]`, scale by `μ` → `H`
//! 2. `P·Hᵀ`, `H·P·Hᵀ` (matrix–vector + reduction)
//! 3. per-sample errors `y − H·β[sample]` (77 dot products at paper params)
//! 4. `hpht_inv`, `ΔP`, `Δβ` accumulation
//!
//! With the dataflow pragma the stages overlap across contexts, so the
//! steady-state throughput is set by the *slowest* stage plus the shared
//! β-port traffic. §4.5: the base lane count is 32, raised to 48/64 for
//! parts of the d = 64/96 builds "so that execution times of pipeline stages
//! are equalized".

/// Lane widths of each stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StageLanes {
    /// Stage 1 (H fetch/scale).
    pub s1: u32,
    /// Stage 2 (P·Hᵀ / HPHᵀ).
    pub s2: u32,
    /// Stage 3 (sample dot products).
    pub s3: u32,
    /// Stage 4 (ΔP / Δβ accumulation).
    pub s4: u32,
}

impl StageLanes {
    /// Paper configuration per dimension (§4.5).
    pub fn for_dim(dim: usize) -> Self {
        match dim {
            d if d <= 32 => StageLanes { s1: 32, s2: 32, s3: 32, s4: 32 },
            d if d <= 64 => StageLanes { s1: 32, s2: 48, s3: 48, s4: 48 },
            _ => StageLanes { s1: 32, s2: 64, s3: 48, s4: 64 },
        }
    }
}

/// Initiation intervals (cycles per context) of each stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct StageIntervals {
    /// Stage 1 II.
    pub s1: u64,
    /// Stage 2 II.
    pub s2: u64,
    /// Stage 3 II.
    pub s3: u64,
    /// Stage 4 II.
    pub s4: u64,
}

impl StageIntervals {
    /// Steady-state interval: the slowest stage.
    pub fn bottleneck(&self) -> u64 {
        self.s1.max(self.s2).max(self.s3).max(self.s4)
    }

    /// Pipeline fill latency (sum of all stages once).
    pub fn fill(&self) -> u64 {
        self.s1 + self.s2 + self.s3 + self.s4
    }
}

/// Fixed pipeline latencies.
const DIVIDER_LATENCY: u64 = 28; // 32-bit fixed reciprocal
const REDUCTION_LATENCY: u64 = 6; // adder tree depth at 32–64 lanes

/// Computes per-stage IIs for `dim` with `samples` trained per context
/// (paper: 7 positives × (1 + 10) = 77).
pub fn stage_intervals(dim: usize, samples: usize) -> StageIntervals {
    let lanes = StageLanes::for_dim(dim);
    let d = dim as u64;
    let chunks = |width: u64, l: u32| width.div_ceil(l as u64);
    StageIntervals {
        // Stage 1: read+scale d values, lanes-wide.
        s1: chunks(d, lanes.s1) + 2,
        // Stage 2: d rows of a d-wide MAC each, rows pipelined at II=chunks.
        s2: d * chunks(d, lanes.s2) / d.min(lanes.s2 as u64).max(1)
            + chunks(d, lanes.s2)
            + REDUCTION_LATENCY,
        // Stage 3: one dot product per sample, lanes-wide reduction.
        s3: samples as u64 * chunks(d, lanes.s3) + REDUCTION_LATENCY,
        // Stage 4: divider + rank-1 ΔP rows + Δβ columns.
        s4: DIVIDER_LATENCY
            + d * chunks(d, lanes.s4) / d.min(lanes.s4 as u64).max(1)
            + samples as u64 * chunks(d, lanes.s4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_config_matches_paper() {
        assert_eq!(StageLanes::for_dim(32), StageLanes { s1: 32, s2: 32, s3: 32, s4: 32 });
        let l64 = StageLanes::for_dim(64);
        assert!(l64.s2 == 48 && l64.s4 == 48, "d=64 uses partial 48 lanes");
        let l96 = StageLanes::for_dim(96);
        assert!(l96.s2 == 64 && l96.s4 == 64, "d=96 uses partial 64 lanes");
    }

    #[test]
    fn intervals_grow_with_dim_sublinearly() {
        // Lane widening is exactly what keeps stage times near-equal across
        // dims (§4.5) — check II growth is well below 3× from d=32→96.
        let i32_ = stage_intervals(32, 77).bottleneck();
        let i96 = stage_intervals(96, 77).bottleneck();
        assert!(i96 > i32_, "more work at higher dim");
        assert!((i96 as f64) < 3.0 * i32_ as f64, "lane widening must damp growth: {i32_} → {i96}");
    }

    #[test]
    fn stage3_dominates_compute_at_paper_params() {
        // 77 samples per context make the sample stage the largest compute
        // stage in every build.
        for dim in [32usize, 64, 96] {
            let ii = stage_intervals(dim, 77);
            assert_eq!(ii.bottleneck(), ii.s3.max(ii.s4), "d={dim}: {ii:?}");
        }
    }

    #[test]
    fn fill_exceeds_bottleneck() {
        let ii = stage_intervals(64, 77);
        assert!(ii.fill() > ii.bottleneck());
    }

    #[test]
    fn fewer_samples_shrink_stage3() {
        let a = stage_intervals(32, 77);
        let b = stage_intervals(32, 11);
        assert!(b.s3 < a.s3);
    }
}
