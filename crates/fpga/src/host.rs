//! The CPU side of the paper's system (§3.2).
//!
//! "First, nodes are sampled from a graph using random walk by the CPU. The
//! obtained result of a single random walk and negative samples necessary
//! for training are pre-sampled by the CPU. These samples are transferred to
//! the programmable logic part via a DMA controller."
//!
//! [`HostDriver`] owns the walker, corpus, and negative table; it streams
//! pre-sampled walks into the [`Accelerator`] and reports both the modeled
//! PL time and the measured host-side pre-sampling time.

use crate::accelerator::Accelerator;
use seqge_core::model::EmbeddingModel;
use seqge_core::{train_all_pipelined, OsElmConfig, PipelinedOutcome, TrainConfig};
use seqge_graph::Graph;
use seqge_linalg::Mat;
use seqge_sampling::{generate_corpus, NegativeTable, Rng64, UpdatePolicy, Walker};
use std::time::Instant;

/// Outcome of one host-driven training run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HostReport {
    /// Walks streamed to the accelerator.
    pub walks: u64,
    /// Modeled PL cycles.
    pub accel_cycles: u64,
    /// Modeled PL time in ms.
    pub accel_ms: f64,
    /// Measured host-side time (walk generation + pre-sampling) in ms.
    pub host_ms: f64,
}

/// Outcome of a pipelined host-driven run: host-side pipeline telemetry
/// plus the modeled accelerator cost of the same walks.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HostPipelineReport {
    /// Host-side generation/training telemetry.
    pub pipeline: PipelinedOutcome,
    /// Contexts trained on the fabric.
    pub contexts: u64,
    /// Modeled PL cycles.
    pub accel_cycles: u64,
    /// Modeled PL time in ms.
    pub accel_ms: f64,
}

impl HostPipelineReport {
    /// End-to-end trained walks per wall-clock second.
    pub fn walks_per_sec(&self) -> f64 {
        if self.pipeline.wall_ms <= 0.0 {
            return 0.0;
        }
        self.pipeline.walks_trained as f64 / (self.pipeline.wall_ms / 1e3)
    }

    /// End-to-end trained contexts per wall-clock second.
    pub fn contexts_per_sec(&self) -> f64 {
        if self.pipeline.wall_ms <= 0.0 {
            return 0.0;
        }
        self.contexts as f64 / (self.pipeline.wall_ms / 1e3)
    }

    /// Fraction of ideal serial time hidden by the overlap (see
    /// [`PipelinedOutcome::overlap_ratio`]).
    pub fn overlap_ratio(&self) -> f64 {
        self.pipeline.overlap_ratio()
    }
}

/// Host driver wrapping an accelerator instance.
#[derive(Debug)]
pub struct HostDriver {
    accel: Accelerator,
    cfg: TrainConfig,
}

impl HostDriver {
    /// Creates a driver for graphs of `num_nodes` nodes.
    pub fn new(num_nodes: usize, cfg: TrainConfig, oselm: OsElmConfig) -> Self {
        assert_eq!(cfg.model.dim, oselm.model.dim, "config dims must agree");
        HostDriver { accel: Accelerator::new(num_nodes, oselm), cfg }
    }

    /// Runs the "all"-scenario training of `g` through the accelerator.
    pub fn train_all(&mut self, g: &Graph, seed: u64) -> HostReport {
        let host_start = Instant::now();
        let csr = g.to_csr();
        let mut walker = Walker::new(self.cfg.walk);
        let mut rng = Rng64::seed_from_u64(seed);
        let (corpus, walks) = generate_corpus(&csr, &mut walker, &mut rng);
        let mut table = NegativeTable::new(UpdatePolicy::every_edge());
        table.rebuild(&corpus);
        let host_ms = host_start.elapsed().as_secs_f64() * 1e3;
        let cycles_before = self.accel.stats.cycles;
        if table.is_ready() {
            for walk in &walks {
                self.accel.train_walk(walk, &table, &mut rng);
            }
        }
        let clock = self.accel.design().clock_mhz;
        HostReport {
            walks: walks.len() as u64,
            accel_cycles: self.accel.stats.cycles - cycles_before,
            accel_ms: (self.accel.stats.cycles - cycles_before) as f64 / (clock as f64 * 1e3),
            host_ms,
        }
    }

    /// Runs the "all" scenario with overlapped walk generation: walker
    /// threads presample walks while this thread streams them into the
    /// accelerator (the host-side analogue of the paper's CPU-presamples /
    /// PL-trains split, §3.2). Deterministic per seed, independent of
    /// `threads`; see [`seqge_core::sequential::train_all_pipelined`] for
    /// the protocol details.
    pub fn train_all_pipelined(
        &mut self,
        g: &Graph,
        seed: u64,
        threads: usize,
    ) -> HostPipelineReport {
        let cycles_before = self.accel.stats.cycles;
        let contexts_before = self.accel.stats.contexts;
        let cfg = self.cfg;
        let pipeline = train_all_pipelined(g, &mut self.accel, &cfg, seed, threads);
        let cycles = self.accel.stats.cycles - cycles_before;
        let clock = self.accel.design().clock_mhz;
        HostPipelineReport {
            pipeline,
            contexts: self.accel.stats.contexts - contexts_before,
            accel_cycles: cycles,
            accel_ms: cycles as f64 / (clock as f64 * 1e3),
        }
    }

    /// Runs the paper's "seq" scenario (§4.3.2) through the accelerator:
    /// spanning-forest start, then per-edge walks from both endpoints of
    /// each inserted edge, all trained on the simulated fabric.
    pub fn train_seq(&mut self, full: &Graph, seed: u64, edge_fraction: f64) -> HostReport {
        use seqge_graph::{spanning_forest, EdgeStream};
        let host_start = Instant::now();
        let split = spanning_forest(full);
        let mut g = split.initial_graph(full);
        let stream = EdgeStream::from_forest_split(&split, seed ^ 0xED6E).subsample(edge_fraction);
        let mut walker = Walker::new(self.cfg.walk);
        let mut rng = Rng64::seed_from_u64(seed);
        let cycles_before = self.accel.stats.cycles;
        let mut walks_trained = 0u64;

        // Initial forest pass.
        let (mut corpus, walks) = generate_corpus(&g.to_csr(), &mut walker, &mut rng);
        let mut table = NegativeTable::new(UpdatePolicy::every_edge());
        table.rebuild(&corpus);
        let host_ms = host_start.elapsed().as_secs_f64() * 1e3;
        if table.is_ready() {
            for walk in &walks {
                self.accel.train_walk(walk, &table, &mut rng);
                walks_trained += 1;
            }
        }
        // Per-edge phase.
        let mut buf = Vec::with_capacity(self.cfg.walk.walk_length);
        for (u, v) in stream.iter() {
            g.add_edge(u, v).expect("stream edges insert once");
            for start in [u, v] {
                walker.walk_into(&g, start, &mut rng, &mut buf);
                if buf.len() < 2 {
                    continue;
                }
                corpus.record(&buf);
                if !table.is_ready() {
                    table.rebuild(&corpus);
                }
                if table.is_ready() {
                    self.accel.train_walk(&buf, &table, &mut rng);
                    walks_trained += 1;
                }
            }
            table.on_edge_inserted(&corpus);
        }
        let clock = self.accel.design().clock_mhz;
        HostReport {
            walks: walks_trained,
            accel_cycles: self.accel.stats.cycles - cycles_before,
            accel_ms: (self.accel.stats.cycles - cycles_before) as f64 / (clock as f64 * 1e3),
            host_ms,
        }
    }

    /// The accelerator's current embedding.
    pub fn embedding(&self) -> Mat<f32> {
        self.accel.embedding()
    }

    /// Immutable accelerator access.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    /// Mutable accelerator access (timing what-ifs, direct walk feeds).
    pub fn accelerator_mut(&mut self) -> &mut Accelerator {
        &mut self.accel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_core::ModelConfig;
    use seqge_graph::generators::classic::erdos_renyi;
    use seqge_sampling::Node2VecParams;

    fn cfgs(dim: usize) -> (TrainConfig, OsElmConfig) {
        let model =
            ModelConfig { dim, window: 4, negative_samples: 3, ..ModelConfig::paper_defaults(dim) };
        let train = TrainConfig {
            walk: Node2VecParams { walk_length: 12, walks_per_node: 2, ..Default::default() },
            model,
        };
        let oselm = OsElmConfig { model, ..OsElmConfig::paper_defaults(dim) };
        (train, oselm)
    }

    #[test]
    fn train_all_reports_consistent_numbers() {
        let g = erdos_renyi(30, 0.2, 1);
        let (train, oselm) = cfgs(8);
        let mut driver = HostDriver::new(30, train, oselm);
        let report = driver.train_all(&g, 7);
        assert_eq!(report.walks, 60, "2 walks per node on a connected-ish graph");
        assert!(report.accel_cycles > 0);
        assert!(report.accel_ms > 0.0);
        assert!(report.host_ms >= 0.0);
        let emb = driver.embedding();
        assert_eq!(emb.rows(), 30);
        assert!(emb.all_finite());
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let g = Graph::with_nodes(5);
        let (train, oselm) = cfgs(4);
        let mut driver = HostDriver::new(5, train, oselm);
        let report = driver.train_all(&g, 1);
        assert_eq!(report.walks, 0);
        assert_eq!(report.accel_cycles, 0);
    }

    #[test]
    fn pipelined_host_run_matches_thread_counts_and_reports_throughput() {
        let g = erdos_renyi(30, 0.2, 1);
        let (train, oselm) = cfgs(8);
        let mut d1 = HostDriver::new(30, train, oselm);
        let r1 = d1.train_all_pipelined(&g, 7, 1);
        let mut d4 = HostDriver::new(30, train, oselm);
        let r4 = d4.train_all_pipelined(&g, 7, 4);
        assert_eq!(d1.embedding(), d4.embedding(), "thread count must not change the model");
        assert_eq!(r1.accel_cycles, r4.accel_cycles, "same walks → same modeled cycles");
        assert_eq!(r1.contexts, r4.contexts);
        assert_eq!(r1.pipeline.walks_trained, 60);
        assert!(r4.walks_per_sec() > 0.0);
        assert!(r4.contexts_per_sec() > 0.0);
        assert!((0.0..=1.0).contains(&r4.overlap_ratio()));
    }

    #[test]
    fn train_seq_replays_edges_through_the_fabric() {
        let g = erdos_renyi(25, 0.25, 3);
        let (train, oselm) = cfgs(8);
        let mut driver = HostDriver::new(25, train, oselm);
        let report = driver.train_seq(&g, 9, 1.0);
        // Forest pass (2 walks/node) + 2 walks per inserted edge.
        assert!(report.walks >= 50, "walks {}", report.walks);
        assert!(report.accel_cycles > 0);
        assert!(driver.embedding().all_finite());
        assert_eq!(driver.accelerator().stats.saturations, 0);
    }

    #[test]
    #[should_panic(expected = "dims must agree")]
    fn mismatched_dims_rejected() {
        let (train, _) = cfgs(8);
        let (_, oselm) = cfgs(16);
        let _ = HostDriver::new(5, train, oselm);
    }
}
