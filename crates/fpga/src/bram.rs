//! BRAM weight-tile manager.
//!
//! §3.2: "only weights necessary for training are implemented on BRAM cells
//! … weights necessary for training (e.g., β) are transferred from DRAM to
//! BRAM", and the same negative samples are reused across a walk "to reduce
//! the data transfer between DRAM and BRAM". This module tracks which β
//! columns are resident on chip and counts DRAM fetches, so the
//! negative-share ablation can quantify exactly the traffic the paper's
//! trick saves.

use seqge_graph::NodeId;
use std::collections::HashMap;

/// Column-granular tile cache with FIFO replacement.
#[derive(Debug, Clone)]
pub struct TileManager {
    /// Resident column → queue position.
    resident: HashMap<NodeId, u64>,
    /// FIFO order of insertion (lazy removal).
    queue: std::collections::VecDeque<(NodeId, u64)>,
    /// Monotone insertion counter.
    tick: u64,
    /// Maximum resident columns.
    capacity: usize,
    /// DRAM column fetches (misses).
    pub misses: u64,
    /// On-chip hits.
    pub hits: u64,
    /// Columns written back on eviction or flush.
    pub writebacks: u64,
}

impl TileManager {
    /// A tile holding at most `capacity` columns.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tile capacity must be positive");
        TileManager {
            resident: HashMap::new(),
            queue: std::collections::VecDeque::new(),
            tick: 0,
            capacity,
            misses: 0,
            hits: 0,
            writebacks: 0,
        }
    }

    /// Capacity for a `banks`-bank cache of `dim`-wide f32 columns
    /// (BRAM36 = 4 KiB usable per bank at 32-bit width).
    pub fn from_banks(banks: u32, dim: usize) -> Self {
        let bytes = banks as usize * 4096;
        Self::new((bytes / (dim * 4)).max(1))
    }

    /// Touches a column; returns `true` on a hit, fetching (and possibly
    /// evicting) on a miss.
    pub fn touch(&mut self, col: NodeId) -> bool {
        if self.resident.contains_key(&col) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        while self.resident.len() >= self.capacity {
            // Lazily skip stale queue entries.
            if let Some((old, t)) = self.queue.pop_front() {
                if self.resident.get(&old) == Some(&t) {
                    self.resident.remove(&old);
                    self.writebacks += 1;
                }
            } else {
                break;
            }
        }
        self.tick += 1;
        self.resident.insert(col, self.tick);
        self.queue.push_back((col, self.tick));
        false
    }

    /// Flushes everything resident back to DRAM (end of training).
    pub fn flush(&mut self) {
        self.writebacks += self.resident.len() as u64;
        self.resident.clear();
        self.queue.clear();
    }

    /// Currently resident column count.
    pub fn resident_count(&self) -> usize {
        self.resident.len()
    }

    /// Hit rate over all touches.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misses_then_hits() {
        let mut t = TileManager::new(4);
        assert!(!t.touch(1));
        assert!(!t.touch(2));
        assert!(t.touch(1));
        assert_eq!(t.misses, 2);
        assert_eq!(t.hits, 1);
    }

    #[test]
    fn eviction_at_capacity() {
        let mut t = TileManager::new(2);
        t.touch(1);
        t.touch(2);
        t.touch(3); // evicts 1 (FIFO)
        assert_eq!(t.resident_count(), 2);
        assert!(!t.touch(1), "evicted column must miss");
        assert!(t.writebacks >= 1);
    }

    #[test]
    fn repeated_touch_does_not_duplicate() {
        let mut t = TileManager::new(3);
        for _ in 0..10 {
            t.touch(7);
        }
        assert_eq!(t.resident_count(), 1);
        assert_eq!(t.misses, 1);
        assert_eq!(t.hits, 9);
    }

    #[test]
    fn flush_writes_back_residents() {
        let mut t = TileManager::new(8);
        t.touch(1);
        t.touch(2);
        t.flush();
        assert_eq!(t.resident_count(), 0);
        assert_eq!(t.writebacks, 2);
    }

    #[test]
    fn from_banks_capacity() {
        // 127 banks × 4 KiB / (32 dims × 4 B) = 4064 columns.
        let t = TileManager::from_banks(127, 32);
        assert_eq!(t.capacity, 4064);
    }

    #[test]
    fn shared_negatives_raise_hit_rate() {
        // The paper's trick: same 10 negatives reused per context vs fresh
        // ones — model both access streams and compare hit rates.
        let mut shared = TileManager::new(64);
        let mut fresh = TileManager::new(64);
        let negs_shared: Vec<NodeId> = (1000..1010).collect();
        let mut next_fresh = 2000u32;
        for ctx in 0..73u32 {
            for t in [&mut shared, &mut fresh] {
                t.touch(ctx); // center
            }
            for _ in 0..7 {
                for n in &negs_shared {
                    shared.touch(*n);
                }
                for _ in 0..10 {
                    fresh.touch(next_fresh % 3000);
                    next_fresh = next_fresh.wrapping_mul(1103515245).wrapping_add(12345);
                }
            }
        }
        assert!(
            shared.hit_rate() > fresh.hit_rate() + 0.3,
            "shared {} vs fresh {}",
            shared.hit_rate(),
            fresh.hit_rate()
        );
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        TileManager::new(0);
    }
}
