//! The functional accelerator: Algorithm 2 in Q8.24 fixed point with cycle
//! accounting.
//!
//! This is the bit-level twin of `seqge_core::DataflowOsElm`: same deferred
//! `ΔP`/`Δβ` schedule, same seeds and initial weights, but every arithmetic
//! operation goes through the `seqge-fixed` datapath (saturating Q8.24,
//! DSP-style wide accumulation). The difference between this model's
//! embedding and the float model's embedding *is* the quantization effect
//! the paper's Fig. 4 measures, and `stats.cycles` prices each walk with the
//! calibrated [`TimingModel`].

use crate::bram::TileManager;
use crate::resources::AcceleratorDesign;
use crate::timing::TimingModel;
use seqge_core::model::{init_weight, EmbeddingModel, NegativeDraw};
use seqge_core::{NegativeMode, OsElmConfig};
use seqge_fixed::ops::{mac_dot, MacAccumulator};
use seqge_fixed::Q8_24;
use seqge_graph::NodeId;
use seqge_linalg::Mat;
use seqge_sampling::{contexts, NegativeTable, Rng64};
use std::collections::{HashMap, HashSet};

/// Run statistics accumulated across walks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AccelStats {
    /// Walks trained.
    pub walks: u64,
    /// Contexts trained.
    pub contexts: u64,
    /// Modeled PL cycles.
    pub cycles: u64,
    /// Saturation events observed on write-back (overflow telemetry).
    pub saturations: u64,
    /// DRAM column fetches (tile misses).
    pub dram_fetches: u64,
    /// Tile hits.
    pub tile_hits: u64,
    /// Contexts whose P downdate was skipped by the positivity guard.
    pub guarded: u64,
    /// Modeled cycles attributed to stage 1 (H fetch/scale): II × contexts,
    /// summed over walks. With `s2..s4` this is the runtime-queryable
    /// Table 4-style stage breakdown.
    pub s1_cycles: u64,
    /// Stage 2 (P·Hᵀ / HPHᵀ) modeled cycles.
    pub s2_cycles: u64,
    /// Stage 3 (sample dot products) modeled cycles.
    pub s3_cycles: u64,
    /// Stage 4 (ΔP / Δβ accumulation) modeled cycles.
    pub s4_cycles: u64,
    /// Serial per-walk DMA cycles (P round-trips), summed over walks.
    pub dma_cycles: u64,
}

impl AccelStats {
    /// Modeled wall-clock in milliseconds at `clock_mhz`.
    pub fn millis(&self, clock_mhz: u32) -> f64 {
        self.cycles as f64 / (clock_mhz as f64 * 1e3)
    }
}

/// The simulated accelerator.
#[derive(Debug, Clone)]
pub struct Accelerator {
    /// βᵀ in Q8.24, row per node.
    beta: Vec<Q8_24>,
    /// P in Q8.24, row-major d×d.
    p: Vec<Q8_24>,
    mu: Q8_24,
    lambda: Q8_24,
    lambda_recip: Q8_24,
    dim: usize,
    num_nodes: usize,
    regularized: bool,
    design: AcceleratorDesign,
    timing: TimingModel,
    tile: TileManager,
    draw: NegativeDraw,
    cfg: OsElmConfig,
    // Per-walk Δβ accumulators (stage-3/4 BRAM).
    delta_beta: HashMap<NodeId, Vec<Q8_24>>,
    // Rows whose β changed since the last `take_dirty` — the DRAM write-back
    // set a host would have to re-fetch to refresh a dequantized view.
    dirty: HashSet<NodeId>,
    h: Vec<Q8_24>,
    ph: Vec<Q8_24>,
    phn: Vec<Q8_24>,
    /// Statistics.
    pub stats: AccelStats,
}

impl Accelerator {
    /// Builds the accelerator with weights quantized from the same float
    /// init the CPU models use (identical seed ⇒ Fig. 4 comparability).
    /// The paper's accelerator shares negatives per walk (§3.2), so the
    /// negative mode is forced to [`NegativeMode::PerWalk`].
    pub fn new(num_nodes: usize, cfg: OsElmConfig) -> Self {
        cfg.validate().expect("invalid OS-ELM config");
        let cfg = OsElmConfig {
            model: seqge_core::ModelConfig { negative_mode: NegativeMode::PerWalk, ..cfg.model },
            ..cfg
        };
        let d = cfg.model.dim;
        let mut rng = Rng64::seed_from_u64(cfg.model.seed);
        let mut beta = Vec::with_capacity(num_nodes * d);
        for _ in 0..num_nodes * d {
            beta.push(Q8_24::from_f32(init_weight(&mut rng, d)));
        }
        let mut p = vec![Q8_24::ZERO; d * d];
        for i in 0..d {
            p[i * d + i] = Q8_24::from_f32(cfg.p0_scale);
        }
        let design = AcceleratorDesign::for_dim(d);
        let (_, _, cache_banks, _) = crate::resources::estimate_resources(&design).bram_parts;
        Accelerator {
            beta,
            p,
            mu: Q8_24::from_f32(cfg.mu),
            lambda: Q8_24::from_f32(cfg.forgetting),
            lambda_recip: Q8_24::from_f32(1.0 / cfg.forgetting),
            dim: d,
            num_nodes,
            regularized: cfg.regularized,
            design,
            timing: TimingModel::default(),
            tile: TileManager::from_banks(cache_banks, d),
            draw: NegativeDraw::new(&cfg.model),
            delta_beta: HashMap::new(),
            dirty: HashSet::new(),
            h: vec![Q8_24::ZERO; d],
            ph: vec![Q8_24::ZERO; d],
            phn: vec![Q8_24::ZERO; d],
            stats: AccelStats::default(),
            cfg,
        }
    }

    /// Rebuilds an accelerator from persisted raw Q8.24 state (β then P,
    /// both as produced by [`Accelerator::beta_bits`] / [`Accelerator::p_bits`]).
    /// The configuration goes through the same [`NegativeMode::PerWalk`]
    /// forcing as [`Accelerator::new`], so a restored accelerator replays
    /// the exact RNG schedule of the one that was saved.
    pub fn from_raw_parts(
        num_nodes: usize,
        cfg: OsElmConfig,
        beta: Vec<Q8_24>,
        p: Vec<Q8_24>,
    ) -> Self {
        let mut acc = Accelerator::new(num_nodes, cfg);
        assert_eq!(beta.len(), num_nodes * acc.dim, "beta length mismatch");
        assert_eq!(p.len(), acc.dim * acc.dim, "P length mismatch");
        acc.beta = beta;
        acc.p = p;
        acc
    }

    /// The architectural design point.
    pub fn design(&self) -> &AcceleratorDesign {
        &self.design
    }

    /// The (PerWalk-forced) OS-ELM configuration this accelerator runs.
    pub fn config(&self) -> &OsElmConfig {
        &self.cfg
    }

    /// βᵀ raw fixed-point words, row per node (persistence: these bits, not
    /// a float round-trip, are the deterministic-replay state).
    pub fn beta_bits(&self) -> &[Q8_24] {
        &self.beta
    }

    /// P raw fixed-point words, row-major d×d.
    pub fn p_bits(&self) -> &[Q8_24] {
        &self.p
    }

    /// Drains the set of rows whose β changed since the last call, sorted.
    /// A host mirroring the accelerator's DRAM into a float serving view
    /// only needs to re-dequantize these rows.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let mut rows: Vec<NodeId> = self.dirty.drain().collect();
        rows.sort_unstable();
        rows
    }

    /// Dequantizes one embedding row (μ·β) into `out`; bit-identical to the
    /// corresponding row of [`EmbeddingModel::embedding`].
    pub fn embed_row(&self, node: NodeId, out: &mut [f32]) {
        let d = self.dim;
        let mu = self.mu.to_f32();
        let base = node as usize * d;
        for (o, b) in out.iter_mut().zip(&self.beta[base..base + d]) {
            *o = mu * b.to_f32();
        }
    }

    /// The timing model (mutable for what-if studies).
    pub fn timing_mut(&mut self) -> &mut TimingModel {
        &mut self.timing
    }

    /// βᵀ dequantized (row per node).
    pub fn beta_f32(&self) -> Mat<f32> {
        Mat::from_fn(self.num_nodes, self.dim, |r, c| self.beta[r * self.dim + c].to_f32())
    }

    /// P dequantized.
    pub fn p_f32(&self) -> Mat<f32> {
        Mat::from_fn(self.dim, self.dim, |r, c| self.p[r * self.dim + c].to_f32())
    }

    fn beta_row(&self, node: NodeId) -> &[Q8_24] {
        let d = self.dim;
        &self.beta[node as usize * d..(node as usize + 1) * d]
    }

    /// One context in the fixed-point datapath (Stages 1–4 of Algorithm 2).
    fn context_fixed(&mut self, center: NodeId, samples: &[(NodeId, bool)]) {
        let d = self.dim;
        self.tile.touch(center);
        // Stage 1: H = μ·β[center].
        for i in 0..d {
            self.h[i] = self.mu.sat_mul(self.beta[center as usize * d + i]);
        }
        // Stage 2: Pʜ = P·Hᵀ, HPHᵀ.
        for r in 0..d {
            self.ph[r] = mac_dot(&self.p[r * d..(r + 1) * d], &self.h);
        }
        let hph = mac_dot(&self.h, &self.ph);
        let denom = if self.regularized { self.lambda.sat_add(hph) } else { hph };
        // Positivity guard (comparator): float drift / quantization can dent
        // P's definiteness; a near-zero or negative denominator would flip
        // the downdate into an explosive update. Skip the P update and train
        // β with gain Pʜ for this context.
        let guard_threshold = self.lambda.sat_mul(Q8_24::from_f32(0.5));
        let healthy = !self.regularized || denom > guard_threshold;
        let inv = denom.recip();
        // Stage 4a: the P downdate. The ΔP accumulator is forwarded with
        // pipeline-register staleness (see `seqge_core::oselm::PVisibility`
        // — whole-walk freezing diverges), so the on-chip running P absorbs
        // each context's downdate immediately; DRAM write-back still happens
        // once per walk (the DMA model prices exactly one P round-trip).
        if healthy {
            seqge_fixed::vector::rank1_downdate(&mut self.p, d, &self.ph, &self.ph, inv);
        } else {
            self.stats.guarded += 1;
        }
        if healthy && self.lambda_recip > Q8_24::ONE {
            // (Triangular P storage in hardware makes asymmetry impossible;
            // the flat model mirrors after the update below.)
            // EW-RLS inflation (forgetting < 1) with trace normalization
            // against covariance wind-up (PSD-preserving, unlike entrywise
            // clamping; one extra multiplier pass in hardware).
            seqge_fixed::vector::scale(self.lambda_recip, &mut self.p);
            let mut tr = seqge_fixed::ops::MacAccumulator::new();
            for i in 0..d {
                tr.mac(self.p[i * d + i], Q8_24::ONE);
            }
            let trace: Q8_24 = tr.finish();
            let cap = Q8_24::from_f32(self.cfg.p0_scale * d as f32);
            if trace > cap {
                let factor = cap.sat_div(trace);
                seqge_fixed::vector::scale(factor, &mut self.p);
            }
            for r in 0..d {
                for c in (r + 1)..d {
                    // Mirror the upper triangle (triangular-storage model).
                    self.p[c * d + r] = self.p[r * d + c];
                }
            }
        }
        // PʜΝ = Pʜ·(1 − HPHᵀ·inv); under the guard P is unchanged, so the
        // gain is Pʜ itself.
        let scale = if healthy { Q8_24::ONE.sat_sub(hph.sat_mul(inv)) } else { Q8_24::ONE };
        for i in 0..d {
            self.phn[i] = self.ph[i].sat_mul(scale);
        }
        // Stage 3 + 4b: per-sample error and Δβ accumulation. As in the
        // float model, the error reads the effective column β + Δβ (the Δβ
        // accumulator lives in the same BRAM the sample stage reads); only
        // the P chain is frozen for the dataflow optimization.
        for &(sample, positive) in samples {
            self.tile.touch(sample);
            let frozen = mac_dot(&self.h, self.beta_row(sample));
            let slot_score =
                self.delta_beta.get(&sample).map_or(Q8_24::ZERO, |slot| mac_dot(&self.h, slot));
            let score = frozen.sat_add(slot_score);
            let y = if positive { Q8_24::ONE } else { Q8_24::ZERO };
            let e = y.sat_sub(score);
            let slot = self.delta_beta.entry(sample).or_insert_with(|| vec![Q8_24::ZERO; d]);
            for (si, &phn_i) in slot.iter_mut().zip(self.phn.iter()) {
                let mut acc = MacAccumulator::new();
                acc.mac(phn_i, e);
                *si = si.sat_add(acc.finish());
            }
        }
        self.stats.contexts += 1;
    }

    /// Applies the per-walk Δβ (Algorithm 2 line 20) and counts saturation
    /// events (the running P was updated in place; line 19's commit is the
    /// DRAM write-back, priced by the DMA model).
    fn commit_walk(&mut self) {
        let d = self.dim;
        for i in 0..d * d {
            if self.p[i].is_saturated() {
                self.stats.saturations += 1;
            }
        }
        for (node, delta) in self.delta_beta.drain() {
            self.dirty.insert(node);
            let base = node as usize * d;
            for (b, &dv) in self.beta[base..base + d].iter_mut().zip(&delta) {
                *b = b.sat_add(dv);
                if b.is_saturated() {
                    self.stats.saturations += 1;
                }
            }
        }
    }
}

impl EmbeddingModel for Accelerator {
    fn train_walk(&mut self, walk: &[NodeId], negatives: &NegativeTable, rng: &mut Rng64) {
        let ctxs = contexts(walk, self.cfg.model.window);
        if ctxs.is_empty() {
            return;
        }
        self.draw.begin_walk(walk, negatives, rng);
        let mut samples: Vec<(NodeId, bool)> = Vec::new();
        let mut max_samples = 0usize;
        for ctx in &ctxs {
            samples.clear();
            for &pos in &ctx.positives {
                samples.push((pos, true));
                for &neg in self.draw.for_positive(pos, negatives, rng) {
                    samples.push((neg, false));
                }
            }
            max_samples = max_samples.max(samples.len());
            self.context_fixed(ctx.center, &samples);
        }
        self.commit_walk();
        let t = self.timing.walk_timing(&self.design, ctxs.len(), max_samples);
        self.stats.cycles += t.total_cycles;
        self.stats.walks += 1;
        self.stats.dram_fetches = self.tile.misses;
        self.stats.tile_hits = self.tile.hits;
        let n_ctx = ctxs.len() as u64;
        self.stats.s1_cycles += t.stages.s1 * n_ctx;
        self.stats.s2_cycles += t.stages.s2 * n_ctx;
        self.stats.s3_cycles += t.stages.s3 * n_ctx;
        self.stats.s4_cycles += t.stages.s4 * n_ctx;
        self.stats.dma_cycles += t.dma_cycles;
        // Mirror the per-stage breakdown into the global registry so the
        // simulated Table 3/4 numbers are queryable while a run is live
        // (`seqge obs dump`), not only from offline bench output.
        seqge_obs::static_counter!("seqge_fpga_walks_total").inc();
        seqge_obs::static_counter!("seqge_fpga_contexts_total").add(n_ctx);
        seqge_obs::static_counter!("seqge_fpga_cycles_total").add(t.total_cycles);
        seqge_obs::static_counter!("seqge_fpga_dma_cycles_total").add(t.dma_cycles);
        let bottleneck = t.compute_ii.max(1);
        for (name, ii) in
            [("s1", t.stages.s1), ("s2", t.stages.s2), ("s3", t.stages.s3), ("s4", t.stages.s4)]
        {
            let cycles = seqge_obs::Registry::global()
                .counter_with("seqge_fpga_stage_cycles_total", &[("stage", name)]);
            cycles.add(ii * n_ctx);
            let occ = seqge_obs::Registry::global()
                .gauge_with("seqge_fpga_stage_occupancy_pct", &[("stage", name)]);
            occ.set((ii * 100 / bottleneck) as i64);
        }
    }

    fn embedding(&self) -> Mat<f32> {
        let mu = self.mu.to_f32();
        Mat::from_fn(self.num_nodes, self.dim, |r, c| mu * self.beta[r * self.dim + c].to_f32())
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn model_bytes(&self) -> usize {
        self.beta.len() * 4 + self.p.len() * 4
    }

    fn name(&self) -> &'static str {
        "fpga-accelerator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_core::{DataflowOsElm, ModelConfig};
    use seqge_sampling::{UpdatePolicy, WalkCorpus};

    fn ready_table(n: usize) -> NegativeTable {
        let mut corpus = WalkCorpus::new(n);
        corpus.record(&(0..n as NodeId).collect::<Vec<_>>());
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        t
    }

    fn cfg(dim: usize) -> OsElmConfig {
        OsElmConfig {
            model: ModelConfig {
                dim,
                window: 4,
                negative_samples: 3,
                negative_mode: NegativeMode::PerWalk,
                seed: 11,
            },
            mu: 0.05,
            p0_scale: 10.0,
            regularized: true,
            forgetting: 1.0,
        }
    }

    #[test]
    fn init_matches_float_model_after_quantization() {
        let acc = Accelerator::new(20, cfg(8));
        let float_model = DataflowOsElm::new(20, cfg(8));
        let diff = acc.beta_f32().max_abs_diff(float_model.beta_t());
        assert!(diff < 1e-6, "quantized init should match float init: {diff}");
        assert_eq!(acc.p_f32()[(0, 0)], 10.0);
    }

    #[test]
    fn tracks_float_dataflow_model_closely() {
        // One walk: the fixed-point trajectory must stay near the float
        // Algorithm 2 trajectory (quantization error ≪ weight scale).
        let table = ready_table(30);
        let mut acc = Accelerator::new(30, cfg(8));
        let mut float_model = DataflowOsElm::new(30, cfg(8));
        let walk: Vec<NodeId> = (0..20u32).collect();
        // Same rng seed ⇒ same shared negative draws.
        let mut r1 = Rng64::seed_from_u64(3);
        let mut r2 = Rng64::seed_from_u64(3);
        acc.train_walk(&walk, &table, &mut r1);
        float_model.train_walk(&walk, &table, &mut r2);
        let diff = acc.beta_f32().max_abs_diff(float_model.beta_t());
        assert!(diff < 1e-3, "fixed-point drift too large after one walk: {diff}");
    }

    #[test]
    fn cycles_accumulate_per_walk() {
        let table = ready_table(20);
        let mut acc = Accelerator::new(20, cfg(8));
        let mut rng = Rng64::seed_from_u64(1);
        let walk: Vec<NodeId> = (0..12u32).collect();
        acc.train_walk(&walk, &table, &mut rng);
        let after_one = acc.stats.cycles;
        assert!(after_one > 0);
        acc.train_walk(&walk, &table, &mut rng);
        assert_eq!(acc.stats.cycles, 2 * after_one, "same walk shape, same cycles");
        assert_eq!(acc.stats.walks, 2);
    }

    #[test]
    fn paper_walk_latency_matches_table3() {
        // A full-protocol walk (l=80, w=8, ns=10) must cost what Table 3
        // reports for its dimension.
        let n = 200;
        let mut c = cfg(32);
        c.model.window = 8;
        c.model.negative_samples = 10;
        let table = ready_table(n);
        let mut acc = Accelerator::new(n, c);
        let mut rng = Rng64::seed_from_u64(5);
        let walk: Vec<NodeId> = (0..80).map(|i| i % n as u32).collect();
        acc.train_walk(&walk, &table, &mut rng);
        let ms = acc.stats.millis(200);
        assert!((ms - 0.777).abs() / 0.777 < 0.02, "walk latency {ms:.3} ms");
    }

    #[test]
    fn long_training_stays_in_range() {
        let table = ready_table(40);
        let mut acc = Accelerator::new(40, cfg(16));
        let mut rng = Rng64::seed_from_u64(9);
        let walk: Vec<NodeId> = (0..40u32).collect();
        for _ in 0..50 {
            acc.train_walk(&walk, &table, &mut rng);
        }
        assert_eq!(acc.stats.saturations, 0, "healthy training must not saturate");
        let emb = acc.embedding();
        assert!(emb.all_finite());
    }

    #[test]
    fn tile_reuse_is_observed() {
        let table = ready_table(30);
        let mut acc = Accelerator::new(30, cfg(8));
        let mut rng = Rng64::seed_from_u64(2);
        let walk: Vec<NodeId> = (0..20u32).collect();
        acc.train_walk(&walk, &table, &mut rng);
        assert!(acc.stats.tile_hits > 0, "shared negatives must hit the tile");
    }

    #[test]
    fn dirty_rows_cover_all_beta_changes() {
        let table = ready_table(30);
        let mut acc = Accelerator::new(30, cfg(8));
        let before = acc.clone();
        let mut rng = Rng64::seed_from_u64(7);
        let walk: Vec<NodeId> = (0..16u32).collect();
        acc.train_walk(&walk, &table, &mut rng);
        let dirty = acc.take_dirty();
        assert!(!dirty.is_empty());
        for node in 0..30u32 {
            let changed = acc.beta_bits()[node as usize * 8..(node as usize + 1) * 8]
                != before.beta_bits()[node as usize * 8..(node as usize + 1) * 8];
            assert_eq!(changed, dirty.contains(&node), "node {node} dirty mismatch");
        }
        assert!(acc.take_dirty().is_empty(), "take_dirty drains");
    }

    #[test]
    fn raw_parts_roundtrip_is_bit_identical() {
        let table = ready_table(30);
        let mut acc = Accelerator::new(30, cfg(8));
        let mut rng = Rng64::seed_from_u64(4);
        let walk: Vec<NodeId> = (0..16u32).collect();
        acc.train_walk(&walk, &table, &mut rng);
        let mut restored = Accelerator::from_raw_parts(
            30,
            *acc.config(),
            acc.beta_bits().to_vec(),
            acc.p_bits().to_vec(),
        );
        // Same state ⇒ identical continuation on the same RNG stream.
        let mut r1 = rng.clone();
        acc.train_walk(&walk, &table, &mut r1);
        restored.train_walk(&walk, &table, &mut rng);
        assert_eq!(acc.beta_bits(), restored.beta_bits());
        assert_eq!(acc.p_bits(), restored.p_bits());
    }

    #[test]
    fn model_bytes_match_proposed_accounting() {
        let acc = Accelerator::new(100, cfg(16));
        assert_eq!(acc.model_bytes(), 100 * 16 * 4 + 16 * 16 * 4);
    }
}
