//! Target-device resource inventory.

/// Programmable-logic resources of an FPGA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FpgaDevice {
    /// Device name.
    pub name: &'static str,
    /// BRAM36 blocks (36 Kb each).
    pub bram36: u32,
    /// DSP48E2 slices.
    pub dsp: u32,
    /// Flip-flops.
    pub ff: u32,
    /// Look-up tables.
    pub lut: u32,
}

impl FpgaDevice {
    /// The paper's target: Zynq UltraScale+ XCZU7EV (ZCU104 board).
    /// Totals back-solved from Table 6's percentages (183 BRAM = 58.65 %,
    /// 1379 DSP = 79.80 %, 48609 FF = 10.55 %, 53330 LUT = 23.15 %) and
    /// consistent with the public datasheet (312 BRAM36, 1728 DSP,
    /// 460 800 FF, 230 400 LUT; §4.5 quotes the 11 Mb BRAM figure).
    pub const XCZU7EV: FpgaDevice =
        FpgaDevice { name: "XCZU7EV-2FFVC1156", bram36: 312, dsp: 1728, ff: 460_800, lut: 230_400 };

    /// Total BRAM capacity in bits (36 Kb per block).
    pub fn bram_bits(&self) -> u64 {
        self.bram36 as u64 * 36 * 1024
    }

    /// Utilization percentages for an absolute usage vector.
    pub fn utilization(&self, bram36: u32, dsp: u32, ff: u32, lut: u32) -> Utilization {
        let pct = |used: u32, total: u32| 100.0 * used as f64 / total as f64;
        Utilization {
            bram_pct: pct(bram36, self.bram36),
            dsp_pct: pct(dsp, self.dsp),
            ff_pct: pct(ff, self.ff),
            lut_pct: pct(lut, self.lut),
        }
    }

    /// Whether a usage vector fits on the device.
    pub fn fits(&self, bram36: u32, dsp: u32, ff: u32, lut: u32) -> bool {
        bram36 <= self.bram36 && dsp <= self.dsp && ff <= self.ff && lut <= self.lut
    }
}

/// Resource utilization as percentages of the device.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Utilization {
    /// BRAM36 %.
    pub bram_pct: f64,
    /// DSP %.
    pub dsp_pct: f64,
    /// FF %.
    pub ff_pct: f64,
    /// LUT %.
    pub lut_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu7ev_matches_table6_backsolve() {
        let d = FpgaDevice::XCZU7EV;
        // Table 6 row d=32: 183 BRAM (58.65%), 1379 DSP (79.80%),
        // 48609 FF (10.55%), 53330 LUT (23.15%).
        let u = d.utilization(183, 1379, 48_609, 53_330);
        assert!((u.bram_pct - 58.65).abs() < 0.05, "bram {}", u.bram_pct);
        assert!((u.dsp_pct - 79.80).abs() < 0.05, "dsp {}", u.dsp_pct);
        assert!((u.ff_pct - 10.55).abs() < 0.05, "ff {}", u.ff_pct);
        assert!((u.lut_pct - 23.15).abs() < 0.05, "lut {}", u.lut_pct);
    }

    #[test]
    fn bram_capacity_is_11_mb() {
        // §4.5: "11Mb BRAM".
        let bits = FpgaDevice::XCZU7EV.bram_bits();
        assert!((bits as f64 / 1e6 - 11.5).abs() < 0.5, "{bits} bits");
    }

    #[test]
    fn fits_checks_every_resource() {
        let d = FpgaDevice::XCZU7EV;
        assert!(d.fits(312, 1728, 460_800, 230_400));
        assert!(!d.fits(313, 0, 0, 0));
        assert!(!d.fits(0, 1729, 0, 0));
        assert!(!d.fits(0, 0, 460_801, 0));
        assert!(!d.fits(0, 0, 0, 230_401));
    }
}
