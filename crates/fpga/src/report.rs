//! Plain-text table formatting shared by the experiment binaries.

/// Builds an aligned plain-text table (the format the experiment binaries
/// print next to the paper's values).
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = width[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats milliseconds with 3 decimals (the paper's table precision).
pub fn ms(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a speedup factor with 2–3 significant decimals.
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
        // Right-aligned: the short name is padded.
        assert!(lines[2].starts_with("     a"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(0.7774), "0.777");
        assert_eq!(speedup(45.504), "45.50x");
        assert_eq!(pct(58.654), "58.65%");
    }
}
