//! What-if model of an on-FPGA random-walk engine (extension).
//!
//! The paper accelerates *training* and leaves walk generation on the CPU,
//! citing LightRW \[6\] for FPGA-accelerated node2vec walks. This module
//! models such a walk engine coarsely — parallel walker lanes, an alias
//! table per resident node partition, DRAM neighbor fetches — so the repo
//! can answer the natural system question the paper leaves open: if walks
//! were also generated on the fabric, would walk generation or training
//! bound the pipeline?
//!
//! The model is *not* calibrated to LightRW's published numbers (different
//! device and memory system); it uses first-principles cycle counts with the
//! same DMA model as the training accelerator, and is clearly labeled a
//! what-if in the bench output.

use crate::dma::DmaModel;
use crate::timing::TimingModel;

/// Walk-engine architectural parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WalkerDesign {
    /// Independent walker lanes stepping in parallel.
    pub lanes: u32,
    /// Average cycles to sample the next hop once neighbor metadata is on
    /// chip (second-order rejection sampling: alias draw + bias test, a few
    /// iterations in expectation).
    pub sample_cycles: u32,
    /// Clock in MHz (same fabric as the trainer: 200).
    pub clock_mhz: u32,
}

impl Default for WalkerDesign {
    fn default() -> Self {
        WalkerDesign { lanes: 16, sample_cycles: 6, clock_mhz: 200 }
    }
}

/// Per-walk latency estimate of the walk engine.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WalkGenTiming {
    /// Cycles to generate one walk end to end on a single lane.
    pub cycles_per_walk: u64,
    /// Effective ms per walk at full lane occupancy.
    pub effective_ms_per_walk: f64,
}

impl WalkerDesign {
    /// Estimates walk-generation latency for walks of `walk_length` over a
    /// graph with `avg_degree`. Each step fetches the current node's
    /// neighbor list from DRAM (gather pattern) and runs the sampler.
    pub fn walk_timing(
        &self,
        walk_length: usize,
        avg_degree: f64,
        dma: &DmaModel,
    ) -> WalkGenTiming {
        let neighbor_bytes = (avg_degree.max(1.0) * 4.0).ceil() as u64;
        let fetch = dma.gather_cycles(1, neighbor_bytes);
        let per_step = fetch + self.sample_cycles as u64;
        let cycles = per_step * walk_length.max(1) as u64;
        WalkGenTiming {
            cycles_per_walk: cycles,
            effective_ms_per_walk: cycles as f64
                / self.lanes as f64
                / (self.clock_mhz as f64 * 1e3),
        }
    }

    /// Whether walk generation keeps up with the training accelerator at
    /// dimension `dim` (i.e., generation throughput ≥ training throughput):
    /// returns the ratio `train_ms / gen_ms` — > 1 means the trainer is the
    /// bottleneck and walks can be produced in the shadow of training.
    pub fn headroom_vs_trainer(&self, dim: usize, avg_degree: f64) -> f64 {
        let train = TimingModel::default().paper_walk_millis(dim);
        let wg = self.walk_timing(80, avg_degree, &DmaModel::default());
        train / wg.effective_ms_per_walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_walks_cost_more() {
        let d = WalkerDesign::default();
        let dma = DmaModel::default();
        let a = d.walk_timing(40, 10.0, &dma);
        let b = d.walk_timing(80, 10.0, &dma);
        assert!(b.cycles_per_walk > a.cycles_per_walk);
        assert_eq!(b.cycles_per_walk, 2 * a.cycles_per_walk);
    }

    #[test]
    fn more_lanes_raise_throughput() {
        let dma = DmaModel::default();
        let narrow = WalkerDesign { lanes: 4, ..Default::default() };
        let wide = WalkerDesign { lanes: 32, ..Default::default() };
        assert!(
            wide.walk_timing(80, 10.0, &dma).effective_ms_per_walk
                < narrow.walk_timing(80, 10.0, &dma).effective_ms_per_walk
        );
    }

    #[test]
    fn trainer_is_the_bottleneck_at_paper_params() {
        // With 16 lanes, walk generation fits in the shadow of training for
        // every paper dimension on a Cora-density graph — confirming the
        // paper's choice to focus silicon on the trainer.
        let d = WalkerDesign::default();
        for dim in [32usize, 64, 96] {
            let headroom = d.headroom_vs_trainer(dim, 4.0);
            assert!(headroom > 1.0, "d={dim}: headroom {headroom:.2}");
        }
    }

    #[test]
    fn dense_graphs_slow_generation() {
        let d = WalkerDesign::default();
        let dma = DmaModel::default();
        let sparse = d.walk_timing(80, 4.0, &dma);
        let dense = d.walk_timing(80, 40.0, &dma);
        assert!(dense.cycles_per_walk >= sparse.cycles_per_walk);
    }
}
