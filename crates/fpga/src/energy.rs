//! Energy-efficiency model — the paper's stated future work (§5: "Our
//! future plans include comparisons to the original and proposed models on
//! embedded GPU devices to demonstrate the energy efficiency of the proposed
//! FPGA accelerator").
//!
//! Energy per walk = platform power × walk latency. Power figures are
//! documented nominal operating points (board/TDP-class numbers, not
//! measurements): they set the *scale* of the comparison, which is dominated
//! by the orders-of-magnitude latency differences anyway.

use crate::timing::TimingModel;

/// A compute platform with a nominal training-load power draw.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Platform {
    /// Name for reports.
    pub name: &'static str,
    /// Nominal power draw under the training load, in watts.
    pub watts: f64,
}

/// ZCU104 programmable logic running the accelerator (PL dynamic + static
/// at ~80 % DSP activity; board-level reports put comparable designs near
/// this figure).
pub const FPGA_PL: Platform = Platform { name: "ZCU104 PL (accelerator)", watts: 4.5 };
/// The ZCU104's embedded Cortex-A53 cluster under full single-core load.
pub const CORTEX_A53: Platform = Platform { name: "Cortex-A53 @1.2GHz", watts: 1.5 };
/// Desktop Core i7-11700 under single-core AVX load (package power share).
pub const CORE_I7: Platform = Platform { name: "Core i7-11700", watts: 35.0 };
/// Jetson-class embedded GPU (the comparison the paper defers).
pub const EMBEDDED_GPU: Platform = Platform { name: "embedded GPU (Jetson-class)", watts: 10.0 };

/// Energy in millijoules to process one walk taking `ms` milliseconds.
pub fn energy_mj(platform: &Platform, ms: f64) -> f64 {
    platform.watts * ms
}

/// One row of the energy comparison.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct EnergyRow {
    /// Platform name.
    pub platform: &'static str,
    /// Walk latency in ms.
    pub walk_ms: f64,
    /// Energy per walk in mJ.
    pub energy_mj: f64,
    /// Energy ratio vs the FPGA accelerator.
    pub vs_fpga: f64,
}

/// Builds the energy comparison for embedding dimension `dim`, given
/// measured/modelled per-walk latencies of the software platforms.
///
/// `a53_ms` and `i7_ms` are the proposed model's walk latencies on those
/// CPUs (paper Tables 3/4 or host-derived projections); the GPU row is
/// modelled as 4× faster than the A53 (a conservative embedded-GPU speedup
/// for this memory-bound kernel — documented assumption).
pub fn energy_comparison(dim: usize, a53_ms: f64, i7_ms: f64) -> Vec<EnergyRow> {
    let timing = TimingModel::default();
    let fpga_ms = timing.paper_walk_millis(dim);
    let gpu_ms = a53_ms / 4.0;
    let fpga_mj = energy_mj(&FPGA_PL, fpga_ms);
    let make = |p: &Platform, ms: f64| EnergyRow {
        platform: p.name,
        walk_ms: ms,
        energy_mj: energy_mj(p, ms),
        vs_fpga: energy_mj(p, ms) / fpga_mj,
    };
    vec![
        make(&FPGA_PL, fpga_ms),
        make(&CORTEX_A53, a53_ms),
        make(&EMBEDDED_GPU, gpu_ms),
        make(&CORE_I7, i7_ms),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_power_times_time() {
        assert_eq!(energy_mj(&Platform { name: "x", watts: 2.0 }, 3.0), 6.0);
    }

    #[test]
    fn fpga_wins_the_paper_operating_points() {
        // Paper Table 3 (A53) and Table 4 (i7), proposed model, d = 32/96.
        for (dim, a53, i7) in [(32usize, 18.753, 0.787), (96, 72.612, 2.396)] {
            let rows = energy_comparison(dim, a53, i7);
            let fpga = &rows[0];
            for other in &rows[1..] {
                assert!(
                    other.energy_mj > fpga.energy_mj,
                    "d={dim}: {} ({} mJ) should cost more energy than the FPGA ({} mJ)",
                    other.platform,
                    other.energy_mj,
                    fpga.energy_mj
                );
            }
        }
    }

    #[test]
    fn ratios_are_relative_to_fpga() {
        let rows = energy_comparison(32, 18.753, 0.787);
        assert!((rows[0].vs_fpga - 1.0).abs() < 1e-12);
        assert!(rows[1].vs_fpga > 1.0);
    }

    #[test]
    fn gpu_row_is_modelled_from_a53() {
        let rows = energy_comparison(64, 40.0, 1.5);
        let gpu = rows.iter().find(|r| r.platform.contains("GPU")).unwrap();
        assert!((gpu.walk_ms - 10.0).abs() < 1e-12);
    }
}
