//! Walk-level latency model, calibrated to the paper's Table 3 FPGA row.
//!
//! Observation driving the model: at the paper's parameters one context
//! touches 78 weight columns (1 center + 7 positives × (1 + 10 negatives)),
//! and every touched column crosses the shared β port (BRAM tile ↔ compute
//! lanes) once per context. At 0.777 ms / 73 contexts / 200 MHz the hardware
//! spends ≈ 2 100 cycles per context — an order of magnitude more than the
//! MAC work — so the kernel is *column-traffic bound*, consistent with the
//! paper's emphasis on reducing DRAM↔BRAM transfers (§3.2, negative-sample
//! reuse). The model therefore prices a context as
//!
//! ```text
//! cycles(ctx) = ⌈n_cols · 4d / port_bytes⌉ + n_cols · column_overhead
//! ```
//!
//! overlapped with the compute-stage IIs ([`crate::pipeline`]). The tile
//! port is 288 bits wide (four BRAM36 ports of 72 b) ⇒ 36 B/cycle. Sample
//! upload and Δ write-back are double-buffered behind the previous walk's
//! compute; only the `P` round-trip is serial ([`crate::dma`]). With a
//! 23.7-cycle column overhead the model lands within ~1 % of all three
//! Table 3 FPGA entries.

use crate::dma::DmaModel;
use crate::pipeline::{stage_intervals, StageIntervals};
use crate::resources::AcceleratorDesign;

/// The calibrated timing model.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimingModel {
    /// PL clock in MHz (paper: 200).
    pub clock_mhz: u32,
    /// β-port payload bytes per cycle (288-bit tile port = 36 B).
    pub port_bytes: u32,
    /// Per-column access overhead in tenths of a cycle (arbitration +
    /// address + pipeline restart, amortized). Calibrated: 237 (23.7 cyc).
    pub column_overhead_tenths: u32,
    /// DRAM DMA model for per-walk transfers.
    pub dma: DmaModel,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            clock_mhz: 200,
            port_bytes: 36,
            column_overhead_tenths: 237,
            dma: DmaModel::default(),
        }
    }
}

/// Cycle breakdown for training one random walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WalkTiming {
    /// Contexts in the walk.
    pub contexts: u64,
    /// Column-traffic cycles per context.
    pub column_cycles_per_context: u64,
    /// Compute bottleneck II per context.
    pub compute_ii: u64,
    /// Serial per-walk DMA cycles (the P round-trip; sample upload and Δ
    /// write-back overlap the previous walk's compute).
    pub dma_cycles: u64,
    /// Overlapped DMA cycles (reported for the traffic accounting; not on
    /// the critical path).
    pub overlapped_dma_cycles: u64,
    /// Pipeline fill cycles.
    pub fill_cycles: u64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Per-stage initiation intervals behind `compute_ii` (Table 4's
    /// breakdown; occupancy = stage II / bottleneck).
    pub stages: StageIntervals,
}

impl WalkTiming {
    /// Milliseconds at the model clock.
    pub fn millis(&self, clock_mhz: u32) -> f64 {
        self.total_cycles as f64 / (clock_mhz as f64 * 1e3)
    }
}

impl TimingModel {
    /// Prices one walk: `contexts` outer iterations, `samples_per_context`
    /// β-column touches beyond the center node.
    pub fn walk_timing(
        &self,
        design: &AcceleratorDesign,
        contexts: usize,
        samples_per_context: usize,
    ) -> WalkTiming {
        let d = design.dim as u64;
        let cols = samples_per_context as u64 + 1; // + center column
        let col_cycles = (cols * 4 * d).div_ceil(self.port_bytes as u64)
            + (cols * self.column_overhead_tenths as u64).div_ceil(10);
        let ii: StageIntervals = stage_intervals(design.dim, samples_per_context);
        let per_ctx = col_cycles.max(ii.bottleneck());
        // Serial transfer: P both ways. Samples and Δβ double-buffer behind
        // the previous walk's compute.
        let p_bytes = d * d * 4;
        let dma_cycles = 2 * self.dma.transfer_cycles(p_bytes);
        let sample_bytes = (contexts as u64 * cols) * 4;
        let delta_bytes = cols * d * 4;
        let overlapped =
            self.dma.transfer_cycles(sample_bytes) + self.dma.transfer_cycles(delta_bytes);
        let total = contexts as u64 * per_ctx + ii.fill() + dma_cycles;
        WalkTiming {
            contexts: contexts as u64,
            column_cycles_per_context: col_cycles,
            compute_ii: ii.bottleneck(),
            dma_cycles,
            overlapped_dma_cycles: overlapped,
            fill_cycles: ii.fill(),
            total_cycles: total,
            stages: ii,
        }
    }

    /// Paper-protocol walk latency in ms: 73 contexts × 77 samples.
    pub fn paper_walk_millis(&self, dim: usize) -> f64 {
        let design = AcceleratorDesign::for_dim(dim);
        self.walk_timing(&design, 73, 77).millis(self.clock_mhz)
    }
}

/// Paper Table 3 FPGA row: (dim, ms per walk).
pub const PAPER_FPGA_MS: [(usize, f64); 3] = [(32, 0.777), (64, 0.878), (96, 0.985)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table3_fpga_row_within_2_percent() {
        let model = TimingModel::default();
        for &(dim, paper_ms) in &PAPER_FPGA_MS {
            let ms = model.paper_walk_millis(dim);
            let err = (ms - paper_ms).abs() / paper_ms;
            assert!(
                err < 0.015,
                "d={dim}: model {ms:.3} ms vs paper {paper_ms:.3} ms ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn column_traffic_dominates_compute() {
        let model = TimingModel::default();
        for dim in [32usize, 64, 96] {
            let t = model.walk_timing(&AcceleratorDesign::for_dim(dim), 73, 77);
            assert!(
                t.column_cycles_per_context > t.compute_ii,
                "d={dim}: traffic {} vs compute {}",
                t.column_cycles_per_context,
                t.compute_ii
            );
        }
    }

    #[test]
    fn latency_grows_sublinearly_with_dim() {
        // Paper: 0.777 → 0.985 ms for 3× the dimension (1.27×).
        let model = TimingModel::default();
        let a = model.paper_walk_millis(32);
        let c = model.paper_walk_millis(96);
        assert!(c > a);
        assert!(c / a < 1.4, "growth {:.2}× too steep", c / a);
    }

    #[test]
    fn fewer_negatives_cut_latency() {
        // The negative-share ablation leans on this: fewer sample columns →
        // proportionally fewer cycles.
        let model = TimingModel::default();
        let design = AcceleratorDesign::for_dim(32);
        let full = model.walk_timing(&design, 73, 77);
        let light = model.walk_timing(&design, 73, 14); // ns=1
        assert!(light.total_cycles < full.total_cycles / 3);
    }

    #[test]
    fn dma_is_minor_fraction() {
        let model = TimingModel::default();
        let t = model.walk_timing(&AcceleratorDesign::for_dim(64), 73, 77);
        assert!(t.dma_cycles * 10 < t.total_cycles, "DMA must not dominate: {t:?}");
    }

    #[test]
    fn millis_conversion() {
        let t = WalkTiming {
            contexts: 1,
            column_cycles_per_context: 0,
            compute_ii: 0,
            dma_cycles: 0,
            overlapped_dma_cycles: 0,
            fill_cycles: 0,
            total_cycles: 200_000,
            stages: StageIntervals { s1: 0, s2: 0, s3: 0, s4: 0 },
        };
        assert!((t.millis(200) - 1.0).abs() < 1e-12);
    }
}
