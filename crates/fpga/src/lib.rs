//! # seqge-fpga — simulator of the ZCU104 sequential-training accelerator
//!
//! The paper implements Algorithm 2 as a four-stage dataflow kernel on a
//! Xilinx Zynq UltraScale+ ZCU104 (XCZU7EV) at 200 MHz, with fixed-point
//! multiply-add lanes on DSP slices and per-walk weight tiles staged through
//! BRAM by a DMA engine. No FPGA is available in this environment, so this
//! crate reproduces the accelerator as a simulator with two faces
//! (substitution documented in DESIGN.md §1):
//!
//! * **Functional** — [`accelerator::Accelerator`] executes Algorithm 2 in
//!   Q8.24 fixed point with DSP-accumulator semantics (`seqge-fixed`), so
//!   accuracy experiments (Fig. 4) see the same quantization + deferred-
//!   update behaviour the hardware produces.
//! * **Performance** — [`timing`] + [`dma`] + [`pipeline`] form a
//!   cycle-approximate model of the walk-training latency, calibrated to the
//!   paper's Table 3 FPGA row; [`resources`] is a component-level utilization
//!   estimator calibrated to Table 6.
//!
//! The CPU side of the paper's system (random walks, negative pre-sampling,
//! sample upload) lives in [`host`].

pub mod accelerator;
pub mod bram;
pub mod device;
pub mod dma;
pub mod energy;
pub mod explore;
pub mod host;
pub mod pipeline;
pub mod report;
pub mod resources;
pub mod timing;
pub mod walker_accel;

pub use accelerator::{AccelStats, Accelerator};
pub use device::{FpgaDevice, Utilization};
pub use host::{HostDriver, HostPipelineReport, HostReport};
pub use resources::{estimate_resources, AcceleratorDesign, ResourceEstimate};
pub use timing::{TimingModel, WalkTiming};
