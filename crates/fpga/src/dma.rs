//! DRAM↔PL transfer model (the ZCU104's AXI HP port).
//!
//! §3.2: samples are pre-computed on the CPU and moved to the programmable
//! logic by a DMA controller; weight tiles move DRAM→BRAM before training
//! and back after. This module turns byte counts into cycle counts.

/// AXI burst-transfer model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DmaModel {
    /// Payload bytes moved per clock cycle once a burst is streaming
    /// (128-bit AXI4 @ the PL clock ⇒ 16 B; the HP ports run wider bursts
    /// with outstanding transactions ⇒ effective 32 B default).
    pub bytes_per_cycle: u32,
    /// Fixed cycles to open one burst (address phase + DRAM latency).
    pub burst_latency: u32,
    /// Maximum burst payload in bytes (AXI4 256-beat burst).
    pub max_burst_bytes: u32,
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel { bytes_per_cycle: 32, burst_latency: 40, max_burst_bytes: 4096 }
    }
}

impl DmaModel {
    /// Cycles to move `bytes` as a contiguous transfer (split into bursts).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let bursts = bytes.div_ceil(self.max_burst_bytes as u64);
        bursts * self.burst_latency as u64 + bytes.div_ceil(self.bytes_per_cycle as u64)
    }

    /// Cycles to move `count` scattered records of `record_bytes` each
    /// (one burst per record — the weight-column gather pattern).
    pub fn gather_cycles(&self, count: u64, record_bytes: u64) -> u64 {
        count * (self.burst_latency as u64 + record_bytes.div_ceil(self.bytes_per_cycle as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_is_free() {
        assert_eq!(DmaModel::default().transfer_cycles(0), 0);
    }

    #[test]
    fn contiguous_beats_gather() {
        let dma = DmaModel::default();
        // Same payload: one 64 KiB stream vs 512 scattered 128-B records.
        let contiguous = dma.transfer_cycles(64 * 1024);
        let gathered = dma.gather_cycles(512, 128);
        assert!(contiguous < gathered, "{contiguous} vs {gathered}");
    }

    #[test]
    fn transfer_scales_linearly_in_payload() {
        let dma = DmaModel::default();
        let one = dma.transfer_cycles(4096);
        let four = dma.transfer_cycles(4 * 4096);
        assert_eq!(four, 4 * one);
    }

    #[test]
    fn gather_cost_includes_per_record_latency() {
        let dma = DmaModel::default();
        assert_eq!(dma.gather_cycles(10, 32), 10 * (40 + 1));
    }
}
