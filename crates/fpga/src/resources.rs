//! Component-level resource estimator, calibrated to the paper's Table 6.
//!
//! The paper reports post-implementation utilization for three design points
//! (d ∈ {32, 64, 96}) but not the per-stage HLS unrolling, so this estimator
//! is *semi-empirical*: component unit costs are physically motivated
//! (3 DSP48E2 per 32-bit fixed-point MAC lane, ⌈lanes/2⌉ BRAM36 per
//! lanes-wide 32-bit read port, …), per-dimension lane counts are calibrated
//! so the three paper points are reproduced exactly, and any other dimension
//! is interpolated (flagged as such). The point of the model is (a) to
//! regenerate Table 6 and (b) to show which component saturates first — DSP,
//! matching the paper's §4.5 observation that higher parallelism is gated on
//! DSP/BRAM availability.

use crate::device::{FpgaDevice, Utilization};

/// Architectural parameters of one accelerator build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AcceleratorDesign {
    /// Embedding dimension the build is specialized for.
    pub dim: usize,
    /// Total fixed-point MAC lanes across the four pipeline stages. §4.5:
    /// base parallelism 32, partially 48/64 at d = 64/96 to equalize stage
    /// latencies.
    pub mac_lanes: u32,
    /// BRAM36 banks dedicated to the on-chip β weight cache (double-buffered
    /// tiles staged by the DMA engine).
    pub weight_cache_banks: u32,
    /// Clock frequency in MHz (paper: 200).
    pub clock_mhz: u32,
}

impl AcceleratorDesign {
    /// The paper's three build points, calibrated to Table 6; other
    /// dimensions get interpolated lane/cache counts.
    pub fn for_dim(dim: usize) -> Self {
        assert!(dim >= 1, "dimension must be positive");
        let (mac_lanes, weight_cache_banks) = match dim {
            32 => (457, 127),
            64 => (514, 183),
            96 => (521, 184),
            d => {
                // Piecewise-linear interpolation/extrapolation on the three
                // calibrated points (clamped at the ends).
                let lerp = |x0: f64, y0: f64, x1: f64, y1: f64, x: f64| {
                    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
                };
                let d = d as f64;
                let lanes = if d <= 64.0 {
                    lerp(32.0, 457.0, 64.0, 514.0, d.max(8.0))
                } else {
                    lerp(64.0, 514.0, 96.0, 521.0, d)
                };
                let cache = if d <= 64.0 {
                    lerp(32.0, 127.0, 64.0, 183.0, d.max(8.0))
                } else {
                    lerp(64.0, 183.0, 96.0, 184.0, d)
                };
                (lanes.round().max(8.0) as u32, cache.round().max(4.0) as u32)
            }
        };
        AcceleratorDesign { dim, mac_lanes, weight_cache_banks, clock_mhz: 200 }
    }

    /// Whether this is one of the calibrated paper points.
    pub fn is_calibrated(&self) -> bool {
        matches!(self.dim, 32 | 64 | 96)
    }
}

/// Estimated utilization, with a component breakdown.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResourceEstimate {
    /// BRAM36 blocks.
    pub bram36: u32,
    /// DSP slices.
    pub dsp: u32,
    /// Flip-flops.
    pub ff: u32,
    /// LUTs.
    pub lut: u32,
    /// BRAM breakdown: (P banks, β bandwidth banks, weight cache, FIFO/DMA).
    pub bram_parts: (u32, u32, u32, u32),
    /// DSP breakdown: (MAC lanes ×3, divider, control).
    pub dsp_parts: (u32, u32, u32),
    /// True when `dim` is one of the paper's calibrated points.
    pub calibrated: bool,
}

impl ResourceEstimate {
    /// Utilization percentages on `device`.
    pub fn utilization(&self, device: &FpgaDevice) -> Utilization {
        device.utilization(self.bram36, self.dsp, self.ff, self.lut)
    }
}

/// Unit costs (physically motivated, see module docs).
const DSP_PER_MAC: u32 = 3; // 32×32-bit signed multiply on DSP48E2
const DSP_DIVIDER: u32 = 8; // pipelined reciprocal (hpht_inv)
const FF_PER_MAC: u32 = 96; // operand/pipeline registers per lane
const LUT_PER_MAC: u32 = 78; // alignment + saturation logic per lane
const FF_PER_DIM: u32 = 180; // stage buffers widen with d
const LUT_PER_DIM: u32 = 420; // stream splitters/mergers widen with d
const FF_BASE: u32 = 0; // residual absorbed in calibration (see below)
const LUT_BASE: u32 = 4000; // AXI/DMA + controller floor

/// Estimates resources for a design. Exact on the calibrated points.
pub fn estimate_resources(design: &AcceleratorDesign) -> ResourceEstimate {
    let d = design.dim as u32;
    // --- BRAM ---
    // P matrix banked for lane-wide access: one BRAM36 feeds two 32-bit
    // words/cycle, so a 32/48/64-lane stage needs 16/24/32 banks.
    let p_banks = (d.min(64)).div_ceil(2).max(16);
    // β bandwidth banks: double-buffered sample-column tile at stage-3 width.
    let beta_banks = 2 * (d.min(48)).div_ceil(2).max(16);
    let fifo_banks = 8; // DMA FIFOs + sample queues
    let bram = p_banks + beta_banks + design.weight_cache_banks + fifo_banks;
    // --- DSP ---
    let mac_dsp = DSP_PER_MAC * design.mac_lanes;
    let control_dsp = match design.dim {
        32 => 0,
        64 => 2,
        96 => 2,
        _ => 1,
    };
    let dsp = mac_dsp + DSP_DIVIDER + control_dsp;
    // --- FF / LUT ---
    // Affine in lanes and dim with a calibration residual per paper point
    // (the residual is the part of the Vivado report the component model
    // cannot attribute — interconnect, control FSMs, AXI glue).
    let ff_model = FF_BASE + FF_PER_MAC * design.mac_lanes + FF_PER_DIM * d;
    let lut_model = LUT_BASE + LUT_PER_MAC * design.mac_lanes + LUT_PER_DIM * d;
    let (ff_resid, lut_resid): (i64, i64) = match design.dim {
        32 => (48_609 - ff_model as i64, 53_330 - lut_model as i64),
        64 => (77_584 - ff_model as i64, 87_901 - lut_model as i64),
        96 => (86_081 - ff_model as i64, 108_639 - lut_model as i64),
        _ => (2000, 3000), // nominal glue for interpolated points
    };
    let ff = (ff_model as i64 + ff_resid).max(0) as u32;
    let lut = (lut_model as i64 + lut_resid).max(0) as u32;

    ResourceEstimate {
        bram36: bram,
        dsp,
        ff,
        lut,
        bram_parts: (p_banks, beta_banks, design.weight_cache_banks, fifo_banks),
        dsp_parts: (mac_dsp, DSP_DIVIDER, control_dsp),
        calibrated: design.is_calibrated(),
    }
}

/// Paper Table 6, verbatim: (dim, BRAM, DSP, FF, LUT).
pub const PAPER_TABLE6: [(usize, u32, u32, u32, u32); 3] = [
    (32, 183, 1379, 48_609, 53_330),
    (64, 271, 1552, 77_584, 87_901),
    (96, 272, 1573, 86_081, 108_639),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_points_match_table6_exactly() {
        for &(dim, bram, dsp, ff, lut) in &PAPER_TABLE6 {
            let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
            assert!(est.calibrated);
            assert_eq!(est.dsp, dsp, "d={dim} dsp");
            assert_eq!(est.bram36, bram, "d={dim} bram");
            assert_eq!(est.ff, ff, "d={dim} ff");
            assert_eq!(est.lut, lut, "d={dim} lut");
        }
    }

    #[test]
    fn every_paper_point_fits_the_device() {
        let dev = FpgaDevice::XCZU7EV;
        for &(dim, ..) in &PAPER_TABLE6 {
            let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
            assert!(dev.fits(est.bram36, est.dsp, est.ff, est.lut), "d={dim} must fit");
        }
    }

    #[test]
    fn dsp_is_the_binding_resource() {
        // §4.5: parallelism is gated on DSP (79.8–91.0 % used) with BRAM
        // second — the estimator must reproduce that ordering.
        let dev = FpgaDevice::XCZU7EV;
        for &(dim, ..) in &PAPER_TABLE6 {
            let u = estimate_resources(&AcceleratorDesign::for_dim(dim)).utilization(&dev);
            assert!(
                u.dsp_pct > u.bram_pct || dim == 64,
                "d={dim}: dsp {} bram {}",
                u.dsp_pct,
                u.bram_pct
            );
            assert!(u.dsp_pct > u.ff_pct && u.dsp_pct > u.lut_pct, "d={dim}");
        }
    }

    #[test]
    fn interpolated_points_are_monotone_and_fit() {
        let dev = FpgaDevice::XCZU7EV;
        let mut prev_dsp = 0;
        for dim in [16usize, 40, 48, 80] {
            let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
            assert!(!est.calibrated);
            assert!(est.dsp >= prev_dsp, "dsp should not shrink with dim");
            prev_dsp = est.dsp;
            assert!(dev.fits(est.bram36, est.dsp, est.ff, est.lut), "d={dim} must fit");
        }
    }

    #[test]
    fn breakdowns_sum_to_totals() {
        for dim in [32usize, 64, 96, 48] {
            let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
            let (p, b, c, f) = est.bram_parts;
            assert_eq!(p + b + c + f, est.bram36, "d={dim} bram parts");
            let (m, dv, ct) = est.dsp_parts;
            assert_eq!(m + dv + ct, est.dsp, "d={dim} dsp parts");
        }
    }

    #[test]
    fn utilization_matches_paper_percentages() {
        let dev = FpgaDevice::XCZU7EV;
        let u = estimate_resources(&AcceleratorDesign::for_dim(64)).utilization(&dev);
        assert!((u.bram_pct - 86.86).abs() < 0.05);
        assert!((u.dsp_pct - 89.81).abs() < 0.05);
    }
}
