//! Property-based tests for the FPGA simulator's models.

use proptest::prelude::*;
use seqge_fpga::dma::DmaModel;
use seqge_fpga::{estimate_resources, AcceleratorDesign, FpgaDevice, TimingModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Walk latency is monotone in contexts and in samples per context.
    #[test]
    fn latency_monotone(
        dim in 8usize..128,
        ctxs in 1usize..100,
        samples in 1usize..100,
    ) {
        let t = TimingModel::default();
        let design = AcceleratorDesign::for_dim(dim);
        let base = t.walk_timing(&design, ctxs, samples).total_cycles;
        let more_ctx = t.walk_timing(&design, ctxs + 1, samples).total_cycles;
        let more_samples = t.walk_timing(&design, ctxs, samples + 1).total_cycles;
        prop_assert!(more_ctx > base);
        prop_assert!(more_samples >= base);
    }

    /// DMA cycles are monotone in payload and never zero for nonzero bytes.
    #[test]
    fn dma_monotone(a in 1u64..1_000_000, b in 0u64..1_000_000) {
        let dma = DmaModel::default();
        prop_assert!(dma.transfer_cycles(a) > 0);
        prop_assert!(dma.transfer_cycles(a + b) >= dma.transfer_cycles(a));
    }

    /// Resource estimates always fit the device for dimensions up to the
    /// paper's maximum build, and every breakdown sums to its total.
    #[test]
    fn estimates_fit_device(dim in 8usize..=96) {
        let dev = FpgaDevice::XCZU7EV;
        let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
        prop_assert!(dev.fits(est.bram36, est.dsp, est.ff, est.lut), "d={dim}: {est:?}");
        let (p, b, c, f) = est.bram_parts;
        prop_assert_eq!(p + b + c + f, est.bram36);
        let (m, dv, ct) = est.dsp_parts;
        prop_assert_eq!(m + dv + ct, est.dsp);
    }

    /// Utilization percentages are consistent with the raw counts.
    #[test]
    fn utilization_consistent(dim in 8usize..=96) {
        let dev = FpgaDevice::XCZU7EV;
        let est = estimate_resources(&AcceleratorDesign::for_dim(dim));
        let u = est.utilization(&dev);
        prop_assert!((u.dsp_pct - 100.0 * est.dsp as f64 / dev.dsp as f64).abs() < 1e-9);
        prop_assert!(u.bram_pct <= 100.0 && u.lut_pct <= 100.0 && u.ff_pct <= 100.0);
    }
}
