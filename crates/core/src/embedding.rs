//! Embedding extraction and post-processing.
//!
//! §3.1 lists three candidate weight sets for the embedding: the input-side
//! weights, the output-side weights, and their average. The proposed model
//! collapses the choice (input = μ·βᵀ), but the baselines keep it, and the
//! `fig6` harness ablates it via [`EmbeddingSource`].

use crate::oselm::AlphaOsElm;
use crate::skipgram::SkipGram;
use seqge_linalg::Mat;

/// Which weights to read the embedding from (§3.1's three options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EmbeddingSource {
    /// Input-side weights (the usual skip-gram choice).
    Input,
    /// Output-side weights.
    Output,
    /// Elementwise average of both.
    Average,
}

/// Extracts the chosen embedding from the SGD skip-gram baseline.
pub fn skipgram_embedding(model: &SkipGram, source: EmbeddingSource) -> Mat<f32> {
    match source {
        EmbeddingSource::Input => model.w_in().cast(),
        EmbeddingSource::Output => model.w_out().cast(),
        EmbeddingSource::Average => {
            let mut avg = model.w_in().clone();
            for (a, &b) in avg.as_mut_slice().iter_mut().zip(model.w_out().as_slice()) {
                *a = (*a + b) * 0.5;
            }
            avg.cast()
        }
    }
}

/// Extracts the chosen embedding from the fixed-α OS-ELM baseline.
pub fn alpha_embedding(model: &AlphaOsElm, source: EmbeddingSource) -> Mat<f32> {
    match source {
        EmbeddingSource::Input => model.alpha().clone(),
        EmbeddingSource::Output => model.beta_t().clone(),
        EmbeddingSource::Average => {
            let mut avg = model.alpha().clone();
            for (a, &b) in avg.as_mut_slice().iter_mut().zip(model.beta_t().as_slice()) {
                *a = (*a + b) * 0.5;
            }
            avg
        }
    }
}

/// L2-normalizes each row in place (zero rows stay zero). Downstream
/// logistic regression is scale-sensitive; normalization puts all models'
/// embeddings on the same footing regardless of `μ` or learning rate.
pub fn l2_normalize_rows(m: &mut Mat<f32>) {
    let cols = m.cols();
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
        let _ = cols;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::oselm::OsElmConfig;

    #[test]
    fn skipgram_sources_differ() {
        let m = SkipGram::new(10, ModelConfig::paper_defaults(4));
        let input = skipgram_embedding(&m, EmbeddingSource::Input);
        let output = skipgram_embedding(&m, EmbeddingSource::Output);
        let avg = skipgram_embedding(&m, EmbeddingSource::Average);
        // w_out starts at zero, so avg = input/2.
        assert!(output.as_slice().iter().all(|&x| x == 0.0));
        for i in 0..input.as_slice().len() {
            assert!((avg.as_slice()[i] - input.as_slice()[i] / 2.0).abs() < 1e-6);
        }
    }

    #[test]
    fn alpha_sources() {
        let cfg = OsElmConfig::paper_defaults(4);
        let m = AlphaOsElm::new(8, cfg);
        let input = alpha_embedding(&m, EmbeddingSource::Input);
        let output = alpha_embedding(&m, EmbeddingSource::Output);
        assert_eq!(input, *m.alpha());
        assert!(output.as_slice().iter().all(|&x| x == 0.0), "β starts at zero");
    }

    #[test]
    fn l2_normalize_makes_unit_rows() {
        let mut m = Mat::from_vec(2, 2, vec![3.0f32, 4.0, 0.0, 0.0]);
        l2_normalize_rows(&mut m);
        assert!((m[(0, 0)] - 0.6).abs() < 1e-6);
        assert!((m[(0, 1)] - 0.8).abs() < 1e-6);
        assert_eq!(m.row(1), &[0.0, 0.0], "zero rows untouched");
    }
}
