//! Analytic model-size accounting (paper Table 5).
//!
//! The paper reports deployed-model sizes in (decimal) megabytes:
//!
//! * **Original skip-gram** — two `N×d` weight matrices in double precision
//!   (the gcc/C++ CPU reference): `2·N·d·8` bytes.
//! * **Proposed model** — one `N×d` β in the 32-bit datapath format, the
//!   `d×d` P matrix, and the Walker alias table over `N` nodes
//!   (`prob: f32` + `alias: u32` per node): `N·d·4 + d²·4 + N·8` bytes.
//!
//! These formulas land within ~4 % of every Table 5 entry (the residual is
//! the paper's unstated bookkeeping); the `table5` harness prints both and
//! EXPERIMENTS.md records the deltas. The headline claim — proposed is up to
//! ~3.8× smaller — follows from the formulas directly.

/// Bytes of the original skip-gram model (input + output matrices, f64).
pub fn original_model_bytes(num_nodes: usize, dim: usize) -> usize {
    2 * num_nodes * dim * 8
}

/// Bytes of the proposed OS-ELM model (β f32 + P f32 + alias table).
pub fn proposed_model_bytes(num_nodes: usize, dim: usize) -> usize {
    num_nodes * dim * 4 + dim * dim * 4 + alias_table_bytes(num_nodes)
}

/// Bytes of a Walker alias table over `n` outcomes (f32 prob + u32 alias).
pub fn alias_table_bytes(n: usize) -> usize {
    n * 8
}

/// Decimal megabytes (the paper's unit).
pub fn to_mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

/// Size-reduction factor original/proposed.
pub fn reduction_factor(num_nodes: usize, dim: usize) -> f64 {
    original_model_bytes(num_nodes, dim) as f64 / proposed_model_bytes(num_nodes, dim) as f64
}

/// One Table 5 row: paper value vs this repo's analytic value.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SizeRow {
    /// Dataset short name.
    pub dataset: &'static str,
    /// Embedding dimension.
    pub dim: usize,
    /// Analytic original-model MB.
    pub original_mb: f64,
    /// Analytic proposed-model MB.
    pub proposed_mb: f64,
    /// Paper's original-model MB.
    pub paper_original_mb: f64,
    /// Paper's proposed-model MB.
    pub paper_proposed_mb: f64,
}

/// Paper Table 5, verbatim.
pub const PAPER_TABLE5: [(&str, usize, f64, f64); 9] = [
    ("cora", 32, 1.354, 0.376),
    ("cora", 64, 2.676, 0.735),
    ("cora", 96, 3.999, 1.105),
    ("ampt", 32, 3.823, 1.088),
    ("ampt", 64, 7.559, 2.017),
    ("ampt", 96, 11.295, 2.990),
    ("amcp", 32, 6.783, 1.897),
    ("amcp", 64, 13.589, 3.600),
    ("amcp", 96, 20.303, 5.318),
];

/// Node counts per dataset short name (Table 1).
fn nodes_of(dataset: &str) -> usize {
    match dataset {
        "cora" => 2708,
        "ampt" => 7650,
        "amcp" => 13_752,
        other => panic!("unknown dataset {other}"),
    }
}

/// Computes every Table 5 row (analytic vs paper).
pub fn table5_rows() -> Vec<SizeRow> {
    PAPER_TABLE5
        .iter()
        .map(|&(dataset, dim, paper_orig, paper_prop)| {
            let n = nodes_of(dataset);
            SizeRow {
                dataset,
                dim,
                original_mb: to_mb(original_model_bytes(n, dim)),
                proposed_mb: to_mb(proposed_model_bytes(n, dim)),
                paper_original_mb: paper_orig,
                paper_proposed_mb: paper_prop,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_paper_within_five_percent() {
        for row in table5_rows() {
            let eo = (row.original_mb - row.paper_original_mb).abs() / row.paper_original_mb;
            let ep = (row.proposed_mb - row.paper_proposed_mb).abs() / row.paper_proposed_mb;
            assert!(
                eo < 0.05,
                "{} d={}: original {:.3} vs paper {:.3} ({:.1}% off)",
                row.dataset,
                row.dim,
                row.original_mb,
                row.paper_original_mb,
                eo * 100.0
            );
            assert!(
                ep < 0.05,
                "{} d={}: proposed {:.3} vs paper {:.3} ({:.1}% off)",
                row.dataset,
                row.dim,
                row.proposed_mb,
                row.paper_proposed_mb,
                ep * 100.0
            );
        }
    }

    #[test]
    fn reduction_factor_in_paper_band() {
        // Paper: "up to 3.82 times smaller".
        let mut max_factor: f64 = 0.0;
        for &(ds, dim, _, _) in &PAPER_TABLE5 {
            let f = reduction_factor(nodes_of(ds), dim);
            assert!(f > 3.0, "{ds} d={dim}: factor {f}");
            max_factor = max_factor.max(f);
        }
        assert!((3.4..=4.2).contains(&max_factor), "max factor {max_factor}");
    }

    #[test]
    fn model_bytes_trait_agrees_with_formula() {
        use crate::config::ModelConfig;
        use crate::model::EmbeddingModel;
        use crate::oselm::{OsElmConfig, OsElmSkipGram};
        use crate::skipgram::SkipGram;
        let n = 123;
        let d = 16;
        let sg = SkipGram::new(n, ModelConfig::paper_defaults(d));
        assert_eq!(sg.model_bytes(), original_model_bytes(n, d));
        let os = OsElmSkipGram::new(n, OsElmConfig::paper_defaults(d));
        assert_eq!(os.model_bytes() + alias_table_bytes(n), proposed_model_bytes(n, d));
    }

    #[test]
    fn proposed_grows_linearly_in_dim_and_nodes() {
        let b1 = proposed_model_bytes(1000, 32);
        let b2 = proposed_model_bytes(2000, 32);
        assert!(b2 > b1 && b2 < 2 * b1 + 10_000);
        let c1 = proposed_model_bytes(1000, 32) - alias_table_bytes(1000);
        let c2 = proposed_model_bytes(1000, 64) - alias_table_bytes(1000);
        assert!(c2 > 2 * c1 - 1 && c2 < 3 * c1);
    }
}
