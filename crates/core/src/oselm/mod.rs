//! OS-ELM-based skip-gram models (the paper's proposal).
//!
//! * [`OsElmSkipGram`] — Algorithm 1: per-context recursive least-squares.
//! * [`DataflowOsElm`] — Algorithm 2: per-walk deferred `ΔP`/`Δβ`
//!   accumulation, the form the FPGA pipeline executes.
//! * [`AlphaOsElm`] — classic OS-ELM with a fixed random input matrix, the
//!   "alpha" baseline of Fig. 6.
//! * [`BlockOsElm`] — the mini-batch (block) OS-ELM generalization
//!   (extension; the paper's update is its k = 1 case).

mod alpha;
mod block;
mod dataflow;
mod model;

pub use alpha::AlphaOsElm;
pub use block::BlockOsElm;
pub use dataflow::{DataflowOsElm, PVisibility};
pub use model::{OsElmConfig, OsElmSkipGram};
