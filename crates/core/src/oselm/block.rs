//! Block (mini-batch) OS-ELM — the textbook generalization (extension).
//!
//! Liang et al.'s OS-ELM is defined for data *blocks*: for a block of `k`
//! hidden rows `H` (k×d),
//!
//! ```text
//! M  = I_k + H·P·Hᵀ               (k×k)
//! P ←  P − (P·Hᵀ)·M⁻¹·(H·P)
//! K  = P_new·Hᵀ                   (d×k block gain)
//! ```
//!
//! The paper's Algorithm 1 is the `k = 1` special case (M is the scalar
//! `1 + HPHᵀ`). Processing `k` contexts per P update amortizes the `O(d²)`
//! work — the same motivation as the FPGA's dataflow optimization, but
//! algebraically exact for the `P` recursion (only the β-column updates
//! keep their per-touch granularity). [`BlockOsElm`] implements it with a
//! Cholesky solve of the k×k system.

use crate::model::{init_weight, EmbeddingModel, NegativeDraw};
use crate::oselm::model::OsElmConfig;
use seqge_graph::NodeId;
use seqge_linalg::{ops, solve, Mat};
use seqge_sampling::{contexts, Context, NegativeTable, Rng64};

/// Mini-batch OS-ELM skip-gram.
#[derive(Debug, Clone)]
pub struct BlockOsElm {
    beta_t: Mat<f32>,
    p: Mat<f32>,
    cfg: OsElmConfig,
    block: usize,
    draw: NegativeDraw,
    /// Blocks that fell back to per-context updates because the k×k system
    /// was not positive definite (drift guard).
    fallbacks: u64,
}

impl BlockOsElm {
    /// Creates a model processing `block_size ≥ 1` contexts per `P` update.
    /// Weight init matches [`super::OsElmSkipGram`] for the same seed.
    pub fn new(num_nodes: usize, cfg: OsElmConfig, block_size: usize) -> Self {
        cfg.validate().expect("invalid OS-ELM config");
        assert!(block_size >= 1, "block size must be at least 1");
        let d = cfg.model.dim;
        let mut rng = Rng64::seed_from_u64(cfg.model.seed);
        let beta_t = Mat::from_fn(num_nodes, d, |_, _| init_weight(&mut rng, d));
        BlockOsElm {
            beta_t,
            p: Mat::scaled_identity(d, cfg.p0_scale),
            draw: NegativeDraw::new(&cfg.model),
            block: block_size,
            fallbacks: 0,
            cfg,
        }
    }

    /// `βᵀ` (row per node).
    pub fn beta_t(&self) -> &Mat<f32> {
        &self.beta_t
    }

    /// The `P` matrix.
    pub fn p(&self) -> &Mat<f32> {
        &self.p
    }

    /// Blocks that fell back to sequential updates.
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks
    }

    /// Processes one block of contexts with the exact block recursion.
    fn train_block(&mut self, block: &[Context], negatives: &NegativeTable, rng: &mut Rng64) {
        let d = self.cfg.model.dim;
        let k = block.len();
        // H: k×d (rows are μ·β[center_i], read before any update — the block
        // treats its contexts as simultaneous observations).
        let h = Mat::from_fn(k, d, |i, j| self.cfg.mu * self.beta_t[(block[i].center as usize, j)]);
        // G = P·Hᵀ (d×k), M = I + H·G (k×k).
        let mut g = Mat::<f32>::zeros(d, k);
        let mut col = vec![0.0f32; d];
        for i in 0..k {
            ops::gemv(&self.p, h.row(i), &mut col);
            for r in 0..d {
                g[(r, i)] = col[r];
            }
        }
        let mut m = Mat::<f32>::identity(k);
        for i in 0..k {
            for j in 0..k {
                m[(i, j)] += ops::dot(h.row(i), g.col_to_vec(j).as_slice());
            }
        }
        let Ok(m_inv) = solve::cholesky_inverse(&m) else {
            // Drift-dented P: fall back to k sequential scalar updates via
            // the k=1 path (always well defined thanks to its guard).
            self.fallbacks += 1;
            for ctx in block {
                self.train_block_of_one(ctx, negatives, rng);
            }
            return;
        };
        // P ← P − G·M⁻¹·Gᵀ.
        let gm = g.matmul(&m_inv); // d×k
        for r in 0..d {
            for c in 0..d {
                let mut acc = 0.0f32;
                for i in 0..k {
                    acc += gm[(r, i)] * g[(c, i)];
                }
                self.p[(r, c)] -= acc;
            }
        }
        // Block gain K = P_new·Hᵀ (d×k).
        let mut kmat = Mat::<f32>::zeros(d, k);
        for i in 0..k {
            ops::gemv(&self.p, h.row(i), &mut col);
            for r in 0..d {
                kmat[(r, i)] = col[r];
            }
        }
        // β-column updates, per touch, with the block gain column of the
        // touching context.
        for (i, ctx) in block.iter().enumerate() {
            let gain: Vec<f32> = kmat.col_to_vec(i);
            for &pos in &ctx.positives {
                {
                    let colref = self.beta_t.row_mut(pos as usize);
                    let e = 1.0 - ops::dot(h.row(i), colref);
                    ops::axpy(e, &gain, colref);
                }
                let negs = self.draw.for_positive(pos, negatives, rng);
                for &neg in negs {
                    let colref = self.beta_t.row_mut(neg as usize);
                    let e = 0.0 - ops::dot(h.row(i), colref);
                    ops::axpy(e, &gain, colref);
                }
            }
        }
    }

    /// k = 1 scalar path (shared by the fallback).
    fn train_block_of_one(&mut self, ctx: &Context, negatives: &NegativeTable, rng: &mut Rng64) {
        let d = self.cfg.model.dim;
        let mut h = vec![0.0f32; d];
        for (hj, &bj) in h.iter_mut().zip(self.beta_t.row(ctx.center as usize)) {
            *hj = self.cfg.mu * bj;
        }
        let mut ph = vec![0.0f32; d];
        ops::gemv(&self.p, &h, &mut ph);
        let hph = ops::dot(&h, &ph);
        let denom = 1.0 + hph;
        if denom < 0.5 {
            return; // drift guard: drop the context
        }
        ops::p_downdate(&mut self.p, &ph, &ph, denom);
        let rescale = 1.0 - hph / denom;
        let gain: Vec<f32> = ph.iter().map(|&x| x * rescale).collect();
        for &pos in &ctx.positives {
            {
                let colref = self.beta_t.row_mut(pos as usize);
                let e = 1.0 - ops::dot(&h, colref);
                ops::axpy(e, &gain, colref);
            }
            let negs = self.draw.for_positive(pos, negatives, rng);
            for &neg in negs {
                let colref = self.beta_t.row_mut(neg as usize);
                let e = 0.0 - ops::dot(&h, colref);
                ops::axpy(e, &gain, colref);
            }
        }
    }
}

impl EmbeddingModel for BlockOsElm {
    fn train_walk(&mut self, walk: &[NodeId], negatives: &NegativeTable, rng: &mut Rng64) {
        let ctxs = contexts(walk, self.cfg.model.window);
        self.draw.begin_walk(walk, negatives, rng);
        for chunk in ctxs.chunks(self.block) {
            self.train_block(chunk, negatives, rng);
        }
    }

    fn embedding(&self) -> Mat<f32> {
        let mut e = self.beta_t.clone();
        ops::scal(self.cfg.mu, e.as_mut_slice());
        e
    }

    fn num_nodes(&self) -> usize {
        self.beta_t.rows()
    }

    fn dim(&self) -> usize {
        self.cfg.model.dim
    }

    fn model_bytes(&self) -> usize {
        self.beta_t.heap_bytes() + self.p.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "oselm-block"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, NegativeMode};
    use crate::oselm::OsElmSkipGram;
    use seqge_sampling::{UpdatePolicy, WalkCorpus};

    const N: usize = 30;

    fn table() -> NegativeTable {
        let mut corpus = WalkCorpus::new(N);
        corpus.record(&(0..N as NodeId).collect::<Vec<_>>());
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        t
    }

    fn cfg(dim: usize) -> OsElmConfig {
        OsElmConfig {
            model: ModelConfig {
                dim,
                window: 4,
                negative_samples: 3,
                negative_mode: NegativeMode::PerWalk,
                seed: 11,
            },
            mu: 0.05,
            p0_scale: 10.0,
            regularized: true,
            forgetting: 1.0,
        }
    }

    /// Block size 1 must match the scalar model's P recursion exactly (the
    /// k×k system degenerates to the scalar Sherman–Morrison step).
    #[test]
    fn block_one_matches_scalar_p() {
        let table = table();
        let mut scalar = OsElmSkipGram::new(N, cfg(8));
        let mut block = BlockOsElm::new(N, cfg(8), 1);
        let walk: Vec<NodeId> = (0..16u32).collect();
        let mut r1 = Rng64::seed_from_u64(3);
        let mut r2 = Rng64::seed_from_u64(3);
        scalar.train_walk(&walk, &table, &mut r1);
        block.train_walk(&walk, &table, &mut r2);
        let pd = scalar.p().max_abs_diff(block.p());
        assert!(pd < 1e-4, "P recursion diverged at k=1: {pd}");
        let bd = scalar.beta_t().max_abs_diff(block.beta_t());
        assert!(bd < 1e-4, "β diverged at k=1: {bd}");
    }

    /// Larger blocks follow the same trajectory approximately (exact for P
    /// within a block, per-touch for β).
    #[test]
    fn block_four_stays_close_to_scalar() {
        let table = table();
        let mut scalar = OsElmSkipGram::new(N, cfg(8));
        let mut block = BlockOsElm::new(N, cfg(8), 4);
        let walk: Vec<NodeId> = (0..16u32).collect();
        let mut r1 = Rng64::seed_from_u64(3);
        let mut r2 = Rng64::seed_from_u64(3);
        scalar.train_walk(&walk, &table, &mut r1);
        block.train_walk(&walk, &table, &mut r2);
        assert!(block.p().all_finite());
        // Blocks read each center's β before the block's own updates, so the
        // trajectories differ; they must stay within ~10 % of P's scale
        // (p0 = 10) after one walk.
        let pd = scalar.p().max_abs_diff(block.p());
        assert!(pd < 1.5, "block-4 P should track scalar P: {pd}");
        assert_eq!(block.fallback_count(), 0);
    }

    #[test]
    fn long_training_stays_finite() {
        let table = table();
        let mut m = BlockOsElm::new(N, cfg(8), 8);
        let walk: Vec<NodeId> = (0..24u32).collect();
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            m.train_walk(&walk, &table, &mut rng);
        }
        assert!(m.beta_t().all_finite());
        assert!(m.p().all_finite());
        // P contracted from its init, as RLS must.
        let trace: f32 = (0..8).map(|i| m.p()[(i, i)]).sum();
        assert!(trace < 80.0 && trace > 0.0, "trace {trace}");
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_rejected() {
        BlockOsElm::new(N, cfg(4), 0);
    }
}
