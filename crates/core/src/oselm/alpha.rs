//! The "alpha" baseline: classic OS-ELM with a fixed random input matrix.
//!
//! Fig. 6 compares the proposed β-reuse (`H = μ·β[:,center]`) against the
//! original OS-ELM formulation where the input-side weights `α` are frozen
//! at random values (`H = α[center]`). Only `β` trains; the embedding is
//! read from `β` (the only trained weights). The paper finds this baseline
//! below the proposed model except at degenerate `μ`.

use crate::model::{EmbeddingModel, NegativeDraw};
use crate::oselm::model::OsElmConfig;
use seqge_graph::NodeId;
use seqge_linalg::{ops, Mat};
use seqge_sampling::{contexts, NegativeTable, Rng64};

/// Classic OS-ELM skip-gram with frozen random `α`.
#[derive(Debug, Clone)]
pub struct AlphaOsElm {
    /// Frozen random input weights (`N×d`).
    alpha: Mat<f32>,
    /// Trainable output weights, stored transposed (`N×d`, row per node).
    beta_t: Mat<f32>,
    p: Mat<f32>,
    cfg: OsElmConfig,
    draw: NegativeDraw,
    h: Vec<f32>,
    ph: Vec<f32>,
    phn: Vec<f32>,
    clamped: u64,
}

const DENOM_FLOOR: f32 = 1e-12;

impl AlphaOsElm {
    /// Creates the model. `α` is drawn uniform in `[-1, 1)` — the classic
    /// OS-ELM initialization (wider than the trained-weight init because `α`
    /// never moves and must span the feature space).
    pub fn new(num_nodes: usize, cfg: OsElmConfig) -> Self {
        cfg.validate().expect("invalid OS-ELM config");
        let d = cfg.model.dim;
        let mut rng = Rng64::seed_from_u64(cfg.model.seed ^ 0xA1FA);
        let alpha = Mat::from_fn(num_nodes, d, |_, _| rng.next_f32() * 2.0 - 1.0);
        // β starts at zero: OS-ELM derives it entirely from data.
        let beta_t = Mat::zeros(num_nodes, d);
        AlphaOsElm {
            alpha,
            beta_t,
            p: Mat::scaled_identity(d, cfg.p0_scale),
            draw: NegativeDraw::new(&cfg.model),
            h: vec![0.0; d],
            ph: vec![0.0; d],
            phn: vec![0.0; d],
            clamped: 0,
            cfg,
        }
    }

    /// The frozen `α`.
    pub fn alpha(&self) -> &Mat<f32> {
        &self.alpha
    }

    /// `βᵀ`.
    pub fn beta_t(&self) -> &Mat<f32> {
        &self.beta_t
    }

    /// Denominator clamp count.
    pub fn clamped_updates(&self) -> u64 {
        self.clamped
    }
}

impl EmbeddingModel for AlphaOsElm {
    fn train_walk(&mut self, walk: &[NodeId], negatives: &NegativeTable, rng: &mut Rng64) {
        let ctxs = contexts(walk, self.cfg.model.window);
        self.draw.begin_walk(walk, negatives, rng);
        for ctx in &ctxs {
            // H = α[center] (one-hot input × frozen input matrix).
            self.h.copy_from_slice(self.alpha.row(ctx.center as usize));
            ops::gemv(&self.p, &self.h, &mut self.ph);
            let hph = ops::dot(&self.h, &self.ph);
            let mut denom = if self.cfg.regularized { 1.0 + hph } else { hph };
            if denom.abs() < DENOM_FLOOR {
                denom = if denom < 0.0 { -DENOM_FLOOR } else { DENOM_FLOOR };
                self.clamped += 1;
            }
            ops::p_downdate(&mut self.p, &self.ph, &self.ph, denom);
            ops::gemv(&self.p, &self.h, &mut self.phn);
            for &pos in &ctx.positives {
                {
                    let col = self.beta_t.row_mut(pos as usize);
                    let e = 1.0 - ops::dot(&self.h, col);
                    ops::axpy(e, &self.phn, col);
                }
                let negs = self.draw.for_positive(pos, negatives, rng);
                for &neg in negs {
                    let col = self.beta_t.row_mut(neg as usize);
                    let e = 0.0 - ops::dot(&self.h, col);
                    ops::axpy(e, &self.phn, col);
                }
            }
        }
    }

    fn embedding(&self) -> Mat<f32> {
        // The trained weights are β; α is noise by construction.
        self.beta_t.clone()
    }

    fn num_nodes(&self) -> usize {
        self.beta_t.rows()
    }

    fn dim(&self) -> usize {
        self.cfg.model.dim
    }

    fn model_bytes(&self) -> usize {
        // The α matrix must be retained for inference — the size penalty the
        // proposed model eliminates (Table 5's motivation).
        self.alpha.heap_bytes() + self.beta_t.heap_bytes() + self.p.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "oselm-alpha"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, NegativeMode};
    use seqge_sampling::{UpdatePolicy, WalkCorpus};

    fn ready_table(n: usize) -> NegativeTable {
        let mut corpus = WalkCorpus::new(n);
        corpus.record(&(0..n as NodeId).collect::<Vec<_>>());
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        t
    }

    fn cfg(dim: usize) -> OsElmConfig {
        OsElmConfig {
            model: ModelConfig {
                dim,
                window: 4,
                negative_samples: 3,
                negative_mode: NegativeMode::PerPosition,
                seed: 13,
            },
            mu: 0.01,
            p0_scale: 10.0,
            regularized: true,
            forgetting: 1.0,
        }
    }

    #[test]
    fn alpha_is_frozen_by_training() {
        let table = ready_table(20);
        let mut m = AlphaOsElm::new(20, cfg(8));
        let alpha_before = m.alpha().clone();
        let mut rng = Rng64::seed_from_u64(1);
        m.train_walk(&(0..20u32).collect::<Vec<_>>(), &table, &mut rng);
        assert_eq!(m.alpha(), &alpha_before, "α must never change");
        assert!(m.beta_t().as_slice().iter().any(|&x| x != 0.0), "β must train");
    }

    #[test]
    fn model_is_larger_than_proposed() {
        use crate::oselm::OsElmSkipGram;
        let a = AlphaOsElm::new(100, cfg(16));
        let p = OsElmSkipGram::new(100, cfg(16));
        assert!(
            a.model_bytes() > p.model_bytes(),
            "retaining α must cost memory: {} vs {}",
            a.model_bytes(),
            p.model_bytes()
        );
    }

    #[test]
    fn training_stays_finite() {
        let table = ready_table(30);
        let mut m = AlphaOsElm::new(30, cfg(8));
        let mut rng = Rng64::seed_from_u64(3);
        let walk: Vec<NodeId> = (0..30u32).collect();
        for _ in 0..50 {
            m.train_walk(&walk, &table, &mut rng);
        }
        assert!(m.beta_t().all_finite());
        assert_eq!(m.clamped_updates(), 0);
    }

    #[test]
    fn embedding_is_beta() {
        let table = ready_table(10);
        let mut m = AlphaOsElm::new(10, cfg(4));
        let mut rng = Rng64::seed_from_u64(2);
        m.train_walk(&[0, 1, 2, 3, 4, 5], &table, &mut rng);
        assert_eq!(&m.embedding(), m.beta_t());
    }
}
