//! Algorithm 2: the dataflow-optimized variant.
//!
//! Algorithm 1 carries a loop dependency — each context reads the `P` and
//! `β` the previous context wrote — which blocks pipelining the four stages
//! of the FPGA kernel. Algorithm 2 accumulates the updates into `ΔP` and
//! `Δβ` and commits both to main memory once per walk (lines 19–20).
//!
//! How *visible* the in-flight `ΔP` is to stage 2 is a modeling choice with
//! teeth (see DESIGN.md §1 "Faithfulness notes"): if stage 2 reads the
//! walk-entry `P` for all 73 contexts, repeated walk directions apply up to
//! 73 downdates sized against the same stale `P` — the accumulated downdate
//! overshoots, `P` goes indefinite, and training diverges (we verified this
//! numerically; the overshoot is catastrophic on small dense graphs). The
//! hardware keeps `ΔP` in on-chip accumulators next to the stage that
//! computes it, so the natural design forwards it with pipeline-register
//! staleness only. [`PVisibility::Running`] (default) models that; the
//! paper-literal whole-walk freeze is kept as [`PVisibility::PerWalk`] for
//! the ablation, protected by a denominator guard so it degrades instead of
//! exploding.
//!
//! This is the float-exact functional model of what the FPGA executes; the
//! fixed-point + cycle-timed version lives in `seqge-fpga`.

use crate::model::{init_weight, EmbeddingModel, NegativeDraw};
use crate::oselm::model::OsElmConfig;
use seqge_graph::NodeId;
use seqge_linalg::{ops, Mat};
use seqge_sampling::{context_windows, NegativeTable, Rng64};
use std::collections::HashMap;

/// How the in-flight `ΔP` is exposed to stage 2 within a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PVisibility {
    /// `ΔP` forwarded with pipeline-register staleness: each context sees
    /// the previous context's downdate (hardware-accurate, stable).
    Running,
    /// Paper-literal whole-walk freeze: every context reads the walk-entry
    /// `P`. Unstable when walk directions repeat; guarded by
    /// [`DataflowOsElm::DENOM_GUARD`] so it degrades rather than diverges.
    PerWalk,
}

/// Per-walk accumulator for sparse `Δβ` columns: a flat arena of `d`-slots
/// indexed through a node→slot map, reused across walks (no steady-state
/// allocation).
#[derive(Debug, Clone, Default)]
pub(crate) struct DeltaBeta {
    slot_of: HashMap<NodeId, usize>,
    touched: Vec<NodeId>,
    arena: Vec<f32>,
    dim: usize,
}

impl DeltaBeta {
    pub fn new(dim: usize) -> Self {
        DeltaBeta { slot_of: HashMap::new(), touched: Vec::new(), arena: Vec::new(), dim }
    }

    /// The Δ-column for `node`, creating a zeroed slot on first touch.
    pub fn slot_mut(&mut self, node: NodeId) -> &mut [f32] {
        let dim = self.dim;
        let next = self.touched.len();
        let idx = *self.slot_of.entry(node).or_insert_with(|| {
            self.touched.push(node);
            next
        });
        if idx == next && self.arena.len() < (next + 1) * dim {
            self.arena.resize((next + 1) * dim, 0.0);
        }
        &mut self.arena[idx * dim..(idx + 1) * dim]
    }

    /// Applies all accumulated columns into `beta_t` and clears.
    pub fn apply_and_clear(&mut self, beta_t: &mut Mat<f32>) {
        for (i, &node) in self.touched.iter().enumerate() {
            let delta = &self.arena[i * self.dim..(i + 1) * self.dim];
            let row = beta_t.row_mut(node as usize);
            for j in 0..self.dim {
                row[j] += delta[j];
            }
        }
        self.slot_of.clear();
        self.touched.clear();
        self.arena.clear();
    }

    /// Number of distinct touched columns this walk.
    pub fn touched_count(&self) -> usize {
        self.touched.len()
    }
}

/// The Algorithm 2 model.
#[derive(Debug, Clone)]
pub struct DataflowOsElm {
    beta_t: Mat<f32>,
    /// Committed `P` (main-memory copy, written once per walk).
    p: Mat<f32>,
    /// Running `P` (on-chip copy stage 2 reads under `Running` visibility).
    p_run: Mat<f32>,
    cfg: OsElmConfig,
    p_visibility: PVisibility,
    draw: NegativeDraw,
    delta_p: Mat<f32>,
    delta_beta: DeltaBeta,
    h: Vec<f32>,
    ph: Vec<f32>,
    phn: Vec<f32>,
    /// Gathered sample-stage scratch: β-row indices, targets, and the
    /// batched frozen `H·β` dots ([`ops::gemv_rows`]).
    sample_ids: Vec<usize>,
    sample_ys: Vec<f32>,
    frozen_dots: Vec<f32>,
    clamped: u64,
    guarded: u64,
}

const DENOM_FLOOR: f32 = 1e-12;

impl DataflowOsElm {
    /// Creates the model. Weight init is identical to [`super::OsElmSkipGram`]
    /// for the same seed, so Fig. 4's CPU-vs-FPGA comparison starts from the
    /// same state.
    pub fn new(num_nodes: usize, cfg: OsElmConfig) -> Self {
        cfg.validate().expect("invalid OS-ELM config");
        let d = cfg.model.dim;
        let mut rng = Rng64::seed_from_u64(cfg.model.seed);
        let beta_t = Mat::from_fn(num_nodes, d, |_, _| init_weight(&mut rng, d));
        DataflowOsElm {
            beta_t,
            p: Mat::scaled_identity(d, cfg.p0_scale),
            p_run: Mat::scaled_identity(d, cfg.p0_scale),
            p_visibility: PVisibility::Running,
            draw: NegativeDraw::new(&cfg.model),
            delta_p: Mat::zeros(d, d),
            delta_beta: DeltaBeta::new(d),
            h: vec![0.0; d],
            ph: vec![0.0; d],
            phn: vec![0.0; d],
            sample_ids: Vec::new(),
            sample_ys: Vec::new(),
            frozen_dots: Vec::new(),
            clamped: 0,
            guarded: 0,
            cfg,
        }
    }

    /// Rebuilds the model from externally-held state: `beta_t` (βᵀ, row per
    /// node) and the committed `P`. The running `P` starts equal to the
    /// committed copy, as at a walk boundary. Used by the serving backends to
    /// restart a float shadow from a checkpointed trajectory.
    pub fn from_parts(cfg: OsElmConfig, beta_t: Mat<f32>, p: Mat<f32>) -> Self {
        let mut m = DataflowOsElm::new(beta_t.rows(), cfg);
        assert_eq!(beta_t.cols(), m.cfg.model.dim, "beta_t width must match dim");
        assert_eq!(p.rows(), m.cfg.model.dim, "P must be d×d");
        assert_eq!(p.cols(), m.cfg.model.dim, "P must be d×d");
        m.p_run = p.clone();
        m.p = p;
        m.beta_t = beta_t;
        m
    }

    /// The configuration.
    pub fn config(&self) -> &OsElmConfig {
        &self.cfg
    }

    /// `βᵀ` (row per node).
    pub fn beta_t(&self) -> &Mat<f32> {
        &self.beta_t
    }

    /// The `P` matrix.
    pub fn p(&self) -> &Mat<f32> {
        &self.p
    }

    /// Denominator-clamp telemetry.
    pub fn clamped_updates(&self) -> u64 {
        self.clamped
    }

    /// Denominator floor below which the `PerWalk` variant skips the `P`
    /// downdate for a context (keeps the ablation bounded).
    pub const DENOM_GUARD: f32 = 0.25;

    /// Number of contexts whose `P` downdate was skipped by the guard.
    pub fn guarded_updates(&self) -> u64 {
        self.guarded
    }

    /// Selects the `ΔP` visibility model (default [`PVisibility::Running`]).
    pub fn with_p_visibility(mut self, v: PVisibility) -> Self {
        self.p_visibility = v;
        self
    }
}

impl EmbeddingModel for DataflowOsElm {
    fn train_walk(&mut self, walk: &[NodeId], negatives: &NegativeTable, rng: &mut Rng64) {
        let d = self.cfg.model.dim;
        self.draw.begin_walk(walk, negatives, rng);
        debug_assert_eq!(self.delta_beta.touched_count(), 0);
        for (center, positives) in context_windows(walk, self.cfg.model.window) {
            // Stage 1: H from the walk-entry β (the center column's Δ is in
            // the stage-3/4 accumulators, not visible to stage 1).
            let brow = self.beta_t.row(center as usize);
            for (hi, &b) in self.h.iter_mut().zip(brow) {
                *hi = self.cfg.mu * b;
            }
            // Stage 2: Pʜ and HPHᵀ from the visible P.
            let p_src = match self.p_visibility {
                PVisibility::Running => &self.p_run,
                PVisibility::PerWalk => &self.p,
            };
            ops::gemv(p_src, &self.h, &mut self.ph);
            let hph = ops::dot(&self.h, &self.ph);
            let lambda = self.cfg.forgetting;
            let mut denom = if self.cfg.regularized { lambda + hph } else { hph };
            let drift_guard = self.cfg.regularized && denom < 0.5 * lambda;
            if denom.abs() < DENOM_FLOOR {
                denom = if denom < 0.0 { -DENOM_FLOOR } else { DENOM_FLOOR };
                self.clamped += 1;
            }
            // Stage 4a: ΔP ← ΔP − Pʜ·Pʜᵀ / denom (line 17). Under PerWalk
            // visibility the guard skips downdates once P is no longer
            // positive along H (denominator too small) — a cheap comparator
            // in hardware, and the difference between "degrades" and
            // "diverges" in the ablation.
            let guard = drift_guard
                || (self.p_visibility == PVisibility::PerWalk && denom < Self::DENOM_GUARD);
            if guard {
                // P is no longer healthy along H: drop the context entirely
                // (cheap comparator in hardware; keeps the ablation bounded).
                self.guarded += 1;
                continue;
            }
            {
                match self.p_visibility {
                    PVisibility::Running => {
                        if lambda < 1.0 {
                            // EW-RLS downdate + inflation with PSD-preserving
                            // trace normalization against covariance wind-up,
                            // plus re-symmetrization (the inflation amplifies
                            // the antisymmetric rounding component
                            // exponentially otherwise) — fused into one
                            // upper-triangle sweep.
                            let cap = self.cfg.p0_scale * d as f32;
                            ops::p_downdate_forget(
                                &mut self.p_run,
                                &self.ph,
                                denom,
                                1.0 / lambda,
                                cap,
                            );
                        } else {
                            ops::p_downdate_sym(&mut self.p_run, &self.ph, denom);
                        }
                    }
                    PVisibility::PerWalk => {
                        // Forgetting is undefined for the frozen-P ablation
                        // (the 1/λ inflation cannot be deferred soundly);
                        // the config validator allows it but the ablation
                        // binary runs λ = 1.
                        ops::p_downdate_sym(&mut self.delta_p, &self.ph, denom);
                    }
                }
                // PʜΝ = P_ctx·Hᵀ where P_ctx = P − Pʜ·Pʜᵀ/denom = a scalar
                // rescale of Pʜ — no second gemv.
                let scale = 1.0 - hph / denom;
                for i in 0..d {
                    self.phn[i] = self.ph[i] * scale;
                }
            }
            // Stage 3 + 4b: sample errors and Δβ accumulation. The error
            // reads the *effective* column β + Δβ — the Δβ accumulator
            // lives in the same BRAM the sample stage reads, so the running
            // value is what the hardware naturally sees. (Only the P chain
            // is frozen; freezing β too makes the 500-odd per-walk touches
            // of a shared negative column an unstable fixed-step iteration
            // that diverges — see DESIGN.md §1 "Faithfulness notes".)
            //
            // The frozen dots read main-memory β, which never moves inside
            // the walk — so they batch into one gathered-row block kernel.
            // The Δβ slot dots stay per-sample: slots are the running
            // accumulators whose latest value each error must see.
            self.sample_ids.clear();
            self.sample_ys.clear();
            for &pos in positives {
                self.sample_ids.push(pos as usize);
                self.sample_ys.push(1.0);
                // `for_positive` borrows self.draw; the id/target scratch
                // vectors are disjoint fields, so these borrows coexist.
                for &neg in self.draw.for_positive(pos, negatives, rng) {
                    self.sample_ids.push(neg as usize);
                    self.sample_ys.push(0.0);
                }
            }
            ops::gemv_rows(&self.beta_t, &self.sample_ids, &self.h, &mut self.frozen_dots);
            for (k, &id) in self.sample_ids.iter().enumerate() {
                let slot = self.delta_beta.slot_mut(id as NodeId);
                let e = self.sample_ys[k] - (self.frozen_dots[k] + ops::dot(&self.h, slot));
                ops::axpy(e, &self.phn, slot);
            }
        }
        // Lines 19–20: commit once per walk. Under Running visibility the
        // on-chip copy *is* the new P (write-back); under PerWalk the
        // accumulated ΔP is applied to the frozen copy.
        match self.p_visibility {
            PVisibility::Running => {
                self.p.as_mut_slice().copy_from_slice(self.p_run.as_slice());
            }
            PVisibility::PerWalk => {
                // Apply ΔP, then saturate both matrices at the Q8.24-style
                // rails the hardware would impose — the literal whole-walk
                // freeze overshoots, and the rails are what turn divergence
                // into the bounded degradation the ablation reports.
                let p_cap = 4.0 * self.cfg.p0_scale;
                for (p, &dpv) in self.p.as_mut_slice().iter_mut().zip(self.delta_p.as_slice()) {
                    *p = (*p + dpv).clamp(-p_cap, p_cap);
                }
                self.delta_p.as_mut_slice().fill(0.0);
                self.p_run.as_mut_slice().copy_from_slice(self.p.as_slice());
            }
        }
        self.delta_beta.apply_and_clear(&mut self.beta_t);
        if self.p_visibility == PVisibility::PerWalk {
            const BETA_RAIL: f32 = 128.0; // Q8.24 saturation rail
            for v in self.beta_t.as_mut_slice() {
                *v = v.clamp(-BETA_RAIL, BETA_RAIL);
            }
        }
    }

    fn embedding(&self) -> Mat<f32> {
        let mut e = self.beta_t.clone();
        ops::scal(self.cfg.mu, e.as_mut_slice());
        e
    }

    fn num_nodes(&self) -> usize {
        self.beta_t.rows()
    }

    fn dim(&self) -> usize {
        self.cfg.model.dim
    }

    fn model_bytes(&self) -> usize {
        self.beta_t.heap_bytes() + self.p.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "oselm-dataflow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, NegativeMode};
    use crate::oselm::OsElmSkipGram;
    use crate::EmbeddingModel;
    use seqge_sampling::{UpdatePolicy, WalkCorpus};

    fn ready_table(n: usize) -> NegativeTable {
        let mut corpus = WalkCorpus::new(n);
        corpus.record(&(0..n as NodeId).collect::<Vec<_>>());
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        t
    }

    fn cfg(dim: usize) -> OsElmConfig {
        OsElmConfig {
            model: ModelConfig {
                dim,
                window: 4,
                negative_samples: 3,
                negative_mode: NegativeMode::PerWalk,
                seed: 11,
            },
            mu: 0.01,
            p0_scale: 10.0,
            regularized: true,
            forgetting: 1.0,
        }
    }

    #[test]
    fn delta_beta_arena_reuse() {
        let mut db = DeltaBeta::new(3);
        db.slot_mut(5)[0] = 1.0;
        db.slot_mut(9)[1] = 2.0;
        db.slot_mut(5)[2] = 3.0; // same slot as the first touch
        assert_eq!(db.touched_count(), 2);
        let mut beta = Mat::<f32>::zeros(10, 3);
        db.apply_and_clear(&mut beta);
        assert_eq!(beta.row(5), &[1.0, 0.0, 3.0]);
        assert_eq!(beta.row(9), &[0.0, 2.0, 0.0]);
        assert_eq!(db.touched_count(), 0);
        // Reuse after clear starts from zeroed slots.
        assert_eq!(db.slot_mut(5), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn same_init_as_algorithm1() {
        let a1 = OsElmSkipGram::new(20, cfg(8));
        let a2 = DataflowOsElm::new(20, cfg(8));
        assert_eq!(a1.beta_t(), a2.beta_t(), "identical seeds must give identical init");
    }

    #[test]
    fn single_context_walk_matches_algorithm1() {
        // With exactly one context per walk there is nothing to defer:
        // Algorithm 2 must equal Algorithm 1 bit-for-bit (float-exact).
        let table = ready_table(20);
        let mut a1 = OsElmSkipGram::new(20, cfg(8));
        let mut a2 = DataflowOsElm::new(20, cfg(8));
        // walk of exactly `window` nodes → one context
        let walk: Vec<NodeId> = vec![0, 1, 2, 3];
        let mut r1 = Rng64::seed_from_u64(7);
        let mut r2 = Rng64::seed_from_u64(7);
        a1.train_walk(&walk, &table, &mut r1);
        a2.train_walk(&walk, &table, &mut r2);
        let d1 = a1.beta_t().max_abs_diff(a2.beta_t());
        assert!(d1 < 1e-6, "single-context divergence {d1}");
        let dp = a1.p().max_abs_diff(a2.p());
        assert!(dp < 1e-6, "P divergence {dp}");
    }

    #[test]
    fn multi_context_walk_diverges_but_stays_close() {
        // Deferred updates differ from sequential ones — that's the point —
        // but after one walk the two must still be near neighbors.
        let table = ready_table(30);
        let mut a1 = OsElmSkipGram::new(30, cfg(8));
        let mut a2 = DataflowOsElm::new(30, cfg(8));
        let walk: Vec<NodeId> = (0..20u32).collect();
        let mut r1 = Rng64::seed_from_u64(7);
        let mut r2 = Rng64::seed_from_u64(7);
        a1.train_walk(&walk, &table, &mut r1);
        a2.train_walk(&walk, &table, &mut r2);
        let diff = a1.beta_t().max_abs_diff(a2.beta_t());
        assert!(diff > 0.0, "multi-context walks must actually defer updates");
        assert!(diff < 0.1, "deferred updates should stay close after one walk: {diff}");
    }

    #[test]
    fn deltas_cleared_between_walks() {
        let table = ready_table(20);
        let mut m = DataflowOsElm::new(20, cfg(8));
        let mut rng = Rng64::seed_from_u64(1);
        let walk: Vec<NodeId> = (0..12u32).collect();
        m.train_walk(&walk, &table, &mut rng);
        assert_eq!(m.delta_beta.touched_count(), 0);
        assert!(m.delta_p.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn long_training_stays_finite() {
        let table = ready_table(40);
        let mut m = DataflowOsElm::new(40, cfg(16));
        let mut rng = Rng64::seed_from_u64(5);
        let walk: Vec<NodeId> = (0..40u32).collect();
        for _ in 0..100 {
            m.train_walk(&walk, &table, &mut rng);
        }
        assert!(m.beta_t().all_finite());
        assert!(m.p().all_finite());
        assert_eq!(m.clamped_updates(), 0);
    }
}
