//! Algorithm 1: the sequentially-trainable OS-ELM skip-gram.
//!
//! Classic OS-ELM keeps a random input matrix `α` and trains only the output
//! weights `β` by recursive least squares. The paper's twist (§3.1, after
//! Press & Wolf \[8\]): since skip-gram inputs are one-hot, the hidden
//! activation is just a row of the input matrix — and instead of a random
//! `α`, the model *reuses the output weights*, `W_in = μ·βᵀ`, so
//! `H_i = μ·β[:, center]`. The random matrix disappears, the model shrinks
//! (Table 5), and the embedding comes from the one matrix that actually
//! trains.
//!
//! Per context (Algorithm 1):
//!
//! ```text
//! H    = μ · β[:, center]                      (d-vector)
//! Pʜ   = P·Hᵀ ;  HPHᵀ = H·Pʜ                   (P is symmetric)
//! P   ←  P − Pʜ·Pʜᵀ / (1 + HPHᵀ)               (rank-1 downdate)
//! PʜΝ  = P·Hᵀ                                  (line 7, with the new P)
//! for each positive, then ns negatives:
//!     e          = y − H·β[:, sample]          (scalar)
//!     β[:,sample] += PʜΝ · e                   (one column update)
//! ```
//!
//! `β` is stored transposed (`N×d`, row per node) so every column access is
//! a contiguous row.

use crate::config::ModelConfig;
use crate::model::{init_weight, EmbeddingModel, NegativeDraw};
use seqge_graph::NodeId;
use seqge_linalg::{ops, Mat};
use seqge_sampling::{context_windows, contexts, NegativeTable, Rng64};

/// Configuration of the OS-ELM family of models.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OsElmConfig {
    /// Shared hyper-parameters (dimension, window, negatives, seed).
    pub model: ModelConfig,
    /// Scale factor `μ` turning `β` into the input-side weights (Fig. 6:
    /// useful range 0.005–0.1; default 0.05, the plateau center on the
    /// synthetic datasets).
    pub mu: f32,
    /// `P₀ = p0_scale · I`. The classic OS-ELM `(λI)⁻¹` init with
    /// `λ = 1/p0_scale`.
    pub p0_scale: f32,
    /// `true` → standard Sherman–Morrison denominator `1 + H·P·Hᵀ`;
    /// `false` → the paper's literal Algorithm 1 line 5 (`H·P·Hᵀ` alone),
    /// kept for the ablation (it collapses `P`; see DESIGN.md).
    pub regularized: bool,
    /// RLS forgetting factor λ ∈ (0, 1]. `1.0` (default) is the paper's
    /// plain OS-ELM: `P` contracts monotonically, so the effective learning
    /// gain decays as samples accumulate. λ < 1 is the standard
    /// exponentially-weighted RLS extension for *drifting* data (the
    /// dynamic-graph setting): `denom = λ + H·P·Hᵀ`, `P ← (P − …)/λ`,
    /// which keeps a constant effective memory of `1/(1−λ)` contexts.
    pub forgetting: f32,
}

impl OsElmConfig {
    /// Paper defaults at dimension `dim`.
    pub fn paper_defaults(dim: usize) -> Self {
        OsElmConfig {
            model: ModelConfig::paper_defaults(dim),
            mu: 0.05,
            p0_scale: 10.0,
            regularized: true,
            forgetting: 1.0,
        }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        self.model.validate()?;
        if self.mu <= 0.0 || !self.mu.is_finite() {
            return Err("mu must be positive and finite".into());
        }
        if self.p0_scale <= 0.0 || !self.p0_scale.is_finite() {
            return Err("p0_scale must be positive and finite".into());
        }
        if !(self.forgetting > 0.0 && self.forgetting <= 1.0) {
            return Err("forgetting factor must be in (0, 1]".into());
        }
        Ok(())
    }
}

/// Reusable per-context scratch vectors (no allocation in the hot loop).
#[derive(Debug, Clone)]
pub(crate) struct Scratch {
    pub h: Vec<f32>,
    pub ph: Vec<f32>,
    pub phn: Vec<f32>,
}

impl Scratch {
    pub fn new(d: usize) -> Self {
        Scratch { h: vec![0.0; d], ph: vec![0.0; d], phn: vec![0.0; d] }
    }
}

/// The proposed model (Algorithm 1).
#[derive(Debug, Clone)]
pub struct OsElmSkipGram {
    /// `βᵀ`: row `u` is the β-column of node `u` (length `d`).
    beta_t: Mat<f32>,
    /// The RLS covariance-inverse `P` (`d×d`).
    p: Mat<f32>,
    cfg: OsElmConfig,
    draw: NegativeDraw,
    scratch: Scratch,
    /// Count of contexts whose denominator was clamped (stability telemetry).
    clamped: u64,
}

// Why P's exact symmetry is an enforced invariant: the RLS downdate is
// symmetric, so it can damp symmetric drift but is *blind* to the
// antisymmetric component — under the EW-RLS 1/λ inflation that component
// grows as (1/λ)ⁿ from its rounding seed until it destroys P's
// definiteness (observed empirically: e-fold per 1/(1−λ) contexts).
// Hardware stores a triangular P and never has the problem; the float
// models mirror that by establishing exact symmetry once at every cold
// entry point (`Mat::symmetrize` in `new`'s identity init trivially, in
// `init_batch` and `from_parts` explicitly) and then *preserving* it
// bit-for-bit in the hot path: `ops::p_downdate_sym` and
// `ops::p_downdate_forget` form the rank-1 term from a commutative
// product, so the (r,c)/(c,r) updates are identical and no per-context
// re-symmetrization pass is needed.

/// Smallest admissible |denominator| before clamping; prevents a division
/// blow-up when the unregularized variant drives `H·P·Hᵀ` to zero.
const DENOM_FLOOR: f32 = 1e-12;

/// Fraction of λ below which the regularized denominator signals a
/// drift-dented P; the context's P downdate is skipped (see
/// `OsElmSkipGram::train_context`).
const POSITIVITY_GUARD: f32 = 0.5;

impl OsElmSkipGram {
    /// Creates the model over `num_nodes` nodes.
    pub fn new(num_nodes: usize, cfg: OsElmConfig) -> Self {
        cfg.validate().expect("invalid OS-ELM config");
        let d = cfg.model.dim;
        let mut rng = Rng64::seed_from_u64(cfg.model.seed);
        let beta_t = Mat::from_fn(num_nodes, d, |_, _| init_weight(&mut rng, d));
        OsElmSkipGram {
            beta_t,
            p: Mat::scaled_identity(d, cfg.p0_scale),
            draw: NegativeDraw::new(&cfg.model),
            scratch: Scratch::new(d),
            clamped: 0,
            cfg,
        }
    }

    /// Classic OS-ELM batch initialization (Liang et al. \[5\] phase 1):
    /// replaces the default `P₀ = p0_scale·I` with
    /// `P₀ = (H₀ᵀH₀ + I/p0_scale)⁻¹` computed from an initial block of
    /// hidden activations — here, the `H` vectors of the given walks'
    /// centers. Call *before* sequential training; returns an error if the
    /// Gram matrix is not invertible (it always is, thanks to the ridge
    /// term).
    pub fn init_batch(&mut self, walks: &[Vec<NodeId>]) -> Result<(), String> {
        let d = self.cfg.model.dim;
        let mut gram = Mat::<f32>::scaled_identity(d, 1.0 / self.cfg.p0_scale);
        let mut h = vec![0.0f32; d];
        let mut used = 0usize;
        for walk in walks {
            for ctx in contexts(walk, self.cfg.model.window) {
                let brow = self.beta_t.row(ctx.center as usize);
                for i in 0..d {
                    h[i] = self.cfg.mu * brow[i];
                }
                ops::ger(&mut gram, 1.0, &h, &h);
                used += 1;
            }
        }
        if used == 0 {
            return Err("no contexts in the initialization walks".into());
        }
        self.p = seqge_linalg::solve::cholesky_inverse(&gram)
            .map_err(|e| format!("batch init failed: {e}"))?;
        // Cold entry point: the inverse is symmetric only up to rounding,
        // and the hot-path kernels preserve (not restore) symmetry.
        self.p.symmetrize();
        Ok(())
    }

    /// Reconstructs a model from persisted state (`βᵀ` row-per-node and the
    /// `d×d` P matrix). Training resumes exactly where it stopped.
    pub fn from_parts(beta_t: Mat<f32>, p: Mat<f32>, cfg: OsElmConfig) -> Result<Self, String> {
        cfg.validate()?;
        let d = cfg.model.dim;
        if beta_t.cols() != d {
            return Err(format!("beta has {} cols, config dim is {d}", beta_t.cols()));
        }
        if p.rows() != d || p.cols() != d {
            return Err(format!("P is {}x{}, expected {d}x{d}", p.rows(), p.cols()));
        }
        if !beta_t.all_finite() || !p.all_finite() {
            return Err("persisted weights contain non-finite values".into());
        }
        // Cold entry point: persisted P round-trips bit-exactly (so this is
        // a no-op for our own snapshots), but hand-assembled or truncated
        // state must enter the symmetry-preserving hot path exactly
        // symmetric.
        let mut p = p;
        p.symmetrize();
        Ok(OsElmSkipGram {
            beta_t,
            p,
            draw: NegativeDraw::new(&cfg.model),
            scratch: Scratch::new(d),
            clamped: 0,
            cfg,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &OsElmConfig {
        &self.cfg
    }

    /// `βᵀ` (row per node).
    pub fn beta_t(&self) -> &Mat<f32> {
        &self.beta_t
    }

    /// The `P` matrix.
    pub fn p(&self) -> &Mat<f32> {
        &self.p
    }

    /// How many context updates hit the denominator floor.
    pub fn clamped_updates(&self) -> u64 {
        self.clamped
    }

    /// Trains one context given precomputed positives/negatives — also the
    /// entry point the FPGA host driver uses for its functional reference.
    pub(crate) fn train_context(&mut self, center: NodeId, samples: &[(NodeId, f32)]) {
        let d = self.cfg.model.dim;
        let Scratch { h, ph, phn } = &mut self.scratch;
        // H = μ·β[:,center]
        let brow = self.beta_t.row(center as usize);
        for i in 0..d {
            h[i] = self.cfg.mu * brow[i];
        }
        // Pʜ = P·Hᵀ (P symmetric ⇒ also (H·P)ᵀ)
        ops::gemv(&self.p, h, ph);
        let hph = ops::dot(h, ph);
        let lambda = self.cfg.forgetting;
        let mut denom = if self.cfg.regularized { lambda + hph } else { hph };
        if self.cfg.regularized && denom < POSITIVITY_GUARD * lambda {
            // hᵀPh should be ≥ 0 for PSD P; a materially negative value
            // means accumulated float drift has dented P along this
            // direction. Dividing by a near-zero or negative denominator
            // would FLIP the downdate into an explosive update, so skip the
            // P update for this context (β still trains with gain Pʜ).
            self.clamped += 1;
            seqge_obs::static_counter!("seqge_core_p_guard_total").inc();
            phn.copy_from_slice(ph);
        } else {
            if denom.abs() < DENOM_FLOOR {
                denom = if denom < 0.0 { -DENOM_FLOOR } else { DENOM_FLOOR };
                self.clamped += 1;
                seqge_obs::static_counter!("seqge_core_p_guard_total").inc();
            }
            if lambda < 1.0 {
                // Exponentially-weighted RLS: downdate, inflate P so old
                // evidence decays, and cap the trace against wind-up
                // (PSD-preserving — entrywise clamping destroys definiteness
                // and diverges) — all in one fused sweep that keeps P
                // exactly symmetric (see the invariant note above).
                let cap = self.cfg.p0_scale * d as f32;
                ops::p_downdate_forget(&mut self.p, ph, denom, 1.0 / lambda, cap);
            } else {
                ops::p_downdate_sym(&mut self.p, ph, denom);
            }
            // Line 7: PʜΝ = P_i·Hᵀ with the updated P. Expanding the
            // downdate, P_i·Hᵀ = Pʜ − Pʜ·(HPHᵀ)/denom = Pʜ·(1 − HPHᵀ/denom)
            // — an exact scalar rescale, so the second O(d²) gemv of the
            // literal algorithm is unnecessary.
            let rescale = 1.0 - hph / denom;
            for i in 0..d {
                phn[i] = ph[i] * rescale;
            }
        }
        // Column updates: per-sample dot → axpy interleave, exactly
        // Algorithm 1 lines 9–10. Each dot and axpy is internally unrolled,
        // and touching a row's 128 cache-hot bytes for both its read and
        // its update in one pass beats the gather-then-scatter block form
        // (`ops::gemv_rows`/`ger_rows`) that the dataflow model uses —
        // there the gather is *semantic* (stage 3 reads frozen β), here it
        // would only add a second pass plus duplicate-row bookkeeping.
        for &(sample, y) in samples {
            let row = self.beta_t.row_mut(sample as usize);
            let e = y - ops::dot(h, row);
            ops::axpy(e, phn, row);
        }
    }
}

impl EmbeddingModel for OsElmSkipGram {
    fn train_walk(&mut self, walk: &[NodeId], negatives: &NegativeTable, rng: &mut Rng64) {
        self.draw.begin_walk(walk, negatives, rng);
        let mut samples: Vec<(NodeId, f32)> =
            Vec::with_capacity((self.cfg.model.window - 1) * (self.cfg.model.negative_samples + 1));
        let mut ctxs = 0u64;
        for (center, positives) in context_windows(walk, self.cfg.model.window) {
            samples.clear();
            for &pos in positives {
                samples.push((pos, 1.0));
                for &neg in self.draw.for_positive(pos, negatives, rng) {
                    samples.push((neg, 0.0));
                }
            }
            self.train_context(center, &samples);
            ctxs += 1;
        }
        // One registry touch per walk, not per context: the inner loop is
        // the paper's Algorithm 1 hot path.
        seqge_obs::static_counter!("seqge_core_contexts_total").add(ctxs);
    }

    fn embedding(&self) -> Mat<f32> {
        // W_in = μ·βᵀ — a scaled copy of the transposed-β storage.
        let mut e = self.beta_t.clone();
        ops::scal(self.cfg.mu, e.as_mut_slice());
        e
    }

    fn num_nodes(&self) -> usize {
        self.beta_t.rows()
    }

    fn dim(&self) -> usize {
        self.cfg.model.dim
    }

    fn model_bytes(&self) -> usize {
        self.beta_t.heap_bytes() + self.p.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "oselm-skipgram"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NegativeMode;
    use seqge_sampling::{UpdatePolicy, WalkCorpus};

    pub(crate) fn ready_table(n: usize) -> NegativeTable {
        let mut corpus = WalkCorpus::new(n);
        corpus.record(&(0..n as NodeId).collect::<Vec<_>>());
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        t
    }

    fn cfg(dim: usize) -> OsElmConfig {
        OsElmConfig {
            model: ModelConfig {
                dim,
                window: 4,
                negative_samples: 3,
                negative_mode: NegativeMode::PerPosition,
                seed: 11,
            },
            mu: 0.01,
            p0_scale: 10.0,
            regularized: true,
            forgetting: 1.0,
        }
    }

    #[test]
    fn shapes_and_size() {
        let m = OsElmSkipGram::new(50, cfg(16));
        assert_eq!(m.num_nodes(), 50);
        assert_eq!(m.dim(), 16);
        assert_eq!(m.embedding().rows(), 50);
        assert_eq!(m.model_bytes(), 50 * 16 * 4 + 16 * 16 * 4);
        assert_eq!(m.p()[(0, 0)], 10.0);
        assert_eq!(m.p()[(0, 1)], 0.0);
    }

    #[test]
    fn training_contracts_p() {
        let mut m = OsElmSkipGram::new(30, cfg(8));
        let table = ready_table(30);
        let mut rng = Rng64::seed_from_u64(1);
        let trace_before: f32 = (0..8).map(|i| m.p()[(i, i)]).sum();
        for _ in 0..20 {
            m.train_walk(&(0..30u32).collect::<Vec<_>>(), &table, &mut rng);
        }
        let trace_after: f32 = (0..8).map(|i| m.p()[(i, i)]).sum();
        assert!(trace_after < trace_before, "RLS must contract P: {trace_before} → {trace_after}");
        assert!(trace_after > 0.0, "P must remain positive on the diagonal");
    }

    #[test]
    fn training_is_deterministic() {
        let table = ready_table(25);
        let run = || {
            let mut m = OsElmSkipGram::new(25, cfg(8));
            let mut rng = Rng64::seed_from_u64(5);
            m.train_walk(&(0..25u32).collect::<Vec<_>>(), &table, &mut rng);
            m.beta_t().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn weights_stay_finite_and_unclamped_when_regularized() {
        let mut m = OsElmSkipGram::new(40, cfg(16));
        let table = ready_table(40);
        let mut rng = Rng64::seed_from_u64(9);
        let walk: Vec<NodeId> = (0..40u32).collect();
        for _ in 0..100 {
            m.train_walk(&walk, &table, &mut rng);
        }
        assert!(m.beta_t().all_finite());
        assert!(m.p().all_finite());
        assert_eq!(m.clamped_updates(), 0, "regularized runs should never clamp");
    }

    #[test]
    fn positive_samples_score_higher_after_training() {
        // Walk alternates 0 and 1 so they are each other's positives.
        let mut m = OsElmSkipGram::new(40, cfg(16));
        let table = ready_table(40);
        let mut rng = Rng64::seed_from_u64(3);
        let walk: Vec<NodeId> = (0..40).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
        for _ in 0..30 {
            m.train_walk(&walk, &table, &mut rng);
        }
        // Score of node-1 as output given center 0: H·β[:,1]
        let h: Vec<f32> = m.beta_t().row(0).iter().map(|&b| b * 0.01).collect();
        let pos = ops::dot(&h, m.beta_t().row(1));
        let unrelated = ops::dot(&h, m.beta_t().row(37));
        assert!(pos > unrelated, "positive {pos} should beat unrelated {unrelated}");
    }

    #[test]
    fn unregularized_variant_clamps_and_degrades() {
        // The paper-literal denominator HPHᵀ (no +1) drives P singular; the
        // clamp counter must record trouble on repeated training.
        let mut c = cfg(8);
        c.regularized = false;
        let mut m = OsElmSkipGram::new(20, c);
        let table = ready_table(20);
        let mut rng = Rng64::seed_from_u64(2);
        let walk: Vec<NodeId> = (0..20u32).collect();
        for _ in 0..50 {
            m.train_walk(&walk, &table, &mut rng);
        }
        // Either it clamped, or P's trace collapsed toward zero.
        let trace: f32 = (0..8).map(|i| m.p()[(i, i)]).sum();
        assert!(
            m.clamped_updates() > 0 || trace.abs() < 1e-3,
            "unregularized update should degenerate (clamped={}, trace={trace})",
            m.clamped_updates()
        );
    }

    #[test]
    fn mu_scales_embedding() {
        let m = OsElmSkipGram::new(10, cfg(4));
        let e = m.embedding();
        for r in 0..10 {
            for c in 0..4 {
                assert!((e[(r, c)] - 0.01 * m.beta_t()[(r, c)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = cfg(8);
        c.mu = 0.0;
        assert!(c.validate().is_err());
        c.mu = 0.01;
        c.p0_scale = -1.0;
        assert!(c.validate().is_err());
    }
}
