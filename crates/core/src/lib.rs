//! # seqge-core — sequentially-trainable graph embedding
//!
//! The paper's contribution: a skip-gram model whose training rule is the
//! OS-ELM recursive least-squares update instead of backpropagation, making
//! it *sequentially trainable* — new edges can be folded into the embedding
//! one at a time without catastrophic forgetting.
//!
//! Models (all implement [`EmbeddingModel`]):
//!
//! * [`skipgram::SkipGram`] — the original skip-gram with negative sampling
//!   trained by SGD (the paper's baseline, "Original").
//! * [`oselm::OsElmSkipGram`] — the proposed model, Algorithm 1: hidden
//!   activations come from the trainable output weights themselves
//!   (`H = μ·β[center]`), so the random input matrix of classic OS-ELM
//!   disappears and the model shrinks ~4× (Table 5).
//! * [`oselm::DataflowOsElm`] — Algorithm 2: the FPGA-friendly variant that
//!   freezes `P` and `β` per random walk and accumulates `ΔP`, `Δβ`,
//!   enabling the pipeline's dataflow optimization at a small accuracy cost
//!   on small graphs (Fig. 4).
//! * [`oselm::AlphaOsElm`] — classic OS-ELM with a fixed random input matrix
//!   (the "alpha" baseline of Fig. 6).
//!
//! Scenario drivers live in [`sequential`]: the "all" scenario (train the
//! complete graph) and the "seq" scenario (spanning-forest start + one edge
//! at a time, walking from both endpoints of each new edge — §4.3.2).

pub mod config;
pub mod embedding;
pub mod model;
pub mod model_size;
pub mod oselm;
pub mod parallel_train;
pub mod persist;
pub mod sequential;
pub mod skipgram;

pub use config::{ModelConfig, NegativeMode, TrainConfig};
pub use embedding::EmbeddingSource;
pub use model::EmbeddingModel;
pub use oselm::{AlphaOsElm, BlockOsElm, DataflowOsElm, OsElmConfig, OsElmSkipGram, PVisibility};
pub use parallel_train::{train_all_parallel, ParallelConfig};
pub use sequential::{
    train_all_pipelined, train_all_scenario, train_seq_scenario, train_stream_scenario,
    IncrementalTrainer, PipelinedOutcome, SeqOutcome,
};
pub use skipgram::SkipGram;
