//! Hyper-parameter configuration (paper Table 2).

use seqge_sampling::Node2VecParams;

/// How negative samples are drawn during a walk's training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NegativeMode {
    /// Fresh `ns` negatives for every positive sample — the software
    /// convention (word2vec / the paper's CPU models).
    PerPosition,
    /// One set of `ns` negatives drawn at the start of each walk and reused
    /// for every window — the accelerator's DRAM↔BRAM traffic optimization
    /// (§3.2, following Ji et al. \[10\]).
    PerWalk,
}

/// Per-model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelConfig {
    /// Embedding dimension `d` (hidden-layer width). Paper: 32 / 64 / 96.
    pub dim: usize,
    /// Context window size `w`. Paper: 8.
    pub window: usize,
    /// Negative samples per positive, `ns`. Paper: 10.
    pub negative_samples: usize,
    /// Negative-draw mode.
    pub negative_mode: NegativeMode,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl ModelConfig {
    /// Table 2 defaults at embedding dimension `dim`.
    pub fn paper_defaults(dim: usize) -> Self {
        ModelConfig {
            dim,
            window: 8,
            negative_samples: 10,
            negative_mode: NegativeMode::PerPosition,
            seed: DEFAULT_SEED,
        }
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("embedding dimension must be positive".into());
        }
        if self.window < 2 {
            return Err("window must be at least 2".into());
        }
        if self.negative_samples == 0 {
            return Err("need at least one negative sample".into());
        }
        Ok(())
    }
}

/// Default weight-initialization seed used by [`ModelConfig::paper_defaults`].
pub const DEFAULT_SEED: u64 = 0x5e9_9e01;

/// Full training configuration: walk generation + model hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// node2vec walk parameters (`p`, `q`, `l`, `r`).
    pub walk: Node2VecParams,
    /// Model hyper-parameters.
    pub model: ModelConfig,
}

impl TrainConfig {
    /// The paper's full Table 2 configuration at dimension `dim`.
    pub fn paper_defaults(dim: usize) -> Self {
        TrainConfig { walk: Node2VecParams::default(), model: ModelConfig::paper_defaults(dim) }
    }

    /// Validates both halves.
    pub fn validate(&self) -> Result<(), String> {
        self.walk.validate()?;
        self.model.validate()?;
        if self.model.window > self.walk.walk_length {
            return Err("window cannot exceed walk length".into());
        }
        Ok(())
    }

    /// Number of contexts one full-length walk yields (`l − w + 1`); the
    /// paper's Table 3 measures the time to train this many contexts (73).
    pub fn contexts_per_walk(&self) -> usize {
        self.walk.walk_length - self.model.window + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table2() {
        let c = TrainConfig::paper_defaults(32);
        assert_eq!(c.walk.p, 0.5);
        assert_eq!(c.walk.q, 1.0);
        assert_eq!(c.walk.walks_per_node, 10);
        assert_eq!(c.walk.walk_length, 80);
        assert_eq!(c.model.window, 8);
        assert_eq!(c.model.negative_samples, 10);
        assert_eq!(c.model.dim, 32);
        assert_eq!(c.contexts_per_walk(), 73, "§4.2: 73 outer-loop iterations");
    }

    #[test]
    fn validation() {
        assert!(TrainConfig::paper_defaults(64).validate().is_ok());
        let mut c = TrainConfig::paper_defaults(0);
        assert!(c.validate().is_err());
        c.model.dim = 8;
        c.model.window = 1;
        assert!(c.validate().is_err());
        c.model.window = 100;
        assert!(c.validate().is_err(), "window larger than walk length");
        c.model.window = 8;
        c.model.negative_samples = 0;
        assert!(c.validate().is_err());
    }
}
