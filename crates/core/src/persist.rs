//! Model and embedding persistence.
//!
//! The deployment story of the paper is an edge device that trains in the
//! field; checkpointing the model (β, P, and the hyper-parameters) is what
//! makes that survivable. The format is a small explicitly-versioned binary
//! layout (little-endian), independent of serde so the on-disk layout is a
//! documented contract:
//!
//! ```text
//! magic  "SGE1"            4 bytes
//! kind   u8                1 = embedding, 2 = OS-ELM model
//! ---- embedding ----      rows u64, cols u64, f32[rows*cols]
//! ---- model --------      config JSON (u32 len + bytes), N u64, d u64,
//!                          beta f32[N*d], p f32[d*d]
//! ```

use crate::oselm::{OsElmConfig, OsElmSkipGram};
use seqge_linalg::Mat;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SGE1";
const KIND_EMBEDDING: u8 = 1;
const KIND_OSELM: u8 = 2;

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_f32s<W: Write>(w: &mut W, xs: &[f32]) -> io::Result<()> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

/// Largest number of f32 elements any payload section may declare
/// (embedding or β: 2³¹ elements = 8 GiB). Declared sizes above this are
/// treated as corruption rather than honored with a giant allocation.
const MAX_ELEMS: usize = 1 << 31;

/// Largest serialized-config blob [`read_oselm`] will accept; real configs
/// are well under a kilobyte, so anything bigger is a corrupt length field.
const MAX_CONFIG_BYTES: usize = 1 << 20;

fn read_f32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<f32>> {
    let byte_len = n
        .checked_mul(4)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "element count overflows"))?;
    // Grow incrementally instead of trusting the declared length with one
    // up-front allocation: a corrupt header then fails with UnexpectedEof
    // after reading the (short) real payload, not by exhausting memory.
    let mut bytes = Vec::new();
    r.take(byte_len as u64).read_to_end(&mut bytes)?;
    if bytes.len() != byte_len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("payload truncated: expected {byte_len} bytes, found {}", bytes.len()),
        ));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Validates a declared `rows × cols` shape: no overflow, bounded total.
fn checked_shape(rows: usize, cols: usize, what: &str) -> io::Result<usize> {
    match rows.checked_mul(cols) {
        Some(n) if n <= MAX_ELEMS => Ok(n),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unreasonable {what} shape {rows}x{cols}"),
        )),
    }
}

fn check_header<R: Read>(r: &mut R, kind: u8) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a seqge file"));
    }
    let mut k = [0u8; 1];
    r.read_exact(&mut k)?;
    if k[0] != kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wrong payload kind {} (expected {kind})", k[0]),
        ));
    }
    Ok(())
}

/// Writes an embedding matrix in the binary format.
pub fn write_embedding<W: Write>(emb: &Mat<f32>, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[KIND_EMBEDDING])?;
    write_u64(&mut w, emb.rows() as u64)?;
    write_u64(&mut w, emb.cols() as u64)?;
    write_f32s(&mut w, emb.as_slice())
}

/// Reads an embedding matrix written by [`write_embedding`].
pub fn read_embedding<R: Read>(mut r: R) -> io::Result<Mat<f32>> {
    check_header(&mut r, KIND_EMBEDDING)?;
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    let n = checked_shape(rows, cols, "embedding")?;
    let data = read_f32s(&mut r, n)?;
    Ok(Mat::from_vec(rows, cols, data))
}

/// Writes an embedding as TSV (`node<TAB>v0<TAB>v1…`), the interchange
/// format most downstream tools read.
pub fn write_embedding_tsv<W: Write>(emb: &Mat<f32>, mut w: W) -> io::Result<()> {
    for r in 0..emb.rows() {
        write!(w, "{r}")?;
        for &v in emb.row(r) {
            write!(w, "\t{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Serializes a trained OS-ELM model (config + β + P).
pub fn write_oselm<W: Write>(model: &OsElmSkipGram, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[KIND_OSELM])?;
    let cfg = serde_json::to_vec(model.config()).expect("config serializes");
    w.write_all(&(cfg.len() as u32).to_le_bytes())?;
    w.write_all(&cfg)?;
    write_u64(&mut w, model.beta_t().rows() as u64)?;
    write_u64(&mut w, model.beta_t().cols() as u64)?;
    write_f32s(&mut w, model.beta_t().as_slice())?;
    write_f32s(&mut w, model.p().as_slice())
}

/// Restores an OS-ELM model written by [`write_oselm`]. Training can resume
/// exactly where it stopped (β and P are the model's whole state).
pub fn read_oselm<R: Read>(mut r: R) -> io::Result<OsElmSkipGram> {
    check_header(&mut r, KIND_OSELM)?;
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let cfg_len = u32::from_le_bytes(len) as usize;
    if cfg_len > MAX_CONFIG_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unreasonable config length {cfg_len}"),
        ));
    }
    let mut cfg_bytes = vec![0u8; cfg_len];
    r.read_exact(&mut cfg_bytes)?;
    let cfg: OsElmConfig = serde_json::from_slice(&cfg_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    if cols != cfg.model.dim {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "dim/config mismatch"));
    }
    let beta_n = checked_shape(rows, cols, "beta")?;
    let p_n = checked_shape(cols, cols, "P")?;
    let beta = Mat::from_vec(rows, cols, read_f32s(&mut r, beta_n)?);
    let p = Mat::from_vec(cols, cols, read_f32s(&mut r, p_n)?);
    OsElmSkipGram::from_parts(beta, p, cfg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// File-path convenience wrappers.
pub fn save_oselm<P: AsRef<Path>>(model: &OsElmSkipGram, path: P) -> io::Result<()> {
    write_oselm(model, std::fs::File::create(path)?)
}

/// Loads an OS-ELM model from `path`.
pub fn load_oselm<P: AsRef<Path>>(path: P) -> io::Result<OsElmSkipGram> {
    read_oselm(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EmbeddingModel;
    use crate::sequential::train_all_scenario;
    use crate::TrainConfig;
    use seqge_graph::generators::classic::erdos_renyi;

    fn trained_model() -> OsElmSkipGram {
        let g = erdos_renyi(30, 0.2, 1);
        let mut cfg = TrainConfig::paper_defaults(8);
        cfg.walk.walk_length = 10;
        cfg.walk.walks_per_node = 2;
        let mut m = OsElmSkipGram::new(
            30,
            OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(8) },
        );
        train_all_scenario(&g, &mut m, &cfg, 1);
        m
    }

    #[test]
    fn embedding_binary_roundtrip() {
        let m = trained_model();
        let emb = m.embedding();
        let mut buf = Vec::new();
        write_embedding(&emb, &mut buf).unwrap();
        let back = read_embedding(&buf[..]).unwrap();
        assert_eq!(emb, back);
    }

    #[test]
    fn model_roundtrip_resumes_identically() {
        let m = trained_model();
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        let back = read_oselm(&buf[..]).unwrap();
        assert_eq!(m.beta_t(), back.beta_t());
        assert_eq!(m.p(), back.p());
        assert_eq!(m.config(), back.config());
    }

    #[test]
    fn tsv_has_one_line_per_node() {
        let m = trained_model();
        let mut buf = Vec::new();
        write_embedding_tsv(&m.embedding(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 30);
        let first: Vec<&str> = text.lines().next().unwrap().split('\t').collect();
        assert_eq!(first.len(), 9); // id + 8 dims
        assert_eq!(first[0], "0");
    }

    #[test]
    fn rejects_wrong_magic_and_kind() {
        assert!(read_embedding(&b"NOPE"[..]).is_err());
        let m = trained_model();
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        assert!(read_embedding(&buf[..]).is_err(), "kind mismatch must fail");
    }

    #[test]
    fn truncated_file_fails_cleanly() {
        let m = trained_model();
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        assert!(read_oselm(&buf[..buf.len() / 2]).is_err());
    }

    #[test]
    fn rejects_unreasonable_config_length() {
        // Header + a 4 GiB config-length field: must error out immediately
        // instead of attempting the allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(KIND_OSELM);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_oselm(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("config length"));
    }

    #[test]
    fn rejects_unreasonable_shapes_without_allocating() {
        // Valid header + config, then a corrupt β shape claiming u64::MAX
        // rows: the reader must reject the shape, not allocate for it.
        let m = trained_model();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(KIND_OSELM);
        let cfg = serde_json::to_vec(m.config()).unwrap();
        buf.extend_from_slice(&(cfg.len() as u32).to_le_bytes());
        buf.extend_from_slice(&cfg);
        buf.extend_from_slice(&u64::MAX.to_le_bytes()); // rows
        buf.extend_from_slice(&(m.config().model.dim as u64).to_le_bytes()); // cols
        let err = read_oselm(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("shape"));

        // Same for embeddings.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(KIND_EMBEDDING);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_embedding(&buf[..]).is_err());
    }

    #[test]
    fn corrupt_config_json_is_invalid_data() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(KIND_OSELM);
        let garbage = b"{not json";
        buf.extend_from_slice(&(garbage.len() as u32).to_le_bytes());
        buf.extend_from_slice(garbage);
        let err = read_oselm(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn declared_payload_longer_than_file_is_unexpected_eof() {
        // A plausible shape whose payload is missing: clean UnexpectedEof,
        // not a panic from a short buffer.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(KIND_EMBEDDING);
        buf.extend_from_slice(&100u64.to_le_bytes());
        buf.extend_from_slice(&100u64.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]); // far fewer than 100*100*4 bytes
        let err = read_embedding(&buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
