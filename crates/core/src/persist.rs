//! Model and embedding persistence.
//!
//! The deployment story of the paper is an edge device that trains in the
//! field; checkpointing the model (β, P, and the hyper-parameters) is what
//! makes that survivable. The format is a small explicitly-versioned binary
//! layout (little-endian), independent of serde so the on-disk layout is a
//! documented contract:
//!
//! ```text
//! magic  "SGE1"            4 bytes
//! kind   u8                1 = embedding, 2 = OS-ELM model
//! ---- embedding ----      rows u64, cols u64, f32[rows*cols]
//! ---- model --------      config JSON (u32 len + bytes), N u64, d u64,
//!                          beta f32[N*d], p f32[d*d]
//! ```

use crate::oselm::{OsElmConfig, OsElmSkipGram};
use seqge_linalg::Mat;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"SGE1";
const KIND_EMBEDDING: u8 = 1;
const KIND_OSELM: u8 = 2;

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_f32s<W: Write>(w: &mut W, xs: &[f32]) -> io::Result<()> {
    for &x in xs {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s<R: Read>(r: &mut R, n: usize) -> io::Result<Vec<f32>> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

fn check_header<R: Read>(r: &mut R, kind: u8) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a seqge file"));
    }
    let mut k = [0u8; 1];
    r.read_exact(&mut k)?;
    if k[0] != kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("wrong payload kind {} (expected {kind})", k[0]),
        ));
    }
    Ok(())
}

/// Writes an embedding matrix in the binary format.
pub fn write_embedding<W: Write>(emb: &Mat<f32>, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[KIND_EMBEDDING])?;
    write_u64(&mut w, emb.rows() as u64)?;
    write_u64(&mut w, emb.cols() as u64)?;
    write_f32s(&mut w, emb.as_slice())
}

/// Reads an embedding matrix written by [`write_embedding`].
pub fn read_embedding<R: Read>(mut r: R) -> io::Result<Mat<f32>> {
    check_header(&mut r, KIND_EMBEDDING)?;
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    if rows.checked_mul(cols).is_none() || rows * cols > (1 << 31) {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "unreasonable embedding shape"));
    }
    let data = read_f32s(&mut r, rows * cols)?;
    Ok(Mat::from_vec(rows, cols, data))
}

/// Writes an embedding as TSV (`node<TAB>v0<TAB>v1…`), the interchange
/// format most downstream tools read.
pub fn write_embedding_tsv<W: Write>(emb: &Mat<f32>, mut w: W) -> io::Result<()> {
    for r in 0..emb.rows() {
        write!(w, "{r}")?;
        for &v in emb.row(r) {
            write!(w, "\t{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Serializes a trained OS-ELM model (config + β + P).
pub fn write_oselm<W: Write>(model: &OsElmSkipGram, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[KIND_OSELM])?;
    let cfg = serde_json::to_vec(model.config()).expect("config serializes");
    w.write_all(&(cfg.len() as u32).to_le_bytes())?;
    w.write_all(&cfg)?;
    write_u64(&mut w, model.beta_t().rows() as u64)?;
    write_u64(&mut w, model.beta_t().cols() as u64)?;
    write_f32s(&mut w, model.beta_t().as_slice())?;
    write_f32s(&mut w, model.p().as_slice())
}

/// Restores an OS-ELM model written by [`write_oselm`]. Training can resume
/// exactly where it stopped (β and P are the model's whole state).
pub fn read_oselm<R: Read>(mut r: R) -> io::Result<OsElmSkipGram> {
    check_header(&mut r, KIND_OSELM)?;
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let mut cfg_bytes = vec![0u8; u32::from_le_bytes(len) as usize];
    r.read_exact(&mut cfg_bytes)?;
    let cfg: OsElmConfig = serde_json::from_slice(&cfg_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let rows = read_u64(&mut r)? as usize;
    let cols = read_u64(&mut r)? as usize;
    if cols != cfg.model.dim {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "dim/config mismatch"));
    }
    let beta = Mat::from_vec(rows, cols, read_f32s(&mut r, rows * cols)?);
    let p = Mat::from_vec(cols, cols, read_f32s(&mut r, cols * cols)?);
    OsElmSkipGram::from_parts(beta, p, cfg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// File-path convenience wrappers.
pub fn save_oselm<P: AsRef<Path>>(model: &OsElmSkipGram, path: P) -> io::Result<()> {
    write_oselm(model, std::fs::File::create(path)?)
}

/// Loads an OS-ELM model from `path`.
pub fn load_oselm<P: AsRef<Path>>(path: P) -> io::Result<OsElmSkipGram> {
    read_oselm(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::EmbeddingModel;
    use crate::sequential::train_all_scenario;
    use crate::TrainConfig;
    use seqge_graph::generators::classic::erdos_renyi;

    fn trained_model() -> OsElmSkipGram {
        let g = erdos_renyi(30, 0.2, 1);
        let mut cfg = TrainConfig::paper_defaults(8);
        cfg.walk.walk_length = 10;
        cfg.walk.walks_per_node = 2;
        let mut m = OsElmSkipGram::new(
            30,
            OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(8) },
        );
        train_all_scenario(&g, &mut m, &cfg, 1);
        m
    }

    #[test]
    fn embedding_binary_roundtrip() {
        let m = trained_model();
        let emb = m.embedding();
        let mut buf = Vec::new();
        write_embedding(&emb, &mut buf).unwrap();
        let back = read_embedding(&buf[..]).unwrap();
        assert_eq!(emb, back);
    }

    #[test]
    fn model_roundtrip_resumes_identically() {
        let m = trained_model();
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        let back = read_oselm(&buf[..]).unwrap();
        assert_eq!(m.beta_t(), back.beta_t());
        assert_eq!(m.p(), back.p());
        assert_eq!(m.config(), back.config());
    }

    #[test]
    fn tsv_has_one_line_per_node() {
        let m = trained_model();
        let mut buf = Vec::new();
        write_embedding_tsv(&m.embedding(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 30);
        let first: Vec<&str> = text.lines().next().unwrap().split('\t').collect();
        assert_eq!(first.len(), 9); // id + 8 dims
        assert_eq!(first[0], "0");
    }

    #[test]
    fn rejects_wrong_magic_and_kind() {
        assert!(read_embedding(&b"NOPE"[..]).is_err());
        let m = trained_model();
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        assert!(read_embedding(&buf[..]).is_err(), "kind mismatch must fail");
    }

    #[test]
    fn truncated_file_fails_cleanly() {
        let m = trained_model();
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        assert!(read_oselm(&buf[..buf.len() / 2]).is_err());
    }
}
