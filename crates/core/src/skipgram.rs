//! The original skip-gram model with negative sampling, trained by SGD —
//! the paper's baseline ("Original").
//!
//! Two weight matrices: input-side `W_in` (`N×d`, the embedding) and
//! output-side `W_out` (`N×d`, one row per output node). A (center,
//! positive) pair with `ns` negatives performs the standard SGNS update
//! (Mikolov et al. \[9\]):
//!
//! ```text
//! h       = W_in[center]
//! for t in {positive (y=1), negatives (y=0)}:
//!     g        = lr · (y − σ(h · W_out[t]))
//!     grad_h  += g · W_out[t]
//!     W_out[t] += g · h
//! W_in[center] += grad_h
//! ```
//!
//! Weights are `f64`, matching the paper's model-size accounting for the
//! original model (Table 5) and the usual double-precision CPU reference.

use crate::config::ModelConfig;
use crate::model::{init_weight, EmbeddingModel, NegativeDraw};
use seqge_graph::NodeId;
use seqge_linalg::{ops, Mat};
use seqge_sampling::{context_windows, NegativeTable, Rng64};

/// SGD-trained skip-gram with negative sampling.
#[derive(Debug, Clone)]
pub struct SkipGram {
    w_in: Mat<f64>,
    w_out: Mat<f64>,
    cfg: ModelConfig,
    lr: f64,
    draw: NegativeDraw,
    grad_h: Vec<f64>,
}

impl SkipGram {
    /// Default SGD learning rate (§4.3: 0.01).
    pub const DEFAULT_LR: f64 = 0.01;

    /// Creates a model over `num_nodes` nodes.
    pub fn new(num_nodes: usize, cfg: ModelConfig) -> Self {
        cfg.validate().expect("invalid model config");
        let mut rng = Rng64::seed_from_u64(cfg.seed);
        let d = cfg.dim;
        let w_in = Mat::from_fn(num_nodes, d, |_, _| init_weight(&mut rng, d) as f64);
        // Output weights start at zero (word2vec convention): first updates
        // are driven purely by the input embedding.
        let w_out = Mat::zeros(num_nodes, d);
        SkipGram {
            w_in,
            w_out,
            lr: Self::DEFAULT_LR,
            draw: NegativeDraw::new(&cfg),
            grad_h: vec![0.0; cfg.dim],
            cfg,
        }
    }

    /// Overrides the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
        self
    }

    /// Direct access to the input matrix (tests, diagnostics).
    pub fn w_in(&self) -> &Mat<f64> {
        &self.w_in
    }

    /// Direct access to the output matrix.
    pub fn w_out(&self) -> &Mat<f64> {
        &self.w_out
    }

    /// The configured hyper-parameters.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Folds the replicas' training progress into this model by **delta
    /// summation**: `w += Σ_s (w_s − w)`, where each `w_s` started the round
    /// from this model's weights (see [`crate::parallel_train`]).
    ///
    /// Delta summation, not parameter averaging: skip-gram updates are
    /// sparse (a round touches a small subset of rows per replica), so
    /// averaging whole weight matrices dilutes every touched row by
    /// 1/replicas each round and the model never reaches working magnitude
    /// — measured: near-chance downstream F1. Summing the deltas applies
    /// each replica's full (disjoint-ish) progress, like Hogwild with
    /// round-granular staleness.
    pub fn fold_deltas_from(&mut self, replicas: &[SkipGram]) {
        assert!(!replicas.is_empty(), "need at least one replica");
        for r in replicas {
            assert_eq!(r.num_nodes(), self.num_nodes(), "replica shape mismatch");
            assert_eq!(r.dim(), self.dim(), "replica shape mismatch");
        }
        let n = replicas.len() as f64;
        for (i, w) in self.w_in.as_mut_slice().iter_mut().enumerate() {
            let sum: f64 = replicas.iter().map(|r| r.w_in.as_slice()[i]).sum();
            // w + Σ(w_s − w) = Σ w_s − (n−1)·w
            *w = sum - (n - 1.0) * *w;
        }
        for (i, w) in self.w_out.as_mut_slice().iter_mut().enumerate() {
            let sum: f64 = replicas.iter().map(|r| r.w_out.as_slice()[i]).sum();
            *w = sum - (n - 1.0) * *w;
        }
    }
}

/// One (center, target, label) SGD step; accumulates the center gradient
/// into `grad_h` instead of applying it immediately (a free function so the
/// walk loop can hold the negative buffer and the matrices simultaneously
/// without an allocation per positive).
#[inline]
fn train_pair(
    w_in: &Mat<f64>,
    w_out: &mut Mat<f64>,
    grad_h: &mut [f64],
    lr: f64,
    center: NodeId,
    target: NodeId,
    label: f64,
) {
    let h = w_in.row(center as usize);
    let out_row = w_out.row_mut(target as usize);
    let score = ops::sigmoid(ops::dot(h, out_row));
    let g = lr * (label - score);
    for i in 0..h.len() {
        grad_h[i] += g * out_row[i];
        out_row[i] += g * h[i];
    }
}

impl EmbeddingModel for SkipGram {
    fn train_walk(&mut self, walk: &[NodeId], negatives: &NegativeTable, rng: &mut Rng64) {
        self.draw.begin_walk(walk, negatives, rng);
        for (center, positives) in context_windows(walk, self.cfg.window) {
            self.grad_h.fill(0.0);
            for &pos in positives {
                train_pair(
                    &self.w_in,
                    &mut self.w_out,
                    &mut self.grad_h,
                    self.lr,
                    center,
                    pos,
                    1.0,
                );
                // Disjoint field borrows: `negs` borrows `self.draw` while
                // `train_pair` borrows the weight matrices.
                let negs = self.draw.for_positive(pos, negatives, rng);
                for &neg in negs {
                    train_pair(
                        &self.w_in,
                        &mut self.w_out,
                        &mut self.grad_h,
                        self.lr,
                        center,
                        neg,
                        0.0,
                    );
                }
            }
            // Apply the accumulated center gradient once per context.
            let row = self.w_in.row_mut(center as usize);
            for (w, &g) in row.iter_mut().zip(&self.grad_h) {
                *w += g;
            }
        }
    }

    fn embedding(&self) -> Mat<f32> {
        self.w_in.cast()
    }

    fn num_nodes(&self) -> usize {
        self.w_in.rows()
    }

    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn model_bytes(&self) -> usize {
        self.w_in.heap_bytes() + self.w_out.heap_bytes()
    }

    fn name(&self) -> &'static str {
        "skipgram-sgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NegativeMode;
    use seqge_sampling::{UpdatePolicy, WalkCorpus};

    fn setup(n: usize, dim: usize) -> (SkipGram, NegativeTable, Rng64) {
        let cfg = ModelConfig {
            dim,
            window: 4,
            negative_samples: 3,
            negative_mode: NegativeMode::PerPosition,
            seed: 7,
        };
        let model = SkipGram::new(n, cfg);
        let mut corpus = WalkCorpus::new(n);
        corpus.record(&(0..n as NodeId).collect::<Vec<_>>());
        let mut table = NegativeTable::new(UpdatePolicy::every_edge());
        table.rebuild(&corpus);
        (model, table, Rng64::seed_from_u64(99))
    }

    #[test]
    fn construction_shapes() {
        let (m, _, _) = setup(20, 8);
        assert_eq!(m.num_nodes(), 20);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.embedding().rows(), 20);
        assert_eq!(m.embedding().cols(), 8);
        assert_eq!(m.model_bytes(), 2 * 20 * 8 * 8);
    }

    #[test]
    fn training_changes_visited_rows_only() {
        let (mut m, table, mut rng) = setup(30, 8);
        let before = m.w_in().clone();
        let walk: Vec<NodeId> = vec![0, 1, 2, 3, 4, 5];
        m.train_walk(&walk, &table, &mut rng);
        // Center nodes (0..=4 appear as centers of some context) changed.
        assert_ne!(m.w_in().row(0), before.row(0));
        // A node never in the walk keeps its input row (only W_out rows of
        // negatives move).
        assert_eq!(m.w_in().row(29), before.row(29));
    }

    #[test]
    fn training_is_deterministic() {
        let (mut a, table, mut rng_a) = setup(25, 8);
        let (mut b, _, mut rng_b) = setup(25, 8);
        let walk: Vec<NodeId> = vec![3, 4, 5, 6, 7, 8, 9, 10];
        a.train_walk(&walk, &table, &mut rng_a);
        b.train_walk(&walk, &table, &mut rng_b);
        assert_eq!(a.w_in(), b.w_in());
        assert_eq!(a.w_out(), b.w_out());
    }

    #[test]
    fn positive_pairs_gain_similarity() {
        // Train many walks alternating 0↔1; their embedding dot product with
        // each other's output row should grow above a never-trained pair.
        let (mut m, table, mut rng) = setup(40, 16);
        let walk: Vec<NodeId> = (0..40).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
        for _ in 0..50 {
            m.train_walk(&walk, &table, &mut rng);
        }
        let score_pos = ops::dot(m.w_in().row(0), m.w_out().row(1));
        let score_unrelated = ops::dot(m.w_in().row(0), m.w_out().row(35));
        assert!(
            score_pos > score_unrelated + 0.5,
            "positive pair should score higher: {score_pos} vs {score_unrelated}"
        );
    }

    #[test]
    fn weights_stay_finite_under_long_training() {
        let (mut m, table, mut rng) = setup(20, 8);
        let walk: Vec<NodeId> = (0..20u32).collect();
        for _ in 0..200 {
            m.train_walk(&walk, &table, &mut rng);
        }
        assert!(m.w_in().all_finite());
        assert!(m.w_out().all_finite());
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn bad_lr_rejected() {
        let (m, _, _) = setup(5, 4);
        let _ = m.with_learning_rate(-1.0);
    }
}
