//! Scenario drivers: "all" (batch) and "seq" (dynamic-graph) training.
//!
//! §4.3.2 defines the two evaluation scenarios:
//!
//! * **all** — "an entire graph is trained assuming that all the edges exist
//!   from the beginning": `r` walks from every node on the complete graph.
//! * **seq** — the initial graph is a spanning forest with the same
//!   connected components as the full graph; the removed edges are added
//!   back one at a time, and "every time the removed edge is added, the
//!   random walk and training of node2vec are executed … the random walk
//!   starts from both the ends of an added edge."

use crate::config::TrainConfig;
use crate::model::EmbeddingModel;
use seqge_graph::{spanning_forest, EdgeStream, Graph};
use seqge_sampling::{
    generate_corpus, stream_walks, NegativeTable, PipelineConfig, Rng64, StepStrategy,
    UpdatePolicy, WalkCorpus, Walker,
};
use std::time::{Duration, Instant};

/// Telemetry from a sequential training run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SeqOutcome {
    /// Edges replayed into the graph.
    pub edges_inserted: usize,
    /// Walks trained (2 per inserted edge, plus the initial forest pass).
    pub walks_trained: usize,
    /// Negative-table rebuilds performed.
    pub table_rebuilds: u64,
}

/// Trains `model` on the complete graph (the "all" scenario): generates the
/// full walk corpus (`r` walks per node), builds the negative table from its
/// frequencies, and trains every walk once.
pub fn train_all_scenario<M: EmbeddingModel>(
    g: &Graph,
    model: &mut M,
    cfg: &TrainConfig,
    seed: u64,
) {
    cfg.validate().expect("invalid train config");
    assert_eq!(g.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
    let csr = g.to_csr();
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(seed);
    let (corpus, walks) = generate_corpus(&csr, &mut walker, &mut rng);
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    if !table.is_ready() {
        return; // edgeless graph: nothing to train
    }
    for walk in &walks {
        model.train_walk(walk, &table, &mut rng);
    }
}

/// Telemetry from a pipelined "all"-scenario run (see
/// [`train_all_pipelined`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelinedOutcome {
    /// Walker threads used.
    pub threads: usize,
    /// Walks delivered by the pipeline (including skipped isolated-node
    /// walks).
    pub walks_generated: u64,
    /// Walks actually trained.
    pub walks_trained: usize,
    /// Time walker threads spent inside the walk kernel, summed over
    /// threads, in ms.
    pub gen_busy_ms: f64,
    /// Time the consumer spent inside `train_walk`, in ms.
    pub train_busy_ms: f64,
    /// End-to-end wall-clock time, in ms.
    pub wall_ms: f64,
}

impl PipelinedOutcome {
    /// How much of the ideal serial time the overlap hid:
    /// `1 − wall / (gen_busy / threads + train_busy)`. 0 means no overlap
    /// (or overheads ate it); the upper bound for a two-stage pipeline is
    /// `min(gen, train) / (gen + train)` ≤ 0.5.
    pub fn overlap_ratio(&self) -> f64 {
        let serial = self.gen_busy_ms / self.threads.max(1) as f64 + self.train_busy_ms;
        if serial <= 0.0 {
            return 0.0;
        }
        (1.0 - self.wall_ms / serial).max(0.0)
    }
}

/// The RNG stream index reserved for the consumer's negative sampling —
/// walk streams use indices `0..n·r`, far from `u64::MAX`.
const TRAIN_STREAM: u64 = u64::MAX;

/// Pipelined counterpart of [`train_all_scenario`]: walker threads generate
/// the corpus while this thread trains it, overlapping the two stages.
///
/// Differences from the serial driver, both deterministic per seed and
/// independent of `threads`:
///
/// * each walk has its own RNG stream (see
///   [`seqge_sampling::pipeline`]), so the corpus differs from
///   `train_all_scenario`'s single-stream corpus at equal seeds;
/// * the negative table is built from the **first round** of walks (one per
///   node) instead of the full corpus, so training can start after round 0
///   rather than after all `r` rounds — the table still covers every
///   non-isolated node, but its frequencies are estimated from `1/r` of the
///   corpus.
pub fn train_all_pipelined<M: EmbeddingModel>(
    g: &Graph,
    model: &mut M,
    cfg: &TrainConfig,
    seed: u64,
    threads: usize,
) -> PipelinedOutcome {
    cfg.validate().expect("invalid train config");
    assert_eq!(g.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
    let wall_start = Instant::now();
    let csr = g.to_csr();
    let n = g.num_nodes() as u64;

    let mut corpus = WalkCorpus::new(g.num_nodes());
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    let mut pending: Vec<Vec<seqge_graph::NodeId>> = Vec::new();
    let mut rng = Rng64::for_stream(seed, TRAIN_STREAM);
    let mut walks_trained = 0usize;
    let mut train_busy = Duration::ZERO;

    let stats = stream_walks(
        &csr,
        cfg.walk,
        StepStrategy::Cumulative,
        seed,
        PipelineConfig::with_threads(threads),
        |index, walk| {
            if walk.len() >= 2 {
                corpus.record(&walk);
                pending.push(walk);
            }
            // Round 0 done: freeze the table and start training. Everything
            // buffered so far drains now; later walks train on arrival.
            if index + 1 == n && !pending.is_empty() {
                table.rebuild(&corpus);
            }
            if table.is_ready() {
                let t0 = Instant::now();
                for w in pending.drain(..) {
                    model.train_walk(&w, &table, &mut rng);
                    walks_trained += 1;
                }
                train_busy += t0.elapsed();
            }
        },
    );

    // Graphs with one round (r = 1), or whose round 0 ended in skipped
    // isolated-node walks, reach here with untrained leftovers.
    if !pending.is_empty() {
        table.rebuild(&corpus);
        if table.is_ready() {
            let t0 = Instant::now();
            for w in pending.drain(..) {
                model.train_walk(&w, &table, &mut rng);
                walks_trained += 1;
            }
            train_busy += t0.elapsed();
        }
    }

    PipelinedOutcome {
        threads: stats.threads,
        walks_generated: stats.walks_generated,
        walks_trained,
        gen_busy_ms: stats.gen_busy.as_secs_f64() * 1e3,
        train_busy_ms: train_busy.as_secs_f64() * 1e3,
        wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Trains `model` sequentially (the "seq" scenario). Returns the final graph
/// (forest + replayed edges) and run telemetry.
///
/// * `policy` — negative-table rebuild cadence (Fig. 7's variable).
/// * `edge_fraction` — fraction of removed edges to replay (1.0 = the full
///   paper protocol; smaller values are for CI-scale runs and leave the
///   final graph sparser than the original).
pub fn train_seq_scenario<M: EmbeddingModel>(
    full: &Graph,
    model: &mut M,
    cfg: &TrainConfig,
    policy: UpdatePolicy,
    seed: u64,
    edge_fraction: f64,
) -> (Graph, SeqOutcome) {
    cfg.validate().expect("invalid train config");
    assert_eq!(full.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
    let split = spanning_forest(full);
    let mut g = split.initial_graph(full);
    let stream = EdgeStream::from_forest_split(&split, seed ^ 0xED6E).subsample(edge_fraction);

    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut outcome = SeqOutcome { edges_inserted: 0, walks_trained: 0, table_rebuilds: 0 };

    // Initial pass: train the forest with the "all" protocol ("only a
    // fraction of edges is trained first").
    let mut corpus;
    let mut table = NegativeTable::new(policy);
    {
        let csr = g.to_csr();
        let (c, walks) = generate_corpus(&csr, &mut walker, &mut rng);
        corpus = c;
        table.rebuild(&corpus);
        if table.is_ready() {
            for walk in &walks {
                model.train_walk(walk, &table, &mut rng);
                outcome.walks_trained += 1;
            }
        }
    }

    replay_edges(
        &mut g,
        stream.edges(),
        model,
        cfg,
        &mut walker,
        &mut rng,
        &mut corpus,
        &mut table,
        &mut outcome,
    );
    outcome.table_rebuilds = table.rebuild_count();
    (g, outcome)
}

/// The per-edge insertion loop shared by [`train_seq_scenario`] and
/// [`train_stream_scenario`]: insert, walk from both endpoints, train,
/// notify the negative table.
#[allow(clippy::too_many_arguments)]
fn replay_edges<M: EmbeddingModel>(
    g: &mut Graph,
    edges: &[(seqge_graph::NodeId, seqge_graph::NodeId)],
    model: &mut M,
    cfg: &TrainConfig,
    walker: &mut Walker,
    rng: &mut Rng64,
    corpus: &mut WalkCorpus,
    table: &mut NegativeTable,
    outcome: &mut SeqOutcome,
) {
    let mut buf = Vec::with_capacity(cfg.walk.walk_length);
    for &(u, v) in edges {
        g.add_edge(u, v).expect("stream edges are insertable exactly once");
        outcome.edges_inserted += 1;
        for start in [u, v] {
            walker.walk_into(&*g, start, rng, &mut buf);
            if buf.len() < 2 {
                continue;
            }
            corpus.record(&buf);
            // Table must exist before the first training step (a forest of
            // isolated nodes can reach here with no table yet).
            if !table.is_ready() {
                table.rebuild(corpus);
            }
            if table.is_ready() {
                model.train_walk(&buf, table, rng);
                outcome.walks_trained += 1;
            }
        }
        table.on_edge_inserted(corpus);
    }
}

/// Trains `model` on an explicit edge-arrival stream starting from an empty
/// graph over `num_nodes` nodes — the drift scenario driven by
/// [`seqge_graph::generators::TimestampedGraph`] schedules, where edge order
/// is bursty per community instead of uniformly shuffled. Returns the built
/// graph and telemetry.
pub fn train_stream_scenario<M: EmbeddingModel>(
    num_nodes: usize,
    edges: &[(seqge_graph::NodeId, seqge_graph::NodeId)],
    model: &mut M,
    cfg: &TrainConfig,
    policy: UpdatePolicy,
    seed: u64,
) -> (Graph, SeqOutcome) {
    cfg.validate().expect("invalid train config");
    assert_eq!(num_nodes, model.num_nodes(), "graph/model node count mismatch");
    let mut g = Graph::with_nodes(num_nodes);
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(seed);
    let mut corpus = WalkCorpus::new(num_nodes);
    let mut table = NegativeTable::new(policy);
    let mut outcome = SeqOutcome { edges_inserted: 0, walks_trained: 0, table_rebuilds: 0 };
    replay_edges(
        &mut g,
        edges,
        model,
        cfg,
        &mut walker,
        &mut rng,
        &mut corpus,
        &mut table,
        &mut outcome,
    );
    outcome.table_rebuilds = table.rebuild_count();
    (g, outcome)
}

/// Builds a ready negative table from a fresh corpus over `g` (helper for
/// benches and tests that train ad-hoc walks).
pub fn table_for_graph(g: &Graph, cfg: &TrainConfig, seed: u64) -> (NegativeTable, WalkCorpus) {
    let csr = g.to_csr();
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(seed);
    let (corpus, _) = generate_corpus(&csr, &mut walker, &mut rng);
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    (table, corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, NegativeMode};
    use crate::oselm::{OsElmConfig, OsElmSkipGram};
    use crate::skipgram::SkipGram;
    use seqge_graph::generators::classic::{erdos_renyi, ring};
    use seqge_sampling::Node2VecParams;

    fn small_cfg(dim: usize) -> TrainConfig {
        TrainConfig {
            walk: Node2VecParams { walk_length: 12, walks_per_node: 2, ..Default::default() },
            model: ModelConfig {
                dim,
                window: 4,
                negative_samples: 3,
                negative_mode: NegativeMode::PerPosition,
                seed: 5,
            },
        }
    }

    fn oselm_cfg(dim: usize) -> OsElmConfig {
        OsElmConfig {
            model: small_cfg(dim).model,
            mu: 0.01,
            p0_scale: 10.0,
            regularized: true,
            forgetting: 1.0,
        }
    }

    #[test]
    fn all_scenario_trains_every_node_region() {
        let g = erdos_renyi(40, 0.15, 3);
        let cfg = small_cfg(8);
        let mut model = OsElmSkipGram::new(40, oselm_cfg(8));
        let before = model.beta_t().clone();
        train_all_scenario(&g, &mut model, &cfg, 1);
        assert_ne!(model.beta_t(), &before, "training must move weights");
        assert!(model.beta_t().all_finite());
    }

    #[test]
    fn all_scenario_on_empty_graph_is_noop() {
        let g = Graph::with_nodes(10);
        let cfg = small_cfg(4);
        let mut model = SkipGram::new(10, cfg.model);
        let before = model.embedding();
        train_all_scenario(&g, &mut model, &cfg, 1);
        assert_eq!(model.embedding(), before);
    }

    /// Acceptance criterion: pipelined training is bit-identical across
    /// thread counts (walk values, table, and training order are all
    /// functions of the seed alone).
    #[test]
    fn pipelined_training_identical_across_thread_counts() {
        let g = erdos_renyi(50, 0.12, 13);
        let cfg = small_cfg(8);
        let mut reference = OsElmSkipGram::new(50, oselm_cfg(8));
        let ref_out = train_all_pipelined(&g, &mut reference, &cfg, 21, 1);
        for threads in [2, 4, 7] {
            let mut model = OsElmSkipGram::new(50, oselm_cfg(8));
            let out = train_all_pipelined(&g, &mut model, &cfg, 21, threads);
            assert_eq!(out.walks_trained, ref_out.walks_trained);
            assert_eq!(
                model.beta_t(),
                reference.beta_t(),
                "β differs between 1 and {threads} threads"
            );
        }
    }

    #[test]
    fn pipelined_training_moves_weights_and_reports_sane_telemetry() {
        let g = erdos_renyi(40, 0.15, 3);
        let cfg = small_cfg(8);
        let mut model = OsElmSkipGram::new(40, oselm_cfg(8));
        let before = model.beta_t().clone();
        let out = train_all_pipelined(&g, &mut model, &cfg, 1, 2);
        assert_ne!(model.beta_t(), &before);
        assert!(model.beta_t().all_finite());
        assert_eq!(out.walks_generated, 40 * 2);
        assert_eq!(out.walks_trained, 80, "no isolated nodes at p=0.15, n=40, seed 3");
        assert!(out.gen_busy_ms >= 0.0 && out.train_busy_ms > 0.0 && out.wall_ms > 0.0);
        assert!((0.0..=1.0).contains(&out.overlap_ratio()));
    }

    #[test]
    fn pipelined_on_empty_graph_is_noop() {
        let g = Graph::with_nodes(10);
        let cfg = small_cfg(4);
        let mut model = SkipGram::new(10, cfg.model);
        let before = model.embedding();
        let out = train_all_pipelined(&g, &mut model, &cfg, 1, 4);
        assert_eq!(model.embedding(), before);
        assert_eq!(out.walks_trained, 0);
    }

    #[test]
    fn pipelined_single_round_still_trains() {
        // r = 1: round 0 is the whole stream, so the table is built at the
        // very last walk and everything drains in one burst.
        let g = ring(16);
        let cfg = TrainConfig {
            walk: Node2VecParams { walk_length: 10, walks_per_node: 1, ..Default::default() },
            ..small_cfg(4)
        };
        let mut model = OsElmSkipGram::new(16, oselm_cfg(4));
        let out = train_all_pipelined(&g, &mut model, &cfg, 5, 3);
        assert_eq!(out.walks_trained, 16);
        assert!(model.beta_t().all_finite());
    }

    #[test]
    fn seq_scenario_replays_all_edges_at_fraction_one() {
        let full = erdos_renyi(30, 0.2, 7);
        let cfg = small_cfg(8);
        let mut model = OsElmSkipGram::new(30, oselm_cfg(8));
        let (g, outcome) =
            train_seq_scenario(&full, &mut model, &cfg, UpdatePolicy::every_edge(), 2, 1.0);
        assert_eq!(g.num_edges(), full.num_edges(), "fraction 1.0 restores the full graph");
        let forest_edges = spanning_forest(&full).forest_edges.len();
        assert_eq!(outcome.edges_inserted, full.num_edges() - forest_edges);
        assert!(outcome.walks_trained >= 2 * outcome.edges_inserted);
        assert!(outcome.table_rebuilds >= outcome.edges_inserted as u64);
    }

    #[test]
    fn seq_scenario_fraction_reduces_work() {
        let full = erdos_renyi(30, 0.25, 9);
        let cfg = small_cfg(8);
        let mut m1 = OsElmSkipGram::new(30, oselm_cfg(8));
        let mut m2 = OsElmSkipGram::new(30, oselm_cfg(8));
        let (_, full_run) =
            train_seq_scenario(&full, &mut m1, &cfg, UpdatePolicy::every_edge(), 2, 1.0);
        let (_, half_run) =
            train_seq_scenario(&full, &mut m2, &cfg, UpdatePolicy::every_edge(), 2, 0.5);
        assert!(half_run.edges_inserted < full_run.edges_inserted);
        assert!(half_run.edges_inserted > 0);
    }

    #[test]
    fn never_policy_builds_table_once() {
        let full = ring(20);
        let cfg = small_cfg(4);
        let mut model = OsElmSkipGram::new(20, oselm_cfg(4));
        let (_, outcome) = train_seq_scenario(&full, &mut model, &cfg, UpdatePolicy::Never, 3, 1.0);
        assert_eq!(outcome.table_rebuilds, 1);
    }

    #[test]
    fn seq_works_for_sgd_baseline_too() {
        let full = erdos_renyi(25, 0.2, 11);
        let cfg = small_cfg(8);
        let mut model = SkipGram::new(25, cfg.model);
        let (_, outcome) =
            train_seq_scenario(&full, &mut model, &cfg, UpdatePolicy::every_edge(), 4, 1.0);
        assert!(outcome.walks_trained > 0);
        assert!(model.w_in().all_finite());
    }

    #[test]
    fn table_for_graph_is_ready_on_nonempty_graph() {
        let g = ring(12);
        let (table, corpus) = table_for_graph(&g, &small_cfg(4), 1);
        assert!(table.is_ready());
        assert!(corpus.total_appearances() > 0);
    }
}
