//! Scenario drivers: "all" (batch) and "seq" (dynamic-graph) training.
//!
//! §4.3.2 defines the two evaluation scenarios:
//!
//! * **all** — "an entire graph is trained assuming that all the edges exist
//!   from the beginning": `r` walks from every node on the complete graph.
//! * **seq** — the initial graph is a spanning forest with the same
//!   connected components as the full graph; the removed edges are added
//!   back one at a time, and "every time the removed edge is added, the
//!   random walk and training of node2vec are executed … the random walk
//!   starts from both the ends of an added edge."

use crate::config::TrainConfig;
use crate::model::EmbeddingModel;
use seqge_graph::{spanning_forest, EdgeEvent, EdgeStream, Graph, GraphError, NodeId};
use seqge_sampling::{
    generate_corpus, stream_walks, NegativeTable, Node2VecParams, PipelineConfig, Rng64,
    StepStrategy, UpdatePolicy, WalkCorpus, Walker,
};
use std::time::{Duration, Instant};

/// Telemetry from a sequential training run.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SeqOutcome {
    /// Edges replayed into the graph.
    pub edges_inserted: usize,
    /// Walks trained (2 per inserted edge, plus the initial forest pass).
    pub walks_trained: usize,
    /// Negative-table rebuilds performed.
    pub table_rebuilds: u64,
}

/// Trains `model` on the complete graph (the "all" scenario): generates the
/// full walk corpus (`r` walks per node), builds the negative table from its
/// frequencies, and trains every walk once.
pub fn train_all_scenario<M: EmbeddingModel>(
    g: &Graph,
    model: &mut M,
    cfg: &TrainConfig,
    seed: u64,
) {
    cfg.validate().expect("invalid train config");
    assert_eq!(g.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
    let csr = g.to_csr();
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(seed);
    let (corpus, walks) = generate_corpus(&csr, &mut walker, &mut rng);
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    if !table.is_ready() {
        return; // edgeless graph: nothing to train
    }
    for walk in &walks {
        model.train_walk(walk, &table, &mut rng);
    }
}

/// Telemetry from a pipelined "all"-scenario run (see
/// [`train_all_pipelined`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelinedOutcome {
    /// Walker threads used.
    pub threads: usize,
    /// Walks delivered by the pipeline (including skipped isolated-node
    /// walks).
    pub walks_generated: u64,
    /// Walks actually trained.
    pub walks_trained: usize,
    /// Time walker threads spent inside the walk kernel, summed over
    /// threads, in ms.
    pub gen_busy_ms: f64,
    /// Time the consumer spent inside `train_walk`, in ms.
    pub train_busy_ms: f64,
    /// End-to-end wall-clock time, in ms.
    pub wall_ms: f64,
}

impl PipelinedOutcome {
    /// How much of the ideal serial time the overlap hid:
    /// `1 − wall / (gen_busy / threads + train_busy)`. 0 means no overlap
    /// (or overheads ate it); the upper bound for a two-stage pipeline is
    /// `min(gen, train) / (gen + train)` ≤ 0.5.
    pub fn overlap_ratio(&self) -> f64 {
        let serial = self.gen_busy_ms / self.threads.max(1) as f64 + self.train_busy_ms;
        if serial <= 0.0 {
            return 0.0;
        }
        (1.0 - self.wall_ms / serial).max(0.0)
    }
}

/// The RNG stream index reserved for the consumer's negative sampling —
/// walk streams use indices `0..n·r`, far from `u64::MAX`.
const TRAIN_STREAM: u64 = u64::MAX;

/// Pipelined counterpart of [`train_all_scenario`]: walker threads generate
/// the corpus while this thread trains it, overlapping the two stages.
///
/// Differences from the serial driver, both deterministic per seed and
/// independent of `threads`:
///
/// * each walk has its own RNG stream (see
///   [`seqge_sampling::pipeline`]), so the corpus differs from
///   `train_all_scenario`'s single-stream corpus at equal seeds;
/// * the negative table is built from the **first round** of walks (one per
///   node) instead of the full corpus, so training can start after round 0
///   rather than after all `r` rounds — the table still covers every
///   non-isolated node, but its frequencies are estimated from `1/r` of the
///   corpus.
pub fn train_all_pipelined<M: EmbeddingModel>(
    g: &Graph,
    model: &mut M,
    cfg: &TrainConfig,
    seed: u64,
    threads: usize,
) -> PipelinedOutcome {
    cfg.validate().expect("invalid train config");
    assert_eq!(g.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
    let wall_start = Instant::now();
    let csr = g.to_csr();
    let n = g.num_nodes() as u64;

    let mut corpus = WalkCorpus::new(g.num_nodes());
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    let mut pending: Vec<Vec<seqge_graph::NodeId>> = Vec::new();
    let mut rng = Rng64::for_stream(seed, TRAIN_STREAM);
    let mut walks_trained = 0usize;
    let mut train_busy = Duration::ZERO;

    let stats = stream_walks(
        &csr,
        cfg.walk,
        StepStrategy::Cumulative,
        seed,
        PipelineConfig::with_threads(threads),
        |index, walk| {
            if walk.len() >= 2 {
                corpus.record(&walk);
                pending.push(walk);
            }
            // Round 0 done: freeze the table and start training. Everything
            // buffered so far drains now; later walks train on arrival.
            if index + 1 == n && !pending.is_empty() {
                table.rebuild(&corpus);
            }
            if table.is_ready() {
                let t0 = Instant::now();
                let burst = pending.len() as u64;
                for w in pending.drain(..) {
                    let _t = seqge_obs::span!("seqge_core_train_walk_ns");
                    model.train_walk(&w, &table, &mut rng);
                    walks_trained += 1;
                }
                seqge_obs::static_counter!("seqge_core_walks_trained_total").add(burst);
                train_busy += t0.elapsed();
            }
        },
    );

    // Graphs with one round (r = 1), or whose round 0 ended in skipped
    // isolated-node walks, reach here with untrained leftovers.
    if !pending.is_empty() {
        table.rebuild(&corpus);
        if table.is_ready() {
            let t0 = Instant::now();
            let burst = pending.len() as u64;
            for w in pending.drain(..) {
                let _t = seqge_obs::span!("seqge_core_train_walk_ns");
                model.train_walk(&w, &table, &mut rng);
                walks_trained += 1;
            }
            seqge_obs::static_counter!("seqge_core_walks_trained_total").add(burst);
            train_busy += t0.elapsed();
        }
    }

    PipelinedOutcome {
        threads: stats.threads,
        walks_generated: stats.walks_generated,
        walks_trained,
        gen_busy_ms: stats.gen_busy.as_secs_f64() * 1e3,
        train_busy_ms: train_busy.as_secs_f64() * 1e3,
        wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Incremental training driver for live dynamic graphs.
///
/// Owns everything the per-edge training loop needs besides the graph and
/// the model — the walker, the RNG, the walk corpus, and the negative
/// table — so edge events can be folded into the model *one at a time*
/// over an arbitrarily long lifetime. [`train_seq_scenario`] and
/// [`train_stream_scenario`] are thin replays over this driver; the
/// `seqge-serve` daemon feeds it from a live ingestion log instead of a
/// prerecorded stream.
pub struct IncrementalTrainer {
    walker: Walker,
    params: Node2VecParams,
    walk_threads: usize,
    rng: Rng64,
    corpus: WalkCorpus,
    table: NegativeTable,
    outcome: SeqOutcome,
    edges_removed: usize,
    buf: Vec<NodeId>,
}

impl IncrementalTrainer {
    /// Creates a driver for graphs over `num_nodes` nodes. `policy` is the
    /// negative-table rebuild cadence (Fig. 7's knob); `seed` fixes the
    /// walk/negative RNG stream.
    pub fn new(num_nodes: usize, cfg: &TrainConfig, policy: UpdatePolicy, seed: u64) -> Self {
        cfg.validate().expect("invalid train config");
        IncrementalTrainer {
            walker: Walker::new(cfg.walk),
            params: cfg.walk,
            walk_threads: 0,
            rng: Rng64::seed_from_u64(seed),
            corpus: WalkCorpus::new(num_nodes),
            table: NegativeTable::new(policy),
            outcome: SeqOutcome { edges_inserted: 0, walks_trained: 0, table_rebuilds: 0 },
            edges_removed: 0,
            buf: Vec::with_capacity(cfg.walk.walk_length),
        }
    }

    /// Sets the walker-thread count for corpus resamples ([`bootstrap`] /
    /// [`refresh`]); 0 means one per available core. The trained model is
    /// bit-identical for any value — every walk draws from its own RNG lane
    /// seeded by `(resample nonce, walk index)`, and training consumes the
    /// walks in schedule order on the calling thread — so this is purely a
    /// throughput knob.
    ///
    /// [`bootstrap`]: IncrementalTrainer::bootstrap
    /// [`refresh`]: IncrementalTrainer::refresh
    pub fn set_walk_threads(&mut self, threads: usize) {
        self.walk_threads = threads;
    }

    /// Regenerates the walk corpus over `g` with the pipelined walker
    /// (per-walk RNG lanes fanned out over [`Self::set_walk_threads`]
    /// workers), replacing `self.corpus` and returning the kept walks in
    /// schedule order. The lane base is drawn from the sequential RNG, so
    /// consecutive resamples explore different corpora and the main stream
    /// advances by exactly one draw regardless of thread count.
    fn resample(&mut self, g: &Graph) -> Vec<Vec<NodeId>> {
        let csr = g.to_csr();
        let lane_seed = self.rng.next_u64();
        let mut corpus = WalkCorpus::new(g.num_nodes());
        let mut walks = Vec::with_capacity(g.num_nodes() * self.params.walks_per_node);
        stream_walks(
            &csr,
            self.params,
            StepStrategy::Cumulative,
            lane_seed,
            PipelineConfig::with_threads(self.walk_threads),
            |_, walk| {
                if walk.len() < 2 {
                    return;
                }
                corpus.record(&walk);
                walks.push(walk);
            },
        );
        self.corpus = corpus;
        walks
    }

    /// Trains a full "all"-protocol pass over the current graph (`r` walks
    /// per node) and builds the negative table from its frequencies. Used
    /// once at start-up on the initial graph ("only a fraction of edges is
    /// trained first" — the spanning forest in the paper's protocol, the
    /// boot graph in a server). Walk generation fans out across
    /// [`Self::set_walk_threads`] workers; the OS-ELM update loop stays
    /// sequential and the result is thread-count independent.
    pub fn bootstrap<M: EmbeddingModel>(&mut self, g: &Graph, model: &mut M) {
        assert_eq!(g.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
        let _span = seqge_obs::span!("seqge_core_bootstrap_ns");
        let walks = self.resample(g);
        self.table.rebuild(&self.corpus);
        if self.table.is_ready() {
            for walk in &walks {
                model.train_walk(walk, &self.table, &mut self.rng);
                self.outcome.walks_trained += 1;
            }
            seqge_obs::static_counter!("seqge_core_walks_trained_total").add(walks.len() as u64);
        }
    }

    /// Applies one edge event to `g` and folds it into `model`: mutate the
    /// graph, restart a random walk from both endpoints (§4.3.2), train each
    /// walk, and notify the negative table. Returns the number of walks
    /// trained, or the graph's rejection (duplicate add, missing remove,
    /// out-of-range node) with the graph, corpus, and model untouched.
    pub fn ingest<M: EmbeddingModel>(
        &mut self,
        g: &mut Graph,
        event: EdgeEvent,
        model: &mut M,
    ) -> Result<usize, GraphError> {
        event.apply(g)?;
        let _span = seqge_obs::span!("seqge_core_ingest_ns");
        match event {
            EdgeEvent::Add(..) => self.outcome.edges_inserted += 1,
            EdgeEvent::Remove(..) => self.edges_removed += 1,
        }
        let (u, v) = event.endpoints();
        let mut trained = 0usize;
        for start in [u, v] {
            self.walker.walk_into(&*g, start, &mut self.rng, &mut self.buf);
            if self.buf.len() < 2 {
                continue;
            }
            self.corpus.record(&self.buf);
            // Table must exist before the first training step (a forest of
            // isolated nodes can reach here with no table yet).
            if !self.table.is_ready() {
                self.table.rebuild(&self.corpus);
            }
            if self.table.is_ready() {
                model.train_walk(&self.buf, &self.table, &mut self.rng);
                trained += 1;
            }
        }
        self.outcome.walks_trained += trained;
        seqge_obs::static_counter!("seqge_core_walks_trained_total").add(trained as u64);
        self.table.on_edge_inserted(&self.corpus);
        Ok(trained)
    }

    /// Resamples the walk corpus from scratch over the current graph and
    /// trains the fresh walks — the "resample" arm of a serving update
    /// policy. Per-edge walks only ever *add* appearance counts, so after
    /// many removals (or heavy drift) the table frequencies go stale; a
    /// refresh replaces them wholesale. Returns the walks trained.
    pub fn refresh<M: EmbeddingModel>(&mut self, g: &Graph, model: &mut M) -> usize {
        assert_eq!(g.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
        let _span = seqge_obs::span!("seqge_core_refresh_ns");
        let walks = self.resample(g);
        self.table.rebuild(&self.corpus);
        let mut trained = 0usize;
        if self.table.is_ready() {
            for walk in &walks {
                model.train_walk(walk, &self.table, &mut self.rng);
                trained += 1;
            }
        }
        self.outcome.walks_trained += trained;
        seqge_obs::static_counter!("seqge_core_walks_trained_total").add(trained as u64);
        trained
    }

    /// Telemetry so far (the `table_rebuilds` field is kept current).
    pub fn outcome(&self) -> SeqOutcome {
        SeqOutcome { table_rebuilds: self.table.rebuild_count(), ..self.outcome.clone() }
    }

    /// Edges retracted so far (not part of [`SeqOutcome`], whose shape the
    /// experiment harness serializes).
    pub fn edges_removed(&self) -> usize {
        self.edges_removed
    }
}

/// Trains `model` sequentially (the "seq" scenario). Returns the final graph
/// (forest + replayed edges) and run telemetry.
///
/// * `policy` — negative-table rebuild cadence (Fig. 7's variable).
/// * `edge_fraction` — fraction of removed edges to replay (1.0 = the full
///   paper protocol; smaller values are for CI-scale runs and leave the
///   final graph sparser than the original).
pub fn train_seq_scenario<M: EmbeddingModel>(
    full: &Graph,
    model: &mut M,
    cfg: &TrainConfig,
    policy: UpdatePolicy,
    seed: u64,
    edge_fraction: f64,
) -> (Graph, SeqOutcome) {
    cfg.validate().expect("invalid train config");
    assert_eq!(full.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
    let split = spanning_forest(full);
    let mut g = split.initial_graph(full);
    let stream = EdgeStream::from_forest_split(&split, seed ^ 0xED6E).subsample(edge_fraction);

    // Initial pass: train the forest with the "all" protocol ("only a
    // fraction of edges is trained first"), then replay the stream.
    let mut trainer = IncrementalTrainer::new(full.num_nodes(), cfg, policy, seed);
    trainer.bootstrap(&g, model);
    for &(u, v) in stream.edges() {
        trainer
            .ingest(&mut g, EdgeEvent::Add(u, v), model)
            .expect("stream edges are insertable exactly once");
    }
    (g, trainer.outcome())
}

/// Trains `model` on an explicit edge-arrival stream starting from an empty
/// graph over `num_nodes` nodes — the drift scenario driven by
/// [`seqge_graph::generators::TimestampedGraph`] schedules, where edge order
/// is bursty per community instead of uniformly shuffled. Returns the built
/// graph and telemetry.
pub fn train_stream_scenario<M: EmbeddingModel>(
    num_nodes: usize,
    edges: &[(seqge_graph::NodeId, seqge_graph::NodeId)],
    model: &mut M,
    cfg: &TrainConfig,
    policy: UpdatePolicy,
    seed: u64,
) -> (Graph, SeqOutcome) {
    cfg.validate().expect("invalid train config");
    assert_eq!(num_nodes, model.num_nodes(), "graph/model node count mismatch");
    let mut g = Graph::with_nodes(num_nodes);
    let mut trainer = IncrementalTrainer::new(num_nodes, cfg, policy, seed);
    for &(u, v) in edges {
        trainer
            .ingest(&mut g, EdgeEvent::Add(u, v), model)
            .expect("stream edges are insertable exactly once");
    }
    (g, trainer.outcome())
}

/// Builds a ready negative table from a fresh corpus over `g` (helper for
/// benches and tests that train ad-hoc walks).
pub fn table_for_graph(g: &Graph, cfg: &TrainConfig, seed: u64) -> (NegativeTable, WalkCorpus) {
    let csr = g.to_csr();
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(seed);
    let (corpus, _) = generate_corpus(&csr, &mut walker, &mut rng);
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    (table, corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, NegativeMode};
    use crate::oselm::{OsElmConfig, OsElmSkipGram};
    use crate::skipgram::SkipGram;
    use seqge_graph::generators::classic::{erdos_renyi, ring};
    use seqge_sampling::Node2VecParams;

    fn small_cfg(dim: usize) -> TrainConfig {
        TrainConfig {
            walk: Node2VecParams { walk_length: 12, walks_per_node: 2, ..Default::default() },
            model: ModelConfig {
                dim,
                window: 4,
                negative_samples: 3,
                negative_mode: NegativeMode::PerPosition,
                seed: 5,
            },
        }
    }

    fn oselm_cfg(dim: usize) -> OsElmConfig {
        OsElmConfig {
            model: small_cfg(dim).model,
            mu: 0.01,
            p0_scale: 10.0,
            regularized: true,
            forgetting: 1.0,
        }
    }

    #[test]
    fn all_scenario_trains_every_node_region() {
        let g = erdos_renyi(40, 0.15, 3);
        let cfg = small_cfg(8);
        let mut model = OsElmSkipGram::new(40, oselm_cfg(8));
        let before = model.beta_t().clone();
        train_all_scenario(&g, &mut model, &cfg, 1);
        assert_ne!(model.beta_t(), &before, "training must move weights");
        assert!(model.beta_t().all_finite());
    }

    #[test]
    fn all_scenario_on_empty_graph_is_noop() {
        let g = Graph::with_nodes(10);
        let cfg = small_cfg(4);
        let mut model = SkipGram::new(10, cfg.model);
        let before = model.embedding();
        train_all_scenario(&g, &mut model, &cfg, 1);
        assert_eq!(model.embedding(), before);
    }

    /// Acceptance criterion: pipelined training is bit-identical across
    /// thread counts (walk values, table, and training order are all
    /// functions of the seed alone).
    #[test]
    fn pipelined_training_identical_across_thread_counts() {
        let g = erdos_renyi(50, 0.12, 13);
        let cfg = small_cfg(8);
        let mut reference = OsElmSkipGram::new(50, oselm_cfg(8));
        let ref_out = train_all_pipelined(&g, &mut reference, &cfg, 21, 1);
        for threads in [2, 4, 7] {
            let mut model = OsElmSkipGram::new(50, oselm_cfg(8));
            let out = train_all_pipelined(&g, &mut model, &cfg, 21, threads);
            assert_eq!(out.walks_trained, ref_out.walks_trained);
            assert_eq!(
                model.beta_t(),
                reference.beta_t(),
                "β differs between 1 and {threads} threads"
            );
        }
    }

    #[test]
    fn pipelined_training_moves_weights_and_reports_sane_telemetry() {
        let g = erdos_renyi(40, 0.15, 3);
        let cfg = small_cfg(8);
        let mut model = OsElmSkipGram::new(40, oselm_cfg(8));
        let before = model.beta_t().clone();
        let out = train_all_pipelined(&g, &mut model, &cfg, 1, 2);
        assert_ne!(model.beta_t(), &before);
        assert!(model.beta_t().all_finite());
        assert_eq!(out.walks_generated, 40 * 2);
        assert_eq!(out.walks_trained, 80, "no isolated nodes at p=0.15, n=40, seed 3");
        assert!(out.gen_busy_ms >= 0.0 && out.train_busy_ms > 0.0 && out.wall_ms > 0.0);
        assert!((0.0..=1.0).contains(&out.overlap_ratio()));
    }

    #[test]
    fn pipelined_on_empty_graph_is_noop() {
        let g = Graph::with_nodes(10);
        let cfg = small_cfg(4);
        let mut model = SkipGram::new(10, cfg.model);
        let before = model.embedding();
        let out = train_all_pipelined(&g, &mut model, &cfg, 1, 4);
        assert_eq!(model.embedding(), before);
        assert_eq!(out.walks_trained, 0);
    }

    #[test]
    fn pipelined_single_round_still_trains() {
        // r = 1: round 0 is the whole stream, so the table is built at the
        // very last walk and everything drains in one burst.
        let g = ring(16);
        let cfg = TrainConfig {
            walk: Node2VecParams { walk_length: 10, walks_per_node: 1, ..Default::default() },
            ..small_cfg(4)
        };
        let mut model = OsElmSkipGram::new(16, oselm_cfg(4));
        let out = train_all_pipelined(&g, &mut model, &cfg, 5, 3);
        assert_eq!(out.walks_trained, 16);
        assert!(model.beta_t().all_finite());
    }

    #[test]
    fn seq_scenario_replays_all_edges_at_fraction_one() {
        let full = erdos_renyi(30, 0.2, 7);
        let cfg = small_cfg(8);
        let mut model = OsElmSkipGram::new(30, oselm_cfg(8));
        let (g, outcome) =
            train_seq_scenario(&full, &mut model, &cfg, UpdatePolicy::every_edge(), 2, 1.0);
        assert_eq!(g.num_edges(), full.num_edges(), "fraction 1.0 restores the full graph");
        let forest_edges = spanning_forest(&full).forest_edges.len();
        assert_eq!(outcome.edges_inserted, full.num_edges() - forest_edges);
        assert!(outcome.walks_trained >= 2 * outcome.edges_inserted);
        assert!(outcome.table_rebuilds >= outcome.edges_inserted as u64);
    }

    #[test]
    fn seq_scenario_fraction_reduces_work() {
        let full = erdos_renyi(30, 0.25, 9);
        let cfg = small_cfg(8);
        let mut m1 = OsElmSkipGram::new(30, oselm_cfg(8));
        let mut m2 = OsElmSkipGram::new(30, oselm_cfg(8));
        let (_, full_run) =
            train_seq_scenario(&full, &mut m1, &cfg, UpdatePolicy::every_edge(), 2, 1.0);
        let (_, half_run) =
            train_seq_scenario(&full, &mut m2, &cfg, UpdatePolicy::every_edge(), 2, 0.5);
        assert!(half_run.edges_inserted < full_run.edges_inserted);
        assert!(half_run.edges_inserted > 0);
    }

    #[test]
    fn never_policy_builds_table_once() {
        let full = ring(20);
        let cfg = small_cfg(4);
        let mut model = OsElmSkipGram::new(20, oselm_cfg(4));
        let (_, outcome) = train_seq_scenario(&full, &mut model, &cfg, UpdatePolicy::Never, 3, 1.0);
        assert_eq!(outcome.table_rebuilds, 1);
    }

    #[test]
    fn seq_works_for_sgd_baseline_too() {
        let full = erdos_renyi(25, 0.2, 11);
        let cfg = small_cfg(8);
        let mut model = SkipGram::new(25, cfg.model);
        let (_, outcome) =
            train_seq_scenario(&full, &mut model, &cfg, UpdatePolicy::every_edge(), 4, 1.0);
        assert!(outcome.walks_trained > 0);
        assert!(model.w_in().all_finite());
    }

    #[test]
    fn incremental_trainer_matches_stream_scenario_bit_for_bit() {
        // train_stream_scenario is a thin replay over IncrementalTrainer;
        // driving the trainer by hand must reproduce it exactly.
        let edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i, (i + 1) % 21)).collect();
        let cfg = small_cfg(8);
        let mut m1 = OsElmSkipGram::new(21, oselm_cfg(8));
        let (g1, out1) =
            train_stream_scenario(21, &edges, &mut m1, &cfg, UpdatePolicy::every_edge(), 9);

        let mut m2 = OsElmSkipGram::new(21, oselm_cfg(8));
        let mut g2 = Graph::with_nodes(21);
        let mut tr = IncrementalTrainer::new(21, &cfg, UpdatePolicy::every_edge(), 9);
        for &(u, v) in &edges {
            tr.ingest(&mut g2, seqge_graph::EdgeEvent::Add(u, v), &mut m2).unwrap();
        }
        assert_eq!(m1.beta_t(), m2.beta_t());
        assert_eq!(m1.p(), m2.p());
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(out1, tr.outcome());
    }

    #[test]
    fn incremental_trainer_handles_removals_and_rejections() {
        let cfg = small_cfg(8);
        let mut m = OsElmSkipGram::new(10, oselm_cfg(8));
        let mut g = Graph::with_nodes(10);
        let mut tr = IncrementalTrainer::new(10, &cfg, UpdatePolicy::every_edge(), 4);
        for i in 0..9u32 {
            tr.ingest(&mut g, seqge_graph::EdgeEvent::Add(i, i + 1), &mut m).unwrap();
        }
        // Duplicate add and missing remove are rejected without touching state.
        let before = tr.outcome();
        assert!(tr.ingest(&mut g, seqge_graph::EdgeEvent::Add(0, 1), &mut m).is_err());
        assert!(tr.ingest(&mut g, seqge_graph::EdgeEvent::Remove(0, 5), &mut m).is_err());
        assert_eq!(tr.outcome(), before);
        // A real removal mutates the graph and retrains both neighborhoods.
        let trained = tr.ingest(&mut g, seqge_graph::EdgeEvent::Remove(4, 5), &mut m).unwrap();
        assert!(trained > 0, "endpoints still have neighbors, so walks train");
        assert!(!g.has_edge(4, 5));
        assert_eq!(tr.edges_removed(), 1);
        assert!(m.beta_t().all_finite());
    }

    /// Acceptance criterion for the sharded trainer: bootstrap → sequential
    /// ingest → refresh produces the same model for any walker-thread count
    /// (per-walk RNG lanes + in-order training keep the result a function of
    /// the seed alone).
    #[test]
    fn incremental_trainer_identical_across_walk_thread_counts() {
        let cfg = small_cfg(8);
        let run = |threads: usize| {
            let mut g = ring(40);
            let mut m = OsElmSkipGram::new(40, oselm_cfg(8));
            let mut tr = IncrementalTrainer::new(40, &cfg, UpdatePolicy::every_edge(), 7);
            tr.set_walk_threads(threads);
            tr.bootstrap(&g, &mut m);
            for (u, v) in [(0u32, 7u32), (3, 19), (11, 30)] {
                tr.ingest(&mut g, seqge_graph::EdgeEvent::Add(u, v), &mut m).unwrap();
            }
            tr.refresh(&g, &mut m);
            (m, tr.outcome())
        };
        let (reference, ref_out) = run(1);
        for threads in [2, 4, 7] {
            let (m, out) = run(threads);
            assert_eq!(out, ref_out, "telemetry differs at {threads} walker threads");
            assert_eq!(
                m.beta_t(),
                reference.beta_t(),
                "β differs between 1 and {threads} walker threads"
            );
            assert_eq!(m.p(), reference.p());
        }
    }

    #[test]
    fn incremental_refresh_resamples_and_trains() {
        let cfg = small_cfg(4);
        let g = ring(12);
        let mut m = OsElmSkipGram::new(12, oselm_cfg(4));
        let mut tr = IncrementalTrainer::new(12, &cfg, UpdatePolicy::Never, 2);
        tr.bootstrap(&g, &mut m);
        let before = tr.outcome().walks_trained;
        let trained = tr.refresh(&g, &mut m);
        assert_eq!(trained, 12 * cfg.walk.walks_per_node);
        assert_eq!(tr.outcome().walks_trained, before + trained);
    }

    #[test]
    fn table_for_graph_is_ready_on_nonempty_graph() {
        let g = ring(12);
        let (table, corpus) = table_for_graph(&g, &small_cfg(4), 1);
        assert!(table.is_ready());
        assert!(corpus.total_appearances() > 0);
    }
}
