//! Data-parallel training for the SGD baseline (extension).
//!
//! The OS-ELM update is inherently sequential (each context transforms `P`),
//! but the SGD skip-gram parallelizes classically: shard the walk corpus,
//! train a replica per shard, and periodically average parameters (the
//! Ji et al. \[10\] family of word2vec parallelizations — the same paper the
//! accelerator borrows its negative-sharing trick from). This module
//! implements synchronous **delta-sum** aggregation on the rayon pool:
//!
//! ```text
//! loop over rounds:
//!     each shard trains `sync_every` of its walks on a private replica
//!     the master absorbs every replica's delta (w += Σ (w_s − w))
//!     replicas are re-seeded from the master
//! ```
//!
//! Delta summation rather than parameter averaging is load-bearing for
//! sparse skip-gram updates — see `SkipGram::fold_deltas_from`.

use crate::config::TrainConfig;
use crate::model::EmbeddingModel;
use crate::skipgram::SkipGram;
use seqge_graph::{Graph, NodeId};
use seqge_sampling::{generate_corpus, NegativeTable, Rng64, UpdatePolicy, Walker};

/// Parallel-training knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParallelConfig {
    /// Number of replicas (0 = rayon's current parallelism).
    pub shards: usize,
    /// Walks each replica trains between averaging rounds.
    pub sync_every: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { shards: 0, sync_every: 64 }
    }
}

/// Trains `model` on the full corpus of `g` using sharded delta-sum
/// aggregation. Returns the number of synchronization rounds performed.
pub fn train_all_parallel(
    g: &Graph,
    model: &mut SkipGram,
    cfg: &TrainConfig,
    par: &ParallelConfig,
    seed: u64,
) -> usize {
    cfg.validate().expect("invalid train config");
    assert_eq!(g.num_nodes(), model.num_nodes(), "graph/model node count mismatch");
    let shards = if par.shards == 0 { rayon::current_num_threads() } else { par.shards };
    assert!(shards >= 1, "need at least one shard");
    assert!(par.sync_every >= 1, "sync_every must be at least 1");

    let csr = g.to_csr();
    let mut walker = Walker::new(cfg.walk);
    let mut rng = Rng64::seed_from_u64(seed);
    let (corpus, walks) = generate_corpus(&csr, &mut walker, &mut rng);
    let mut table = NegativeTable::new(UpdatePolicy::every_edge());
    table.rebuild(&corpus);
    if !table.is_ready() || walks.is_empty() {
        return 0;
    }

    // Shard the walks round-robin so every shard sees every graph region.
    let shard_walks: Vec<Vec<&[NodeId]>> = (0..shards)
        .map(|s| walks.iter().skip(s).step_by(shards).map(Vec::as_slice).collect())
        .collect();
    let max_len = shard_walks.iter().map(Vec::len).max().unwrap_or(0);
    let mut rounds = 0usize;
    let mut cursor = 0usize;
    while cursor < max_len {
        let end = (cursor + par.sync_every).min(max_len);
        // Train replicas on the rayon pool; each gets a decorrelated RNG
        // stream derived from (seed, shard, round) so runs are reproducible
        // regardless of scheduling order.
        let replicas: Vec<SkipGram> = {
            use rayon::prelude::*;
            let master = &*model;
            let table = &table;
            let shard_walks = &shard_walks;
            (0..shards)
                .into_par_iter()
                .map(|s| {
                    let mut replica = master.clone();
                    // SplitMix-mixed (shard, round) stream: `seed ^ (s<<32)
                    // ^ round` left the low seed bits shared across shards,
                    // giving replicas correlated negative draws.
                    let mut shard_rng =
                        Rng64::for_stream(seed, (s as u64) << 32 | (rounds as u64 & 0xFFFF_FFFF));
                    for walk in shard_walks[s].iter().skip(cursor).take(end - cursor) {
                        replica.train_walk(walk, table, &mut shard_rng);
                    }
                    replica
                })
                .collect()
        };
        model.fold_deltas_from(&replicas);
        cursor = end;
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::sequential::train_all_scenario;
    use seqge_graph::generators::classic::erdos_renyi;
    use seqge_sampling::Node2VecParams;

    fn cfg() -> TrainConfig {
        TrainConfig {
            walk: Node2VecParams { walk_length: 12, walks_per_node: 4, ..Default::default() },
            model: ModelConfig {
                dim: 8,
                window: 4,
                negative_samples: 3,
                ..ModelConfig::paper_defaults(8)
            },
        }
    }

    #[test]
    fn parallel_training_moves_weights_and_stays_finite() {
        let g = erdos_renyi(40, 0.2, 1);
        let cfg = cfg();
        let mut m = SkipGram::new(40, cfg.model);
        let before = m.embedding();
        let rounds =
            train_all_parallel(&g, &mut m, &cfg, &ParallelConfig { shards: 4, sync_every: 8 }, 7);
        assert!(rounds >= 1);
        assert_ne!(m.embedding(), before);
        assert!(m.w_in().all_finite());
        assert!(m.w_out().all_finite());
    }

    #[test]
    fn single_shard_equals_rounds_of_sequential_batches() {
        // With one shard, parameter averaging is a no-op, so training is
        // plain sequential training over the same walks.
        let g = erdos_renyi(30, 0.2, 2);
        let cfg = cfg();
        let mut par = SkipGram::new(30, cfg.model);
        train_all_parallel(&g, &mut par, &cfg, &ParallelConfig { shards: 1, sync_every: 1000 }, 5);
        assert!(par.w_in().all_finite());
        // Quality proxy: both single-shard parallel and plain training must
        // move weights away from init by a comparable magnitude.
        let mut seq = SkipGram::new(30, cfg.model);
        train_all_scenario(&g, &mut seq, &cfg, 5);
        let norm = |m: &SkipGram| m.w_in().as_slice().iter().map(|&x| x * x).sum::<f64>().sqrt();
        let (a, b) = (norm(&par), norm(&seq));
        assert!(a > 0.0 && b > 0.0);
        assert!(a / b < 3.0 && b / a < 3.0, "magnitudes comparable: {a} vs {b}");
    }

    #[test]
    fn shard_streams_are_decorrelated() {
        // Two shards in the same round must not share a prefix of negative
        // draws (the old xor-shift mixing collided on low bits).
        let mut a = Rng64::for_stream(3, 0u64 << 32);
        let mut b = Rng64::for_stream(3, 1u64 << 32);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va[0], vb[0], "first draws must already differ");
        assert_ne!(va, vb);
    }

    #[test]
    fn empty_graph_is_noop() {
        let g = Graph::with_nodes(5);
        let cfg = cfg();
        let mut m = SkipGram::new(5, cfg.model);
        let rounds = train_all_parallel(&g, &mut m, &cfg, &ParallelConfig::default(), 1);
        assert_eq!(rounds, 0);
    }
}
