//! The common model interface and the negative-draw helper shared by every
//! training implementation.

use crate::config::{ModelConfig, NegativeMode};
use seqge_graph::NodeId;
use seqge_linalg::Mat;
use seqge_sampling::{NegativeTable, Rng64};

/// A graph-embedding model trainable one random walk at a time.
///
/// The unit of training is a *walk* because that is the paper's unit of
/// measurement (Table 3/4 time "a single random walk") and the accelerator's
/// unit of offload (one DMA round trip per walk).
pub trait EmbeddingModel {
    /// Trains on one random walk. `negatives` must be ready
    /// ([`NegativeTable::is_ready`]); `rng` drives negative draws.
    fn train_walk(&mut self, walk: &[NodeId], negatives: &NegativeTable, rng: &mut Rng64);

    /// The current embedding as an `N×d` matrix (row per node).
    fn embedding(&self) -> Mat<f32>;

    /// Number of nodes.
    fn num_nodes(&self) -> usize;

    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// Heap bytes of everything the deployed model must retain (Table 5
    /// accounting; excludes transient training scratch).
    fn model_bytes(&self) -> usize;

    /// A short display name for reports.
    fn name(&self) -> &'static str;
}

/// Draws negatives according to the configured [`NegativeMode`], reusing
/// buffers across calls (no allocation in the training hot loop).
#[derive(Debug, Clone)]
pub struct NegativeDraw {
    ns: usize,
    mode: NegativeMode,
    shared: Vec<NodeId>,
    buf: Vec<NodeId>,
}

impl NegativeDraw {
    /// Creates a drawer for `cfg`.
    pub fn new(cfg: &ModelConfig) -> Self {
        NegativeDraw {
            ns: cfg.negative_samples,
            mode: cfg.negative_mode,
            shared: Vec::with_capacity(cfg.negative_samples),
            buf: Vec::with_capacity(cfg.negative_samples),
        }
    }

    /// Called once at the start of each walk. In [`NegativeMode::PerWalk`]
    /// this draws the walk's shared negative set (avoiding the walk's start
    /// node, the closest analogue of avoiding the positive).
    pub fn begin_walk(&mut self, walk: &[NodeId], table: &NegativeTable, rng: &mut Rng64) {
        if self.mode == NegativeMode::PerWalk {
            let avoid = walk.first().copied().unwrap_or(0);
            table.sample_into(self.ns, avoid, rng, &mut self.shared);
        }
    }

    /// Negatives to train against `positive`.
    pub fn for_positive(
        &mut self,
        positive: NodeId,
        table: &NegativeTable,
        rng: &mut Rng64,
    ) -> &[NodeId] {
        match self.mode {
            NegativeMode::PerPosition => {
                table.sample_into(self.ns, positive, rng, &mut self.buf);
                &self.buf
            }
            NegativeMode::PerWalk => &self.shared,
        }
    }

    /// Negatives per positive (`ns`).
    pub fn ns(&self) -> usize {
        self.ns
    }
}

/// Uniform symmetric weight init in `[-0.5/d, 0.5/d)`, the word2vec
/// convention, shared by all models so comparisons start from the same
/// distribution family.
pub fn init_weight(rng: &mut Rng64, dim: usize) -> f32 {
    (rng.next_f32() - 0.5) / dim as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqge_sampling::{UpdatePolicy, WalkCorpus};

    fn ready_table(n: usize) -> NegativeTable {
        let mut corpus = WalkCorpus::new(n);
        let walk: Vec<NodeId> = (0..n as NodeId).collect();
        corpus.record(&walk);
        let mut t = NegativeTable::new(UpdatePolicy::every_edge());
        t.rebuild(&corpus);
        t
    }

    fn cfg(mode: NegativeMode) -> ModelConfig {
        ModelConfig { negative_mode: mode, ..ModelConfig::paper_defaults(8) }
    }

    #[test]
    fn per_position_draws_fresh_sets() {
        let table = ready_table(50);
        let mut rng = Rng64::seed_from_u64(1);
        let mut nd = NegativeDraw::new(&cfg(NegativeMode::PerPosition));
        nd.begin_walk(&[0, 1, 2], &table, &mut rng);
        let a: Vec<_> = nd.for_positive(5, &table, &mut rng).to_vec();
        let b: Vec<_> = nd.for_positive(5, &table, &mut rng).to_vec();
        assert_eq!(a.len(), 10);
        assert_ne!(a, b, "fresh draw per positive");
        assert!(!a.contains(&5));
    }

    #[test]
    fn per_walk_reuses_one_set() {
        let table = ready_table(50);
        let mut rng = Rng64::seed_from_u64(2);
        let mut nd = NegativeDraw::new(&cfg(NegativeMode::PerWalk));
        nd.begin_walk(&[7, 8, 9], &table, &mut rng);
        let a: Vec<_> = nd.for_positive(1, &table, &mut rng).to_vec();
        let b: Vec<_> = nd.for_positive(2, &table, &mut rng).to_vec();
        assert_eq!(a, b, "shared set across positives");
        assert!(!a.contains(&7), "walk start excluded");
        nd.begin_walk(&[3, 4], &table, &mut rng);
        let c: Vec<_> = nd.for_positive(1, &table, &mut rng).to_vec();
        assert_ne!(a, c, "new walk redraws");
    }

    #[test]
    fn init_weight_range() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let w = init_weight(&mut rng, 32);
            assert!(w.abs() <= 0.5 / 32.0);
        }
    }
}
