//! Property tests for the persistence layer.
//!
//! The serving daemon restores models from disk on boot, so the reader must
//! (a) reproduce the saved model bit-for-bit from a clean file and (b) fail
//! with a clean `io::Error` — never a panic or a silently wrong model — on
//! any truncated or corrupted input.

use proptest::prelude::*;
use seqge_core::persist::{read_embedding, read_oselm, write_embedding, write_oselm};
use seqge_core::{train_all_scenario, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_graph::generators::classic::erdos_renyi;

fn trained(dim: usize, nodes: usize, seed: u64) -> OsElmSkipGram {
    let g = erdos_renyi(nodes, 0.15, seed);
    let mut cfg = TrainConfig::paper_defaults(dim);
    cfg.walk.walk_length = 8;
    cfg.walk.walks_per_node = 1;
    let mut m = OsElmSkipGram::new(
        nodes,
        OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(dim) },
    );
    train_all_scenario(&g, &mut m, &cfg, seed);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// save → load reproduces the model bit-identically (β, P, config), so
    /// a restored server resumes training from exactly the killed state.
    #[test]
    fn model_roundtrip_is_bit_identical(
        dim in 2usize..10,
        nodes in 6usize..30,
        seed in 0u64..1000,
    ) {
        let m = trained(dim, nodes, seed);
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        let back = read_oselm(&buf[..]).unwrap();
        prop_assert_eq!(m.beta_t(), back.beta_t());
        prop_assert_eq!(m.p(), back.p());
        prop_assert_eq!(m.config(), back.config());
        // And the roundtrip is stable: re-serializing gives the same bytes.
        let mut buf2 = Vec::new();
        write_oselm(&back, &mut buf2).unwrap();
        prop_assert_eq!(buf, buf2);
    }

    /// Truncation at *every possible byte length* fails cleanly.
    #[test]
    fn any_truncation_errors_cleanly(seed in 0u64..200) {
        let m = trained(4, 10, seed);
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        for cut in 0..buf.len() {
            prop_assert!(
                read_oselm(&buf[..cut]).is_err(),
                "truncation at {} of {} bytes must error", cut, buf.len()
            );
        }
    }

    /// Flipping a byte in the header/config/shape region either errors or
    /// round-trips a structurally valid model — it never panics or hangs on
    /// a giant bogus allocation.
    #[test]
    fn header_corruption_never_panics(
        seed in 0u64..200,
        pos in 0usize..64,
        flip in 1u8..=255,
    ) {
        let m = trained(4, 10, seed);
        let mut buf = Vec::new();
        write_oselm(&m, &mut buf).unwrap();
        prop_assume!(pos < buf.len());
        buf[pos] ^= flip;
        if let Ok(back) = read_oselm(&buf[..]) {
            prop_assert_eq!(back.config().model.dim, back.p().rows());
        }
    }

    /// Embedding files: roundtrip plus every-point truncation.
    #[test]
    fn embedding_roundtrip_and_truncation(seed in 0u64..200) {
        let m = trained(3, 8, seed);
        let emb = seqge_core::model::EmbeddingModel::embedding(&m);
        let mut buf = Vec::new();
        write_embedding(&emb, &mut buf).unwrap();
        prop_assert_eq!(read_embedding(&buf[..]).unwrap(), emb);
        for cut in 0..buf.len() {
            prop_assert!(read_embedding(&buf[..cut]).is_err());
        }
    }
}
