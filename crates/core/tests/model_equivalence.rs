//! Cross-model consistency tests: the three OS-ELM variants share math that
//! must agree in their overlap, and all models must honor the
//! `EmbeddingModel` contract.

use seqge_core::model::EmbeddingModel;
use seqge_core::{
    AlphaOsElm, DataflowOsElm, ModelConfig, NegativeMode, OsElmConfig, OsElmSkipGram, PVisibility,
    SkipGram,
};
use seqge_graph::NodeId;
use seqge_sampling::{NegativeTable, Rng64, UpdatePolicy, WalkCorpus};

const N: usize = 30;

fn table() -> NegativeTable {
    let mut corpus = WalkCorpus::new(N);
    corpus.record(&(0..N as NodeId).collect::<Vec<_>>());
    let mut t = NegativeTable::new(UpdatePolicy::every_edge());
    t.rebuild(&corpus);
    t
}

fn ocfg(dim: usize) -> OsElmConfig {
    OsElmConfig {
        model: ModelConfig {
            dim,
            window: 4,
            negative_samples: 3,
            negative_mode: NegativeMode::PerWalk,
            seed: 5,
        },
        mu: 0.05,
        p0_scale: 10.0,
        regularized: true,
        forgetting: 1.0,
    }
}

/// Algorithm 2 under Running visibility and Algorithm 1 apply the same math
/// per context, differing only in β-read timing within a walk. Individual
/// weight trajectories separate under repeated training (the dynamics are
/// sensitive to update order), so the invariant checked here is *semantic*:
/// trained on the same community-structured walks, both models must make
/// the community cohesive relative to outsiders.
#[test]
fn dataflow_running_tracks_algorithm1() {
    let table = table();
    let mut a1 = OsElmSkipGram::new(N, ocfg(8));
    let mut a2 = DataflowOsElm::new(N, ocfg(8)).with_p_visibility(PVisibility::Running);
    let mut walk_rng = Rng64::seed_from_u64(77);
    let mut r1 = Rng64::seed_from_u64(9);
    let mut r2 = Rng64::seed_from_u64(9);
    for _ in 0..40 {
        // Random walks inside community {0..10}.
        let walk: Vec<NodeId> = (0..16).map(|_| walk_rng.gen_below(10) as NodeId).collect();
        a1.train_walk(&walk, &table, &mut r1);
        a2.train_walk(&walk, &table, &mut r2);
    }
    let cohesion = |emb: &seqge_linalg::Mat<f32>| {
        use seqge_linalg::ops;
        let mut within = 0.0f32;
        let mut across = 0.0f32;
        for a in 0..5usize {
            within += ops::dot(emb.row(a), emb.row(a + 5))
                / (ops::norm2(emb.row(a)) * ops::norm2(emb.row(a + 5))).max(1e-9);
            across += ops::dot(emb.row(a), emb.row(a + 20))
                / (ops::norm2(emb.row(a)) * ops::norm2(emb.row(a + 20))).max(1e-9);
        }
        (within / 5.0, across / 5.0)
    };
    for (name, emb) in [("alg1", a1.embedding()), ("alg2-running", a2.embedding())] {
        assert!(emb.all_finite(), "{name}");
        let (within, across) = cohesion(&emb);
        assert!(
            within > across,
            "{name}: community must cohere (within {within:.3} vs across {across:.3})"
        );
    }
}

/// The PerWalk ablation variant must stay finite thanks to the guard, even
/// on a pathological walk that repeats two nodes.
#[test]
fn perwalk_variant_is_bounded_by_guard() {
    let table = table();
    let mut m = DataflowOsElm::new(N, ocfg(8)).with_p_visibility(PVisibility::PerWalk);
    let walk: Vec<NodeId> = (0..40).map(|i| if i % 2 == 0 { 0 } else { 1 }).collect();
    let mut rng = Rng64::seed_from_u64(1);
    for _ in 0..50 {
        m.train_walk(&walk, &table, &mut rng);
    }
    assert!(m.beta_t().all_finite(), "guarded PerWalk must not produce NaN/inf");
    assert!(m.p().all_finite());
}

/// Every model type satisfies the basic EmbeddingModel contract.
#[test]
fn embedding_model_contract() {
    let table = table();
    let walk: Vec<NodeId> = (0..15u32).collect();
    let mcfg = ocfg(8).model;

    let mut models: Vec<Box<dyn EmbeddingModel>> = vec![
        Box::new(SkipGram::new(N, mcfg)),
        Box::new(OsElmSkipGram::new(N, ocfg(8))),
        Box::new(DataflowOsElm::new(N, ocfg(8))),
        Box::new(AlphaOsElm::new(N, ocfg(8))),
    ];
    for m in &mut models {
        assert_eq!(m.num_nodes(), N, "{}", m.name());
        assert_eq!(m.dim(), 8, "{}", m.name());
        assert!(m.model_bytes() > 0, "{}", m.name());
        let before = m.embedding();
        assert_eq!((before.rows(), before.cols()), (N, 8), "{}", m.name());
        let mut rng = Rng64::seed_from_u64(2);
        for _ in 0..5 {
            m.train_walk(&walk, &table, &mut rng);
        }
        let after = m.embedding();
        assert!(after.all_finite(), "{}", m.name());
        assert_ne!(before, after, "training must move the embedding: {}", m.name());
    }
}

/// Models with distinct seeds start from distinct embeddings (no hidden
/// global state).
#[test]
fn seeds_decorrelate_initializations() {
    let a = OsElmSkipGram::new(N, ocfg(8));
    let mut cfg_b = ocfg(8);
    cfg_b.model.seed = 6;
    let b = OsElmSkipGram::new(N, cfg_b);
    assert_ne!(a.beta_t(), b.beta_t());
}
