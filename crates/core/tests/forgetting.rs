//! Catastrophic-forgetting microbenchmark (the mechanism behind Fig. 5).
//!
//! Train on community A, then train heavily on community B only, and
//! measure how much the A-embedding degrades. The paper's claim: SGD
//! backpropagation forgets; the OS-ELM recursive-least-squares update does
//! not (its `P` matrix discounts directions it has already learned).

use seqge_core::model::EmbeddingModel;
use seqge_core::{ModelConfig, NegativeMode, OsElmConfig, OsElmSkipGram, SkipGram};
use seqge_graph::NodeId;
use seqge_linalg::ops;
use seqge_sampling::{NegativeTable, Rng64, UpdatePolicy, WalkCorpus};

const N: usize = 40;

fn table_over_all() -> NegativeTable {
    let mut corpus = WalkCorpus::new(N);
    corpus.record(&(0..N as NodeId).collect::<Vec<_>>());
    let mut t = NegativeTable::new(UpdatePolicy::every_edge());
    t.rebuild(&corpus);
    t
}

fn cfg(dim: usize) -> ModelConfig {
    ModelConfig {
        dim,
        window: 4,
        negative_samples: 3,
        negative_mode: NegativeMode::PerPosition,
        seed: 21,
    }
}

/// Walks inside community A (nodes 0..10) and community B (nodes 20..30).
fn community_walk(base: NodeId, rng: &mut Rng64) -> Vec<NodeId> {
    (0..16).map(|_| base + rng.gen_below(10) as NodeId).collect()
}

/// Mean within-community score of A-pairs under the model's own scoring
/// (embedding dot products of co-trained nodes).
fn a_cohesion(emb: &seqge_linalg::Mat<f32>) -> f32 {
    let mut acc = 0.0;
    let mut count = 0;
    for a in 0..10usize {
        for b in (a + 1)..10 {
            let (x, y) = (emb.row(a), emb.row(b));
            let nx = ops::norm2(x).max(1e-9);
            let ny = ops::norm2(y).max(1e-9);
            acc += ops::dot(x, y) / (nx * ny);
            count += 1;
        }
    }
    acc / count as f32
}

fn run<M: EmbeddingModel>(model: &mut M) -> (f32, f32) {
    let table = table_over_all();
    let mut rng = Rng64::seed_from_u64(3);
    // Phase 1: learn community A.
    for _ in 0..150 {
        let w = community_walk(0, &mut rng);
        model.train_walk(&w, &table, &mut rng);
    }
    let after_a = a_cohesion(&model.embedding());
    // Phase 2: train only community B, 4× as long.
    for _ in 0..600 {
        let w = community_walk(20, &mut rng);
        model.train_walk(&w, &table, &mut rng);
    }
    let after_b = a_cohesion(&model.embedding());
    (after_a, after_b)
}

#[test]
fn oselm_retains_more_than_sgd() {
    let mut sgd = SkipGram::new(N, cfg(16));
    let (sgd_a, sgd_after) = run(&mut sgd);
    let mut oselm =
        OsElmSkipGram::new(N, OsElmConfig { model: cfg(16), ..OsElmConfig::paper_defaults(16) });
    let (os_a, os_after) = run(&mut oselm);

    // Both must have learned A in phase 1.
    assert!(sgd_a > 0.3, "SGD failed to learn A: {sgd_a}");
    assert!(os_a > 0.3, "OS-ELM failed to learn A: {os_a}");

    // Relative retention of A-cohesion after the B-only phase.
    let sgd_retention = sgd_after / sgd_a;
    let os_retention = os_after / os_a;
    assert!(
        os_retention > sgd_retention,
        "OS-ELM should retain A better: oselm {os_after:.3}/{os_a:.3} = {os_retention:.3} \
         vs sgd {sgd_after:.3}/{sgd_a:.3} = {sgd_retention:.3}"
    );
}
