//! Integration tests for the explicit edge-stream scenario driver.

use seqge_core::model::EmbeddingModel;
use seqge_core::{train_stream_scenario, ModelConfig, OsElmConfig, OsElmSkipGram, TrainConfig};
use seqge_graph::generators::{SbmParams, TimestampedGraph};
use seqge_sampling::{Node2VecParams, UpdatePolicy};

fn cfg(dim: usize) -> TrainConfig {
    TrainConfig {
        walk: Node2VecParams { walk_length: 12, walks_per_node: 2, ..Default::default() },
        model: ModelConfig {
            dim,
            window: 4,
            negative_samples: 3,
            ..ModelConfig::paper_defaults(dim)
        },
    }
}

#[test]
fn stream_builds_full_graph_and_trains() {
    let tg = TimestampedGraph::generate(SbmParams::new(120, 400, 4), 0.3, 1);
    let order = tg.arrival_order();
    let cfg = cfg(8);
    let mut m = OsElmSkipGram::new(
        tg.graph.num_nodes(),
        OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(8) },
    );
    let before = m.embedding();
    let (g, outcome) = train_stream_scenario(
        tg.graph.num_nodes(),
        &order,
        &mut m,
        &cfg,
        UpdatePolicy::EveryEdges(10),
        7,
    );
    assert_eq!(g.num_edges(), tg.graph.num_edges(), "stream replays every edge");
    assert_eq!(outcome.edges_inserted, tg.graph.num_edges());
    assert!(outcome.walks_trained > 0);
    assert!(outcome.table_rebuilds > 0);
    assert_ne!(m.embedding(), before);
    assert!(m.embedding().all_finite());
}

#[test]
fn empty_stream_is_noop() {
    let cfg = cfg(4);
    let mut m =
        OsElmSkipGram::new(10, OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(4) });
    let before = m.embedding();
    let (g, outcome) = train_stream_scenario(10, &[], &mut m, &cfg, UpdatePolicy::every_edge(), 1);
    assert_eq!(g.num_edges(), 0);
    assert_eq!(outcome.edges_inserted, 0);
    assert_eq!(m.embedding(), before);
}

#[test]
#[should_panic(expected = "node count mismatch")]
fn mismatched_model_rejected() {
    let cfg = cfg(4);
    let mut m =
        OsElmSkipGram::new(5, OsElmConfig { model: cfg.model, ..OsElmConfig::paper_defaults(4) });
    let _ = train_stream_scenario(10, &[], &mut m, &cfg, UpdatePolicy::every_edge(), 1);
}
