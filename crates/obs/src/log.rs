//! Leveled structured logger: one JSON object per line, to stderr or a
//! file.
//!
//! ```text
//! {"ts_ms":1722950400123,"level":"info","target":"serve","msg":"listening on 127.0.0.1:4071"}
//! ```
//!
//! The active level comes from `SEQGE_LOG` (`error|warn|info|debug|trace`,
//! default `info`) or [`set_level`] (the CLI's `--log-level` flag). The
//! level check ([`enabled`]) is a single relaxed atomic load, and the
//! [`crate::error!`]-family macros only build the message when the level
//! passes, so disabled log sites cost one load + one branch.

use std::fmt;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-losing conditions.
    Error = 0,
    /// Suspicious but survivable conditions.
    Warn = 1,
    /// Lifecycle events (startup, shutdown, snapshots).
    Info = 2,
    /// Per-operation detail (batch sizes, per-trial scores).
    Debug = 3,
    /// Per-item firehose.
    Trace = 4,
}

impl Level {
    /// Wire/display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses `error|warn|info|debug|trace` (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

/// `None` = stderr; `Some(file)` after [`set_sink_file`].
static SINK: Mutex<Option<std::fs::File>> = Mutex::new(None);

/// The active level (lazily read from `SEQGE_LOG`; default `info`).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        4 => Level::Trace,
        _ => {
            let l = std::env::var("SEQGE_LOG")
                .ok()
                .as_deref()
                .and_then(Level::parse)
                .unwrap_or(Level::Info);
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
    }
}

/// Overrides the level at runtime (e.g. from `--log-level`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether a record at `l` would be emitted. One atomic load in steady
/// state; the macros call this before formatting anything.
#[inline]
pub fn enabled(l: Level) -> bool {
    crate::COMPILED && l <= level()
}

/// Redirects log output from stderr to `path` (append mode).
pub fn set_sink_file(path: &Path) -> std::io::Result<()> {
    let f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    *SINK.lock().expect("log sink poisoned") = Some(f);
    Ok(())
}

/// Reverts log output to stderr.
pub fn set_sink_stderr() {
    *SINK.lock().expect("log sink poisoned") = None;
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders one record as a JSONL line (without the newline). Public so
/// tests and the CLI can check the exact wire format.
pub fn format_record(ts_ms: u128, l: Level, target: &str, msg: &str) -> String {
    let mut line = String::with_capacity(64 + target.len() + msg.len());
    line.push_str("{\"ts_ms\":");
    line.push_str(&ts_ms.to_string());
    line.push_str(",\"level\":\"");
    line.push_str(l.as_str());
    line.push_str("\",\"target\":\"");
    escape_into(&mut line, target);
    line.push_str("\",\"msg\":\"");
    escape_into(&mut line, msg);
    line.push_str("\"}");
    line
}

/// Emits one record (the macros are the intended entry point; they gate on
/// [`enabled`] first).
pub fn log(l: Level, target: &str, args: fmt::Arguments<'_>) {
    let ts_ms =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or_default();
    let line = format_record(ts_ms, l, target, &args.to_string());
    // Tee every emitted record into the flight recorder's bounded ring so
    // crash dumps include the last ~256 log lines regardless of the sink.
    crate::flightrec::record_log(&line);
    let mut sink = SINK.lock().expect("log sink poisoned");
    match sink.as_mut() {
        Some(f) => {
            let _ = writeln!(f, "{line}");
        }
        None => {
            let _ = writeln!(std::io::stderr().lock(), "{line}");
        }
    }
}

/// Logs at [`Level::Error`]: `error!("target", "fmt {}", x)`.
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Trace) {
            $crate::log::log($crate::log::Level::Trace, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug, Level::Trace] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
    }

    #[test]
    fn records_are_valid_jsonl() {
        let line = format_record(123, Level::Info, "serve", "listening on 0.0.0.0:1");
        assert_eq!(
            line,
            r#"{"ts_ms":123,"level":"info","target":"serve","msg":"listening on 0.0.0.0:1"}"#
        );
        // Quotes, backslashes, newlines, and control bytes must be escaped.
        let tricky = format_record(1, Level::Error, "t", "a \"b\" \\ c\nd\te\u{1}");
        assert_eq!(
            tricky,
            r#"{"ts_ms":1,"level":"error","target":"t","msg":"a \"b\" \\ c\nd\te\u0001"}"#
        );
        assert_eq!(tricky.lines().count(), 1, "record must stay on one line");
    }

    #[test]
    fn level_gate_respects_set_level() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Trace));
        set_level(Level::Trace);
        assert_eq!(enabled(Level::Trace), crate::COMPILED);
        set_level(Level::Info);
    }

    #[test]
    fn file_sink_receives_lines() {
        let dir = std::env::temp_dir().join(format!("seqge-obs-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.log");
        set_sink_file(&path).unwrap();
        log(Level::Error, "test", format_args!("hello {}", 42));
        set_sink_stderr();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(r#""msg":"hello 42""#), "{text}");
        assert!(text.ends_with('\n'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
