//! Renders registries as Prometheus text-exposition format or JSON.
//!
//! Both renderers accept a *slice* of registries because the serve daemon
//! exposes its own per-instance registry merged with the process-global
//! one (library instrumentation). Metric names are disjoint by the naming
//! convention (`seqge_serve_*` vs `seqge_core_*` / `seqge_pipeline_*` /
//! `seqge_fpga_*`), so concatenation is a merge.
//!
//! Histograms are exported Prometheus-summary-style: `quantile` labels for
//! p50/p90/p99 plus `_sum`, `_count`, and a companion `<name>_max` gauge
//! (summaries have no native max series).

use crate::registry::{Metric, MetricKey, Registry};

/// Quantiles exported for every histogram.
pub const EXPORT_QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

/// Escapes a Prometheus label *value* per the text-exposition rules: the
/// only escapes are `\\`, `\"`, and `\n` (in that checking order so a
/// backslash never double-escapes). Everything else passes through.
fn prom_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", prom_escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Renders `registries` in Prometheus text-exposition format (0.0.4).
pub fn prometheus(registries: &[&Registry]) -> String {
    let mut out = String::new();
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut type_line = |out: &mut String, name: &str, kind: &str| {
        if typed.insert(name.to_string()) {
            out.push_str(&format!("# TYPE {name} {kind}\n"));
        }
    };
    for reg in registries {
        let metrics = reg.metrics.lock().expect("registry poisoned");
        for (MetricKey { name, labels }, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    type_line(&mut out, name, "counter");
                    out.push_str(&format!("{name}{} {}\n", label_block(labels, None), c.get()));
                }
                Metric::Gauge(g) => {
                    type_line(&mut out, name, "gauge");
                    out.push_str(&format!("{name}{} {}\n", label_block(labels, None), g.get()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    type_line(&mut out, name, "summary");
                    for (q, qs) in EXPORT_QUANTILES {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            label_block(labels, Some(("quantile", qs))),
                            fmt_f64(snap.quantile(q))
                        ));
                    }
                    let plain = label_block(labels, None);
                    out.push_str(&format!("{name}_sum{plain} {}\n", snap.sum));
                    out.push_str(&format!("{name}_count{plain} {}\n", snap.count));
                    let max_name = format!("{name}_max");
                    type_line(&mut out, &max_name, "gauge");
                    out.push_str(&format!("{max_name}{plain} {}\n", snap.max));
                }
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// Renders `registries` as one JSON document:
///
/// ```json
/// {"counters":[{"name":..,"labels":{..},"value":N}],
///  "gauges":[...],
///  "histograms":[{"name":..,"labels":{..},"count":N,"sum":N,"max":N,
///                 "mean":X,"p50":X,"p90":X,"p99":X}]}
/// ```
pub fn dump_json(registries: &[&Registry]) -> String {
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut hists = Vec::new();
    for reg in registries {
        let metrics = reg.metrics.lock().expect("registry poisoned");
        for (MetricKey { name, labels }, metric) in metrics.iter() {
            let name = json_escape(name);
            let labels = json_labels(labels);
            match metric {
                Metric::Counter(c) => counters.push(format!(
                    "{{\"name\":\"{name}\",\"labels\":{labels},\"value\":{}}}",
                    c.get()
                )),
                Metric::Gauge(g) => gauges.push(format!(
                    "{{\"name\":\"{name}\",\"labels\":{labels},\"value\":{}}}",
                    g.get()
                )),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    hists.push(format!(
                        "{{\"name\":\"{name}\",\"labels\":{labels},\"count\":{},\"sum\":{},\
                         \"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        s.count,
                        s.sum,
                        s.max,
                        fmt_f64(s.mean()),
                        fmt_f64(s.quantile(0.5)),
                        fmt_f64(s.quantile(0.9)),
                        fmt_f64(s.quantile(0.99)),
                    ))
                }
            }
        }
    }
    format!(
        "{{\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}]}}",
        counters.join(","),
        gauges.join(","),
        hists.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("seqge_x_total").add(5);
        r.counter_with("seqge_ops_total", &[("op", "ping")]).add(2);
        r.counter_with("seqge_ops_total", &[("op", "stats")]).add(3);
        r.gauge("seqge_depth").set(-4);
        let h = r.histogram("seqge_lat_ns");
        for v in [100u64, 200, 300, 400, 5_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = sample_registry();
        let text = prometheus(&[&r]);
        assert!(text.contains("# TYPE seqge_x_total counter\n"), "{text}");
        assert!(text.contains("seqge_x_total 5\n"));
        assert!(text.contains("seqge_ops_total{op=\"ping\"} 2\n"));
        assert!(text.contains("seqge_ops_total{op=\"stats\"} 3\n"));
        // TYPE emitted once per family even with two label sets.
        assert_eq!(text.matches("# TYPE seqge_ops_total counter").count(), 1);
        assert!(text.contains("# TYPE seqge_depth gauge\n"));
        assert!(text.contains("seqge_depth -4\n"));
        assert!(text.contains("# TYPE seqge_lat_ns summary\n"));
        assert!(text.contains("seqge_lat_ns{quantile=\"0.5\"}"));
        assert!(text.contains("seqge_lat_ns{quantile=\"0.99\"}"));
        assert!(text.contains("seqge_lat_ns_sum 6000\n"));
        assert!(text.contains("seqge_lat_ns_count 5\n"));
        assert!(text.contains("seqge_lat_ns_max 5000\n"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable value in line: {line}");
            assert!(parts.next().is_some(), "no metric id in line: {line}");
        }
    }

    #[test]
    fn json_dump_round_trips_structurally() {
        let r = sample_registry();
        let text = dump_json(&[&r]);
        // Cheap structural checks without a parser dependency: balanced
        // braces, expected keys, expected values.
        assert!(text.starts_with("{\"counters\":["));
        assert!(text.contains("\"name\":\"seqge_x_total\",\"labels\":{},\"value\":5"));
        assert!(text.contains("\"op\":\"ping\""));
        assert!(text.contains("\"count\":5"));
        assert!(text.contains("\"p99\":"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn merging_registries_concatenates_series() {
        let a = Registry::new();
        a.counter("seqge_a_total").inc();
        let b = Registry::new();
        b.counter("seqge_b_total").add(2);
        let text = prometheus(&[&a, &b]);
        assert!(text.contains("seqge_a_total 1\n"));
        assert!(text.contains("seqge_b_total 2\n"));
        let js = dump_json(&[&a, &b]);
        assert!(js.contains("seqge_a_total") && js.contains("seqge_b_total"));
    }

    #[test]
    fn empty_registry_renders_empty_documents() {
        let r = Registry::new();
        assert_eq!(prometheus(&[&r]), "");
        assert_eq!(dump_json(&[&r]), "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
        // Zero registries and several empty registries degrade the same way.
        assert_eq!(prometheus(&[]), "");
        let (a, b) = (Registry::new(), Registry::new());
        assert_eq!(prometheus(&[&a, &b]), "");
        assert_eq!(dump_json(&[]), "{\"counters\":[],\"gauges\":[],\"histograms\":[]}");
    }

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        let r = Registry::new();
        r.counter_with("seqge_esc_total", &[("path", "a\\b\"c\nd")]).inc();
        let text = prometheus(&[&r]);
        // Exposition-format escapes, exactly: \\ then \" then \n.
        assert!(
            text.contains(r#"seqge_esc_total{path="a\\b\"c\nd"} 1"#),
            "unexpected escaping: {text}"
        );
        // The physical line must not be split by the raw newline.
        assert_eq!(text.lines().filter(|l| l.starts_with("seqge_esc_total")).count(), 1);
        // The JSON dump escapes the same value with JSON rules and stays
        // on one line too.
        let js = dump_json(&[&r]);
        assert!(js.contains(r#""path":"a\\b\"c\nd""#), "{js}");
        assert_eq!(js.lines().count(), 1);
    }

    #[test]
    fn histogram_label_quantile_block_is_escaped_once() {
        let r = Registry::new();
        r.histogram_with("seqge_esc_ns", &[("op", "to\"pk")]).record(7);
        let text = prometheus(&[&r]);
        assert!(text.contains(r#"seqge_esc_ns{op="to\"pk",quantile="0.5"}"#), "{text}");
        assert!(text.contains(r#"seqge_esc_ns_sum{op="to\"pk"} 7"#), "{text}");
    }

    #[test]
    fn empty_histogram_exports_are_nan_free() {
        let r = Registry::new();
        r.histogram("seqge_empty_ns"); // registered, never recorded
        let text = prometheus(&[&r]);
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        assert!(text.contains("seqge_empty_ns{quantile=\"0.5\"} 0\n"));
        assert!(text.contains("seqge_empty_ns{quantile=\"0.99\"} 0\n"));
        assert!(text.contains("seqge_empty_ns_sum 0\n"));
        assert!(text.contains("seqge_empty_ns_count 0\n"));
        assert!(text.contains("seqge_empty_ns_max 0\n"));
        let js = dump_json(&[&r]);
        assert!(!js.contains("NaN"), "{js}");
        assert!(js.contains("\"count\":0,\"sum\":0,\"max\":0,\"mean\":0,\"p50\":0"));
    }

    /// Locks the full text rendering of a small registry so any formatting
    /// drift (spacing, ordering, TYPE lines) is caught exactly.
    #[test]
    fn text_format_golden() {
        let r = Registry::new();
        r.counter_with("seqge_ops_total", &[("op", "ping")]).add(2);
        r.gauge("seqge_depth").set(3);
        r.histogram("seqge_lat_ns").record(100);
        let text = prometheus(&[&r]);
        let expected = "\
# TYPE seqge_depth gauge
seqge_depth 3
# TYPE seqge_lat_ns summary
seqge_lat_ns{quantile=\"0.5\"} 100
seqge_lat_ns{quantile=\"0.9\"} 100
seqge_lat_ns{quantile=\"0.99\"} 100
seqge_lat_ns_sum 100
seqge_lat_ns_count 1
# TYPE seqge_lat_ns_max gauge
seqge_lat_ns_max 100
# TYPE seqge_ops_total counter
seqge_ops_total{op=\"ping\"} 2
";
        assert_eq!(text, expected);
    }
}
