//! Request-scoped distributed tracing, pure `std`.
//!
//! A trace is a tree of spans sharing one `trace_id`. Every layer that
//! touches a request (router, shard server, trainer publish) opens a span;
//! parent links come either from an explicit [`TraceCtx`] propagated over
//! the wire or from the per-thread active-span stack (nested `start_span`
//! calls on one thread parent automatically).
//!
//! ## Sampling
//!
//! Root spans are head-sampled 1-in-N (`SEQGE_TRACE_SAMPLE`, default 64;
//! `1` = always, `0` = never). Propagated contexts carry the decision so a
//! whole tree is kept or dropped together. A span can additionally be
//! [`Span::force_sample`]d after the fact — the serve layers do this for
//! degraded/shed/deadline-missed requests so the interesting traces are
//! always captured regardless of the sample rate.
//!
//! ## Cost model
//!
//! When [`crate::timing_enabled`] is off (`SEQGE_OBS=off`), `start_span`
//! returns an inert guard: no clock read, no id generation, no stack push —
//! the same discipline as [`crate::SpanGuard`], keeping the tracing-off
//! overhead inside the <2% obs budget. When on, completed sampled spans are
//! pushed into a fixed-size ring of `RING_CAP` slots claimed by one atomic
//! `fetch_add` (per-slot mutexes are touched only for the single uncontended
//! store/load), so the buffer is bounded and never blocks the hot path on a
//! global lock.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Completed spans retained in the in-process ring (power of two).
pub const RING_CAP: usize = 4096;

const SAMPLE_UNSET: u32 = u32::MAX;
static SAMPLE_EVERY: AtomicU32 = AtomicU32::new(SAMPLE_UNSET);
static ROOT_COUNTER: AtomicU64 = AtomicU64::new(0);
static ID_STATE: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small per-thread ordinal used as the Chrome-trace `tid`.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Active-span stack: (trace_id, span_id, sampled), innermost last.
    static STACK: RefCell<Vec<(u64, u64, bool)>> = const { RefCell::new(Vec::new()) };
}

/// `(monotonic anchor, unix ns at the anchor)` — spans derive wall-clock
/// timestamps from one pair so they stay mutually consistent in-process.
fn clock_base() -> &'static (Instant, u64) {
    static BASE: OnceLock<(Instant, u64)> = OnceLock::new();
    BASE.get_or_init(|| {
        let unix =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0);
        (Instant::now(), unix)
    })
}

fn unix_ns(at: Instant) -> u64 {
    let (anchor, base) = *clock_base();
    base.saturating_add(at.saturating_duration_since(anchor).as_nanos() as u64)
}

/// SplitMix64 over a global counter seeded from wall clock + pid: unique
/// in-process, collision-unlikely across processes, and never zero (zero is
/// the "no parent" sentinel).
pub fn next_id() -> u64 {
    if ID_STATE.load(Ordering::Relaxed) == 0 {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0xdead_beef)
            ^ ((std::process::id() as u64) << 32)
            ^ 0x9e37_79b9_7f4a_7c15;
        let _ = ID_STATE.compare_exchange(0, seed | 1, Ordering::Relaxed, Ordering::Relaxed);
    }
    loop {
        let mut z = ID_STATE.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        if z != 0 {
            return z;
        }
    }
}

/// Head-sampling period: keep 1 root trace in every `n`. Lazily read from
/// `SEQGE_TRACE_SAMPLE` (default 64); `0` disables sampling entirely.
pub fn sample_every() -> u32 {
    match SAMPLE_EVERY.load(Ordering::Relaxed) {
        SAMPLE_UNSET => {
            let n = std::env::var("SEQGE_TRACE_SAMPLE")
                .ok()
                .and_then(|v| v.trim().parse::<u32>().ok())
                .unwrap_or(64);
            SAMPLE_EVERY.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Overrides the `SEQGE_TRACE_SAMPLE` default at runtime (tests, loadgen).
pub fn set_sample_every(n: u32) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

fn sample_root() -> bool {
    match sample_every() {
        0 => false,
        1 => true,
        n => ROOT_COUNTER.fetch_add(1, Ordering::Relaxed).is_multiple_of(n as u64),
    }
}

/// Propagated trace context: enough to parent a remote child span and carry
/// the head-sampling decision across the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace_id: u64,
    /// Span id of the caller's span; children created under this context
    /// use it as their parent link.
    pub parent_span: u64,
    pub sampled: bool,
}

impl TraceCtx {
    /// Parses the 16-hex-digit wire encoding produced by [`fmt_id`].
    pub fn parse_id(s: &str) -> Option<u64> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }
}

/// 16-hex-digit, zero-padded wire/JSON encoding of a trace or span id.
pub fn fmt_id(id: u64) -> String {
    format!("{id:016x}")
}

/// A completed span as stored in the ring and rendered by the exporters.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Monotonic completion sequence number (cursor position in the ring).
    pub seq: u64,
    pub trace_id: u64,
    pub span_id: u64,
    /// `0` for root spans.
    pub parent_span: u64,
    pub name: String,
    /// Wall-clock start, nanoseconds since the unix epoch.
    pub start_unix_ns: u64,
    pub dur_ns: u64,
    /// Small per-thread ordinal (Chrome-trace `tid`).
    pub tid: u64,
    pub tags: Vec<(String, String)>,
}

struct Ring {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    cursor: AtomicU64,
}

fn ring() -> &'static Ring {
    static RING: OnceLock<Ring> = OnceLock::new();
    RING.get_or_init(|| Ring {
        slots: (0..RING_CAP).map(|_| Mutex::new(None)).collect(),
        cursor: AtomicU64::new(0),
    })
}

fn push_record(mut rec: SpanRecord) {
    let r = ring();
    let seq = r.cursor.fetch_add(1, Ordering::Relaxed) + 1;
    rec.seq = seq;
    let slot = &r.slots[(seq as usize) % RING_CAP];
    *slot.lock().unwrap() = Some(rec);
}

/// Completed sampled spans with `seq > after`, oldest first, plus the
/// cursor to pass as `after` next time. Non-destructive — the flight
/// recorder and the `trace` protocol op can both read the same ring.
pub fn snapshot_since(after: u64) -> (Vec<SpanRecord>, u64) {
    let r = ring();
    let cursor = r.cursor.load(Ordering::Relaxed);
    let mut out: Vec<SpanRecord> = Vec::new();
    for slot in &r.slots {
        if let Some(rec) = slot.lock().unwrap().as_ref() {
            if rec.seq > after {
                out.push(rec.clone());
            }
        }
    }
    out.sort_by_key(|rec| rec.seq);
    (out, cursor)
}

/// Number of spans completed into the ring since process start.
pub fn completed_total() -> u64 {
    ring().cursor.load(Ordering::Relaxed)
}

/// RAII span guard. Created by [`start_span`]; records into the ring on
/// drop when sampled (or force-sampled) and tracing is enabled.
pub struct Span {
    active: bool,
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
    sampled: bool,
    name: String,
    start: Option<Instant>,
    tags: Vec<(String, String)>,
}

impl Span {
    fn inert() -> Span {
        Span {
            active: false,
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
            sampled: false,
            name: String::new(),
            start: None,
            tags: Vec::new(),
        }
    }

    /// `false` when tracing was disabled at creation time.
    pub fn is_active(&self) -> bool {
        self.active
    }

    pub fn is_sampled(&self) -> bool {
        self.sampled
    }

    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    pub fn span_id(&self) -> u64 {
        self.span_id
    }

    /// Context to propagate to children (wire or in-process): this span
    /// becomes their parent.
    pub fn ctx(&self) -> Option<TraceCtx> {
        if !self.active {
            return None;
        }
        Some(TraceCtx { trace_id: self.trace_id, parent_span: self.span_id, sampled: self.sampled })
    }

    /// Keeps this span (and lets callers mark the tree interesting) even if
    /// head sampling dropped it — used for degraded/shed/deadline-missed
    /// outcomes.
    pub fn force_sample(&mut self) {
        if self.active {
            self.sampled = true;
        }
    }

    /// Attaches a key/value tag (op name, shard index, outcome, ...).
    pub fn tag(&mut self, key: &str, value: impl Into<String>) {
        if self.active {
            self.tags.push((key.to_string(), value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        // Pop this span from the thread's active stack. Guards are RAII so
        // drops are LIFO per thread; be lenient anyway and search from the
        // top in case a guard was moved across an unusual control path.
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            if let Some(pos) = st.iter().rposition(|&(_, id, _)| id == self.span_id) {
                st.truncate(pos);
            }
        });
        if !self.sampled {
            return;
        }
        let start = match self.start {
            Some(t) => t,
            None => return,
        };
        let rec = SpanRecord {
            seq: 0,
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span: self.parent_span,
            name: std::mem::take(&mut self.name),
            start_unix_ns: unix_ns(start),
            dur_ns: start.elapsed().as_nanos() as u64,
            tid: TID.with(|t| *t),
            tags: std::mem::take(&mut self.tags),
        };
        push_record(rec);
    }
}

/// Opens a span. Parentage, in precedence order: the explicit `ctx`
/// (propagated over the wire), then the innermost active span on this
/// thread, else a new root (which takes the head-sampling decision).
///
/// Returns an inert guard when [`crate::timing_enabled`] is off — no clock
/// read, no id generation, no allocation (`name` is only copied when the
/// span is live).
pub fn start_span(name: &str, ctx: Option<TraceCtx>) -> Span {
    if !crate::timing_enabled() {
        return Span::inert();
    }
    let (trace_id, parent_span, sampled) = match ctx {
        Some(c) => (c.trace_id, c.parent_span, c.sampled),
        None => match STACK.with(|s| s.borrow().last().copied()) {
            Some((t, p, smp)) => (t, p, smp),
            None => (next_id(), 0, sample_root()),
        },
    };
    let span_id = next_id();
    STACK.with(|s| s.borrow_mut().push((trace_id, span_id, sampled)));
    Span {
        active: true,
        trace_id,
        span_id,
        parent_span,
        sampled,
        name: name.to_string(),
        start: Some(Instant::now()),
        tags: Vec::new(),
    }
}

/// Context of the innermost active span on this thread, if any — what a
/// fan-out loop uses to open *sibling* children under one parent (nested
/// `start_span(.., None)` calls would chain instead).
pub fn current_ctx() -> Option<TraceCtx> {
    if !crate::timing_enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().copied()).map(|(trace_id, parent_span, sampled)| TraceCtx {
        trace_id,
        parent_span,
        sampled,
    })
}

/// Records an already-measured interval as a completed span — used by the
/// trainer's publish path, where the write-to-visibility span starts at
/// enqueue on the worker thread and closes on the trainer thread.
pub fn record_closed(
    name: &str,
    ctx: TraceCtx,
    start: Instant,
    dur_ns: u64,
    tags: Vec<(String, String)>,
) {
    if !crate::timing_enabled() || !ctx.sampled {
        return;
    }
    push_record(SpanRecord {
        seq: 0,
        trace_id: ctx.trace_id,
        span_id: next_id(),
        parent_span: ctx.parent_span,
        name: name.to_string(),
        start_unix_ns: unix_ns(start),
        dur_ns,
        tid: TID.with(|t| *t),
        tags,
    });
}

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// One span as a self-contained JSON object (the JSONL trace export).
pub fn jsonl_line(rec: &SpanRecord) -> String {
    let mut s = String::with_capacity(160);
    s.push_str("{\"trace\":\"");
    s.push_str(&fmt_id(rec.trace_id));
    s.push_str("\",\"span\":\"");
    s.push_str(&fmt_id(rec.span_id));
    s.push_str("\",\"parent\":");
    if rec.parent_span == 0 {
        s.push_str("null");
    } else {
        s.push('"');
        s.push_str(&fmt_id(rec.parent_span));
        s.push('"');
    }
    s.push_str(",\"name\":\"");
    esc(&rec.name, &mut s);
    s.push_str(&format!(
        "\",\"ts_us\":{},\"dur_us\":{},\"tid\":{},\"seq\":{}",
        rec.start_unix_ns / 1_000,
        rec.dur_ns / 1_000,
        rec.tid,
        rec.seq
    ));
    if !rec.tags.is_empty() {
        s.push_str(",\"tags\":{");
        for (i, (k, v)) in rec.tags.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            esc(k, &mut s);
            s.push_str("\":\"");
            esc(v, &mut s);
            s.push('"');
        }
        s.push('}');
    }
    s.push('}');
    s
}

/// Renders spans as a Chrome `trace_event` JSON document (complete `"X"`
/// events, microsecond timestamps) loadable in `chrome://tracing` and
/// Perfetto. `pid` distinguishes processes when merging multi-process
/// dumps; pass [`std::process::id`] for local spans.
pub fn chrome_trace(records: &[SpanRecord], pid: u32) -> String {
    let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":\"");
        esc(&rec.name, &mut s);
        s.push_str(&format!(
            "\",\"cat\":\"seqge\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{}",
            rec.start_unix_ns / 1_000,
            rec.dur_ns.max(1_000) / 1_000,
            rec.tid
        ));
        s.push_str(",\"args\":{\"trace\":\"");
        s.push_str(&fmt_id(rec.trace_id));
        s.push_str("\",\"span\":\"");
        s.push_str(&fmt_id(rec.span_id));
        s.push_str("\",\"parent\":\"");
        s.push_str(&fmt_id(rec.parent_span));
        s.push('"');
        for (k, v) in &rec.tags {
            s.push_str(",\"");
            esc(k, &mut s);
            s.push_str("\":\"");
            esc(v, &mut s);
            s.push('"');
        }
        s.push_str("}}");
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_tracing_on<T>(f: impl FnOnce() -> T) -> T {
        let _guard = crate::TEST_TIMING_LOCK.lock().unwrap();
        crate::set_timing_enabled(true);
        let out = f();
        crate::set_timing_enabled(true);
        out
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn id_wire_encoding_round_trips() {
        let id = next_id();
        assert_eq!(TraceCtx::parse_id(&fmt_id(id)), Some(id));
        assert_eq!(TraceCtx::parse_id(""), None);
        assert_eq!(TraceCtx::parse_id("zz"), None);
        assert_eq!(TraceCtx::parse_id("00000000000000001"), None); // 17 digits
    }

    #[test]
    fn nested_spans_parent_via_thread_stack() {
        with_tracing_on(|| {
            set_sample_every(1);
            let before = completed_total();
            let (root_id, child_parent, trace_a, trace_b);
            {
                let root = start_span("test.root", None);
                root_id = root.span_id();
                trace_a = root.trace_id();
                {
                    let child = start_span("test.child", None);
                    child_parent = (child.trace_id(), child.span_id());
                    trace_b = child.trace_id();
                }
            }
            assert_eq!(trace_a, trace_b, "child inherits trace id from stack");
            let (spans, _) = snapshot_since(before);
            let child = spans.iter().find(|s| s.span_id == child_parent.1).expect("child recorded");
            assert_eq!(child.parent_span, root_id);
            let root = spans.iter().find(|s| s.span_id == root_id).expect("root recorded");
            assert_eq!(root.parent_span, 0);
        });
    }

    #[test]
    fn explicit_ctx_wins_over_stack() {
        with_tracing_on(|| {
            set_sample_every(1);
            let _outer = start_span("test.outer", None);
            let remote = TraceCtx { trace_id: 42, parent_span: 7, sampled: true };
            let child = start_span("test.remote_child", Some(remote));
            assert_eq!(child.trace_id(), 42);
            assert_eq!(child.ctx().unwrap().parent_span, child.span_id());
        });
    }

    #[test]
    fn unsampled_spans_are_not_recorded_but_force_sample_keeps_them() {
        with_tracing_on(|| {
            set_sample_every(0); // never head-sample
            let before = completed_total();
            {
                let _dropped = start_span("test.unsampled", None);
            }
            assert_eq!(completed_total(), before, "unsampled span stays out of the ring");
            {
                let mut kept = start_span("test.forced", None);
                kept.force_sample();
                kept.tag("outcome", "degraded");
            }
            let (spans, _) = snapshot_since(before);
            assert!(spans.iter().any(|s| s.name == "test.forced"));
            set_sample_every(1);
        });
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _guard = crate::TEST_TIMING_LOCK.lock().unwrap();
        crate::set_timing_enabled(false);
        let before = completed_total();
        {
            let mut s = start_span("test.off", None);
            assert!(!s.is_active());
            assert!(s.ctx().is_none());
            s.force_sample();
        }
        assert_eq!(completed_total(), before);
        crate::set_timing_enabled(true);
    }

    #[test]
    fn jsonl_and_chrome_exports_are_valid_shapes() {
        let rec = SpanRecord {
            seq: 3,
            trace_id: 0xabc,
            span_id: 0xdef,
            parent_span: 0,
            name: "weird \"name\"\nwith\\escapes".into(),
            start_unix_ns: 1_000_000_000,
            dur_ns: 2_500_000,
            tid: 4,
            tags: vec![("op".into(), "topk".into())],
        };
        let line = jsonl_line(&rec);
        assert!(line.starts_with("{\"trace\":\"0000000000000abc\""));
        assert!(line.contains("\\\"name\\\"\\nwith\\\\escapes"));
        assert!(line.contains("\"parent\":null"));
        assert!(line.contains("\"tags\":{\"op\":\"topk\"}"));
        let doc = chrome_trace(&[rec], 123);
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"pid\":123"));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn ring_snapshot_is_incremental() {
        with_tracing_on(|| {
            set_sample_every(1);
            let before = completed_total();
            drop(start_span("test.first", None));
            let (first, cursor) = snapshot_since(before);
            assert!(first.iter().any(|s| s.name == "test.first"));
            drop(start_span("test.second", None));
            let (second, _) = snapshot_since(cursor);
            assert!(second.iter().all(|s| s.name != "test.first"));
            assert!(second.iter().any(|s| s.name == "test.second"));
        });
    }
}
